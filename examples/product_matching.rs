//! Product matching on the WDC-style corpus: the label-efficiency scenario
//! from the paper's Figure 10 — train on the *small* tier and evaluate on
//! the fixed test set.
//!
//! ```bash
//! cargo run --release --example product_matching
//! ```

use hiergat::{train_pairwise, HierGat, HierGatConfig};
use hiergat_data::{load_wdc, WdcDomain, WdcSize};
use hiergat_lm::{corpus_from_entities, pretrain, LmTier, PretrainConfig};
use hiergat_metrics::Confusion;

fn main() {
    for (size, label) in [(WdcSize::Small, "1/24 of the data"), (WdcSize::Large, "1/2 of the data")]
    {
        let dataset = load_wdc(WdcDomain::Camera, size, 1.0);
        println!(
            "\nWDC camera / {} ({}): {} train pairs, {} fixed test pairs",
            size.name(),
            label,
            dataset.train.len(),
            dataset.test.len()
        );

        let entities: Vec<_> =
            dataset.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
        let corpus = corpus_from_entities(entities.iter());
        let pretrained = pretrain(LmTier::MiniBase.config(), &corpus, &PretrainConfig::default());

        let mut model = HierGat::new(HierGatConfig::pairwise().with_epochs(6), dataset.arity());
        model.load_pretrained(&pretrained.store);
        let report = train_pairwise(&mut model, &dataset);
        print_confusion(&report.test_confusion);
    }
    println!("\nThe paper's Figure 10 point: HierGAT degrades gracefully as the");
    println!("training set shrinks (it needs ~1/2 of Ditto's labels for the same F1).");
}

fn print_confusion(c: &Confusion) {
    let m = c.pr_f1();
    println!(
        "  F1 {:.1}  precision {:.1}  recall {:.1}  (tp {} fp {} fn {} tn {})",
        m.f1 * 100.0,
        m.precision * 100.0,
        m.recall * 100.0,
        c.tp,
        c.fp,
        c.fn_,
        c.tn
    );
}
