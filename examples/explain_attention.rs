//! Attention explanation (the paper's Figure 9): train HierGAT, then render
//! which words and attributes the model attends to when judging a pair.
//!
//! ```bash
//! cargo run --release --example explain_attention
//! ```

use hiergat::{explain_pair, train_pairwise, HierGat, HierGatConfig};
use hiergat_data::MagellanDataset;
use hiergat_lm::{corpus_from_entities, pretrain, LmTier, PretrainConfig};

fn main() {
    let dataset = MagellanDataset::AmazonGoogle.load(0.4);
    let entities: Vec<_> =
        dataset.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
    let corpus = corpus_from_entities(entities.iter());
    let pretrained = pretrain(LmTier::MiniBase.config(), &corpus, &PretrainConfig::default());

    let mut model = HierGat::new(HierGatConfig::pairwise().with_epochs(5), dataset.arity());
    model.load_pretrained(&pretrained.store);
    let report = train_pairwise(&mut model, &dataset);
    println!("trained HierGAT on {} (test F1 {:.1})", dataset.name, report.test_f1 * 100.0);

    for pair in dataset.test.iter().take(2) {
        println!("\n===== {} pair =====", if pair.label { "matching" } else { "non-matching" });
        println!("left:  {}", pair.left.serialize_ditto());
        println!("right: {}", pair.right.serialize_ditto());
        let explanation = explain_pair(&mut model, pair);
        print!("{}", explanation.render());
    }
}
