//! Collective entity resolution with HierGAT+: resolve a query entity
//! against its TF-IDF-blocked candidate set jointly, as in §6.3 / Table 7
//! of the paper.
//!
//! ```bash
//! cargo run --release --example collective_dedup
//! ```

use hiergat::{train_collective, HierGat, HierGatConfig};
use hiergat_data::MagellanDataset;
use hiergat_lm::{corpus_from_entities, pretrain, LmTier, PretrainConfig};

fn main() {
    // Collective version of Walmart-Amazon: split-then-block with top-16
    // TF-IDF candidates per query entity.
    let dataset = MagellanDataset::WalmartAmazon.load_collective(0.3);
    println!(
        "collective {}: {} train / {} valid / {} test queries, {} candidate pairs",
        dataset.name,
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len(),
        dataset.total_candidates()
    );

    let entities: Vec<_> = dataset
        .train
        .iter()
        .flat_map(|ex| std::iter::once(ex.query.clone()).chain(ex.candidates.iter().cloned()))
        .collect();
    let corpus = corpus_from_entities(entities.iter());
    let pretrained = pretrain(LmTier::MiniBase.config(), &corpus, &PretrainConfig::default());

    let arity = dataset.train[0].query.arity();
    let mut model = HierGat::new(HierGatConfig::collective().with_epochs(5), arity);
    model.load_pretrained(&pretrained.store);
    println!("training HierGAT+ (entity-level context + alignment layer)...");
    let report = train_collective(&mut model, &dataset);
    println!("test F1 = {:.1}", report.test_f1 * 100.0);

    // Resolve one test query collectively and show the ranked candidates.
    let example = &dataset.test[0];
    let scores = model.predict_collective(example);
    println!("\nquery: {}", example.query.serialize_ditto());
    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (i, score) in ranked.iter().take(5) {
        let truth = if example.labels[*i] { "MATCH" } else { "     " };
        let title = example.candidates[*i].attrs.first().map_or("", |(_, v)| v.as_str());
        println!("  {score:.3} {truth}  {title}");
    }
}
