//! Quickstart: train HierGAT on a small synthetic benchmark and match two
//! product records.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hiergat::{train_pairwise, HierGat, HierGatConfig};
use hiergat_data::{Entity, EntityPair, MagellanDataset};
use hiergat_lm::{corpus_from_entities, pretrain, LmTier, PretrainConfig};

fn main() {
    // 1. Load a benchmark dataset (synthetic stand-in for Amazon-Google).
    let dataset = MagellanDataset::AmazonGoogle.load(0.5);
    println!(
        "dataset: {} ({} train / {} valid / {} test pairs, {} attributes)",
        dataset.name,
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len(),
        dataset.arity()
    );

    // 2. Pre-train a miniature language model on the training corpus
    //    (the stand-in for downloading a BERT checkpoint).
    let entities: Vec<Entity> =
        dataset.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
    let corpus = corpus_from_entities(entities.iter());
    println!("pre-training a miniature LM on {} sentences...", corpus.len());
    let pretrained = pretrain(LmTier::MiniBase.config(), &corpus, &PretrainConfig::default());

    // 3. Fine-tune HierGAT.
    let mut model = HierGat::new(HierGatConfig::pairwise().with_epochs(6), dataset.arity());
    model.load_pretrained(&pretrained.store);
    println!("training HierGAT ({} parameters)...", model.num_parameters());
    let report = train_pairwise(&mut model, &dataset);
    println!(
        "test F1 = {:.1} (precision {:.1}, recall {:.1})",
        report.test_f1 * 100.0,
        report.test_confusion.pr_f1().precision * 100.0,
        report.test_confusion.pr_f1().recall * 100.0
    );

    // 4. Match two ad-hoc records.
    let left = Entity::new(
        "shop-a-1",
        vec![
            ("title".into(), "zobari data cluster kx2194 enterprise".into()),
            ("manufacturer".into(), "zobari".into()),
            ("price".into(), "499.99".into()),
        ],
    );
    let right = Entity::new(
        "shop-b-9",
        vec![
            ("title".into(), "zobari data cluster kx2194".into()),
            ("manufacturer".into(), "zobari".into()),
            ("price".into(), "489.00".into()),
        ],
    );
    let score = model.predict_pair(&EntityPair::new(left, right, true));
    println!("ad-hoc pair match probability: {score:.3}");
}
