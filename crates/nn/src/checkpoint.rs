//! Parameter checkpointing.
//!
//! Two formats are provided:
//!
//! * **JSON** — human-inspectable, used for experiment manifests and tests.
//! * **Binary** — compact little-endian encoding over a plain byte buffer,
//!   used for the pre-trained language-model checkpoints that the ER models
//!   load before fine-tuning.

use crate::params::ParamStore;
use hiergat_tensor::Tensor;
use std::fmt;
use std::fs;
use std::path::Path;

/// Error loading or saving a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The binary buffer is truncated or malformed.
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Json(e) => write!(f, "checkpoint JSON error: {e}"),
            Self::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

const MAGIC: u32 = 0x4847_4154; // "HGAT"
/// Current write version. Version 2 adds a named-f32 metadata section
/// (e.g. the validation-tuned decision threshold) between the header and
/// the tensor table; version-1 buffers (no metadata) still load.
const VERSION: u16 = 2;
const MIN_VERSION: u16 = 1;

/// Big-endian header fields, little-endian tensor payloads — matching the
/// original on-disk layout so old checkpoints keep loading.
///
/// Every read is fallible: a short or corrupt buffer surfaces as
/// [`CheckpointError::Malformed`], never as a slice-index panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(CheckpointError::Malformed("unexpected end of buffer"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn get_u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2-byte slice")))
    }

    fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }
}

/// Serializes all parameters (names, shapes, values) into a compact binary
/// buffer with no metadata entries.
pub fn to_bytes(store: &ParamStore) -> Vec<u8> {
    to_bytes_with_meta(store, &[])
}

/// Serializes all parameters plus named scalar metadata (tuned thresholds,
/// calibration constants — anything a restored inference session needs
/// beyond the weights).
pub fn to_bytes_with_meta(store: &ParamStore, meta: &[(&str, f32)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_be_bytes());
    buf.extend_from_slice(&VERSION.to_be_bytes());
    buf.extend_from_slice(&(meta.len() as u16).to_be_bytes());
    for (key, value) in meta {
        let key_bytes = key.as_bytes();
        buf.extend_from_slice(&(key_bytes.len() as u16).to_be_bytes());
        buf.extend_from_slice(key_bytes);
        buf.extend_from_slice(&value.to_le_bytes());
    }
    buf.extend_from_slice(&(store.len() as u32).to_be_bytes());
    for (_, name, value) in store.iter() {
        let name_bytes = name.as_bytes();
        buf.extend_from_slice(&(name_bytes.len() as u16).to_be_bytes());
        buf.extend_from_slice(name_bytes);
        buf.extend_from_slice(&(value.rows() as u32).to_be_bytes());
        buf.extend_from_slice(&(value.cols() as u32).to_be_bytes());
        for &v in value.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

/// Decodes a binary checkpoint into a fresh [`ParamStore`].
///
/// Truncated or corrupt input (short reads, bad magic/version, absurd shape
/// headers) returns [`CheckpointError::Malformed`]; this function never
/// panics on untrusted bytes, and the tensor payload is bounds-checked
/// against the buffer *before* any allocation is sized from the header.
pub fn from_bytes(buf: &[u8]) -> Result<ParamStore, CheckpointError> {
    Ok(from_bytes_with_meta(buf)?.0)
}

/// Decodes a binary checkpoint into a fresh [`ParamStore`] plus its scalar
/// metadata entries. Version-1 buffers have no metadata section and decode
/// with an empty metadata list — old checkpoints keep loading.
#[allow(clippy::type_complexity)]
pub fn from_bytes_with_meta(
    buf: &[u8],
) -> Result<(ParamStore, Vec<(String, f32)>), CheckpointError> {
    let mut buf = Reader::new(buf);
    if buf.get_u32()? != MAGIC {
        return Err(CheckpointError::Malformed("bad magic"));
    }
    let version = buf.get_u16()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CheckpointError::Malformed("unsupported version"));
    }
    let mut meta = Vec::new();
    if version >= 2 {
        let meta_count = buf.get_u16()? as usize;
        for _ in 0..meta_count {
            let key_len = buf.get_u16()? as usize;
            let key = String::from_utf8(buf.take(key_len)?.to_vec())
                .map_err(|_| CheckpointError::Malformed("non-utf8 metadata key"))?;
            let raw = buf.take(4)?;
            meta.push((key, f32::from_le_bytes(raw.try_into().expect("4-byte slice"))));
        }
    }
    let count = buf.get_u32()? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = buf.get_u16()? as usize;
        let name = String::from_utf8(buf.take(name_len)?.to_vec())
            .map_err(|_| CheckpointError::Malformed("non-utf8 name"))?;
        let rows = buf.get_u32()? as usize;
        let cols = buf.get_u32()? as usize;
        let bytes = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or(CheckpointError::Malformed("tensor size overflow"))?;
        let payload = buf.take(bytes)?;
        let data = payload
            .chunks_exact(4)
            .map(|le| f32::from_le_bytes(le.try_into().expect("4-byte chunk")))
            .collect();
        let tensor =
            Tensor::from_vec(rows, cols, data).map_err(|_| CheckpointError::Malformed("shape"))?;
        store.add(name, tensor);
    }
    Ok((store, meta))
}

/// Writes a binary checkpoint to disk.
pub fn save_binary(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    fs::write(path, to_bytes(store))?;
    Ok(())
}

/// Writes a binary checkpoint with scalar metadata to disk.
pub fn save_binary_with_meta(
    store: &ParamStore,
    meta: &[(&str, f32)],
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    fs::write(path, to_bytes_with_meta(store, meta))?;
    Ok(())
}

/// Reads a binary checkpoint from disk.
pub fn load_binary(path: impl AsRef<Path>) -> Result<ParamStore, CheckpointError> {
    let data = fs::read(path)?;
    from_bytes(&data)
}

/// Reads a binary checkpoint and its scalar metadata from disk.
#[allow(clippy::type_complexity)]
pub fn load_binary_with_meta(
    path: impl AsRef<Path>,
) -> Result<(ParamStore, Vec<(String, f32)>), CheckpointError> {
    let data = fs::read(path)?;
    from_bytes_with_meta(&data)
}

/// Writes a JSON checkpoint to disk.
pub fn save_json(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(store)?;
    fs::write(path, json)?;
    Ok(())
}

/// Reads a JSON checkpoint from disk.
pub fn load_json(path: impl AsRef<Path>) -> Result<ParamStore, CheckpointError> {
    let data = fs::read_to_string(path)?;
    let mut store: ParamStore = serde_json::from_str(&data)?;
    store.rebuild_index();
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ps = ParamStore::new();
        ps.add("layer.w", Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng));
        ps.add("layer.b", Tensor::rand_normal(1, 4, 0.0, 1.0, &mut rng));
        ps
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let ps = sample_store();
        let loaded = from_bytes(&to_bytes(&ps)).expect("roundtrip");
        assert_eq!(loaded.len(), ps.len());
        for (id, name, value) in ps.iter() {
            let _ = id;
            let lid = loaded.id_of(name).expect("name survives");
            assert!(loaded.value(lid).allclose(value, 0.0));
        }
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut raw = to_bytes(&sample_store());
        raw[0] ^= 0xFF;
        assert!(matches!(from_bytes(&raw), Err(CheckpointError::Malformed("bad magic"))));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let raw = to_bytes(&sample_store());
        let truncated = &raw[0..raw.len() - 5];
        assert!(from_bytes(truncated).is_err());
    }

    #[test]
    fn every_truncated_prefix_errs_instead_of_panicking() {
        // Regression: the reader used to slice-index panic on short reads.
        let raw = to_bytes(&sample_store());
        for len in 0..raw.len() {
            assert!(from_bytes(&raw[..len]).is_err(), "prefix of {len} bytes must fail cleanly");
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut raw = to_bytes(&sample_store());
        raw[4..6].copy_from_slice(&99u16.to_be_bytes());
        assert!(matches!(from_bytes(&raw), Err(CheckpointError::Malformed("unsupported version"))));
    }

    #[test]
    fn absurd_shape_header_errs_instead_of_allocating() {
        // A crafted header claiming a u32::MAX x u32::MAX tensor must fail
        // on the size check, not attempt an 16-exabyte allocation.
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC.to_be_bytes());
        raw.extend_from_slice(&VERSION.to_be_bytes());
        raw.extend_from_slice(&0u16.to_be_bytes()); // empty metadata section
        raw.extend_from_slice(&1u32.to_be_bytes());
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.push(b'w');
        raw.extend_from_slice(&u32::MAX.to_be_bytes());
        raw.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(from_bytes(&raw).is_err());
    }

    #[test]
    fn metadata_roundtrips() {
        let ps = sample_store();
        let raw = to_bytes_with_meta(&ps, &[("decision_threshold", 0.62), ("calib", -1.5)]);
        let (loaded, meta) = from_bytes_with_meta(&raw).expect("roundtrip");
        assert_eq!(loaded.len(), ps.len());
        assert_eq!(meta.len(), 2);
        assert_eq!(meta[0].0, "decision_threshold");
        assert_eq!(meta[0].1.to_bits(), 0.62f32.to_bits());
        assert_eq!(meta[1], ("calib".to_string(), -1.5));
    }

    /// The exact version-1 writer layout: no metadata section between the
    /// header and the tensor table.
    fn v1_bytes(store: &ParamStore) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&(store.len() as u32).to_be_bytes());
        for (_, name, value) in store.iter() {
            let name_bytes = name.as_bytes();
            buf.extend_from_slice(&(name_bytes.len() as u16).to_be_bytes());
            buf.extend_from_slice(name_bytes);
            buf.extend_from_slice(&(value.rows() as u32).to_be_bytes());
            buf.extend_from_slice(&(value.cols() as u32).to_be_bytes());
            for &v in value.as_slice() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn version_1_checkpoints_still_load() {
        let ps = sample_store();
        let raw = v1_bytes(&ps);
        let (loaded, meta) = from_bytes_with_meta(&raw).expect("v1 backward compat");
        assert!(meta.is_empty(), "v1 has no metadata section");
        assert_eq!(loaded.len(), ps.len());
        for (_, name, value) in ps.iter() {
            let lid = loaded.id_of(name).expect("name survives");
            assert!(loaded.value(lid).allclose(value, 0.0));
        }
    }

    #[test]
    fn file_roundtrip_binary_and_json() {
        let dir = std::env::temp_dir().join("hiergat-ckpt-test");
        fs::create_dir_all(&dir).expect("temp dir is writable");
        let ps = sample_store();

        let bin = dir.join("model.bin");
        save_binary(&ps, &bin).expect("binary save");
        let loaded = load_binary(&bin).expect("binary load");
        assert_eq!(loaded.len(), 2);

        let js = dir.join("model.json");
        save_json(&ps, &js).expect("json save");
        let loaded = load_json(&js).expect("json load");
        assert_eq!(loaded.len(), 2);
        assert!(loaded.id_of("layer.w").is_some(), "index must be rebuilt");
    }
}
