//! Ahead-of-time arena memory planning and allocation-free tape execution.
//!
//! [`ExecutionPlan::build`] takes a tape recorded with [`Tape::deferred`]
//! (true shapes, no computed values) and a scalar loss node, runs a liveness
//! analysis over the **combined forward + backward timeline**, and assigns
//! every live buffer — intermediate values *and* gradient adjoints — an
//! offset inside one contiguous [`Arena`]. [`ArenaExecutor`] then replays
//! the plan each training step: forward kernels write into planned spans,
//! backward accumulates adjoints in place, and parameter gradients flow into
//! the [`ParamStore`] exactly as `Tape::backward` would — bitwise, because
//! every op arm below reproduces the heap path's arithmetic (same kernels,
//! same element order, same accumulation order).
//!
//! # Liveness model
//! With `L = loss.index()`, forward op `i` executes at time `i` and its
//! backward adjoint at `t_bwd(i) = 2L + 1 - i`. A node's **value** lives
//! from its definition until its last reader: the latest forward consumer,
//! or — for inputs whose data the backward rule re-reads (e.g. both matmul
//! operands) and ops whose backward reads their own output (e.g. softmax) —
//! into the backward sweep. A node's **gradient** lives from the first
//! consumer adjoint that accumulates into it (`t_bwd` of its latest
//! consumer) until its own backward time. Leaf (input/parameter) values are
//! read from the tape/store and never occupy the arena.
//!
//! # Aliasing invariant
//! Two requests whose live intervals overlap are never assigned overlapping
//! spans; the greedy best-fit allocator only recycles a block after its
//! interval ends. The executor routes every read through
//! [`hiergat_tensor::SpanReader`], which panics on a read that overlaps the
//! span being written, so a planner bug is a loud failure, not corruption.

use crate::analyze;
use crate::params::ParamStore;
use crate::tape::{Op, Tape, Var};
use hiergat_tensor::{
    gelu_grad_scalar, log_softmax_rows_inplace, matmul_into, matmul_nt_into, matmul_tn_into,
    row_moments_into, softmax_rows_inplace, Arena, Span, SpanReader, Tensor,
};
use std::cmp::Reverse;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Which of an op's *inputs* have their *values* re-read by the backward
/// rule in `Tape::backward`. Everything else can release its value at its
/// last forward consumer — this is what lets the planner overlap most of
/// the forward activations with the backward adjoints.
fn backward_value_reads(op: &Op) -> Vec<Var> {
    match op {
        Op::Mul(a, b) | Op::Matmul(a, b) | Op::MatmulNt(a, b) | Op::MatmulTn(a, b) => {
            vec![*a, *b]
        }
        Op::Div(_, b) => vec![*b],
        Op::MulCol(a, col) => vec![*a, *col],
        Op::MaxCols(a) | Op::Ln(a) | Op::Relu(a) | Op::LeakyRelu(a, _) | Op::Gelu(a) => vec![*a],
        Op::LayerNorm { x, gamma, .. } => vec![*x, *gamma],
        Op::CrossEntropyLogits { logits, .. }
        | Op::WeightedCrossEntropyLogits { logits, .. }
        | Op::BceWithLogits { logits, .. } => vec![*logits],
        Op::MseLoss { pred, .. } => vec![*pred],
        _ => Vec::new(),
    }
}

/// Whether the backward rule reads the op's own *output* value (`y`).
fn backward_reads_output(op: &Op) -> bool {
    matches!(
        op,
        Op::Div(..)
            | Op::Softmax(_)
            | Op::LogSoftmax(_)
            | Op::Exp(_)
            | Op::Sqrt(_)
            | Op::Tanh(_)
            | Op::Sigmoid(_)
    )
}

/// Shape/topology fingerprint of `tape[0..=loss]`. Two tapes with equal
/// signatures produce identical plans (payloads like scale factors, slice
/// starts, dropout masks, and loss targets are read from the *current* tape
/// at execution time and never baked into the plan). The mode tag keeps
/// training and inference plans for the same graph distinct in the plan
/// cache — their liveness (and therefore their spans) differ.
fn signature(tape: &Tape, loss: Var, inference: bool) -> Vec<u64> {
    let mut sig = Vec::new();
    signature_into(tape, loss, inference, &mut sig);
    sig
}

/// [`signature`] written into a caller-owned buffer, so per-call code (the
/// optimiser's decisions cache) can fingerprint a tape without allocating.
pub(crate) fn signature_into(tape: &Tape, loss: Var, inference: bool, sig: &mut Vec<u64>) {
    // The optimiser bit keeps an optimised graph's plan distinct from the
    // as-recorded graph's even when their shapes coincide.
    sig.extend([loss.index() as u64, u64::from(inference), u64::from(tape.is_optimized())]);
    for i in 0..=loss.index() {
        let v = Var::from_index(i);
        let op = tape.op_at(i);
        let (rows, cols) = tape.value(v).shape();
        // `Op::tag` is deliberately explicit (not `mem::discriminant`
        // hashing): the code feeds the plan-cache signature, and op
        // identity changes liveness even when shapes match.
        sig.push(op.tag());
        sig.push(rows as u64);
        sig.push(cols as u64);
        let arity_at = sig.len();
        sig.push(0);
        op.for_each_input(|x| sig.push(x.index() as u64));
        sig[arity_at] = (sig.len() - arity_at - 1) as u64;
    }
}

/// Allocation-free check that `tape[0..=loss]`'s fingerprint equals a
/// previously captured [`signature_into`] buffer. The optimiser's replay
/// cache confirms structural identity with this walk — mirroring
/// `signature_into` word for word, aborting on the first mismatch —
/// instead of materialising a fresh signature vector per call.
pub(crate) fn sig_matches(tape: &Tape, loss: Var, inference: bool, sig: &[u64]) -> bool {
    if sig.len() < 3
        || sig[0] != loss.index() as u64
        || sig[1] != u64::from(inference)
        || sig[2] != u64::from(tape.is_optimized())
    {
        return false;
    }
    let mut pos = 3;
    for i in 0..=loss.index() {
        let op = tape.op_at(i);
        let (rows, cols) = tape.value(Var::from_index(i)).shape();
        if pos + 4 > sig.len()
            || sig[pos] != op.tag()
            || sig[pos + 1] != rows as u64
            || sig[pos + 2] != cols as u64
        {
            return false;
        }
        let declared_arity = sig[pos + 3];
        pos += 4;
        let mut arity = 0u64;
        let mut inputs_ok = true;
        op.for_each_input(|x| {
            if pos < sig.len() && sig[pos] == x.index() as u64 {
                pos += 1;
            } else {
                inputs_ok = false;
            }
            arity += 1;
        });
        if !inputs_ok || arity != declared_arity {
            return false;
        }
    }
    pos == sig.len()
}

fn hash_signature(sig: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    sig.hash(&mut h);
    h.finish()
}

/// One planned buffer: a node's value or gradient, its live interval on the
/// combined timeline, and the arena span it was assigned. Exposed so tests
/// (and the planner proptest) can verify the aliasing invariant directly.
#[derive(Debug, Clone, Copy)]
pub struct PlannedSlot {
    /// Tape node index.
    pub node: usize,
    /// `false` = forward value, `true` = gradient adjoint.
    pub grad: bool,
    /// First timeline step at which the buffer is written.
    pub start_time: usize,
    /// Last timeline step at which the buffer is read (inclusive).
    pub end_time: usize,
    /// Assigned storage.
    pub span: Span,
}

/// Summary of a plan: how much arena the greedy assignment needs versus the
/// no-reuse baseline and the liveness-theoretic lower bound.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Reachable tape nodes.
    pub nodes: usize,
    /// Planned buffers (values + gradients).
    pub slots: usize,
    /// Bytes of arena the plan actually uses.
    pub arena_bytes: u64,
    /// Bytes if every buffer got private storage (the heap path's footprint).
    pub naive_bytes: u64,
    /// Peak of simultaneously-live bytes — no allocator can do better.
    pub lower_bound_bytes: u64,
    /// `true` when greedy best-fit needed more than the lower bound
    /// (fragmentation); reported so regressions in packing quality surface.
    pub exceeds_lower_bound: bool,
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} slots: arena {} (naive {}, lower bound {}{})",
            self.nodes,
            self.slots,
            analyze::fmt_bytes(self.arena_bytes),
            analyze::fmt_bytes(self.naive_bytes),
            analyze::fmt_bytes(self.lower_bound_bytes),
            if self.exceeds_lower_bound { ", fragmented above bound" } else { ", tight" }
        )
    }
}

/// A request for storage over a closed interval of timeline steps.
struct Request {
    node: usize,
    grad: bool,
    start: usize,
    end: usize,
    elems: usize,
}

/// Offset-sorted free list with coalescing, used by the greedy assignment.
#[derive(Default)]
struct FreeList {
    /// `(offset, len)`, sorted by offset, no two blocks adjacent.
    blocks: Vec<(usize, usize)>,
}

impl FreeList {
    fn insert(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let idx = self.blocks.partition_point(|&(o, _)| o < off);
        self.blocks.insert(idx, (off, len));
        if idx + 1 < self.blocks.len()
            && self.blocks[idx].0 + self.blocks[idx].1 == self.blocks[idx + 1].0
        {
            self.blocks[idx].1 += self.blocks[idx + 1].1;
            self.blocks.remove(idx + 1);
        }
        if idx > 0 && self.blocks[idx - 1].0 + self.blocks[idx - 1].1 == self.blocks[idx].0 {
            self.blocks[idx - 1].1 += self.blocks[idx].1;
            self.blocks.remove(idx);
        }
    }

    /// Smallest block that fits `len` (ties: lowest offset). Splits it.
    fn best_fit(&mut self, len: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (idx, &(_, blen)) in self.blocks.iter().enumerate() {
            if blen >= len {
                let better = match best {
                    None => true,
                    Some((_, cur)) => blen < cur,
                };
                if better {
                    best = Some((idx, blen));
                }
            }
        }
        let (idx, blen) = best?;
        let (off, _) = self.blocks[idx];
        if blen == len {
            self.blocks.remove(idx);
        } else {
            self.blocks[idx] = (off + len, blen - len);
        }
        Some(off)
    }

    /// Removes and returns the free block touching the arena's current end,
    /// if any — growing the arena from there wastes nothing.
    fn take_tail(&mut self, arena_end: usize) -> Option<(usize, usize)> {
        match self.blocks.last() {
            Some(&(o, l)) if o + l == arena_end => self.blocks.pop(),
            _ => None,
        }
    }
}

/// An ahead-of-time memory plan for one `(graph shape, loss)` pair.
pub struct ExecutionPlan {
    loss: Var,
    inference: bool,
    reachable: Vec<bool>,
    value_span: Vec<Span>,
    grad_span: Vec<Span>,
    arena_elems: usize,
    max_node_elems: usize,
    max_rows: usize,
    max_cols: usize,
    report: PlanReport,
    signature: Vec<u64>,
    slots: Vec<PlannedSlot>,
}

impl ExecutionPlan {
    /// Plans arena storage for executing `tape` up to `loss` and running the
    /// full backward sweep.
    ///
    /// # Panics
    /// Panics if `loss` is not on the tape, is not scalar, or if the tape was
    /// recorded shape-only (clamped shapes would corrupt the plan; use
    /// [`Tape::deferred`], which records true shapes).
    pub fn build(tape: &Tape, loss: Var) -> ExecutionPlan {
        assert!(tape.value(loss).is_scalar(), "plan: loss must be 1x1");
        Self::build_with_mode(tape, loss, false)
    }

    /// Plans arena storage for a **forward-only** evaluation of `tape` up to
    /// `output` (any shape — inference outputs are logit/probability
    /// matrices, not scalar losses).
    ///
    /// There is no adjoint timeline: gradients are never requested, and a
    /// node's value span is recycled as soon as its last *forward* consumer
    /// has run — none of the keep-alive extensions the backward sweep forces
    /// (`backward_value_reads`, output re-reads) apply. Peak arena bytes are
    /// therefore at most, and in practice well below, the training plan's.
    ///
    /// # Panics
    /// Panics if `output` is not on the tape or the tape was recorded
    /// shape-only (use [`Tape::inference`], which records true shapes).
    pub fn build_inference(tape: &Tape, output: Var) -> ExecutionPlan {
        Self::build_with_mode(tape, output, true)
    }

    fn build_with_mode(tape: &Tape, loss: Var, inference: bool) -> ExecutionPlan {
        assert!(loss.index() < tape.len(), "plan: loss is not a node of this tape");
        assert!(
            !tape.is_shape_only(),
            "plan: shape-only tapes clamp shapes; record with Tape::deferred"
        );
        let l = loss.index();
        let n = l + 1;
        let t_bwd = |i: usize| 2 * l + 1 - i;

        // Reachability: ancestors of the loss through op inputs.
        let mut reachable = vec![false; tape.len()];
        let mut stack = vec![l];
        reachable[l] = true;
        while let Some(i) = stack.pop() {
            for v in tape.op_at(i).inputs() {
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }

        let is_leaf = |i: usize| matches!(tape.op_at(i), Op::Input | Op::Param(_));

        // Liveness on the combined timeline (see module docs). Inference
        // plans stop at the forward sweep: no adjoint times, no backward
        // keep-alives — a value dies at its last forward consumer.
        let mut value_last: Vec<usize> = (0..n).collect();
        let mut grad_first: Vec<usize> = (0..n).map(t_bwd).collect();
        for j in 0..n {
            if !reachable[j] {
                continue;
            }
            let op = tape.op_at(j);
            for v in op.inputs() {
                let vi = v.index();
                if !is_leaf(vi) {
                    value_last[vi] = value_last[vi].max(j);
                }
                grad_first[vi] = grad_first[vi].min(t_bwd(j));
            }
            if inference {
                continue;
            }
            for v in backward_value_reads(op) {
                let vi = v.index();
                if !is_leaf(vi) {
                    value_last[vi] = value_last[vi].max(t_bwd(j));
                }
            }
            if backward_reads_output(op) {
                value_last[j] = value_last[j].max(t_bwd(j));
            }
        }

        // Storage requests: values for non-leaf reachable nodes, and — on
        // training plans only — gradients for every reachable node (the heap
        // path accumulates adjoints for leaves too; parameters flush to the
        // store at their backward time).
        let mut requests: Vec<Request> = Vec::new();
        let mut max_node_elems = 0;
        let mut max_rows = 0;
        let mut max_cols = 0;
        let mut nodes = 0;
        for i in 0..n {
            if !reachable[i] {
                continue;
            }
            nodes += 1;
            let (rows, cols) = tape.value(Var::from_index(i)).shape();
            let elems = rows * cols;
            max_node_elems = max_node_elems.max(elems);
            max_rows = max_rows.max(rows);
            max_cols = max_cols.max(cols);
            if elems == 0 {
                continue;
            }
            if !is_leaf(i) {
                requests.push(Request {
                    node: i,
                    grad: false,
                    start: i,
                    end: value_last[i],
                    elems,
                });
            }
            if !inference {
                requests.push(Request {
                    node: i,
                    grad: true,
                    start: grad_first[i],
                    end: t_bwd(i),
                    elems,
                });
            }
        }
        requests.sort_by_key(|r| (r.start, r.node, r.grad));

        // Liveness-theoretic lower bound: peak of simultaneously-live elems.
        let mut delta = vec![0i64; if inference { n + 1 } else { 2 * l + 3 }];
        let mut naive_elems = 0u64;
        for r in &requests {
            delta[r.start] += r.elems as i64;
            delta[r.end + 1] -= r.elems as i64;
            naive_elems += r.elems as u64;
        }
        let mut live = 0i64;
        let mut peak = 0i64;
        for d in &delta {
            live += d;
            peak = peak.max(live);
        }

        // Greedy best-fit over the interval-sorted requests.
        let mut value_span = vec![Span::EMPTY; tape.len()];
        let mut grad_span = vec![Span::EMPTY; tape.len()];
        let mut free = FreeList::default();
        let mut active: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
        let mut arena_elems = 0usize;
        let mut slots = Vec::with_capacity(requests.len());
        for r in &requests {
            while let Some(&Reverse((end, off, len))) = active.peek() {
                if end < r.start {
                    active.pop();
                    free.insert(off, len);
                } else {
                    break;
                }
            }
            let off = match free.best_fit(r.elems) {
                Some(o) => o,
                None => match free.take_tail(arena_elems) {
                    Some((o, _)) => {
                        arena_elems = o + r.elems;
                        o
                    }
                    None => {
                        let o = arena_elems;
                        arena_elems += r.elems;
                        o
                    }
                },
            };
            let span = Span { start: off, len: r.elems };
            active.push(Reverse((r.end, off, r.elems)));
            if r.grad {
                grad_span[r.node] = span;
            } else {
                value_span[r.node] = span;
            }
            slots.push(PlannedSlot {
                node: r.node,
                grad: r.grad,
                start_time: r.start,
                end_time: r.end,
                span,
            });
        }

        let bytes = |elems: u64| elems * size_of::<f32>() as u64;
        let arena_bytes = bytes(arena_elems as u64);
        let lower_bound_bytes = bytes(peak as u64);
        let report = PlanReport {
            nodes,
            slots: slots.len(),
            arena_bytes,
            naive_bytes: bytes(naive_elems),
            lower_bound_bytes,
            exceeds_lower_bound: arena_bytes > lower_bound_bytes,
        };
        let sig = signature(tape, loss, inference);
        ExecutionPlan {
            loss,
            inference,
            reachable,
            value_span,
            grad_span,
            arena_elems,
            max_node_elems,
            max_rows,
            max_cols,
            report,
            signature: sig,
            slots,
        }
    }

    /// The loss node this plan executes to.
    pub fn loss(&self) -> Var {
        self.loss
    }

    /// `true` if this is a forward-only inference plan (no gradient spans).
    pub fn is_inference(&self) -> bool {
        self.inference
    }

    /// Total arena elements the plan requires.
    pub fn arena_elems(&self) -> usize {
        self.arena_elems
    }

    /// Size / reuse summary.
    pub fn report(&self) -> &PlanReport {
        &self.report
    }

    /// Every planned buffer with its live interval and span.
    pub fn slots(&self) -> &[PlannedSlot] {
        &self.slots
    }
}

/// Reusable scratch buffers for op arms that need a staging area (matmul
/// adjoints, row statistics, layer-norm partials). Sized once per plan;
/// bundled in one struct so the executor's helpers stay borrow-friendly.
#[derive(Default)]
struct Scratch {
    /// Node-sized staging (largest reachable node, leaves included — e.g. a
    /// gather's table delta is table-sized).
    a: Vec<f32>,
    /// Row statistics: `2 * max_rows` (interleaved layer-norm moments).
    b: Vec<f32>,
    /// Column partials: `4 * max_cols` (layer-norm dgamma/dbeta/xhat/dxhat).
    c: Vec<f32>,
}

fn grow(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Executes deferred tapes through cached [`ExecutionPlan`]s with zero
/// tensor allocations in steady state.
///
/// The arena, scratch buffers, and plan cache persist across steps: once a
/// graph shape has been planned, replaying the same-shape step allocates
/// nothing — forward values, backward adjoints, and gradient accumulation
/// all live inside the arena (`hiergat_tensor::alloc_stats` proves this in
/// the differential suite and benches).
#[derive(Default)]
pub struct ArenaExecutor {
    arena: Arena,
    scratch: Scratch,
    grad_written: Vec<bool>,
    plans: HashMap<u64, ExecutionPlan>,
}

impl ArenaExecutor {
    /// An executor with no cached plans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct graph shapes planned so far.
    pub fn plans_cached(&self) -> usize {
        self.plans.len()
    }

    /// Looks up (or builds) the plan for this tape's shape signature.
    /// Associated function over the `plans` field so callers can borrow the
    /// arena and scratch fields independently.
    fn cached_plan<'p>(
        plans: &'p mut HashMap<u64, ExecutionPlan>,
        tape: &Tape,
        loss: Var,
        inference: bool,
    ) -> &'p ExecutionPlan {
        let sig = signature(tape, loss, inference);
        let key = hash_signature(&sig);
        if plans.len() > 512 && !plans.contains_key(&key) {
            // Runaway shape diversity (e.g. per-pair graph sizes): cap the
            // cache rather than grow without bound.
            plans.clear();
        }
        let build = || ExecutionPlan::build_with_mode(tape, loss, inference);
        let entry = plans.entry(key).or_insert_with(build);
        if entry.signature != sig {
            // Hash collision between distinct shapes: rebuild for the
            // current tape (correctness first; collisions are ~never).
            *entry = build();
        }
        entry
    }

    /// Plans (or reuses a cached plan for) `tape` and returns its report.
    pub fn plan_report(&mut self, tape: &Tape, loss: Var) -> PlanReport {
        Self::cached_plan(&mut self.plans, tape, loss, false).report.clone()
    }

    /// Plans (or reuses a cached **inference** plan for) `tape` up to
    /// `output` and returns its report.
    pub fn infer_report(&mut self, tape: &Tape, output: Var) -> PlanReport {
        Self::cached_plan(&mut self.plans, tape, output, true).report.clone()
    }

    /// Runs forward only, returning the loss value.
    pub fn forward(&mut self, tape: &Tape, loss: Var, store: &ParamStore) -> f32 {
        let plan = Self::cached_plan(&mut self.plans, tape, loss, false);
        self.arena.ensure_len(plan.arena_elems);
        grow(&mut self.scratch.a, plan.max_node_elems);
        grow(&mut self.scratch.b, 2 * plan.max_rows);
        grow(&mut self.scratch.c, 4 * plan.max_cols);
        run_forward(plan, tape, store, &mut self.arena, &mut self.scratch);
        read_loss(plan, tape, store, &self.arena, loss)
    }

    /// Executes an inference tape through its forward-only plan and copies
    /// the values of `output` (row-major) into `out`.
    ///
    /// Zero allocations in steady state: once the graph shape is planned and
    /// the arena/scratch are grown, replaying a same-shape tape touches only
    /// pre-owned buffers. Bitwise identical to recording the same graph
    /// eagerly — every forward arm reproduces the eager kernels exactly.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the element count of `output`.
    pub fn infer_into(&mut self, tape: &Tape, output: Var, store: &ParamStore, out: &mut [f32]) {
        let plan = Self::cached_plan(&mut self.plans, tape, output, true);
        self.arena.ensure_len(plan.arena_elems);
        grow(&mut self.scratch.a, plan.max_node_elems);
        grow(&mut self.scratch.b, 2 * plan.max_rows);
        grow(&mut self.scratch.c, 4 * plan.max_cols);
        run_forward(plan, tape, store, &mut self.arena, &mut self.scratch);
        let vals = value_slice_in(&self.arena, plan, tape, store, output);
        assert_eq!(out.len(), vals.len(), "infer_into: output buffer size mismatch");
        out.copy_from_slice(vals);
    }

    /// Convenience wrapper over [`Self::infer_into`] that allocates the
    /// output tensor.
    pub fn infer(&mut self, tape: &Tape, output: Var, store: &ParamStore) -> Tensor {
        let (rows, cols) = tape.value(output).shape();
        let mut t = Tensor::zeros(rows, cols);
        self.infer_into(tape, output, store, t.as_mut_slice());
        t
    }

    /// Bytes of arena storage this executor currently owns (peak across all
    /// plans it has replayed).
    pub fn arena_capacity_bytes(&self) -> u64 {
        self.arena.capacity_bytes()
    }

    /// Runs one full forward + backward step, accumulating parameter
    /// gradients into `store` (bitwise identical to recording the same graph
    /// eagerly and calling `Tape::backward`). Returns the loss value.
    pub fn step(&mut self, tape: &Tape, loss: Var, store: &mut ParamStore) -> f32 {
        let plan = Self::cached_plan(&mut self.plans, tape, loss, false);
        self.arena.ensure_len(plan.arena_elems);
        grow(&mut self.scratch.a, plan.max_node_elems);
        grow(&mut self.scratch.b, 2 * plan.max_rows);
        grow(&mut self.scratch.c, 4 * plan.max_cols);
        if self.grad_written.len() < tape.len() {
            self.grad_written.resize(tape.len(), false);
        }
        run_forward(plan, tape, store, &mut self.arena, &mut self.scratch);
        // Read the loss before backward: its value span may be recycled for
        // an adjoint during the sweep.
        let loss_value = read_loss(plan, tape, store, &self.arena, loss);
        run_backward(plan, tape, store, &mut self.arena, &mut self.scratch, &mut self.grad_written);
        loss_value
    }
}

fn read_loss(
    plan: &ExecutionPlan,
    tape: &Tape,
    store: &ParamStore,
    arena: &Arena,
    loss: Var,
) -> f32 {
    match tape.op_at(loss.index()) {
        Op::Input => tape.value(loss).item(),
        Op::Param(pid) => store.value(*pid).item(),
        _ => arena.read(plan.value_span[loss.index()])[0],
    }
}

/// Value buffer of `v` during execution: leaves live on the tape / in the
/// store, everything else in its planned span.
fn value_slice<'s>(
    rd: SpanReader<'s>,
    plan: &ExecutionPlan,
    tape: &'s Tape,
    store: &'s ParamStore,
    v: Var,
) -> &'s [f32] {
    match tape.op_at(v.index()) {
        Op::Input => tape.value(v).as_slice(),
        Op::Param(pid) => store.value(*pid).as_slice(),
        _ => rd.read(plan.value_span[v.index()]),
    }
}

/// Same routing for phases that read the arena without holding a write span.
fn value_slice_in<'s>(
    arena: &'s Arena,
    plan: &ExecutionPlan,
    tape: &'s Tape,
    store: &'s ParamStore,
    v: Var,
) -> &'s [f32] {
    match tape.op_at(v.index()) {
        Op::Input => tape.value(v).as_slice(),
        Op::Param(pid) => store.value(*pid).as_slice(),
        _ => arena.read(plan.value_span[v.index()]),
    }
}

fn shape_of(tape: &Tape, v: Var) -> (usize, usize) {
    tape.value(v).shape()
}

/// Writes `f(k)` over `out` — assigning when the destination is fresh
/// (mirroring the heap path's move into an empty gradient slot), adding
/// otherwise (mirroring `add_assign`).
fn apply(out: &mut [f32], fresh: bool, mut f: impl FnMut(usize) -> f32) {
    if fresh {
        for (k, d) in out.iter_mut().enumerate() {
            *d = f(k);
        }
    } else {
        for (k, d) in out.iter_mut().enumerate() {
            *d += f(k);
        }
    }
}

/// Replays the forward pass into planned spans. Every arm reproduces the
/// eager kernel bitwise: shared `*_into` kernels where the heap path uses
/// them (identical block geometry), identical scalar expressions elsewhere.
#[allow(clippy::needless_range_loop, clippy::too_many_lines)]
fn run_forward(
    plan: &ExecutionPlan,
    tape: &Tape,
    store: &ParamStore,
    arena: &mut Arena,
    scratch: &mut Scratch,
) {
    let l = plan.loss.index();
    for i in 0..=l {
        if !plan.reachable[i] {
            continue;
        }
        let op = tape.op_at(i);
        if matches!(op, Op::Input | Op::Param(_)) {
            continue;
        }
        let w = plan.value_span[i];
        let (yr, yc) = shape_of(tape, Var::from_index(i));
        if w.len == 0 {
            continue;
        }
        match op {
            Op::Input | Op::Param(_) => unreachable!("leaves skipped above"),
            Op::Add(a, b) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let bv = value_slice(rd, plan, tape, store, *b);
                apply(out, true, |k| av[k] + bv[k]);
            }
            Op::Sub(a, b) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let bv = value_slice(rd, plan, tape, store, *b);
                apply(out, true, |k| av[k] - bv[k]);
            }
            Op::Mul(a, b) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let bv = value_slice(rd, plan, tape, store, *b);
                apply(out, true, |k| av[k] * bv[k]);
            }
            Op::Scale(a, k0) => {
                let k0 = *k0;
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[k] * k0);
            }
            Op::AddScalar(a, k0) => {
                let k0 = *k0;
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[k] + k0);
            }
            Op::Div(a, b) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let bv = value_slice(rd, plan, tape, store, *b);
                apply(out, true, |k| av[k] / bv[k]);
            }
            Op::AddRow(a, row) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let rv = value_slice(rd, plan, tape, store, *row);
                apply(out, true, |k| av[k] + rv[k % yc]);
            }
            Op::AddCol(a, col) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let cv = value_slice(rd, plan, tape, store, *col);
                apply(out, true, |k| av[k] + cv[k / yc]);
            }
            Op::MulCol(a, col) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let cv = value_slice(rd, plan, tape, store, *col);
                apply(out, true, |k| av[k] * cv[k / yc]);
            }
            Op::Matmul(a, b) => {
                let (_, ac) = shape_of(tape, *a);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let bv = value_slice(rd, plan, tape, store, *b);
                matmul_into(av, bv, out, yr, ac, yc);
            }
            Op::MatmulNt(a, b) => {
                let (_, ac) = shape_of(tape, *a);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let bv = value_slice(rd, plan, tape, store, *b);
                matmul_nt_into(av, bv, out, yr, ac, yc);
            }
            Op::MatmulTn(a, b) => {
                let (ar, _) = shape_of(tape, *a);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                let bv = value_slice(rd, plan, tape, store, *b);
                matmul_tn_into(av, bv, out, ar, yr, yc);
            }
            Op::Transpose(a) => {
                let (ar, ac) = shape_of(tape, *a);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[(k % ar) * ac + k / ar]);
            }
            Op::SumAll(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                out[0] = av.iter().sum();
            }
            Op::MeanAll(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                out[0] = if av.is_empty() { 0.0 } else { av.iter().sum::<f32>() / av.len() as f32 };
            }
            Op::SumRows(a) => {
                let (ar, _) = shape_of(tape, *a);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                out.fill(0.0);
                for r in 0..ar {
                    for j in 0..yc {
                        out[j] += av[r * yc + j];
                    }
                }
            }
            Op::SumCols(a) => {
                let (_, ac) = shape_of(tape, *a);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                for r in 0..yr {
                    out[r] = av[r * ac..(r + 1) * ac].iter().sum();
                }
            }
            Op::MaxCols(a) => {
                let (_, ac) = shape_of(tape, *a);
                assert!(ac > 0, "max_cols: tensor has no columns");
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                for r in 0..yr {
                    out[r] =
                        av[r * ac..(r + 1) * ac].iter().copied().fold(f32::NEG_INFINITY, f32::max);
                }
            }
            Op::Softmax(a) => {
                {
                    let (out, rd) = arena.view_mut(w).split();
                    out.copy_from_slice(value_slice(rd, plan, tape, store, *a));
                }
                softmax_rows_inplace(arena.write(w), yr, yc);
            }
            Op::LogSoftmax(a) => {
                {
                    let (out, rd) = arena.view_mut(w).split();
                    out.copy_from_slice(value_slice(rd, plan, tape, store, *a));
                }
                log_softmax_rows_inplace(arena.write(w), yr, yc);
            }
            Op::Exp(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[k].exp());
            }
            Op::Ln(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[k].ln());
            }
            Op::Sqrt(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[k].sqrt());
            }
            Op::Relu(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[k].max(0.0));
            }
            Op::LeakyRelu(a, alpha) => {
                let al = *alpha;
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| if av[k] >= 0.0 { av[k] } else { al * av[k] });
            }
            Op::Tanh(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| av[k].tanh());
            }
            Op::Sigmoid(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| 1.0 / (1.0 + (-av[k]).exp()));
            }
            Op::Gelu(a) => {
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, true, |k| hiergat_tensor::gelu_scalar(av[k]));
            }
            Op::LayerNorm { x, gamma, beta, eps } => {
                let eps = *eps;
                {
                    let xs = value_slice_in(arena, plan, tape, store, *x);
                    row_moments_into(xs, &mut scratch.b[..2 * yr], yr, yc);
                }
                let sb = &scratch.b;
                let (out, rd) = arena.view_mut(w).split();
                let xs = value_slice(rd, plan, tape, store, *x);
                let gs = value_slice(rd, plan, tape, store, *gamma);
                let bs = value_slice(rd, plan, tape, store, *beta);
                apply(out, true, |k| {
                    let r = k / yc;
                    let j = k % yc;
                    let m = sb[2 * r];
                    let inv = 1.0 / (sb[2 * r + 1] + eps).sqrt();
                    (xs[k] - m) * inv * gs[j] + bs[j]
                });
            }
            Op::ConcatCols(parts) => {
                let (out, rd) = arena.view_mut(w).split();
                let mut off = 0;
                for &p in parts {
                    let (_, pc) = shape_of(tape, p);
                    let pv = value_slice(rd, plan, tape, store, p);
                    for r in 0..yr {
                        out[r * yc + off..r * yc + off + pc]
                            .copy_from_slice(&pv[r * pc..(r + 1) * pc]);
                    }
                    off += pc;
                }
            }
            Op::ConcatRows(parts) => {
                let (out, rd) = arena.view_mut(w).split();
                let mut off = 0;
                for &p in parts {
                    let (pr, pc) = shape_of(tape, p);
                    let pv = value_slice(rd, plan, tape, store, p);
                    out[off..off + pr * pc].copy_from_slice(pv);
                    off += pr * pc;
                }
            }
            Op::SliceCols { x, start, len } => {
                let (start, len) = (*start, *len);
                let (_, ac) = shape_of(tape, *x);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *x);
                for r in 0..yr {
                    out[r * len..(r + 1) * len]
                        .copy_from_slice(&av[r * ac + start..r * ac + start + len]);
                }
            }
            Op::SliceRows { x, start, .. } => {
                let start = *start;
                let (_, ac) = shape_of(tape, *x);
                let (out, rd) = arena.view_mut(w).split();
                let av = value_slice(rd, plan, tape, store, *x);
                out.copy_from_slice(&av[start * ac..start * ac + yr * ac]);
            }
            Op::GatherRows { table, indices } => {
                let (_, tc) = shape_of(tape, *table);
                let (out, rd) = arena.view_mut(w).split();
                let tv = value_slice(rd, plan, tape, store, *table);
                for (r, &idx) in indices.iter().enumerate() {
                    out[r * tc..(r + 1) * tc].copy_from_slice(&tv[idx * tc..(idx + 1) * tc]);
                }
            }
            Op::Dropout { x, mask } => {
                let ms = mask.as_slice();
                let (out, rd) = arena.view_mut(w).split();
                let xs = value_slice(rd, plan, tape, store, *x);
                apply(out, true, |k| xs[k] * ms[k]);
            }
            Op::CrossEntropyLogits { logits, targets } => {
                let (lr, lc) = shape_of(tape, *logits);
                assert_eq!(lr, targets.len(), "cross_entropy: target count mismatch");
                {
                    let lv = value_slice_in(arena, plan, tape, store, *logits);
                    scratch.a[..lr * lc].copy_from_slice(lv);
                }
                log_softmax_rows_inplace(&mut scratch.a[..lr * lc], lr, lc);
                let mut loss = 0.0;
                for (r, &tc) in targets.iter().enumerate() {
                    assert!(tc < lc, "cross_entropy: class {tc} out of range");
                    loss -= scratch.a[r * lc + tc];
                }
                loss /= targets.len() as f32;
                arena.write(w)[0] = loss;
            }
            Op::WeightedCrossEntropyLogits { logits, targets, weights } => {
                let (lr, lc) = shape_of(tape, *logits);
                assert_eq!(lr, targets.len(), "wce: target count mismatch");
                assert_eq!(targets.len(), weights.len(), "wce: weight count mismatch");
                let w_sum: f32 = weights.iter().sum();
                assert!(w_sum > 0.0, "wce: weights must be positive");
                {
                    let lv = value_slice_in(arena, plan, tape, store, *logits);
                    scratch.a[..lr * lc].copy_from_slice(lv);
                }
                log_softmax_rows_inplace(&mut scratch.a[..lr * lc], lr, lc);
                let mut loss = 0.0;
                for (r, (&tc, &wt)) in targets.iter().zip(weights).enumerate() {
                    assert!(tc < lc, "wce: class {tc} out of range");
                    loss -= wt * scratch.a[r * lc + tc];
                }
                loss /= w_sum;
                arena.write(w)[0] = loss;
            }
            Op::BceWithLogits { logits, targets } => {
                let (lr, _) = shape_of(tape, *logits);
                assert_eq!(lr, targets.len(), "bce: target count mismatch");
                let mut loss = 0.0;
                {
                    let lv = value_slice_in(arena, plan, tape, store, *logits);
                    for (r, &y) in targets.iter().enumerate() {
                        let z = lv[r];
                        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
                    }
                }
                loss /= targets.len() as f32;
                arena.write(w)[0] = loss;
            }
            Op::MseLoss { pred, target } => {
                let mut loss = 0.0;
                {
                    let pv = value_slice_in(arena, plan, tape, store, *pred);
                    let tv = target.as_slice();
                    for (p, t) in pv.iter().zip(tv) {
                        let d = p - t;
                        loss += d * d;
                    }
                    loss /= pv.len() as f32;
                }
                arena.write(w)[0] = loss;
            }
        }
        #[cfg(debug_assertions)]
        if arena.read(w).iter().any(|v| !v.is_finite()) {
            panic!("arena op #{i} ({}) produced non-finite values", op.name());
        }
    }
}

/// Heap-path `accum` move/add semantics: `true` means the destination slot
/// is fresh (assign), `false` means accumulate. Flips the flag to written.
fn take_fresh(gw: &mut [bool], v: Var) -> bool {
    let fresh = !gw[v.index()];
    gw[v.index()] = true;
    fresh
}

/// Assign-or-add a scratch-staged delta into a planned span. Staging through
/// scratch (zero-fill + sparse writes, then a *full-buffer* accumulate)
/// reproduces the heap path's `zeros + add_assign` exactly — including the
/// `-0.0 + 0.0 = 0.0` normalization the heap's explicit zeros perform.
fn accum_slice(arena: &mut Arena, span: Span, fresh: bool, src: &[f32]) {
    apply(arena.write(span), fresh, |k| src[k]);
}

/// Replays `Tape::backward` over the planned arena: reverse sweep from the
/// loss, adjoints accumulated span-to-span in the heap path's order, and
/// parameter gradients flushed into `store` at each `Param` node's backward
/// time (identical arithmetic to `ParamStore::accumulate_grad`).
#[allow(clippy::needless_range_loop, clippy::too_many_lines)]
fn run_backward(
    plan: &ExecutionPlan,
    tape: &Tape,
    store: &mut ParamStore,
    arena: &mut Arena,
    scratch: &mut Scratch,
    gw: &mut [bool],
) {
    let l = plan.loss.index();
    gw.fill(false);
    arena.write(plan.grad_span[l])[0] = 1.0;
    gw[l] = true;
    for i in (0..=l).rev() {
        if !plan.reachable[i] || !gw[i] {
            continue;
        }
        let gsp = plan.grad_span[i];
        let op = tape.op_at(i);
        #[cfg(debug_assertions)]
        if arena.read(gsp).iter().any(|v| !v.is_finite()) {
            panic!("backward adjoint of op #{i} ({}) is non-finite", op.name());
        }
        let (yr, yc) = shape_of(tape, Var::from_index(i));
        let gs_of = |v: Var| plan.grad_span[v.index()];
        match op {
            Op::Input => {}
            Op::Param(pid) => {
                let g = arena.read(gsp);
                store.accumulate_grad_slice(*pid, g);
            }
            Op::Add(a, b) => {
                for v in [a, b] {
                    let fresh = take_fresh(gw, *v);
                    let (out, rd) = arena.view_mut(gs_of(*v)).split();
                    let gs = rd.read(gsp);
                    apply(out, fresh, |k| gs[k]);
                }
            }
            Op::Sub(a, b) => {
                {
                    let fresh = take_fresh(gw, *a);
                    let (out, rd) = arena.view_mut(gs_of(*a)).split();
                    let gs = rd.read(gsp);
                    apply(out, fresh, |k| gs[k]);
                }
                let fresh = take_fresh(gw, *b);
                let (out, rd) = arena.view_mut(gs_of(*b)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| -gs[k]);
            }
            Op::Mul(a, b) => {
                {
                    let fresh = take_fresh(gw, *a);
                    let (out, rd) = arena.view_mut(gs_of(*a)).split();
                    let gs = rd.read(gsp);
                    let bv = value_slice(rd, plan, tape, store, *b);
                    apply(out, fresh, |k| gs[k] * bv[k]);
                }
                let fresh = take_fresh(gw, *b);
                let (out, rd) = arena.view_mut(gs_of(*b)).split();
                let gs = rd.read(gsp);
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, fresh, |k| gs[k] * av[k]);
            }
            Op::Scale(a, k0) => {
                let k0 = *k0;
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| gs[k] * k0);
            }
            Op::AddScalar(a, _) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| gs[k]);
            }
            Op::Div(a, b) => {
                {
                    let fresh = take_fresh(gw, *a);
                    let (out, rd) = arena.view_mut(gs_of(*a)).split();
                    let gs = rd.read(gsp);
                    let bv = value_slice(rd, plan, tape, store, *b);
                    apply(out, fresh, |k| gs[k] / bv[k]);
                }
                let fresh = take_fresh(gw, *b);
                let (out, rd) = arena.view_mut(gs_of(*b)).split();
                let gs = rd.read(gsp);
                let ys = rd.read(plan.value_span[i]);
                let bv = value_slice(rd, plan, tape, store, *b);
                apply(out, fresh, |k| -((gs[k] * ys[k]) / bv[k]));
            }
            Op::AddRow(a, row) => {
                {
                    let gs = arena.read(gsp);
                    let sc = &mut scratch.c[..yc];
                    sc.fill(0.0);
                    for r in 0..yr {
                        for j in 0..yc {
                            sc[j] += gs[r * yc + j];
                        }
                    }
                }
                {
                    let fresh = take_fresh(gw, *row);
                    accum_slice(arena, gs_of(*row), fresh, &scratch.c[..yc]);
                }
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| gs[k]);
            }
            Op::AddCol(a, col) => {
                {
                    let gs = arena.read(gsp);
                    for r in 0..yr {
                        scratch.b[r] = gs[r * yc..(r + 1) * yc].iter().sum();
                    }
                }
                {
                    let fresh = take_fresh(gw, *col);
                    accum_slice(arena, gs_of(*col), fresh, &scratch.b[..yr]);
                }
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| gs[k]);
            }
            Op::MulCol(a, col) => {
                {
                    let fresh = take_fresh(gw, *a);
                    let (out, rd) = arena.view_mut(gs_of(*a)).split();
                    let gs = rd.read(gsp);
                    let cv = value_slice(rd, plan, tape, store, *col);
                    apply(out, fresh, |k| gs[k] * cv[k / yc]);
                }
                {
                    let gs = arena.read(gsp);
                    let av = value_slice_in(arena, plan, tape, store, *a);
                    for k in 0..yr * yc {
                        scratch.a[k] = gs[k] * av[k];
                    }
                }
                for r in 0..yr {
                    scratch.b[r] = scratch.a[r * yc..(r + 1) * yc].iter().sum();
                }
                let fresh = take_fresh(gw, *col);
                accum_slice(arena, gs_of(*col), fresh, &scratch.b[..yr]);
            }
            Op::Matmul(a, b) => {
                let (ar, ac) = shape_of(tape, *a);
                let (_, bc) = shape_of(tape, *b);
                {
                    let gs = arena.read(gsp);
                    let bv = value_slice_in(arena, plan, tape, store, *b);
                    matmul_nt_into(gs, bv, &mut scratch.a[..ar * ac], ar, bc, ac);
                }
                {
                    let fresh = take_fresh(gw, *a);
                    accum_slice(arena, gs_of(*a), fresh, &scratch.a[..ar * ac]);
                }
                {
                    let gs = arena.read(gsp);
                    let av = value_slice_in(arena, plan, tape, store, *a);
                    matmul_tn_into(av, gs, &mut scratch.a[..ac * bc], ar, ac, bc);
                }
                let fresh = take_fresh(gw, *b);
                accum_slice(arena, gs_of(*b), fresh, &scratch.a[..ac * bc]);
            }
            Op::MatmulNt(a, b) => {
                let (ar, ac) = shape_of(tape, *a);
                let (br, _) = shape_of(tape, *b);
                {
                    let gs = arena.read(gsp);
                    let bv = value_slice_in(arena, plan, tape, store, *b);
                    matmul_into(gs, bv, &mut scratch.a[..ar * ac], ar, br, ac);
                }
                {
                    let fresh = take_fresh(gw, *a);
                    accum_slice(arena, gs_of(*a), fresh, &scratch.a[..ar * ac]);
                }
                {
                    let gs = arena.read(gsp);
                    let av = value_slice_in(arena, plan, tape, store, *a);
                    matmul_tn_into(gs, av, &mut scratch.a[..br * ac], ar, br, ac);
                }
                let fresh = take_fresh(gw, *b);
                accum_slice(arena, gs_of(*b), fresh, &scratch.a[..br * ac]);
            }
            Op::MatmulTn(a, b) => {
                let (ar, ac) = shape_of(tape, *a);
                let (_, bc) = shape_of(tape, *b);
                {
                    let gs = arena.read(gsp);
                    let bv = value_slice_in(arena, plan, tape, store, *b);
                    matmul_nt_into(bv, gs, &mut scratch.a[..ar * ac], ar, bc, ac);
                }
                {
                    let fresh = take_fresh(gw, *a);
                    accum_slice(arena, gs_of(*a), fresh, &scratch.a[..ar * ac]);
                }
                {
                    let gs = arena.read(gsp);
                    let av = value_slice_in(arena, plan, tape, store, *a);
                    matmul_into(av, gs, &mut scratch.a[..ar * bc], ar, ac, bc);
                }
                let fresh = take_fresh(gw, *b);
                accum_slice(arena, gs_of(*b), fresh, &scratch.a[..ar * bc]);
            }
            Op::Transpose(a) => {
                let (_, ac) = shape_of(tape, *a);
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                // `g` is `ac x ar`; its transpose back to `a`'s shape.
                let ar = yc;
                let _ = ar;
                apply(out, fresh, |k| gs[(k % ac) * yc + k / ac]);
            }
            Op::SumAll(a) => {
                let g0 = arena.read(gsp)[0];
                let fresh = take_fresh(gw, *a);
                apply(arena.write(gs_of(*a)), fresh, |_| g0);
            }
            Op::MeanAll(a) => {
                let (ar, ac) = shape_of(tape, *a);
                let g0 = arena.read(gsp)[0];
                let kk = g0 / (ar * ac) as f32;
                let fresh = take_fresh(gw, *a);
                apply(arena.write(gs_of(*a)), fresh, |_| kk);
            }
            Op::SumRows(a) => {
                let (_, ac) = shape_of(tape, *a);
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| 0.0 + gs[k % ac]);
            }
            Op::SumCols(a) => {
                let (_, ac) = shape_of(tape, *a);
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| 0.0 + gs[k / ac]);
            }
            Op::MaxCols(a) => {
                let (ar, ac) = shape_of(tape, *a);
                {
                    let gs = arena.read(gsp);
                    let av = value_slice_in(arena, plan, tape, store, *a);
                    let sa = &mut scratch.a[..ar * ac];
                    sa.fill(0.0);
                    for r in 0..ar {
                        let row = &av[r * ac..(r + 1) * ac];
                        let mut best = 0;
                        for (j, &v) in row.iter().enumerate() {
                            if v > row[best] {
                                best = j;
                            }
                        }
                        sa[r * ac + best] = gs[r];
                    }
                }
                let fresh = take_fresh(gw, *a);
                accum_slice(arena, gs_of(*a), fresh, &scratch.a[..ar * ac]);
            }
            Op::LogSoftmax(a) => {
                {
                    let gs = arena.read(gsp);
                    for r in 0..yr {
                        scratch.b[r] = gs[r * yc..(r + 1) * yc].iter().sum();
                    }
                }
                let sb = &scratch.b;
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let ys = rd.read(plan.value_span[i]);
                apply(out, fresh, |k| gs[k] - ys[k].exp() * sb[k / yc]);
            }
            Op::Exp(a) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let ys = rd.read(plan.value_span[i]);
                apply(out, fresh, |k| gs[k] * ys[k]);
            }
            Op::Ln(a) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, fresh, |k| gs[k] / av[k]);
            }
            Op::Sqrt(a) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let ys = rd.read(plan.value_span[i]);
                apply(out, fresh, |k| (gs[k] / ys[k]) * 0.5);
            }
            Op::Softmax(a) => {
                {
                    let gs = arena.read(gsp);
                    let ys = arena.read(plan.value_span[i]);
                    for r in 0..yr {
                        let mut s = 0.0;
                        for j in 0..yc {
                            s += gs[r * yc + j] * ys[r * yc + j];
                        }
                        scratch.b[r] = s;
                    }
                }
                let sb = &scratch.b;
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let ys = rd.read(plan.value_span[i]);
                apply(out, fresh, |k| ys[k] * (gs[k] - sb[k / yc]));
            }
            Op::Relu(a) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, fresh, |k| if av[k] > 0.0 { gs[k] } else { 0.0 });
            }
            Op::LeakyRelu(a, alpha) => {
                let al = *alpha;
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, fresh, |k| if av[k] > 0.0 { gs[k] } else { al * gs[k] });
            }
            Op::Tanh(a) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let ys = rd.read(plan.value_span[i]);
                apply(out, fresh, |k| gs[k] * (1.0 - ys[k] * ys[k]));
            }
            Op::Sigmoid(a) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let ys = rd.read(plan.value_span[i]);
                apply(out, fresh, |k| gs[k] * ys[k] * (1.0 - ys[k]));
            }
            Op::Gelu(a) => {
                let fresh = take_fresh(gw, *a);
                let (out, rd) = arena.view_mut(gs_of(*a)).split();
                let gs = rd.read(gsp);
                let av = value_slice(rd, plan, tape, store, *a);
                apply(out, fresh, |k| gs[k] * gelu_grad_scalar(av[k]));
            }
            Op::LayerNorm { x, gamma, eps, beta } => {
                let eps = *eps;
                let (xr, xc) = shape_of(tape, *x);
                let c = xc as f32;
                {
                    let xs = value_slice_in(arena, plan, tape, store, *x);
                    row_moments_into(xs, &mut scratch.b[..2 * xr], xr, xc);
                }
                {
                    let gs = arena.read(gsp);
                    let xs = value_slice_in(arena, plan, tape, store, *x);
                    let gv = value_slice_in(arena, plan, tape, store, *gamma);
                    let sb = &scratch.b;
                    let sa = &mut scratch.a[..xr * xc];
                    let (dgamma, rest) = scratch.c.split_at_mut(xc);
                    let (dbeta, rest) = rest.split_at_mut(xc);
                    let (xhat, rest) = rest.split_at_mut(xc);
                    let dxhat = &mut rest[..xc];
                    dgamma.fill(0.0);
                    dbeta.fill(0.0);
                    for r in 0..xr {
                        let m = sb[2 * r];
                        let inv = 1.0 / (sb[2 * r + 1] + eps).sqrt();
                        let mut sum_dxhat = 0.0;
                        let mut sum_dxhat_xhat = 0.0;
                        for j in 0..xc {
                            xhat[j] = (xs[r * xc + j] - m) * inv;
                            dxhat[j] = gs[r * xc + j] * gv[j];
                            sum_dxhat += dxhat[j];
                            sum_dxhat_xhat += dxhat[j] * xhat[j];
                            dgamma[j] += gs[r * xc + j] * xhat[j];
                            dbeta[j] += gs[r * xc + j];
                        }
                        for j in 0..xc {
                            sa[r * xc + j] =
                                inv * (dxhat[j] - sum_dxhat / c - xhat[j] * sum_dxhat_xhat / c);
                        }
                    }
                }
                {
                    let fresh = take_fresh(gw, *x);
                    accum_slice(arena, gs_of(*x), fresh, &scratch.a[..xr * xc]);
                }
                {
                    let fresh = take_fresh(gw, *gamma);
                    accum_slice(arena, gs_of(*gamma), fresh, &scratch.c[..xc]);
                }
                let fresh = take_fresh(gw, *beta);
                accum_slice(arena, gs_of(*beta), fresh, &scratch.c[xc..2 * xc]);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let (_, pc) = shape_of(tape, p);
                    let fresh = take_fresh(gw, p);
                    let (out, rd) = arena.view_mut(gs_of(p)).split();
                    let gs = rd.read(gsp);
                    apply(out, fresh, |k| gs[(k / pc) * yc + off + (k % pc)]);
                    off += pc;
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for &p in parts {
                    let (pr, _) = shape_of(tape, p);
                    let fresh = take_fresh(gw, p);
                    let (out, rd) = arena.view_mut(gs_of(p)).split();
                    let gs = rd.read(gsp);
                    apply(out, fresh, |k| gs[off * yc + k]);
                    off += pr;
                }
            }
            Op::SliceCols { x, start, .. } => {
                let start = *start;
                let (xr, xc) = shape_of(tape, *x);
                {
                    let gs = arena.read(gsp);
                    let sa = &mut scratch.a[..xr * xc];
                    sa.fill(0.0);
                    for row in 0..xr {
                        sa[row * xc + start..row * xc + start + yc]
                            .copy_from_slice(&gs[row * yc..(row + 1) * yc]);
                    }
                }
                let fresh = take_fresh(gw, *x);
                accum_slice(arena, gs_of(*x), fresh, &scratch.a[..xr * xc]);
            }
            Op::SliceRows { x, start, .. } => {
                let start = *start;
                let (xr, xc) = shape_of(tape, *x);
                {
                    let gs = arena.read(gsp);
                    let sa = &mut scratch.a[..xr * xc];
                    sa.fill(0.0);
                    sa[start * xc..start * xc + yr * xc].copy_from_slice(&gs[..yr * xc]);
                }
                let fresh = take_fresh(gw, *x);
                accum_slice(arena, gs_of(*x), fresh, &scratch.a[..xr * xc]);
            }
            Op::GatherRows { table, indices } => {
                let (tr, tc) = shape_of(tape, *table);
                {
                    let gs = arena.read(gsp);
                    let sa = &mut scratch.a[..tr * tc];
                    sa.fill(0.0);
                    for (r, &idx) in indices.iter().enumerate() {
                        for j in 0..tc {
                            sa[idx * tc + j] += gs[r * tc + j];
                        }
                    }
                }
                let fresh = take_fresh(gw, *table);
                accum_slice(arena, gs_of(*table), fresh, &scratch.a[..tr * tc]);
            }
            Op::Dropout { x, mask } => {
                let ms = mask.as_slice();
                let fresh = take_fresh(gw, *x);
                let (out, rd) = arena.view_mut(gs_of(*x)).split();
                let gs = rd.read(gsp);
                apply(out, fresh, |k| gs[k] * ms[k]);
            }
            Op::CrossEntropyLogits { logits, targets } => {
                let (lr, lc) = shape_of(tape, *logits);
                let g0 = arena.read(gsp)[0];
                {
                    let lv = value_slice_in(arena, plan, tape, store, *logits);
                    scratch.a[..lr * lc].copy_from_slice(lv);
                }
                softmax_rows_inplace(&mut scratch.a[..lr * lc], lr, lc);
                let kk = g0 / targets.len() as f32;
                for (r, &t) in targets.iter().enumerate() {
                    scratch.a[r * lc + t] -= 1.0;
                }
                let sa = &scratch.a;
                let fresh = take_fresh(gw, *logits);
                apply(arena.write(gs_of(*logits)), fresh, |k| sa[k] * kk);
            }
            Op::WeightedCrossEntropyLogits { logits, targets, weights } => {
                let (lr, lc) = shape_of(tape, *logits);
                let g0 = arena.read(gsp)[0];
                {
                    let lv = value_slice_in(arena, plan, tape, store, *logits);
                    scratch.a[..lr * lc].copy_from_slice(lv);
                }
                softmax_rows_inplace(&mut scratch.a[..lr * lc], lr, lc);
                let w_sum: f32 = weights.iter().sum();
                let kk = g0 / w_sum;
                for (r, (&t, &wt)) in targets.iter().zip(weights).enumerate() {
                    scratch.a[r * lc + t] -= 1.0;
                    for v in &mut scratch.a[r * lc..(r + 1) * lc] {
                        *v *= kk * wt;
                    }
                }
                let fresh = take_fresh(gw, *logits);
                accum_slice(arena, gs_of(*logits), fresh, &scratch.a[..lr * lc]);
            }
            Op::BceWithLogits { logits, targets } => {
                let g0 = arena.read(gsp)[0];
                let kk = g0 / targets.len() as f32;
                let tg = targets.as_slice();
                let fresh = take_fresh(gw, *logits);
                let (out, rd) = arena.view_mut(gs_of(*logits)).split();
                let lv = value_slice(rd, plan, tape, store, *logits);
                apply(out, fresh, |k| {
                    let z = lv[k];
                    let s = 1.0 / (1.0 + (-z).exp());
                    (s - tg[k]) * kk
                });
            }
            Op::MseLoss { pred, target } => {
                let g0 = arena.read(gsp)[0];
                let tv = target.as_slice();
                let kk = 2.0 * g0 / tv.len() as f32;
                let fresh = take_fresh(gw, *pred);
                let (out, rd) = arena.view_mut(gs_of(*pred)).split();
                let pv = value_slice(rd, plan, tape, store, *pred);
                apply(out, fresh, |k| (pv[k] - tv[k]) * kk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamId;
    use hiergat_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_store(seed: u64) -> ParamStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        ps.add("emb", Tensor::rand_normal(5, 4, 0.0, 0.5, &mut rng));
        ps.add("w1", Tensor::rand_normal(4, 8, 0.0, 0.5, &mut rng));
        ps.add("b1", Tensor::rand_normal(1, 8, 0.0, 0.1, &mut rng));
        ps.add("gamma", Tensor::ones(1, 8));
        ps.add("beta", Tensor::zeros(1, 8));
        ps.add("w2", Tensor::rand_normal(10, 3, 0.0, 0.5, &mut rng));
        ps
    }

    fn pid(ps: &ParamStore, name: &str) -> ParamId {
        ps.id_of(name).expect("test parameter registered")
    }

    /// A graph exercising attention-style ops: gather, matmul, broadcast,
    /// layer-norm, dropout, softmax attention, concat/slice, cross-entropy.
    fn record_attention_graph(t: &mut Tape, ps: &ParamStore, rng: &mut StdRng) -> Var {
        let emb = t.param(ps, pid(ps, "emb"));
        let x = t.gather_rows(emb, &[0, 2, 1, 4, 3, 2]);
        let w1 = t.param(ps, pid(ps, "w1"));
        let h = t.matmul(x, w1);
        let b1 = t.param(ps, pid(ps, "b1"));
        let h = t.add_row(h, b1);
        let gamma = t.param(ps, pid(ps, "gamma"));
        let beta = t.param(ps, pid(ps, "beta"));
        let h = t.layer_norm(h, gamma, beta, 1e-5);
        let h = t.leaky_relu(h, 0.2);
        let h = t.dropout(h, 0.25, true, rng);
        let att = t.matmul_nt(h, h);
        let att = t.softmax(att);
        let ctx = t.matmul(att, h);
        let cat = t.concat_cols(&[h, ctx]);
        let s = t.slice_cols(cat, 4, 10);
        let w2 = t.param(ps, pid(ps, "w2"));
        let logits = t.matmul(s, w2);
        t.cross_entropy_logits(logits, &[0, 1, 2, 0, 1, 2])
    }

    /// A graph covering the remaining op arms: scalar reductions, pointwise
    /// nonlinearities, transpose/slice_rows/concat_rows, max/mul_col, and
    /// the other three losses.
    fn record_mixed_graph(t: &mut Tape, _ps: &ParamStore, w: Tensor, a: Tensor) -> Var {
        let a = t.input(a);
        let w = t.input(w);
        let h = t.matmul(a, w); // 3x4
        let s1 = t.sigmoid(h);
        let e0 = t.scale(h, 0.1);
        let e = t.exp(e0);
        let l0 = t.add_scalar(e, 1.0);
        let _l = t.ln(l0);
        let hh = t.mul(h, h);
        let q0 = t.add_scalar(hh, 1e-3);
        let q = t.sqrt(q0);
        let d = t.div(s1, q); // 3x4
        let mx = t.max_cols(d); // 3x1
        let mc = t.mul_col(d, mx); // 3x4
        let sr = t.slice_rows(mc, 1, 2); // 2x4
        let tr = t.transpose(sr); // 4x2
        let g = t.gelu(tr);
        let th = t.tanh(g); // 4x2
        let cr = t.concat_rows(&[th, th]); // 8x2
        let sc = t.sum_cols(cr); // 8x1
        let rl = t.relu(cr);
        let sm = t.sum_rows(rl); // 1x2
        let lsm = t.log_softmax(sm);
        let neg = t.sub(sm, lsm);
        let ac0 = t.add_col(cr, sc);
        let m1 = t.mean_all(ac0);
        let s2 = t.sum_all(neg);
        let wce_logits = t.matmul_nt(d, d); // 3x3
        let wce = t.weighted_cross_entropy_logits(wce_logits, &[0, 2, 1], &[1.0, 2.0, 0.5]);
        let bce = t.bce_with_logits(sc, &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let mse = t.mse_loss(th, &Tensor::full(4, 2, 0.25));
        let t1 = t.add(m1, s2);
        let t2 = t.add(wce, bce);
        let t3 = t.add(t1, t2);
        t.add(t3, mse)
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {k}: {x} vs {y}");
        }
    }

    fn assert_stores_grad_bits_eq(heap: &ParamStore, arena: &ParamStore) {
        for (id, name, _) in heap.iter() {
            assert_bits_eq(
                heap.grad(id).as_slice(),
                arena.grad(id).as_slice(),
                &format!("grad of {name}"),
            );
        }
    }

    #[test]
    fn heap_vs_arena_attention_graph_bitwise() {
        let mut ps_heap = build_store(11);
        let mut ps_arena = build_store(11);
        let mut exec = ArenaExecutor::new();
        let mut rng_heap = StdRng::seed_from_u64(99);
        let mut rng_arena = StdRng::seed_from_u64(99);
        for step in 0..3 {
            let mut th = Tape::new();
            let loss_h = record_attention_graph(&mut th, &ps_heap, &mut rng_heap);
            let heap_loss = th.value(loss_h).item();
            th.backward(loss_h, &mut ps_heap);

            let mut ta = Tape::deferred();
            let loss_a = record_attention_graph(&mut ta, &ps_arena, &mut rng_arena);
            let arena_loss = exec.step(&ta, loss_a, &mut ps_arena);

            assert_eq!(
                heap_loss.to_bits(),
                arena_loss.to_bits(),
                "step {step}: loss {heap_loss} vs {arena_loss}"
            );
            assert_stores_grad_bits_eq(&ps_heap, &ps_arena);
        }
        assert_eq!(exec.plans_cached(), 1, "same-shape steps reuse one plan");
    }

    #[test]
    fn heap_vs_arena_mixed_ops_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Tensor::rand_normal(5, 4, 0.0, 0.6, &mut rng);
        let a = Tensor::rand_normal(3, 5, 0.0, 0.6, &mut rng);
        let mut ps_heap = ParamStore::new();
        let mut ps_arena = ParamStore::new();
        let mut th = Tape::new();
        let loss_h = record_mixed_graph(&mut th, &ps_heap, w.clone(), a.clone());
        let heap_loss = th.value(loss_h).item();
        th.backward(loss_h, &mut ps_heap);

        let mut exec = ArenaExecutor::new();
        let mut ta = Tape::deferred();
        let loss_a = record_mixed_graph(&mut ta, &ps_arena, w, a);
        let arena_loss = exec.step(&ta, loss_a, &mut ps_arena);
        assert_eq!(heap_loss.to_bits(), arena_loss.to_bits(), "{heap_loss} vs {arena_loss}");
    }

    #[test]
    fn forward_only_matches_eager_value() {
        let ps = build_store(3);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut th = Tape::new();
        let loss_h = record_attention_graph(&mut th, &ps, &mut rng_a);
        let mut ta = Tape::deferred();
        let loss_a = record_attention_graph(&mut ta, &ps, &mut rng_b);
        let mut exec = ArenaExecutor::new();
        let fwd = exec.forward(&ta, loss_a, &ps);
        assert_eq!(th.value(loss_h).item().to_bits(), fwd.to_bits());
    }

    #[test]
    fn overlapping_intervals_get_disjoint_spans() {
        let ps = build_store(17);
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Tape::deferred();
        let loss = record_attention_graph(&mut t, &ps, &mut rng);
        let plan = ExecutionPlan::build(&t, loss);
        let slots = plan.slots();
        for (x, sa) in slots.iter().enumerate() {
            for sb in &slots[x + 1..] {
                let time_overlap = sa.start_time <= sb.end_time && sb.start_time <= sa.end_time;
                if time_overlap {
                    assert!(
                        !sa.span.overlaps(sb.span),
                        "live-interval overlap shares storage: {sa:?} vs {sb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn report_is_bounded_and_smaller_than_naive() {
        let ps = build_store(23);
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = Tape::deferred();
        let loss = record_attention_graph(&mut t, &ps, &mut rng);
        let plan = ExecutionPlan::build(&t, loss);
        let r = plan.report();
        assert!(r.lower_bound_bytes > 0);
        assert!(r.arena_bytes >= r.lower_bound_bytes, "{r}");
        assert!(r.arena_bytes < r.naive_bytes, "liveness reuse must beat no-reuse: {r}");
        assert_eq!(r.exceeds_lower_bound, r.arena_bytes > r.lower_bound_bytes);
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn plan_cache_keyed_by_shape_signature() {
        let ps = build_store(29);
        let mut exec = ArenaExecutor::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut t1 = Tape::deferred();
        let l1 = record_attention_graph(&mut t1, &ps, &mut rng);
        exec.plan_report(&t1, l1);
        let mut t2 = Tape::deferred();
        let l2 = record_attention_graph(&mut t2, &ps, &mut rng);
        exec.plan_report(&t2, l2);
        assert_eq!(exec.plans_cached(), 1, "identical shapes share a plan");
        // A different gather width changes shapes throughout: new plan.
        let mut t3 = Tape::deferred();
        let emb = t3.param(&ps, pid(&ps, "emb"));
        let x = t3.gather_rows(emb, &[0, 1]);
        let s = t3.sum_all(x);
        exec.plan_report(&t3, s);
        assert_eq!(exec.plans_cached(), 2);
    }

    #[test]
    #[should_panic(expected = "shape-only tapes clamp shapes")]
    fn planning_a_shape_only_tape_panics() {
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::zeros(2, 2));
        let s = t.sum_all(a);
        ExecutionPlan::build(&t, s);
    }

    /// The attention graph in eval mode (dropout elided), ending at the
    /// softmax probabilities instead of a loss — an inference output.
    fn record_attention_eval_graph(t: &mut Tape, ps: &ParamStore) -> Var {
        let mut rng = StdRng::seed_from_u64(0); // never consumed: eval mode
        let emb = t.param(ps, pid(ps, "emb"));
        let x = t.gather_rows(emb, &[0, 2, 1, 4, 3, 2]);
        let w1 = t.param(ps, pid(ps, "w1"));
        let h = t.matmul(x, w1);
        let b1 = t.param(ps, pid(ps, "b1"));
        let h = t.add_row(h, b1);
        let gamma = t.param(ps, pid(ps, "gamma"));
        let beta = t.param(ps, pid(ps, "beta"));
        let h = t.layer_norm(h, gamma, beta, 1e-5);
        let h = t.leaky_relu(h, 0.2);
        let h = t.dropout(h, 0.25, false, &mut rng);
        let att = t.matmul_nt(h, h);
        let att = t.softmax(att);
        let ctx = t.matmul(att, h);
        let cat = t.concat_cols(&[h, ctx]);
        let s = t.slice_cols(cat, 4, 10);
        let w2 = t.param(ps, pid(ps, "w2"));
        let logits = t.matmul(s, w2);
        t.softmax(logits)
    }

    #[test]
    fn inference_matches_eager_eval_bitwise() {
        let ps = build_store(31);
        let mut th = Tape::new();
        let probs_h = record_attention_eval_graph(&mut th, &ps);

        let mut exec = ArenaExecutor::new();
        for round in 0..2 {
            let mut ti = Tape::inference();
            let probs_i = record_attention_eval_graph(&mut ti, &ps);
            let out = exec.infer(&ti, probs_i, &ps);
            assert_bits_eq(
                th.value(probs_h).as_slice(),
                out.as_slice(),
                &format!("round {round} inference probs"),
            );
        }
        assert_eq!(exec.plans_cached(), 1, "same-shape inference reuses one plan");
    }

    #[test]
    fn inference_plan_needs_less_arena_than_training_plan() {
        let ps = build_store(37);
        let mut rng = StdRng::seed_from_u64(9);
        let mut tt = Tape::deferred();
        let loss = record_attention_graph(&mut tt, &ps, &mut rng);
        let training = ExecutionPlan::build(&tt, loss).report().clone();

        let mut ti = Tape::inference();
        let probs = record_attention_eval_graph(&mut ti, &ps);
        let plan = ExecutionPlan::build_inference(&ti, probs);
        assert!(plan.is_inference());
        let inference = plan.report().clone();
        assert!(
            inference.arena_bytes < training.arena_bytes,
            "forward-only liveness must shrink the arena: inference {inference} vs training {training}"
        );
        // No gradient slots on an inference plan.
        assert!(plan.slots().iter().all(|s| !s.grad));
    }

    #[test]
    fn inference_slots_respect_aliasing_invariant() {
        let ps = build_store(41);
        let mut t = Tape::inference();
        let probs = record_attention_eval_graph(&mut t, &ps);
        let plan = ExecutionPlan::build_inference(&t, probs);
        let slots = plan.slots();
        for (x, sa) in slots.iter().enumerate() {
            for sb in &slots[x + 1..] {
                let time_overlap = sa.start_time <= sb.end_time && sb.start_time <= sa.end_time;
                if time_overlap {
                    assert!(
                        !sa.span.overlaps(sb.span),
                        "live-interval overlap shares storage: {sa:?} vs {sb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn training_and_inference_plans_cached_separately() {
        let ps = build_store(43);
        let mut exec = ArenaExecutor::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut t = Tape::deferred();
        let loss = record_attention_graph(&mut t, &ps, &mut rng);
        let training = exec.plan_report(&t, loss);
        // Same tape, same root: the forward-only plan is a distinct cache
        // entry with a strictly smaller footprint.
        let inference = exec.infer_report(&t, loss);
        assert_eq!(exec.plans_cached(), 2, "mode tag must split the cache");
        assert!(inference.arena_bytes < training.arena_bytes);
    }
}
