//! Named trainable parameters and their gradients.

use hiergat_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Registration index of this parameter in its store.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Frozen parameters are skipped by optimizers (used for fixed word
    /// embeddings in the DeepMatcher baseline, mirroring FastText).
    frozen: bool,
}

/// Container for every trainable tensor of a model.
///
/// A `ParamStore` outlives the per-step [`crate::Tape`]s: each forward pass
/// reads parameter values from the store, and `Tape::backward` accumulates
/// gradients back into it. Optimizers then update the values in place.
#[derive(Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<ParamEntry>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new named parameter.
    ///
    /// # Panics
    /// Panics if `name` is already registered — layer constructors must use
    /// unique prefixes.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "ParamStore: duplicate parameter name {name:?}");
        let id = self.params.len();
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.by_name.insert(name.clone(), id);
        self.params.push(ParamEntry { name, value, grad, frozen: false });
        ParamId(id)
    }

    /// Marks a parameter as frozen (ignored by optimizers).
    pub fn freeze(&mut self, id: ParamId) {
        self.params[id.0].frozen = true;
    }

    /// Whether a parameter is frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.params[id.0].frozen
    }

    /// Freezes every parameter whose name starts with `prefix`; returns the
    /// number frozen. Used to mark config-disabled submodules as
    /// intentionally gradient-dead (the static analyzer skips frozen
    /// parameters in its dead-gradient report).
    pub fn freeze_prefix(&mut self, prefix: &str) -> usize {
        let mut n = 0;
        for p in &mut self.params {
            if p.name.starts_with(prefix) {
                p.frozen = true;
                n += 1;
            }
        }
        n
    }

    /// Looks a parameter up by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied().map(ParamId)
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (used by optimizers and manual initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Adds `delta` into the gradient of `id` (called by `Tape::backward`).
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.params[id.0].grad.add_assign(delta);
    }

    /// Adds a raw `f32` buffer into the gradient of `id` (the arena
    /// executor's allocation-free equivalent of [`Self::accumulate_grad`]).
    pub fn accumulate_grad_slice(&mut self, id: ParamId, delta: &[f32]) {
        let grad = self.params[id.0].grad.as_mut_slice();
        assert_eq!(grad.len(), delta.len(), "accumulate_grad_slice: length mismatch");
        for (g, d) in grad.iter_mut().zip(delta) {
            *g += d;
        }
    }

    /// Mutable value and the matching gradient, borrowed together so an
    /// optimizer can update in place without cloning the gradient.
    pub fn value_and_grad_mut(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        let p = &mut self.params[id.0];
        (&mut p.value, &p.grad)
    }

    /// Zeroes every gradient in place (no reallocation). Call between
    /// optimizer steps.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.as_mut_slice().fill(0.0);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Rescales all gradients so the global norm is at most `max_norm`.
    ///
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            for p in &mut self.params {
                for v in p.grad.as_mut_slice() {
                    *v *= k;
                }
            }
        }
        norm
    }

    /// Number of registered parameter tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Iterates over `(ParamId, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p.name.as_str(), &p.value))
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Snapshot of all parameter values (for best-epoch selection).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restores values from a [`Self::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's parameter count or
    /// shapes.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.params.len(), "restore: parameter count mismatch");
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), s.shape(), "restore: shape mismatch for {}", p.name);
            p.value = s.clone();
        }
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_name = self.params.iter().enumerate().map(|(i, p)| (p.name.clone(), i)).collect();
    }

    /// Copies values from `other` for every parameter with a matching name
    /// and shape. Returns the number of tensors copied. Used to load
    /// pre-trained LM weights into a fine-tuning model.
    pub fn load_matching(&mut self, other: &ParamStore) -> usize {
        let mut copied = 0;
        for i in 0..self.params.len() {
            let name = self.params[i].name.clone();
            if let Some(src) = other.id_of(&name) {
                let src_val = other.value(src);
                if src_val.shape() == self.params[i].value.shape() {
                    self.params[i].value = src_val.clone();
                    copied += 1;
                }
            }
        }
        copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::ones(2, 3));
        assert_eq!(ps.id_of("w"), Some(id));
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.value(id).shape(), (2, 3));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_scalars(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut ps = ParamStore::new();
        ps.add("w", Tensor::ones(1, 1));
        ps.add("w", Tensor::ones(1, 1));
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::zeros(1, 2));
        ps.accumulate_grad(id, &Tensor::row_vector(&[1.0, 2.0]));
        ps.accumulate_grad(id, &Tensor::row_vector(&[1.0, 2.0]));
        assert_eq!(ps.grad(id).as_slice(), &[2.0, 4.0]);
        ps.zero_grad();
        assert_eq!(ps.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::zeros(1, 2));
        ps.accumulate_grad(id, &Tensor::row_vector(&[3.0, 4.0])); // norm 5
        let pre = ps.clip_grad_norm(2.5);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((ps.grad_norm() - 2.5).abs() < 1e-5);
        // Below the threshold: untouched.
        let pre2 = ps.clip_grad_norm(10.0);
        assert!((pre2 - 2.5).abs() < 1e-5);
        assert!((ps.grad_norm() - 2.5).abs() < 1e-5);
    }

    #[test]
    fn load_matching_copies_by_name_and_shape() {
        let mut a = ParamStore::new();
        a.add("x", Tensor::zeros(2, 2));
        a.add("y", Tensor::zeros(1, 3));
        let mut b = ParamStore::new();
        b.add("x", Tensor::ones(2, 2));
        b.add("y", Tensor::ones(9, 9)); // wrong shape, skipped
        assert_eq!(a.load_matching(&b), 1);
        assert_eq!(a.value(a.id_of("x").expect("merged store keeps x")).as_slice(), &[1.0; 4]);
        assert_eq!(a.value(a.id_of("y").expect("merged store keeps y")).as_slice(), &[0.0; 3]);
    }

    #[test]
    fn freeze_flag() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::zeros(1, 1));
        assert!(!ps.is_frozen(id));
        ps.freeze(id);
        assert!(ps.is_frozen(id));
    }
}
