//! Static analysis over the autograd tape.
//!
//! Three passes, none of which execute kernels:
//!
//! 1. **Symbolic shape inference** — a tape recorded in
//!    [`Tape::shape_only`](crate::Tape::shape_only) mode derives every
//!    node's shape from pure per-op rules instead of running the kernels.
//!    Shape constraint failures are collected as [`ShapeViolation`]s (op
//!    index, op name, offending shapes) rather than panicking mid-forward,
//!    so one pre-flight pass reports *all* wiring mistakes at once.
//! 2. **Dead-gradient / reachability analysis** — [`analyze_graph`] walks
//!    the recorded graph backwards from the loss node and reports
//!    parameters that are registered in the [`ParamStore`] but can never
//!    receive a gradient, plus nodes that were computed but do not
//!    contribute to the loss.
//! 3. **NaN/Inf sentinel** — [`finite_audit`] scans every recorded forward
//!    value and names the first op that produced a non-finite tensor; the
//!    tape's own `debug_assertions`-gated checks (in `push` and in
//!    `backward`) use the same op naming for forward values and backward
//!    adjoints.
//! 4. **Cost model** — [`cost_analysis`] estimates per-op forward FLOPs and
//!    liveness-based peak value memory using the same formulas
//!    (`hiergat_tensor::cost`) the kernels consult to pick serial-vs-pool
//!    execution, so the report states which ops will actually go parallel
//!    at the configured thread count.

use crate::params::ParamStore;
use crate::tape::{Op, Tape, Var};
use hiergat_tensor::cost as kcost;
use std::fmt;

/// A shape-constraint failure discovered during shape-only recording.
#[derive(Debug, Clone)]
pub struct ShapeViolation {
    /// Index of the offending op on the tape.
    pub op_index: usize,
    /// The op's name (e.g. `"matmul"`).
    pub op_name: &'static str,
    /// Human-readable description including the offending shapes.
    pub message: String,
}

impl fmt::Display for ShapeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op #{} ({}): {}", self.op_index, self.op_name, self.message)
    }
}

/// A parameter that can never receive a gradient from the analyzed loss.
#[derive(Debug, Clone)]
pub struct DeadParam {
    /// The parameter's registered name.
    pub name: String,
    /// Whether the parameter is frozen (expected to be gradient-dead).
    pub frozen: bool,
    /// Whether the parameter was read onto the tape at all.
    pub on_tape: bool,
}

/// A non-leaf node that was computed but does not contribute to the loss.
#[derive(Debug, Clone)]
pub struct UnusedNode {
    /// Index of the node on the tape.
    pub op_index: usize,
    /// The op's name.
    pub op_name: &'static str,
}

/// A tensor with non-finite entries found by [`finite_audit`].
#[derive(Debug, Clone)]
pub struct SentinelHit {
    /// Index of the node holding the non-finite value.
    pub op_index: usize,
    /// The op's name.
    pub op_name: &'static str,
    /// Number of NaN entries.
    pub nan: usize,
    /// Number of +/- infinity entries.
    pub inf: usize,
}

impl fmt::Display for SentinelHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op #{} ({}): {} NaN, {} Inf entries",
            self.op_index, self.op_name, self.nan, self.inf
        )
    }
}

/// Estimated cost of one recorded op (forward pass only).
#[derive(Debug, Clone)]
pub struct OpCost {
    /// Index of the node on the tape.
    pub op_index: usize,
    /// The op's name.
    pub op_name: &'static str,
    /// Estimated forward FLOPs (see `hiergat_tensor::cost` conventions).
    pub flops: u64,
    /// Bytes of the op's output value (`f32` elements).
    pub out_bytes: u64,
    /// `true` when the op's kernel will take the thread-pool path at the
    /// split width the report was computed for (same `plan_pieces` decision
    /// the kernel itself makes).
    pub parallel: bool,
}

/// Per-graph cost budget: FLOP totals and liveness-based peak memory.
#[derive(Debug, Default)]
pub struct CostReport {
    /// One entry per tape node, in recording order.
    pub per_op: Vec<OpCost>,
    /// Sum of all per-op FLOP estimates.
    pub total_flops: u64,
    /// FLOPs in ops whose kernels run on the pool (at `split`).
    pub parallel_flops: u64,
    /// Peak of the total live node-value bytes, assuming each value is
    /// freed right after its last consumer runs (parameters and gradients
    /// are owned elsewhere and not counted).
    pub peak_bytes: u64,
    /// Split width the serial-vs-parallel decisions were evaluated at.
    pub split: usize,
}

impl CostReport {
    /// The `n` costliest ops, descending by FLOPs (ties: earlier op first).
    pub fn top_ops(&self, n: usize) -> Vec<&OpCost> {
        let mut ranked: Vec<&OpCost> = self.per_op.iter().filter(|o| o.flops > 0).collect();
        ranked.sort_by(|x, y| y.flops.cmp(&x.flops).then(x.op_index.cmp(&y.op_index)));
        ranked.truncate(n);
        ranked
    }
}

/// Formats a FLOP count with a metric prefix (e.g. `33.55 MFLOP`).
pub fn fmt_flops(n: u64) -> String {
    let f = n as f64;
    if f >= 1e9 {
        format!("{:.2} GFLOP", f / 1e9)
    } else if f >= 1e6 {
        format!("{:.2} MFLOP", f / 1e6)
    } else if f >= 1e3 {
        format!("{:.2} kFLOP", f / 1e3)
    } else {
        format!("{n} FLOP")
    }
}

/// Formats a byte count with a binary prefix (e.g. `1.4 MiB`).
pub fn fmt_bytes(n: u64) -> String {
    let f = n as f64;
    if f >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", f / (1024.0 * 1024.0 * 1024.0))
    } else if f >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", f / (1024.0 * 1024.0))
    } else if f >= 1024.0 {
        format!("{:.2} KiB", f / 1024.0)
    } else {
        format!("{n} B")
    }
}

/// The combined result of the analysis passes over one recorded graph.
#[derive(Debug, Default)]
pub struct GraphReport {
    /// Total recorded nodes.
    pub node_count: usize,
    /// Total registered parameters.
    pub param_count: usize,
    /// Shape-inference violations (only populated for shape-only tapes).
    pub shape_violations: Vec<ShapeViolation>,
    /// Registered parameters unreachable from the loss.
    pub dead_params: Vec<DeadParam>,
    /// Computed nodes that do not feed the loss.
    pub unused_nodes: Vec<UnusedNode>,
    /// Non-finite values found on the tape (empty for shape-only tapes,
    /// whose placeholders are all zeros).
    pub sentinel_hits: Vec<SentinelHit>,
    /// Structural problems in the model's *input* graph (e.g. HHG builder
    /// invariant violations), filled in by callers that own such a graph.
    pub graph_issues: Vec<String>,
    /// Per-op FLOP / peak-memory budget (see [`cost_analysis`]).
    pub cost: CostReport,
}

impl GraphReport {
    /// `true` when every pass came back empty (ignoring frozen dead params,
    /// which are expected to be gradient-dead).
    pub fn is_clean(&self) -> bool {
        self.shape_violations.is_empty()
            && self.dead_params.iter().all(|d| d.frozen)
            && self.unused_nodes.is_empty()
            && self.sentinel_hits.is_empty()
            && self.graph_issues.is_empty()
    }
}

impl fmt::Display for GraphReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph analysis: {} nodes, {} params", self.node_count, self.param_count)?;
        if self.shape_violations.is_empty() {
            writeln!(f, "  shapes: OK")?;
        } else {
            writeln!(f, "  shapes: {} violation(s)", self.shape_violations.len())?;
            for v in &self.shape_violations {
                writeln!(f, "    {v}")?;
            }
        }
        let live_dead: Vec<&DeadParam> = self.dead_params.iter().filter(|d| !d.frozen).collect();
        let frozen_dead = self.dead_params.len() - live_dead.len();
        if live_dead.is_empty() {
            writeln!(f, "  reachability: all trainable params receive gradients")?;
        } else {
            writeln!(f, "  reachability: {} dead param(s)", live_dead.len())?;
            for d in &live_dead {
                let how = if d.on_tape {
                    "on tape but not connected to the loss"
                } else {
                    "never read onto the tape"
                };
                writeln!(f, "    {} ({how})", d.name)?;
            }
        }
        if frozen_dead > 0 {
            writeln!(f, "  ({frozen_dead} frozen param(s) without gradients, as expected)")?;
        }
        if self.unused_nodes.is_empty() {
            writeln!(f, "  liveness: every computed node feeds the loss")?;
        } else {
            writeln!(f, "  liveness: {} unused node(s)", self.unused_nodes.len())?;
            for (i, n) in self.unused_nodes.iter().enumerate() {
                if i >= 8 {
                    writeln!(f, "    ... and {} more", self.unused_nodes.len() - i)?;
                    break;
                }
                writeln!(f, "    op #{} ({})", n.op_index, n.op_name)?;
            }
        }
        if !self.sentinel_hits.is_empty() {
            writeln!(f, "  sentinel: {} non-finite tensor(s)", self.sentinel_hits.len())?;
            for h in &self.sentinel_hits {
                writeln!(f, "    {h}")?;
            }
        }
        if !self.graph_issues.is_empty() {
            writeln!(f, "  input graph: {} issue(s)", self.graph_issues.len())?;
            for g in &self.graph_issues {
                writeln!(f, "    {g}")?;
            }
        }
        let cost = &self.cost;
        if !cost.per_op.is_empty() {
            let pct = if cost.total_flops > 0 {
                100.0 * cost.parallel_flops as f64 / cost.total_flops as f64
            } else {
                0.0
            };
            writeln!(
                f,
                "  cost: {} forward ({pct:.0}% on the pool at {} thread(s)), peak live {}",
                fmt_flops(cost.total_flops),
                cost.split,
                fmt_bytes(cost.peak_bytes)
            )?;
            for o in cost.top_ops(3) {
                writeln!(
                    f,
                    "    op #{} ({}): {}{}",
                    o.op_index,
                    o.op_name,
                    fmt_flops(o.flops),
                    if o.parallel { ", parallel" } else { "" }
                )?;
            }
        }
        Ok(())
    }
}

/// Pure shape rule for one op given the shapes already on the tape.
///
/// Returns the output shape plus an optional constraint-violation message.
/// On violation the returned shape is a best-effort fallback so recording
/// can continue and later ops are still checked.
pub(crate) fn infer_shape(tape: &Tape, op: &Op) -> ((usize, usize), Option<String>) {
    let s = |v: Var| tape.value(v).shape();
    let same = |a: Var, b: Var, what: &str| {
        let (sa, sb) = (s(a), s(b));
        if sa == sb {
            (sa, None)
        } else {
            (sa, Some(format!("{what} requires equal shapes, got {sa:?} vs {sb:?}")))
        }
    };
    match op {
        // Leaves carry their own tensors and never route through inference.
        Op::Input | Op::Param(_) => ((0, 0), Some("leaf ops carry explicit values".into())),
        Op::Add(a, b) => same(*a, *b, "add"),
        Op::Sub(a, b) => same(*a, *b, "sub"),
        Op::Mul(a, b) => same(*a, *b, "mul"),
        Op::Div(a, b) => same(*a, *b, "div"),
        Op::Scale(a, _) | Op::AddScalar(a, _) => (s(*a), None),
        Op::AddRow(a, row) => {
            let (sa, sr) = (s(*a), s(*row));
            if sr == (1, sa.1) {
                (sa, None)
            } else {
                (
                    sa,
                    Some(format!(
                        "add_row requires a (1, {}) row for lhs {sa:?}, got {sr:?}",
                        sa.1
                    )),
                )
            }
        }
        Op::AddCol(a, col) | Op::MulCol(a, col) => {
            let (sa, sc) = (s(*a), s(*col));
            if sc == (sa.0, 1) {
                (sa, None)
            } else {
                (sa, Some(format!("requires a ({}, 1) column for lhs {sa:?}, got {sc:?}", sa.0)))
            }
        }
        Op::Matmul(a, b) => {
            let (sa, sb) = (s(*a), s(*b));
            let out = (sa.0, sb.1);
            if sa.1 == sb.0 {
                (out, None)
            } else {
                (out, Some(format!("inner dimensions differ: {sa:?} x {sb:?}")))
            }
        }
        Op::MatmulNt(a, b) => {
            let (sa, sb) = (s(*a), s(*b));
            let out = (sa.0, sb.0);
            if sa.1 == sb.1 {
                (out, None)
            } else {
                (out, Some(format!("trailing dimensions differ: {sa:?} x {sb:?}^T")))
            }
        }
        Op::MatmulTn(a, b) => {
            let (sa, sb) = (s(*a), s(*b));
            let out = (sa.1, sb.1);
            if sa.0 == sb.0 {
                (out, None)
            } else {
                (out, Some(format!("leading dimensions differ: {sa:?}^T x {sb:?}")))
            }
        }
        Op::Transpose(a) => {
            let (r, c) = s(*a);
            ((c, r), None)
        }
        Op::SumAll(_) | Op::MeanAll(_) => ((1, 1), None),
        Op::SumRows(a) => ((1, s(*a).1), None),
        Op::SumCols(a) => ((s(*a).0, 1), None),
        Op::MaxCols(a) => {
            let sa = s(*a);
            if sa.1 == 0 {
                ((sa.0, 1), Some("max_cols of a zero-column tensor".into()))
            } else {
                ((sa.0, 1), None)
            }
        }
        Op::Softmax(a)
        | Op::LogSoftmax(a)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Sqrt(a)
        | Op::Relu(a)
        | Op::LeakyRelu(a, _)
        | Op::Tanh(a)
        | Op::Sigmoid(a)
        | Op::Gelu(a) => (s(*a), None),
        Op::LayerNorm { x, gamma, beta, .. } => {
            let (sx, sg, sb) = (s(*x), s(*gamma), s(*beta));
            let want = (1, sx.1);
            if sg != want {
                (sx, Some(format!("gamma must be {want:?} for input {sx:?}, got {sg:?}")))
            } else if sb != want {
                (sx, Some(format!("beta must be {want:?} for input {sx:?}, got {sb:?}")))
            } else {
                (sx, None)
            }
        }
        Op::ConcatCols(parts) => {
            let shapes: Vec<(usize, usize)> = parts.iter().map(|&p| s(p)).collect();
            let rows = shapes.first().map_or(0, |sh| sh.0);
            let cols = shapes.iter().map(|sh| sh.1).sum();
            if shapes.iter().any(|sh| sh.0 != rows) {
                ((rows, cols), Some(format!("row counts differ across parts: {shapes:?}")))
            } else {
                ((rows, cols), None)
            }
        }
        Op::ConcatRows(parts) => {
            let shapes: Vec<(usize, usize)> = parts.iter().map(|&p| s(p)).collect();
            let cols = shapes.first().map_or(0, |sh| sh.1);
            let rows = shapes.iter().map(|sh| sh.0).sum();
            if shapes.iter().any(|sh| sh.1 != cols) {
                ((rows, cols), Some(format!("column counts differ across parts: {shapes:?}")))
            } else {
                ((rows, cols), None)
            }
        }
        Op::SliceCols { x, start, len } => {
            let sx = s(*x);
            let out = (sx.0, *len);
            if start + len <= sx.1 {
                (out, None)
            } else {
                (out, Some(format!("columns [{start}, {}) out of range for {sx:?}", start + len)))
            }
        }
        Op::SliceRows { x, start, len } => {
            let sx = s(*x);
            let out = (*len, sx.1);
            if start + len <= sx.0 {
                (out, None)
            } else {
                (out, Some(format!("rows [{start}, {}) out of range for {sx:?}", start + len)))
            }
        }
        Op::GatherRows { table, indices } => {
            let st = s(*table);
            let out = (indices.len(), st.1);
            match indices.iter().find(|&&i| i >= st.0) {
                Some(&bad) => (out, Some(format!("index {bad} out of range for table {st:?}"))),
                None => (out, None),
            }
        }
        Op::Dropout { x, .. } => (s(*x), None),
        Op::CrossEntropyLogits { logits, targets } => {
            let sl = s(*logits);
            if targets.len() != sl.0 {
                ((1, 1), Some(format!("{} targets for {} logit rows", targets.len(), sl.0)))
            } else if let Some(&bad) = targets.iter().find(|&&t| t >= sl.1) {
                ((1, 1), Some(format!("class {bad} out of range for {} columns", sl.1)))
            } else {
                ((1, 1), None)
            }
        }
        Op::WeightedCrossEntropyLogits { logits, targets, weights } => {
            let sl = s(*logits);
            if targets.len() != sl.0 {
                ((1, 1), Some(format!("{} targets for {} logit rows", targets.len(), sl.0)))
            } else if weights.len() != targets.len() {
                ((1, 1), Some(format!("{} weights for {} targets", weights.len(), targets.len())))
            } else if weights.iter().sum::<f32>() <= 0.0 {
                ((1, 1), Some("weights must have a positive sum".into()))
            } else if let Some(&bad) = targets.iter().find(|&&t| t >= sl.1) {
                ((1, 1), Some(format!("class {bad} out of range for {} columns", sl.1)))
            } else {
                ((1, 1), None)
            }
        }
        Op::BceWithLogits { logits, targets } => {
            let sl = s(*logits);
            if sl.1 != 1 {
                ((1, 1), Some(format!("logits must be a column vector, got {sl:?}")))
            } else if targets.len() != sl.0 {
                ((1, 1), Some(format!("{} targets for {} logit rows", targets.len(), sl.0)))
            } else {
                ((1, 1), None)
            }
        }
        Op::MseLoss { pred, target } => {
            let sp = s(*pred);
            if sp == target.shape() {
                ((1, 1), None)
            } else {
                ((1, 1), Some(format!("prediction {sp:?} vs target {:?}", target.shape())))
            }
        }
    }
}

/// Runs reachability and liveness analysis from `loss` and combines it with
/// the tape's recorded shape violations and the finite-value sentinel into
/// one [`GraphReport`].
pub fn analyze_graph(tape: &Tape, loss: Var, ps: &ParamStore) -> GraphReport {
    let n = tape.len();
    // Ancestors of the loss: every node whose value influences it.
    let mut reachable = vec![false; n];
    if loss.index() < n {
        let mut stack = vec![loss.index()];
        reachable[loss.index()] = true;
        while let Some(i) = stack.pop() {
            for v in tape.op_at(i).inputs() {
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
    }

    // Parameters reached through a live Op::Param leaf.
    let mut param_reached = vec![false; ps.len()];
    let mut param_on_tape = vec![false; ps.len()];
    for (i, &live) in reachable.iter().enumerate() {
        if let Op::Param(pid) = tape.op_at(i) {
            param_on_tape[pid.index()] = true;
            if live {
                param_reached[pid.index()] = true;
            }
        }
    }
    let dead_params: Vec<DeadParam> = ps
        .iter()
        .filter(|(id, _, _)| !param_reached[id.index()])
        .map(|(id, name, _)| DeadParam {
            name: name.to_string(),
            frozen: ps.is_frozen(id),
            on_tape: param_on_tape[id.index()],
        })
        .collect();

    // Computed-but-unconsumed: non-leaf nodes that are not ancestors of the
    // loss. Leaves are covered by the parameter pass (Param) or are plain
    // constants (Input) whose liveness is not interesting.
    let unused_nodes: Vec<UnusedNode> = (0..n)
        .filter(|&i| !reachable[i] && !matches!(tape.op_at(i), Op::Input | Op::Param(_)))
        .map(|i| UnusedNode { op_index: i, op_name: tape.op_at(i).name() })
        .collect();

    GraphReport {
        node_count: n,
        param_count: ps.len(),
        shape_violations: tape.shape_violations().to_vec(),
        dead_params,
        unused_nodes,
        sentinel_hits: finite_audit(tape),
        graph_issues: Vec::new(),
        cost: cost_analysis(tape, parallel::configured_threads()),
    }
}

/// Estimated forward FLOPs of the op plus the row count its kernel splits
/// on (0 for ops that never take the pool path).
fn op_flops_and_rows(tape: &Tape, op: &Op) -> (u64, usize) {
    let s = |v: Var| tape.value(v).shape();
    let elems = |v: Var| {
        let (r, c) = s(v);
        r * c
    };
    match op {
        Op::Input
        | Op::Param(_)
        | Op::Transpose(_)
        | Op::ConcatCols(_)
        | Op::ConcatRows(_)
        | Op::SliceCols { .. }
        | Op::SliceRows { .. }
        | Op::GatherRows { .. } => (0, 0),
        Op::Add(a, _)
        | Op::Sub(a, _)
        | Op::Mul(a, _)
        | Op::Div(a, _)
        | Op::AddRow(a, _)
        | Op::AddCol(a, _)
        | Op::MulCol(a, _)
        | Op::Scale(a, _)
        | Op::AddScalar(a, _)
        | Op::Relu(a)
        | Op::LeakyRelu(a, _)
        | Op::SumAll(a)
        | Op::MeanAll(a)
        | Op::SumRows(a)
        | Op::SumCols(a)
        | Op::MaxCols(a) => (kcost::elementwise_flops(elems(*a), 1), 0),
        Op::Tanh(a) | Op::Sigmoid(a) | Op::Gelu(a) | Op::Exp(a) | Op::Ln(a) | Op::Sqrt(a) => {
            (kcost::elementwise_flops(elems(*a), kcost::TRANSCENDENTAL_FLOPS), 0)
        }
        Op::Dropout { x, .. } => (kcost::elementwise_flops(elems(*x), 1), 0),
        Op::Matmul(a, b) => {
            let (sa, sb) = (s(*a), s(*b));
            (kcost::matmul_flops(sa.0, sa.1, sb.1), sa.0)
        }
        Op::MatmulNt(a, b) => {
            let (sa, sb) = (s(*a), s(*b));
            (kcost::matmul_flops(sa.0, sa.1, sb.0), sa.0)
        }
        Op::MatmulTn(a, b) => {
            let (sa, sb) = (s(*a), s(*b));
            (kcost::matmul_flops(sa.1, sa.0, sb.1), sa.1)
        }
        Op::Softmax(a) | Op::LogSoftmax(a) => {
            let (r, c) = s(*a);
            (kcost::softmax_flops(r, c), r)
        }
        Op::LayerNorm { x, .. } => {
            let (r, c) = s(*x);
            (kcost::layer_norm_flops(r, c), r)
        }
        Op::CrossEntropyLogits { logits, .. } | Op::WeightedCrossEntropyLogits { logits, .. } => {
            // log-softmax plus the per-row pick/scale.
            let (r, c) = s(*logits);
            (kcost::softmax_flops(r, c) + 2 * r as u64, r)
        }
        Op::BceWithLogits { logits, .. } => {
            let (r, _) = s(*logits);
            (r as u64 * (2 * kcost::TRANSCENDENTAL_FLOPS + 4), 0)
        }
        Op::MseLoss { pred, .. } => (kcost::elementwise_flops(elems(*pred), 3), 0),
    }
}

/// Per-op FLOP and memory estimates over any recorded tape (shape-only
/// tapes included — only shapes are read, never values).
///
/// `split` is the thread count the serial-vs-parallel decision is evaluated
/// at; pass [`parallel::configured_threads`] to predict the real run. Peak
/// memory assumes each node's value dies right after its last consumer, the
/// same liveness rule a freeing executor would use — but it models the
/// **forward pass only** (backward adjoints and parameter storage are not
/// counted). A training step also keeps every reachable node's gradient
/// buffer alive through its backward visit; use [`peak_bytes_backward`] for
/// the full-step figure the arena planner sizes against.
pub fn cost_analysis(tape: &Tape, split: usize) -> CostReport {
    let n = tape.len();
    let mut per_op = Vec::with_capacity(n);
    let mut total_flops = 0u64;
    let mut parallel_flops = 0u64;
    for i in 0..n {
        let op = tape.op_at(i);
        let (flops, rows) = op_flops_and_rows(tape, op);
        let is_parallel = kcost::plan_pieces(flops, rows, split) > 1;
        let (r, c) = tape.value(Var::from_index(i)).shape();
        total_flops += flops;
        if is_parallel {
            parallel_flops += flops;
        }
        per_op.push(OpCost {
            op_index: i,
            op_name: op.name(),
            flops,
            out_bytes: 4 * (r * c) as u64,
            parallel: is_parallel,
        });
    }

    // Liveness: node `v` stays live from its creation step through the last
    // step that reads it (at least its own step; the final node — usually
    // the loss — is freed immediately after, which cannot lower the peak).
    let mut last_use: Vec<usize> = (0..n).collect();
    for i in 0..n {
        for v in tape.op_at(i).inputs() {
            last_use[v.index()] = i;
        }
    }
    let mut free_at: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (node, &lu) in last_use.iter().enumerate() {
        free_at[lu].push(node);
    }
    let mut live = 0u64;
    let mut peak_bytes = 0u64;
    for i in 0..n {
        live += per_op[i].out_bytes;
        peak_bytes = peak_bytes.max(live);
        for &node in &free_at[i] {
            live -= per_op[node].out_bytes;
        }
    }

    CostReport { per_op, total_flops, parallel_flops, peak_bytes, split }
}

/// Backward-inclusive peak-memory lower bound for one training step, in
/// bytes.
///
/// [`cost_analysis`] models the forward pass only, so it understates a
/// training step: every node reachable from the loss also owns a gradient
/// adjoint that stays live from its first producer in the backward sweep
/// until the node's own backward visit, and several backward rules re-read
/// forward values long after their last forward consumer. This estimate
/// delegates to the arena planner's liveness sweep
/// ([`crate::plan::ExecutionPlan::build`]), which models both, and returns
/// the max-live-bytes lower bound every valid packing (including the
/// planner's own greedy one) must meet or exceed.
///
/// Leaf values (inputs and parameters) are owned by the tape and the
/// [`ParamStore`] rather than the step's working set, so — unlike
/// [`cost_analysis`] — they are not counted here, while their *gradients*
/// are.
///
/// # Panics
/// Panics if `tape` is shape-only (clamped shapes would produce a bogus
/// budget; record with [`Tape::deferred`](crate::Tape::deferred) instead) or
/// if `loss` is not a scalar on `tape`.
pub fn peak_bytes_backward(tape: &Tape, loss: Var) -> u64 {
    crate::plan::ExecutionPlan::build(tape, loss).report().lower_bound_bytes
}

/// Scans every recorded forward value and reports non-finite tensors, in
/// tape order (the first entry is the op where trouble started).
pub fn finite_audit(tape: &Tape) -> Vec<SentinelHit> {
    (0..tape.len())
        .filter_map(|i| {
            let v = tape.value(Var::from_index(i));
            if !v.has_non_finite() {
                return None;
            }
            let mut nan = 0;
            let mut inf = 0;
            for x in v.as_slice() {
                if x.is_nan() {
                    nan += 1;
                } else if x.is_infinite() {
                    inf += 1;
                }
            }
            Some(SentinelHit { op_index: i, op_name: tape.op_at(i).name(), nan, inf })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_tensor::Tensor;

    #[test]
    fn shape_only_matmul_mismatch_is_reported_not_panicked() {
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::zeros(2, 3));
        let b = t.input(Tensor::zeros(4, 5));
        let c = t.matmul(a, b); // 3 != 4: violation, fallback (2, 5)
        assert_eq!(t.value(c).shape(), (2, 5));
        let v = t.shape_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].op_name, "matmul");
        assert_eq!(v[0].op_index, 2);
        assert!(
            v[0].message.contains("(2, 3)") && v[0].message.contains("(4, 5)"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn shape_only_collects_multiple_violations() {
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::zeros(2, 3));
        let b = t.input(Tensor::zeros(2, 4));
        let bad_sum = t.add(a, b); // shapes differ
        let row = t.input(Tensor::zeros(1, 7));
        let bad_row = t.add_row(bad_sum, row); // wrong row width
        let _ = t.slice_cols(bad_row, 2, 9); // out of range
        assert_eq!(t.shape_violations().len(), 3);
    }

    #[test]
    fn shape_only_valid_graph_is_clean_and_shapes_propagate() {
        let mut t = Tape::shape_only();
        let x = t.input(Tensor::zeros(5, 8));
        let w = t.input(Tensor::zeros(8, 3));
        let y = t.matmul(x, w);
        let y = t.softmax(y);
        let s = t.sum_rows(y);
        assert_eq!(t.value(y).shape(), (5, 3));
        assert_eq!(t.value(s).shape(), (1, 3));
        assert!(t.shape_violations().is_empty());
    }

    #[test]
    fn dead_param_and_unused_node_are_reported() {
        let mut ps = ParamStore::new();
        let used = ps.add("used.w", Tensor::ones(1, 1));
        let orphan = ps.add("orphan.w", Tensor::ones(1, 1));
        let _ = orphan;
        let mut t = Tape::new();
        let w = t.param(&ps, used);
        let x = t.input(Tensor::ones(1, 1));
        let y = t.mul(w, x);
        let dead_branch = t.scale(y, 2.0); // computed, never consumed
        let _ = dead_branch;
        let loss = t.sum_all(y);
        let report = analyze_graph(&t, loss, &ps);
        assert!(!report.is_clean());
        assert_eq!(report.dead_params.len(), 1);
        assert_eq!(report.dead_params[0].name, "orphan.w");
        assert!(!report.dead_params[0].on_tape);
        assert_eq!(report.unused_nodes.len(), 1);
        assert_eq!(report.unused_nodes[0].op_name, "scale");
    }

    #[test]
    fn frozen_dead_param_keeps_report_clean() {
        let mut ps = ParamStore::new();
        let used = ps.add("used.w", Tensor::ones(1, 1));
        let frozen = ps.add("frozen.w", Tensor::ones(1, 1));
        ps.freeze(frozen);
        let mut t = Tape::new();
        let w = t.param(&ps, used);
        let loss = t.sum_all(w);
        let report = analyze_graph(&t, loss, &ps);
        assert_eq!(report.dead_params.len(), 1);
        assert!(report.dead_params[0].frozen);
        assert!(report.is_clean());
    }

    #[test]
    fn param_on_tape_but_disconnected_is_distinguished() {
        let mut ps = ParamStore::new();
        let a = ps.add("a", Tensor::ones(1, 1));
        let b = ps.add("b", Tensor::ones(1, 1));
        let mut t = Tape::new();
        let av = t.param(&ps, a);
        let bv = t.param(&ps, b); // read, but never feeds the loss
        let _ = bv;
        let loss = t.sum_all(av);
        let report = analyze_graph(&t, loss, &ps);
        assert_eq!(report.dead_params.len(), 1);
        assert_eq!(report.dead_params[0].name, "b");
        assert!(report.dead_params[0].on_tape);
    }

    #[test]
    fn finite_audit_names_the_offending_input() {
        let mut t = Tape::new();
        let _ok = t.input(Tensor::ones(2, 2));
        let mut bad = Tensor::ones(2, 2);
        bad.set(1, 0, f32::NAN);
        bad.set(0, 1, f32::INFINITY);
        let _bad = t.input(bad);
        let hits = finite_audit(&t);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].op_index, 1);
        assert_eq!(hits[0].op_name, "input");
        assert_eq!(hits[0].nan, 1);
        assert_eq!(hits[0].inf, 1);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sentinel is debug-gated")]
    #[should_panic(expected = "(add) produced non-finite values")]
    fn eager_op_panics_with_op_name_on_non_finite_result() {
        let mut t = Tape::new();
        let big = t.input(Tensor::full(1, 1, f32::MAX));
        let _ = t.add(big, big); // overflows to +inf
    }

    #[test]
    fn cost_analysis_counts_matmul_flops_exactly() {
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::zeros(64, 128));
        let b = t.input(Tensor::zeros(128, 32));
        let y = t.matmul(a, b);
        let _ = t.softmax(y);
        let cost = cost_analysis(&t, 8);
        let mm = &cost.per_op[2];
        assert_eq!(mm.op_name, "matmul");
        assert_eq!(mm.flops, 2 * 64 * 128 * 32);
        assert_eq!(mm.out_bytes, 4 * 64 * 32);
        assert!(mm.parallel, "a 512K-FLOP matmul should take the pool path at 8 threads");
        assert_eq!(cost.total_flops, cost.per_op.iter().map(|o| o.flops).sum::<u64>());
    }

    #[test]
    fn cost_analysis_serial_split_marks_nothing_parallel() {
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::zeros(64, 128));
        let b = t.input(Tensor::zeros(128, 32));
        let _ = t.matmul(a, b);
        let cost = cost_analysis(&t, 1);
        assert_eq!(cost.parallel_flops, 0);
        assert!(cost.per_op.iter().all(|o| !o.parallel));
    }

    #[test]
    fn cost_analysis_peak_tracks_liveness_not_sum() {
        // `x` is consumed again by the residual add, so the peak moment is
        // x + a + b live at once; afterwards x and a are freed, so the naive
        // sum over all outputs overstates the real footprint.
        let mut t = Tape::shape_only();
        let x = t.input(Tensor::zeros(100, 100)); // 40_000 B
        let a = t.tanh(x); // 40_000 B
        let b = t.add(x, a); // 40_000 B, frees x and a
        let _loss = t.sum_all(b); // 4 B, frees b
        let cost = cost_analysis(&t, 1);
        assert_eq!(cost.peak_bytes, 3 * 40_000);
        let total: u64 = cost.per_op.iter().map(|o| o.out_bytes).sum();
        assert!(cost.peak_bytes < total);
    }

    #[test]
    fn peak_bytes_backward_exceeds_forward_only_estimate() {
        // Same residual graph as the liveness test above, recorded with real
        // values: the backward sweep keeps gradient adjoints for x, tanh,
        // and add live on top of the forward values, so the full-step
        // figure must be strictly larger than the forward-only one.
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::ones(100, 100));
        let mut t = Tape::new();
        let x = t.param(&ps, w);
        let a = t.tanh(x);
        let b = t.add(x, a);
        let loss = t.sum_all(b);
        let fwd = cost_analysis(&t, 1).peak_bytes;
        let bwd = peak_bytes_backward(&t, loss);
        assert!(
            bwd > fwd,
            "backward-inclusive estimate ({bwd} B) must exceed forward-only ({fwd} B)"
        );
    }

    #[test]
    fn backward_estimate_bounded_by_instrumented_heap_traffic_and_plan() {
        use crate::plan::ExecutionPlan;
        use hiergat_tensor::alloc_stats;
        let mut ps = ParamStore::new();
        ps.add("w", Tensor::ones(64, 64));
        let record = |t: &mut Tape, ps: &ParamStore| {
            let x = t.param(ps, ps.id_of("w").expect("registered"));
            let a = t.tanh(x);
            let b = t.mul(a, a);
            let c = t.add(x, b);
            t.mean_all(c)
        };
        // The estimate is a *lower bound*: the greedy plan's arena must meet
        // it, and the heap path — which allocates a fresh tensor per node
        // value and per adjoint — must allocate at least that many bytes
        // over the step. (Other tests allocating concurrently only inflate
        // the instrumented figure, never deflate it.)
        let mut td = Tape::deferred();
        let ld = record(&mut td, &ps);
        let est = peak_bytes_backward(&td, ld);
        let plan = ExecutionPlan::build(&td, ld);
        assert!(plan.report().arena_bytes >= est);
        let before = alloc_stats();
        let mut t = Tape::new();
        let loss = record(&mut t, &ps);
        t.backward(loss, &mut ps);
        let spent = alloc_stats().since(before);
        assert!(
            spent.bytes as u64 >= est,
            "heap step allocated {} B, below the liveness lower bound {est} B",
            spent.bytes
        );
    }

    #[test]
    fn matmul_nt_shape_rule_and_cost_match_matmul_of_transpose() {
        let mut t = Tape::shape_only();
        let q = t.input(Tensor::zeros(7, 16));
        let k = t.input(Tensor::zeros(9, 16));
        let s1 = t.matmul_nt(q, k);
        let kt = t.transpose(k);
        let s2 = t.matmul(q, kt);
        assert_eq!(t.value(s1).shape(), (7, 9));
        assert_eq!(t.value(s1).shape(), t.value(s2).shape());
        assert!(t.shape_violations().is_empty());
        let cost = cost_analysis(&t, 1);
        assert_eq!(cost.per_op[2].flops, cost.per_op[4].flops);

        // Mismatched trailing dims are a violation, not a panic.
        let bad = t.input(Tensor::zeros(3, 5));
        let _ = t.matmul_nt(q, bad);
        assert_eq!(t.shape_violations().len(), 1);
    }

    #[test]
    fn report_display_includes_cost_summary() {
        let ps = ParamStore::new();
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::zeros(64, 128));
        let b = t.input(Tensor::zeros(128, 32));
        let y = t.matmul(a, b);
        let loss = t.sum_all(y);
        let report = analyze_graph(&t, loss, &ps);
        let text = report.to_string();
        assert!(text.contains("cost:"), "{text}");
        assert!(text.contains("peak live"), "{text}");
        assert!(text.contains("matmul"), "{text}");
    }

    #[test]
    fn report_display_mentions_each_section() {
        let mut ps = ParamStore::new();
        let orphan = ps.add("layer.orphan", Tensor::ones(1, 1));
        let _ = orphan;
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::zeros(2, 3));
        let b = t.input(Tensor::zeros(4, 5));
        let y = t.matmul(a, b);
        let loss = t.sum_all(y);
        let report = analyze_graph(&t, loss, &ps);
        let text = report.to_string();
        assert!(text.contains("violation"), "{text}");
        assert!(text.contains("layer.orphan"), "{text}");
    }
}
