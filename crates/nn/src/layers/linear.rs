//! Fully connected layer.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// `y = x W + b` with Xavier-initialized weights.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    d_in: usize,
    d_out: usize,
}

impl Linear {
    /// Registers a linear layer's parameters under `prefix`.
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_in: usize,
        d_out: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.add(format!("{prefix}.w"), Tensor::xavier_uniform(d_in, d_out, rng));
        let b = bias.then(|| ps.add(format!("{prefix}.b"), Tensor::zeros(1, d_out)));
        Self { w, b, d_in, d_out }
    }

    /// Applies the layer to an `n x d_in` input.
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(t.value(x).cols(), self.d_in, "Linear: input width mismatch");
        let w = t.param(ps, self.w);
        let y = t.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = t.param(ps, b);
                t.add_row(y, bv)
            }
            None => y,
        }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// The weight parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 4, 3, true, &mut rng);
        assert_eq!(ps.len(), 2);
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(5, 4));
        let y = lin.forward(&mut t, &ps, x);
        assert_eq!(t.value(y).shape(), (5, 3));
        // With zero input the output equals the (zero-initialized) bias.
        assert!(t.value(y).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn no_bias_variant_registers_one_param() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 2, 2, false, &mut rng);
        assert_eq!(ps.len(), 1);
        assert_eq!(lin.d_in(), 2);
        assert_eq!(lin.d_out(), 2);
    }

    #[test]
    fn gradients_flow_through_layer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 3, 2, true, &mut rng);
        let x = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
        crate::gradcheck::assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let y = lin.forward(t, ps, xv);
                let y = t.relu(y);
                t.mean_all(y)
            },
            1e-3,
            2e-2,
        );
    }
}
