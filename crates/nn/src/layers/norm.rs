//! Layer normalization module wrapper.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use hiergat_tensor::Tensor;

/// Learnable per-feature layer normalization (`gamma`, `beta`).
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Registers `gamma = 1`, `beta = 0` parameters of width `dim`.
    pub fn new(ps: &mut ParamStore, prefix: &str, dim: usize) -> Self {
        let gamma = ps.add(format!("{prefix}.gamma"), Tensor::ones(1, dim));
        let beta = ps.add(format!("{prefix}.beta"), Tensor::zeros(1, dim));
        Self { gamma, beta, eps: 1e-5 }
    }

    /// Normalizes each row of `x`.
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, x: Var) -> Var {
        let g = t.param(ps, self.gamma);
        let b = t.param(ps, self.beta);
        t.layer_norm(x, g, b, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows_to_unit_stats() {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 4);
        let mut t = Tape::new();
        let x = t.input(Tensor::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 0.0, 10.0, 0.0]]));
        let y = ln.forward(&mut t, &ps, x);
        let yv = t.value(y);
        for r in 0..2 {
            let mean: f32 = yv.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = yv.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn identity_on_already_normalized_input_with_default_params() {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 2);
        let mut t = Tape::new();
        // Row with mean 0, var 1: [-1, 1]
        let x = t.input(Tensor::from_rows(&[vec![-1.0, 1.0]]));
        let y = ln.forward(&mut t, &ps, x);
        assert!(t.value(y).allclose(&Tensor::from_rows(&[vec![-1.0, 1.0]]), 1e-3));
    }
}
