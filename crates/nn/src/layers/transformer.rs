//! Transformer encoder blocks (post-norm, BERT-style).

use crate::layers::attention::MultiHeadSelfAttention;
use crate::layers::linear::Linear;
use crate::layers::norm::LayerNorm;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// One encoder block: self-attention + feed-forward, each with a residual
/// connection and layer norm (post-norm, as in BERT).
pub struct TransformerEncoderLayer {
    mha: MultiHeadSelfAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
    dropout: f32,
}

impl TransformerEncoderLayer {
    /// Registers one block. `d_ff` is the feed-forward hidden width.
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_model: usize,
        heads: usize,
        d_ff: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            mha: MultiHeadSelfAttention::new(ps, &format!("{prefix}.mha"), d_model, heads, rng),
            ln1: LayerNorm::new(ps, &format!("{prefix}.ln1"), d_model),
            ff1: Linear::new(ps, &format!("{prefix}.ff1"), d_model, d_ff, true, rng),
            ff2: Linear::new(ps, &format!("{prefix}.ff2"), d_ff, d_model, true, rng),
            ln2: LayerNorm::new(ps, &format!("{prefix}.ln2"), d_model),
            dropout,
        }
    }

    /// Applies the block to an `n x d` sequence.
    pub fn forward(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        self.forward_impl(t, ps, x, train, rng, None)
    }

    /// Forward capturing per-head attention maps.
    pub fn forward_with_attn(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        train: bool,
        rng: &mut impl Rng,
        attn_out: &mut Vec<Tensor>,
    ) -> Var {
        self.forward_impl(t, ps, x, train, rng, Some(attn_out))
    }

    fn forward_impl(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        train: bool,
        rng: &mut impl Rng,
        attn_out: Option<&mut Vec<Tensor>>,
    ) -> Var {
        let att = match attn_out {
            Some(out) => self.mha.forward_with_attn(t, ps, x, out),
            None => self.mha.forward(t, ps, x),
        };
        let att = t.dropout(att, self.dropout, train, rng);
        let x = {
            let sum = t.add(x, att);
            self.ln1.forward(t, ps, sum)
        };
        let h = self.ff1.forward(t, ps, x);
        let h = t.gelu(h);
        let h = self.ff2.forward(t, ps, h);
        let h = t.dropout(h, self.dropout, train, rng);
        let sum = t.add(x, h);
        self.ln2.forward(t, ps, sum)
    }
}

/// A stack of encoder blocks with a learned positional embedding table.
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
    pos: crate::params::ParamId,
    max_len: usize,
    d_model: usize,
}

impl TransformerEncoder {
    /// Registers `n_layers` blocks plus a `max_len x d_model` positional table.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        n_layers: usize,
        d_model: usize,
        heads: usize,
        d_ff: usize,
        max_len: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let layers = (0..n_layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    ps,
                    &format!("{prefix}.layer{i}"),
                    d_model,
                    heads,
                    d_ff,
                    dropout,
                    rng,
                )
            })
            .collect();
        let pos =
            ps.add(format!("{prefix}.pos"), Tensor::rand_normal(max_len, d_model, 0.0, 0.02, rng));
        Self { layers, pos, max_len, d_model }
    }

    /// Adds positional embeddings and applies every block.
    ///
    /// # Panics
    /// Panics if the sequence is longer than `max_len`.
    pub fn forward(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let n = t.value(x).rows();
        assert!(n <= self.max_len, "sequence length {n} exceeds max_len {}", self.max_len);
        let table = t.param(ps, self.pos);
        let indices: Vec<usize> = (0..n).collect();
        let pos = t.gather_rows(table, &indices);
        let mut h = t.add(x, pos);
        for layer in &self.layers {
            h = layer.forward(t, ps, h, train, rng);
        }
        h
    }

    /// Forward capturing attention maps from every layer (layer-major order).
    pub fn forward_with_attn(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        train: bool,
        rng: &mut impl Rng,
        attn_out: &mut Vec<Tensor>,
    ) -> Var {
        let n = t.value(x).rows();
        assert!(n <= self.max_len, "sequence length {n} exceeds max_len {}", self.max_len);
        let table = t.param(ps, self.pos);
        let indices: Vec<usize> = (0..n).collect();
        let pos = t.gather_rows(table, &indices);
        let mut h = t.add(x, pos);
        for layer in &self.layers {
            h = layer.forward_with_attn(t, ps, h, train, rng, attn_out);
        }
        h
    }

    /// Number of blocks.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Maximum sequence length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 2, 8, 2, 16, 32, 0.1, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::rand_normal(6, 8, 0.0, 1.0, &mut rng));
        let y = enc.forward(&mut t, &ps, x, false, &mut rng);
        assert_eq!(t.value(y).shape(), (6, 8));
        assert_eq!(enc.n_layers(), 2);
        assert_eq!(enc.d_model(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn rejects_overlong_sequences() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 1, 4, 1, 8, 3, 0.0, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(4, 4));
        enc.forward(&mut t, &ps, x, false, &mut rng);
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 1, 4, 2, 8, 8, 0.5, &mut rng);
        let x = Tensor::rand_normal(4, 4, 0.0, 1.0, &mut rng);
        let run = |rng: &mut StdRng| {
            let mut t = Tape::new();
            let xv = t.input(x.clone());
            let y = enc.forward(&mut t, &ps, xv, false, rng);
            t.value(y).clone()
        };
        let a = run(&mut StdRng::seed_from_u64(10));
        let b = run(&mut StdRng::seed_from_u64(99));
        assert!(a.allclose(&b, 0.0), "dropout must be inactive in eval mode");
    }

    #[test]
    fn encoder_layer_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let layer = TransformerEncoderLayer::new(&mut ps, "l", 4, 2, 6, 0.0, &mut rng);
        let x = Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng);
        crate::gradcheck::assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let mut rng2 = StdRng::seed_from_u64(0);
                let y = layer.forward(t, ps, xv, false, &mut rng2);
                t.mean_all(y)
            },
            1e-2,
            8e-2,
        );
    }

    #[test]
    fn attention_capture_counts_layers_times_heads() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 2, 4, 2, 8, 16, 0.0, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::rand_normal(5, 4, 0.0, 1.0, &mut rng));
        let mut attn = Vec::new();
        let _ = enc.forward_with_attn(&mut t, &ps, x, false, &mut rng, &mut attn);
        assert_eq!(attn.len(), 4); // 2 layers x 2 heads
    }
}
