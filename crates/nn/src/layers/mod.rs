//! Neural-network layers built on the autograd tape.

mod attention;
mod gru;
mod linear;
mod norm;
mod transformer;

pub use attention::MultiHeadSelfAttention;
pub use gru::GruCell;
pub use linear::Linear;
pub use norm::LayerNorm;
pub use transformer::{TransformerEncoder, TransformerEncoderLayer};
