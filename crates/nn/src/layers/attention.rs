//! Multi-head self-attention.

use crate::layers::linear::Linear;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// Multi-head scaled-dot-product self-attention over an `n x d` sequence.
///
/// Because the workspace processes one sequence at a time, heads are realized
/// by column-slicing the projected `Q`, `K`, `V` matrices rather than a 4-D
/// batch layout.
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadSelfAttention {
    /// Registers projection parameters. `d_model` must be divisible by `heads`.
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_model: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && d_model.is_multiple_of(heads),
            "d_model {d_model} not divisible by heads {heads}"
        );
        Self {
            wq: Linear::new(ps, &format!("{prefix}.wq"), d_model, d_model, true, rng),
            wk: Linear::new(ps, &format!("{prefix}.wk"), d_model, d_model, true, rng),
            wv: Linear::new(ps, &format!("{prefix}.wv"), d_model, d_model, true, rng),
            wo: Linear::new(ps, &format!("{prefix}.wo"), d_model, d_model, true, rng),
            heads,
            d_model,
        }
    }

    /// Applies self-attention; returns the `n x d` output.
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, x: Var) -> Var {
        self.forward_impl(t, ps, x, None)
    }

    /// Like [`Self::forward`], but also captures each head's `n x n`
    /// attention matrix (detached copies) for visualization (paper Fig. 9).
    pub fn forward_with_attn(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        attn_out: &mut Vec<Tensor>,
    ) -> Var {
        self.forward_impl(t, ps, x, Some(attn_out))
    }

    fn forward_impl(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        mut attn_out: Option<&mut Vec<Tensor>>,
    ) -> Var {
        let dh = self.d_model / self.heads;
        let q = self.wq.forward(t, ps, x);
        let k = self.wk.forward(t, ps, x);
        let v = self.wv.forward(t, ps, x);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = t.slice_cols(q, h * dh, dh);
            let kh = t.slice_cols(k, h * dh, dh);
            let vh = t.slice_cols(v, h * dh, dh);
            let scores = t.matmul_nt(qh, kh);
            let scores = t.scale(scores, scale);
            let att = t.softmax(scores);
            if let Some(out) = attn_out.as_deref_mut() {
                out.push(t.value(att).clone());
            }
            head_outputs.push(t.matmul(att, vh));
        }
        let merged = t.concat_cols(&head_outputs);
        self.wo.forward(t, ps, merged)
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let mha = MultiHeadSelfAttention::new(&mut ps, "mha", 8, 2, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::rand_normal(5, 8, 0.0, 1.0, &mut rng));
        let y = mha.forward(&mut t, &ps, x);
        assert_eq!(t.value(y).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        MultiHeadSelfAttention::new(&mut ps, "mha", 7, 2, &mut rng);
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let mha = MultiHeadSelfAttention::new(&mut ps, "mha", 4, 2, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng));
        let mut attn = Vec::new();
        let _ = mha.forward_with_attn(&mut t, &ps, x, &mut attn);
        assert_eq!(attn.len(), 2);
        for a in &attn {
            assert_eq!(a.shape(), (3, 3));
            for r in 0..3 {
                let s: f32 = a.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradients_flow_through_attention() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let mha = MultiHeadSelfAttention::new(&mut ps, "mha", 4, 2, &mut rng);
        let x = Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng);
        crate::gradcheck::assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let y = mha.forward(t, ps, xv);
                t.mean_all(y)
            },
            1e-3,
            4e-2,
        );
    }
}
