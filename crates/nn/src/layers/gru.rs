//! GRU recurrent cell (used by the DeepMatcher baseline).

use crate::layers::linear::Linear;
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// A gated recurrent unit cell.
///
/// DeepMatcher's attribute summarization uses a (bi)GRU over the attribute's
/// word embeddings; this cell is the building block.
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    d_hidden: usize,
}

impl GruCell {
    /// Registers the six projections of a GRU cell.
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_in: usize,
        d_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            wz: Linear::new(ps, &format!("{prefix}.wz"), d_in, d_hidden, true, rng),
            uz: Linear::new(ps, &format!("{prefix}.uz"), d_hidden, d_hidden, false, rng),
            wr: Linear::new(ps, &format!("{prefix}.wr"), d_in, d_hidden, true, rng),
            ur: Linear::new(ps, &format!("{prefix}.ur"), d_hidden, d_hidden, false, rng),
            wh: Linear::new(ps, &format!("{prefix}.wh"), d_in, d_hidden, true, rng),
            uh: Linear::new(ps, &format!("{prefix}.uh"), d_hidden, d_hidden, false, rng),
            d_hidden,
        }
    }

    /// One step: consumes input `x` (`1 x d_in`) and state `h` (`1 x d_h`),
    /// returns the next state.
    pub fn step(&self, t: &mut Tape, ps: &ParamStore, x: Var, h: Var) -> Var {
        let z = {
            let a = self.wz.forward(t, ps, x);
            let b = self.uz.forward(t, ps, h);
            let s = t.add(a, b);
            t.sigmoid(s)
        };
        let r = {
            let a = self.wr.forward(t, ps, x);
            let b = self.ur.forward(t, ps, h);
            let s = t.add(a, b);
            t.sigmoid(s)
        };
        let h_tilde = {
            let a = self.wh.forward(t, ps, x);
            let rh = t.mul(r, h);
            let b = self.uh.forward(t, ps, rh);
            let s = t.add(a, b);
            t.tanh(s)
        };
        // h' = (1 - z) * h + z * h_tilde
        let one_minus_z = t.one_minus(z);
        let keep = t.mul(one_minus_z, h);
        let update = t.mul(z, h_tilde);
        t.add(keep, update)
    }

    /// Runs the GRU over an `n x d_in` sequence (top to bottom), returning
    /// the `n x d_h` matrix of hidden states.
    pub fn run(&self, t: &mut Tape, ps: &ParamStore, seq: Var) -> Var {
        let n = t.value(seq).rows();
        let mut h = t.input(Tensor::zeros(1, self.d_hidden));
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let x = t.row(seq, i);
            h = self.step(t, ps, x, h);
            states.push(h);
        }
        t.concat_rows(&states)
    }

    /// Runs the GRU in both directions and concatenates the final states,
    /// producing an `n x 2 d_h` matrix. Helper for bidirectional encoders.
    pub fn run_reversed(&self, t: &mut Tape, ps: &ParamStore, seq: Var) -> Var {
        let n = t.value(seq).rows();
        let mut h = t.input(Tensor::zeros(1, self.d_hidden));
        let mut states = vec![None; n];
        for i in (0..n).rev() {
            let x = t.row(seq, i);
            h = self.step(t, ps, x, h);
            states[i] = Some(h);
        }
        let ordered: Vec<Var> = states.into_iter().map(|s| s.expect("filled")).collect();
        t.concat_rows(&ordered)
    }

    /// Hidden width.
    pub fn d_hidden(&self) -> usize {
        self.d_hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn run_produces_one_state_per_token() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "gru", 3, 5, &mut rng);
        let mut t = Tape::new();
        let seq = t.input(Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng));
        let states = gru.run(&mut t, &ps, seq);
        assert_eq!(t.value(states).shape(), (4, 5));
    }

    #[test]
    fn states_stay_bounded() {
        // GRU state is a convex mix of tanh outputs, so |h| <= 1 elementwise.
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "gru", 2, 3, &mut rng);
        let mut t = Tape::new();
        let seq = t.input(Tensor::rand_normal(20, 2, 0.0, 5.0, &mut rng));
        let states = gru.run(&mut t, &ps, seq);
        assert!(t.value(states).as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn reversed_run_differs_from_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "gru", 2, 3, &mut rng);
        let mut t = Tape::new();
        let seq = t.input(Tensor::rand_normal(5, 2, 0.0, 1.0, &mut rng));
        let fwd = gru.run(&mut t, &ps, seq);
        let bwd = gru.run_reversed(&mut t, &ps, seq);
        assert_eq!(t.value(bwd).shape(), (5, 3));
        assert!(!t.value(fwd).allclose(t.value(bwd), 1e-6));
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "gru", 2, 2, &mut rng);
        let seq = Tensor::rand_normal(3, 2, 0.0, 1.0, &mut rng);
        crate::gradcheck::assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let s = t.input(seq.clone());
                let states = gru.run(t, ps, s);
                t.mean_all(states)
            },
            1e-3,
            4e-2,
        );
    }
}
