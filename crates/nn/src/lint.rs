//! Graph lint engine: wiring-level rules over shape-only tapes.
//!
//! [`crate::analyze`] proves shapes, gradient reachability, and cost. This
//! module answers the next question — *is the graph wired in a numerically
//! dangerous or wasteful way?* — with a pluggable rule engine producing
//! structured [`Diagnostic`]s: stable rule id, effective [`Severity`]
//! (deny/warn/allow with per-rule overrides), an op span (index, name,
//! shapes), a human message, and a fix-it hint. Reports render as text or
//! machine-readable JSON for the CLI gate and bench harnesses.
//!
//! # Rule catalogue
//!
//! Value facts (upper bounds, positivity) come from the interval abstract
//! interpreter ([`crate::absint`]) run with unbounded leaf seeds, so a
//! property proven here holds for *every* input the graph could see:
//! `tanh`/`sigmoid`/`softmax` outputs, max-subtracted rows
//! (`x - max_cols(x)`), epsilon shifts, and their compositions all carry
//! real proven ranges, not boolean flags.
//!
//! Numerical stability (deny by default):
//! * `naked-exp` — `exp` of an input whose proven upper bound exceeds
//!   ~88.7 (`exp` overflows `f32` to `+inf` past `ln(f32::MAX)`).
//! * `log-of-possibly-zero` — `ln` of a value not provably positive
//!   (`-inf` at zero, NaN below). An epsilon shift (`add_scalar` with a
//!   positive constant on a non-negative value) proves positivity, as does
//!   any interval the domain can bound away from zero.
//! * `log-softmax-unfused` — `ln(softmax(x))`: underflows for any row
//!   where one logit dominates; the fused `log_softmax` is exact.
//! * `div-missing-eps` — division whose denominator is not provably
//!   positive (the LayerNorm-by-variance failure mode).
//! * `dropout-in-eval` — dropout ops recorded on a tape linted as
//!   eval-mode; inference must never drop activations.
//!
//! Efficiency (warn by default):
//! * `unfused-transpose-matmul` — a materialized `transpose` consumed only
//!   by a `matmul` when the fused `matmul_tn`/`matmul_nt` kernel computes
//!   the same product without the copy.
//! * `concat-growth` — a deep chain of same-kind concats (each link
//!   recopies every earlier part, quadratic in the chain length).
//!
//! Gradient hygiene (warn by default):
//! * `frozen-param-reachable` — a frozen parameter still reachable from
//!   the loss: backward does full gradient work the optimizer then
//!   discards.
//! * `unused-subgraph` — computed-but-unconsumed subgraphs, grouped and
//!   reported once per sink (the per-node list lives in
//!   [`crate::analyze::GraphReport::unused_nodes`]).

use crate::params::ParamStore;
use crate::tape::{Op, Tape, Var};
use serde::Serialize;
use std::fmt;

/// How a triggered rule is treated by gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Rule disabled; no diagnostic is emitted.
    Allow,
    /// Reported; fails gates running with `--deny warn`.
    Warn,
    /// Reported; fails every gate.
    Deny,
}

impl Severity {
    /// Stable lowercase name (matches the CLI `--deny` argument).
    pub fn name(self) -> &'static str {
        match self {
            Self::Allow => "allow",
            Self::Warn => "warn",
            Self::Deny => "deny",
        }
    }

    /// Parses a CLI severity name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "allow" => Some(Self::Allow),
            "warn" => Some(Self::Warn),
            "deny" => Some(Self::Deny),
            _ => None,
        }
    }
}

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case identifier.
    pub id: &'static str,
    /// Severity when no override is configured.
    pub default_severity: Severity,
    /// One-line summary for `hiergat lint --rules`.
    pub summary: &'static str,
}

/// The builtin rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "naked-exp",
        default_severity: Severity::Deny,
        summary: "exp of an input with no proven upper bound (f32 overflow past ~88.7)",
    },
    RuleInfo {
        id: "log-of-possibly-zero",
        default_severity: Severity::Deny,
        summary: "ln of a value that may be zero or negative (-inf / NaN)",
    },
    RuleInfo {
        id: "log-softmax-unfused",
        default_severity: Severity::Deny,
        summary: "ln(softmax(x)) instead of the fused, underflow-free log_softmax",
    },
    RuleInfo {
        id: "div-missing-eps",
        default_severity: Severity::Deny,
        summary: "division by a denominator that is not provably positive (no epsilon)",
    },
    RuleInfo {
        id: "dropout-in-eval",
        default_severity: Severity::Deny,
        summary: "dropout active on an eval-mode tape",
    },
    RuleInfo {
        id: "unfused-transpose-matmul",
        default_severity: Severity::Warn,
        summary: "materialized transpose feeding only a matmul (fused matmul_tn/nt exists)",
    },
    RuleInfo {
        id: "concat-growth",
        default_severity: Severity::Warn,
        summary: "deep same-kind concat chain (quadratic recopying; concat once instead)",
    },
    RuleInfo {
        id: "frozen-param-reachable",
        default_severity: Severity::Warn,
        summary: "frozen parameter reachable from the loss (wasted backward work)",
    },
    RuleInfo {
        id: "unused-subgraph",
        default_severity: Severity::Warn,
        summary: "computed-but-unconsumed subgraph (dead forward work)",
    },
];

fn default_severity(id: &str) -> Severity {
    RULES.iter().find(|r| r.id == id).map_or(Severity::Warn, |r| r.default_severity)
}

/// Lint run configuration: tape mode plus per-rule severity overrides.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// `true` when the tape was recorded in training mode (dropout is
    /// legitimate there); `false` lints as an inference graph.
    pub training: bool,
    overrides: Vec<(String, Severity)>,
}

impl LintConfig {
    /// Config for a training-mode tape.
    pub fn training() -> Self {
        Self { training: true, overrides: Vec::new() }
    }

    /// Config for an eval/inference tape (dropout ops become diagnostics).
    pub fn eval() -> Self {
        Self { training: false, overrides: Vec::new() }
    }

    /// Overrides one rule's severity (e.g. downgrade to `Allow`).
    pub fn with_rule(mut self, id: &str, severity: Severity) -> Self {
        self.overrides.retain(|(r, _)| r != id);
        self.overrides.push((id.to_string(), severity));
        self
    }

    /// Effective severity of `id` under this config.
    pub fn severity_of(&self, id: &str) -> Severity {
        self.overrides
            .iter()
            .find(|(r, _)| r == id)
            .map_or_else(|| default_severity(id), |&(_, s)| s)
    }
}

/// One triggered rule, anchored to an op on the tape.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule id (stable, kebab-case).
    pub rule: String,
    /// Effective severity after config overrides.
    pub severity: Severity,
    /// Tape index of the offending op.
    pub op_index: usize,
    /// Diagnostic name of the op (e.g. `"exp"`).
    pub op_name: String,
    /// Output shape of the offending op.
    pub out_shape: (usize, usize),
    /// Shapes of the op's tape inputs, in order.
    pub in_shapes: Vec<(usize, usize)>,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it, in one sentence.
    pub fix: String,
}

/// Every diagnostic from one lint pass over one graph.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Nodes on the linted tape.
    pub node_count: usize,
    /// Triggered rules, in tape order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Count of diagnostics at exactly `severity`.
    pub fn count_at(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// `true` when no diagnostic is at or above `gate` (so `gate = Warn`
    /// is the strict `--deny warn` mode).
    pub fn is_clean_at(&self, gate: Severity) -> bool {
        !self.diagnostics.iter().any(|d| d.severity >= gate)
    }

    /// Pretty JSON via the vendored serializer.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lint report serializes infallibly")
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "  clean ({} nodes)", self.node_count);
        }
        for d in &self.diagnostics {
            writeln!(
                f,
                "  {}[{}] op #{} ({}, {}x{}): {}",
                d.rule,
                d.severity.name(),
                d.op_index,
                d.op_name,
                d.out_shape.0,
                d.out_shape.1,
                d.message
            )?;
            writeln!(f, "      fix: {}", d.fix)?;
        }
        Ok(())
    }
}

/// Lints the graph rooted at `loss` on a (typically shape-only) tape.
pub fn lint_graph(tape: &Tape, loss: Var, ps: &ParamStore, cfg: &LintConfig) -> LintReport {
    let n = tape.len();
    let shape = |i: usize| tape.value(Var::from_index(i)).shape();

    // Consumer lists and loss reachability.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for v in tape.op_at(i).inputs() {
            consumers[v.index()].push(i);
        }
    }
    let mut reachable = vec![false; n];
    if loss.index() < n {
        let mut stack = vec![loss.index()];
        reachable[loss.index()] = true;
        while let Some(i) = stack.pop() {
            for v in tape.op_at(i).inputs() {
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
    }
    // Value facts come from the interval abstract interpreter under its
    // strongest assumption — every leaf is any finite f32 — so a property
    // proven here holds for every input the graph could ever see. The
    // rules read proven ranges instead of boolean flags: `naked-exp`
    // compares the proven input upper bound against the actual f32
    // overflow threshold, and the positivity rules accept any proof the
    // domain can make (epsilon shifts, squares-plus-eps, sigmoid/softmax
    // outputs with narrow inputs, bounded-activation compositions).
    let iv = crate::absint::propagate(tape, ps, &crate::absint::AbsintConfig::unbounded());

    let mut diagnostics = Vec::new();
    let mut emit = |rule: &str, i: usize, message: String, fix: String| {
        let severity = cfg.severity_of(rule);
        if severity == Severity::Allow {
            return;
        }
        diagnostics.push(Diagnostic {
            rule: rule.to_string(),
            severity,
            op_index: i,
            op_name: tape.op_name(i).to_string(),
            out_shape: shape(i),
            in_shapes: tape.op_inputs(i).into_iter().map(shape).collect(),
            message,
            fix,
        });
    };

    // Same-kind concat chain depth (for concat-growth).
    let mut concat_depth = vec![0usize; n];
    for i in 0..n {
        let same_kind = |p: &Var| -> usize {
            match (tape.op_at(i), tape.op_at(p.index())) {
                (Op::ConcatCols(_), Op::ConcatCols(_)) | (Op::ConcatRows(_), Op::ConcatRows(_)) => {
                    concat_depth[p.index()]
                }
                _ => 0,
            }
        };
        if let Op::ConcatCols(parts) | Op::ConcatRows(parts) = tape.op_at(i) {
            concat_depth[i] = 1 + parts.iter().map(same_kind).max().unwrap_or(0);
        }
    }

    for i in 0..n {
        match tape.op_at(i) {
            Op::Exp(a) if iv[a.index()].hi > crate::absint::EXP_OVERFLOW_BOUND => {
                emit(
                    "naked-exp",
                    i,
                    format!(
                        "exp of an input whose proven upper bound ({}) exceeds ~88.7 \
                         overflows f32 to +inf",
                        if iv[a.index()].hi.is_finite() {
                            format!("{:.1}", iv[a.index()].hi)
                        } else {
                            "unbounded".to_string()
                        }
                    ),
                    "subtract the per-row max first (max_cols + scale(-1) + add_col), \
                     or use softmax/log_softmax which stabilize internally"
                        .to_string(),
                );
            }
            Op::Ln(a) => {
                if matches!(tape.op_at(a.index()), Op::Softmax(_)) {
                    emit(
                        "log-softmax-unfused",
                        i,
                        "ln(softmax(x)) underflows to -inf whenever one logit dominates \
                         a row; the fused form never materializes the probabilities"
                            .to_string(),
                        "replace softmax followed by ln with the single log_softmax op \
                         (`hiergat optimize` applies this rewrite with a certificate)"
                            .to_string(),
                    );
                } else if !iv[a.index()].proven_positive() {
                    emit(
                        "log-of-possibly-zero",
                        i,
                        "ln of a value that is not provably positive produces -inf at \
                         zero and NaN below"
                            .to_string(),
                        "shift by a small epsilon (add_scalar(x, 1e-12)) after proving \
                         x is non-negative, or restructure to a fused log-domain op"
                            .to_string(),
                    );
                }
            }
            Op::Div(_, d) if !iv[d.index()].proven_positive() => {
                emit(
                    "div-missing-eps",
                    i,
                    "division by a denominator that is not provably positive; a \
                     zero variance or collapsed activation makes this inf/NaN"
                        .to_string(),
                    "add an epsilon to the denominator (add_scalar(d, 1e-5)) before \
                     dividing, as fused layer_norm does internally"
                        .to_string(),
                );
            }
            Op::Dropout { .. } if !cfg.training => {
                emit(
                    "dropout-in-eval",
                    i,
                    "dropout is active on an eval-mode tape: inference randomly \
                     zeroes activations and is no longer deterministic"
                        .to_string(),
                    "thread the train flag into this forward pass (dropout is an \
                     identity when train=false)"
                        .to_string(),
                );
            }
            Op::Transpose(a) => {
                let cons = &consumers[i];
                if !cons.is_empty() && cons.iter().all(|&c| matches!(tape.op_at(c), Op::Matmul(..)))
                {
                    // Which side of the (first) matmul the transpose feeds
                    // decides the fused replacement.
                    let fix = match tape.op_at(cons[0]) {
                        Op::Matmul(x, _) if x.index() == i => {
                            "replace matmul(transpose(a), b) with the fused matmul_tn(a, b) \
                             (`hiergat optimize` applies this rewrite with a certificate)"
                        }
                        _ => {
                            "replace matmul(a, transpose(b)) with the fused matmul_nt(a, b) \
                             (`hiergat optimize` applies this rewrite with a certificate)"
                        }
                    };
                    let (r, c) = shape(a.index());
                    emit(
                        "unfused-transpose-matmul",
                        i,
                        format!(
                            "transpose materializes a {c}x{r} copy that is consumed \
                             only by matmul; the fused kernel reads the original \
                             layout directly"
                        ),
                        fix.to_string(),
                    );
                }
            }
            Op::ConcatCols(_) | Op::ConcatRows(_) => {
                let head = !consumers[i].iter().any(|&c| {
                    matches!(
                        (tape.op_at(i), tape.op_at(c)),
                        (Op::ConcatCols(_), Op::ConcatCols(_))
                            | (Op::ConcatRows(_), Op::ConcatRows(_))
                    )
                });
                if concat_depth[i] >= 3 && head {
                    emit(
                        "concat-growth",
                        i,
                        format!(
                            "{}-deep chain of {}: every link recopies all earlier \
                             parts, quadratic in the chain length",
                            concat_depth[i],
                            tape.op_name(i)
                        ),
                        "collect the parts into a slice and concatenate once".to_string(),
                    );
                }
            }
            Op::Param(pid) if reachable[i] && ps.is_frozen(*pid) => {
                emit(
                    "frozen-param-reachable",
                    i,
                    format!(
                        "frozen parameter '{}' is reachable from the loss: backward \
                         computes and accumulates a gradient the optimizer discards",
                        ps.name(*pid)
                    ),
                    "detach the frozen prefix from the differentiated graph (record \
                     it as an input), or unfreeze the parameter"
                        .to_string(),
                );
            }
            _ => {}
        }
    }

    // Unused subgraphs: unreachable non-leaf nodes, reported once per sink
    // (a node none of whose consumers are themselves unused).
    let unused = |i: usize| !reachable[i] && !matches!(tape.op_at(i), Op::Input | Op::Param(_));
    for i in 0..n {
        if !unused(i) || consumers[i].iter().any(|&c| unused(c)) {
            continue;
        }
        // Size of the subgraph feeding only this sink: walk unused inputs.
        let mut seen = vec![false; n];
        let mut stack = vec![i];
        seen[i] = true;
        let mut count = 0usize;
        while let Some(j) = stack.pop() {
            count += 1;
            for v in tape.op_at(j).inputs() {
                if unused(v.index()) && !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
        emit(
            "unused-subgraph",
            i,
            format!(
                "subgraph of {count} op(s) ending here is computed but never \
                 reaches the loss"
            ),
            "delete the dead computation, or wire its result into the loss if it \
             was meant to contribute"
                .to_string(),
        );
    }

    LintReport { node_count: n, diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One shape-only tape + store, pre-loaded with a 3x4 parameter.
    fn fixture() -> (Tape, ParamStore, Var) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0xF1C5);
        let w = ps.add("w", Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng));
        let mut t = Tape::shape_only();
        let wv = t.param(&ps, w);
        (t, ps, wv)
    }

    fn only_rule<'r>(report: &'r LintReport, rule: &str) -> &'r Diagnostic {
        assert_eq!(report.diagnostics.len(), 1, "expected exactly one diagnostic, got: {report}");
        let d = &report.diagnostics[0];
        assert_eq!(d.rule, rule, "wrong rule fired: {report}");
        d
    }

    #[test]
    fn naked_exp_fires_on_unbounded_input() {
        let (mut t, ps, wv) = fixture();
        let e = t.exp(wv);
        let loss = t.mean_all(e);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "naked-exp");
        assert_eq!(d.op_index, e.index());
        assert_eq!(d.op_name, "exp");
        assert_eq!(d.out_shape, (3, 4));
        assert_eq!(d.severity, Severity::Deny);
    }

    #[test]
    fn naked_exp_is_silent_after_max_subtraction() {
        let (mut t, ps, wv) = fixture();
        let m = t.max_cols(wv);
        let neg = t.scale(m, -1.0);
        let shifted = t.add_col(wv, neg);
        let e = t.exp(shifted);
        let loss = t.mean_all(e);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "stabilized exp flagged: {report}");
    }

    #[test]
    fn log_of_possibly_zero_fires_on_relu_input() {
        let (mut t, ps, wv) = fixture();
        let r = t.relu(wv); // non-negative but not positive
        let l = t.ln(r);
        let loss = t.mean_all(l);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "log-of-possibly-zero");
        assert_eq!(d.op_index, l.index());
        assert_eq!(d.op_name, "ln");
    }

    #[test]
    fn log_of_possibly_zero_is_silent_with_epsilon() {
        let (mut t, ps, wv) = fixture();
        let r = t.relu(wv);
        let shifted = t.add_scalar(r, 1e-12);
        let l = t.ln(shifted);
        let loss = t.mean_all(l);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "epsilon-guarded ln flagged: {report}");
    }

    #[test]
    fn log_of_proven_positive_interval_is_silent_without_epsilon() {
        // The boolean lattice could not prove tanh(x) + 2 > 0 (only an
        // epsilon shift on a non-negative value counted) and fired a false
        // positive here; the interval domain proves [1, 3] directly.
        let (mut t, ps, wv) = fixture();
        let h = t.tanh(wv);
        let shifted = t.add_scalar(h, 2.0);
        let l = t.ln(shifted);
        let loss = t.mean_all(l);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "ln of proven-positive interval flagged: {report}");
    }

    #[test]
    fn log_softmax_unfused_fires_on_ln_of_softmax() {
        let (mut t, ps, wv) = fixture();
        let s = t.softmax(wv);
        let l = t.ln(s);
        let loss = t.mean_all(l);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "log-softmax-unfused");
        assert_eq!(d.op_index, l.index());
        assert!(d.fix.contains("log_softmax"));
    }

    #[test]
    fn fused_log_softmax_is_clean() {
        let (mut t, ps, wv) = fixture();
        let l = t.log_softmax(wv);
        let loss = t.mean_all(l);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "fused log_softmax flagged: {report}");
    }

    #[test]
    fn div_missing_eps_fires_on_variance_like_denominator() {
        let (mut t, ps, wv) = fixture();
        let sq = t.mul(wv, wv); // x^2: non-negative, can be zero
        let q = t.div(wv, sq);
        let loss = t.mean_all(q);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "div-missing-eps");
        assert_eq!(d.op_index, q.index());
        assert_eq!(d.op_name, "div");
    }

    #[test]
    fn div_with_epsilon_is_clean() {
        let (mut t, ps, wv) = fixture();
        let sq = t.mul(wv, wv);
        let denom = t.add_scalar(sq, 1e-5);
        let q = t.div(wv, denom);
        let loss = t.mean_all(q);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "epsilon-guarded div flagged: {report}");
    }

    #[test]
    fn div_by_proven_positive_interval_is_silent_without_epsilon() {
        // Same false-positive fix for division: tanh(x) + 2 lies in
        // [1, 3], so the denominator needs no epsilon to be provably
        // positive — the old lattice flagged this.
        let (mut t, ps, wv) = fixture();
        let h = t.tanh(wv);
        let denom = t.add_scalar(h, 2.0);
        let q = t.div(wv, denom);
        let loss = t.mean_all(q);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "div by proven-positive interval flagged: {report}");
    }

    #[test]
    fn dropout_in_eval_fires_only_in_eval_mode() {
        let build = || {
            let (mut t, ps, wv) = fixture();
            let mut rng = StdRng::seed_from_u64(1);
            let d = t.dropout(wv, 0.5, true, &mut rng);
            let loss = t.mean_all(d);
            (t, ps, d, loss)
        };
        let (t, ps, d, loss) = build();
        let report = lint_graph(&t, loss, &ps, &LintConfig::eval());
        let diag = only_rule(&report, "dropout-in-eval");
        assert_eq!(diag.op_index, d.index());
        // The same tape linted as training-mode is clean.
        let (t, ps, _, loss) = build();
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "training dropout flagged: {report}");
    }

    #[test]
    fn unfused_transpose_matmul_fires_and_names_the_fused_kernel() {
        let (mut t, ps, wv) = fixture();
        let q = t.tanh(wv); // 3 x 4
        let kt = t.transpose(wv); // 4 x 3
        let scores = t.matmul(q, kt); // 3 x 3
        let loss = t.mean_all(scores);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "unfused-transpose-matmul");
        assert_eq!(d.op_index, kt.index());
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.fix.contains("matmul_nt"), "rhs transpose should suggest nt: {}", d.fix);
    }

    #[test]
    fn transpose_on_lhs_suggests_matmul_tn() {
        let (mut t, ps, wv) = fixture();
        let at = t.transpose(wv); // 4 x 3
        let prod = t.matmul(at, wv); // 4 x 4
        let loss = t.mean_all(prod);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "unfused-transpose-matmul");
        assert!(d.fix.contains("matmul_tn"), "lhs transpose should suggest tn: {}", d.fix);
    }

    #[test]
    fn transpose_feeding_non_matmul_is_clean() {
        let (mut t, ps, wv) = fixture();
        let at = t.transpose(wv);
        let s = t.softmax(at);
        let loss = t.mean_all(s);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "softmax-bound transpose flagged: {report}");
    }

    #[test]
    fn concat_growth_fires_on_deep_chain_only_at_the_head() {
        let (mut t, ps, wv) = fixture();
        let c1 = t.concat_cols(&[wv, wv]);
        let c2 = t.concat_cols(&[c1, wv]);
        let c3 = t.concat_cols(&[c2, wv]);
        let loss = t.mean_all(c3);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "concat-growth");
        assert_eq!(d.op_index, c3.index(), "must report once, at the chain head");
    }

    #[test]
    fn flat_concat_is_clean() {
        let (mut t, ps, wv) = fixture();
        let flat = t.concat_cols(&[wv, wv, wv, wv]);
        let loss = t.mean_all(flat);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "single concat flagged: {report}");
    }

    #[test]
    fn frozen_param_reachable_fires() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0xF2);
        let w = ps.add("enc.w", Tensor::rand_normal(3, 3, 0.0, 1.0, &mut rng));
        ps.freeze(w);
        let mut t = Tape::shape_only();
        let wv = t.param(&ps, w);
        let h = t.tanh(wv);
        let loss = t.mean_all(h);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "frozen-param-reachable");
        assert_eq!(d.op_index, wv.index());
        assert!(d.message.contains("enc.w"));
    }

    #[test]
    fn frozen_param_off_tape_is_clean() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0xF3);
        let used = ps.add("used", Tensor::rand_normal(2, 2, 0.0, 1.0, &mut rng));
        let frozen = ps.add("frozen.w", Tensor::rand_normal(2, 2, 0.0, 1.0, &mut rng));
        ps.freeze(frozen);
        let mut t = Tape::shape_only();
        let wv = t.param(&ps, used);
        let h = t.sigmoid(wv);
        let loss = t.mean_all(h);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "off-tape frozen param flagged: {report}");
    }

    #[test]
    fn unused_subgraph_reported_once_per_sink_with_size() {
        let (mut t, ps, wv) = fixture();
        // Dead three-op branch: tanh -> sigmoid, never consumed.
        let dead1 = t.tanh(wv);
        let dead2 = t.sigmoid(dead1);
        let live = t.gelu(wv);
        let loss = t.mean_all(live);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let d = only_rule(&report, "unused-subgraph");
        assert_eq!(d.op_index, dead2.index(), "reported at the sink of the dead branch");
        assert!(d.message.contains("2 op(s)"), "size miscounted: {}", d.message);
    }

    #[test]
    fn severity_overrides_apply_and_allow_suppresses() {
        let (mut t, ps, wv) = fixture();
        let e = t.exp(wv);
        let kt = t.transpose(wv);
        let scores = t.matmul(e, kt);
        let loss = t.mean_all(scores);
        // Default: naked-exp deny + unfused warn.
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert_eq!(report.count_at(Severity::Deny), 1);
        assert_eq!(report.count_at(Severity::Warn), 1);
        assert!(!report.is_clean_at(Severity::Deny));
        // Downgrade the deny, suppress the warn.
        let cfg = LintConfig::training()
            .with_rule("naked-exp", Severity::Warn)
            .with_rule("unfused-transpose-matmul", Severity::Allow);
        let report = lint_graph(&t, loss, &ps, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].severity, Severity::Warn);
        assert!(report.is_clean_at(Severity::Deny));
        assert!(!report.is_clean_at(Severity::Warn));
    }

    #[test]
    fn json_output_carries_rule_ids_and_spans() {
        let (mut t, ps, wv) = fixture();
        let e = t.exp(wv);
        let loss = t.mean_all(e);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        let json = report.to_json();
        assert!(json.contains("\"naked-exp\""), "{json}");
        assert!(json.contains("\"op_index\""), "{json}");
        // Round-trips through the vendored parser.
        serde_json::from_str::<serde::Value>(&json).expect("lint JSON must parse");
    }

    #[test]
    fn rule_catalogue_ids_are_unique_and_kebab_case() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(
                r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {} not kebab-case",
                r.id
            );
            assert!(RULES[i + 1..].iter().all(|o| o.id != r.id), "duplicate rule id {}", r.id);
        }
        assert_eq!(RULES.len(), 9);
    }

    #[test]
    fn attention_softmax_chain_is_fully_clean() {
        // The canonical HierGAT attention wiring: scores via fused nt,
        // softmax, context via fused tn — must produce zero diagnostics.
        let (mut t, ps, wv) = fixture();
        let scores = t.matmul_nt(wv, wv); // 3 x 3
        let att = t.softmax(scores);
        let ctx = t.matmul_tn(att, wv); // 3 x 4
        let loss = t.mean_all(ctx);
        let report = lint_graph(&t, loss, &ps, &LintConfig::training());
        assert!(report.diagnostics.is_empty(), "clean attention flagged: {report}");
    }
}
