//! Interval abstract interpretation over tapes: per-node value-range
//! proofs, numerical-safety findings, and quantisation feasibility.
//!
//! [`propagate`] runs one forward pass over a [`Tape`] in a non-relational
//! interval domain: every node gets an [`Interval`] — real bounds
//! `[lo, hi]` plus two element facts, `finite` (no `±inf` element) and
//! `nan_free` (no NaN element). Transfer functions are **sound for the
//! `f32` kernels**: all arithmetic runs in `f64`, bounds are rounded
//! outward to cover `f32` rounding (per-op relative slack for single
//! correctly-rounded kernels; magnitude-scaled slack for `k`-term
//! accumulations, where cancellation error scales with the largest term,
//! not the result), results past `f32::MAX` become attainable infinities,
//! and positive lower bounds inside the subnormal flush region collapse to
//! zero (a tensor "proven positive" must stay positive *as executed*).
//! The per-op soundness proptest and the whole-model containment test
//! (`tests/absint_containment.rs`) pin this discipline down empirically.
//!
//! Two seeding modes cover the two audit questions ([`AbsintConfig`]):
//! symbolic boxes (`inputs in [-B, B]` — what a shape-only tape can
//! promise) and *observed* seeds that read concrete per-tensor min/max
//! from the recorded input values and the [`ParamStore`] — point a
//! checkpoint's store at the pass and the proofs are weight-aware.
//!
//! [`audit_graph`] turns the intervals into an [`AuditReport`]: per-node
//! proven ranges, overflow / underflow / NaN-risk findings attributed to
//! the op that *introduces* the risk (an `exp` whose proven input upper
//! bound exceeds ~88.7 fires once, not at every downstream consumer), and
//! a quantisation feasibility table classifying every tensor reachable
//! from the root as int8 (affine scale/zero-point from the proven range),
//! f16 (bounded, but too wide for an 8-bit grid), or f32-required
//! (unbounded or NaN-risky). The lint engine's stability rules
//! ([`crate::lint`]) run on these same intervals — one bounds engine.

use crate::lint::Severity;
use crate::params::ParamStore;
use crate::tape::{Op, Tape, Var};
use hiergat_tensor::Tensor;
use serde::Serialize;
use std::fmt;

/// Largest finite `f32`, in `f64`.
const F32_MAX: f64 = f32::MAX as f64;
/// Positive values below this may flush to zero in `f32` (subnormal floor
/// with margin): a proven-positive bound cannot survive the flush.
const F32_TINY: f64 = 1.0e-44;
/// `f32` machine epsilon, in `f64`.
const EPS32: f64 = f32::EPSILON as f64;
/// `exp` overflows `f32` once its input exceeds `ln(f32::MAX)` ≈ 88.72;
/// the audit (and the `naked-exp` lint) use this with a safety margin.
pub const EXP_OVERFLOW_BOUND: f64 = 88.0;
/// Largest finite `f16` magnitude.
const F16_MAX: f64 = 65504.0;
/// A tensor is int8-eligible when its affine scale `(hi-lo)/255` stays
/// below this: worst-case rounding error `scale/2` ≤ 1/16, tight enough
/// for embeddings, attention weights, and probabilities.
const INT8_MAX_SCALE: f64 = 0.125;

/// Proven facts about one tensor: real bounds on its non-NaN elements plus
/// element-level finiteness/NaN freedom.
///
/// `lo`/`hi` bound every non-NaN element; `lo = -inf` / `hi = +inf` mean
/// "unbounded in that direction". `finite` asserts no element is `±inf`
/// even when the *bounds* are infinite (an unbounded-but-finite seed);
/// `nan_free` asserts no element is NaN (NaN carries no order, so it lives
/// outside the bounds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Interval {
    /// Greatest proven lower bound on every non-NaN element.
    pub lo: f64,
    /// Least proven upper bound on every non-NaN element.
    pub hi: f64,
    /// No element is `+inf` or `-inf`.
    pub finite: bool,
    /// No element is NaN.
    pub nan_free: bool,
}

impl Interval {
    /// Bounds with clean element facts (the caller asserts finiteness).
    pub fn bounded(lo: f64, hi: f64) -> Self {
        debug_assert!(lo <= hi, "interval bounds inverted: [{lo}, {hi}]");
        Self { lo, hi, finite: true, nan_free: true }
    }

    /// A single known value.
    pub fn point(v: f64) -> Self {
        Self::bounded(v, v)
    }

    /// Any finite `f32` — no magnitude bound, but no `±inf`/NaN either
    /// (the seed for inputs nothing is known about).
    pub fn unbounded() -> Self {
        Self { lo: f64::NEG_INFINITY, hi: f64::INFINITY, finite: true, nan_free: true }
    }

    /// Nothing proven at all: any value including `±inf` and NaN.
    pub fn top() -> Self {
        Self { lo: f64::NEG_INFINITY, hi: f64::INFINITY, finite: false, nan_free: false }
    }

    /// Smallest interval containing both operands (concat join).
    pub fn hull(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            finite: self.finite && other.finite,
            nan_free: self.nan_free && other.nan_free,
        }
    }

    /// Both bounds are finite numbers.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Every element is provably `> 0` (requires NaN freedom: NaN is not
    /// positive).
    pub fn proven_positive(&self) -> bool {
        self.nan_free && self.lo > 0.0
    }

    /// Largest absolute bound (`inf` when unbounded).
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// `true` when the concrete value `v` is covered by this abstraction —
    /// the containment predicate the differential tests check.
    pub fn contains(&self, v: f32) -> bool {
        if v.is_nan() {
            return !self.nan_free;
        }
        if v.is_infinite() && self.finite {
            return false;
        }
        self.lo <= f64::from(v) && f64::from(v) <= self.hi
    }

    fn may_pos_inf(&self) -> bool {
        !self.finite && self.hi == f64::INFINITY
    }

    fn may_neg_inf(&self) -> bool {
        !self.finite && self.lo == f64::NEG_INFINITY
    }

    fn may_inf(&self) -> bool {
        !self.finite
    }

    fn may_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }
}

/// How leaf tensors (inputs or parameters) are seeded.
#[derive(Debug, Clone, Copy)]
pub enum SeedMode {
    /// Symbolic box `[-b, b]` (`b = inf` seeds "any finite f32").
    Box(f64),
    /// Concrete per-tensor min/max read from the recorded value (inputs)
    /// or the [`ParamStore`] (parameters) — the weight-aware mode.
    Observed,
}

impl SeedMode {
    fn seed(self, value: &Tensor) -> Interval {
        match self {
            Self::Box(b) if b.is_finite() => Interval::bounded(-b.abs(), b.abs()),
            Self::Box(_) => Interval::unbounded(),
            Self::Observed => {
                if value.is_placeholder() || value.is_empty() {
                    return Interval::unbounded();
                }
                if value.has_non_finite() {
                    return Interval::top();
                }
                Interval::bounded(f64::from(value.min()), f64::from(value.max()))
            }
        }
    }

    fn describe(self, what: &str) -> String {
        match self {
            Self::Box(b) if b.is_finite() => format!("{what} in [-{b}, {b}]"),
            Self::Box(_) => format!("{what} unbounded"),
            Self::Observed => format!("{what} observed"),
        }
    }
}

/// One abstract-interpretation run: how inputs and parameters are seeded.
#[derive(Debug, Clone, Copy)]
pub struct AbsintConfig {
    /// Seed for [`Op::Input`] leaves.
    pub inputs: SeedMode,
    /// Seed for [`Op::Param`] leaves.
    pub params: SeedMode,
}

impl AbsintConfig {
    /// Symbolic boxes on both leaf kinds: inputs in `[-input_bound,
    /// input_bound]`, parameters in `[-param_bound, param_bound]`.
    pub fn symbolic(input_bound: f64, param_bound: f64) -> Self {
        Self { inputs: SeedMode::Box(input_bound), params: SeedMode::Box(param_bound) }
    }

    /// Weight-aware: symbolic input box, concrete per-parameter min/max
    /// from the store the pass is given (load a checkpoint into it first).
    pub fn weight_aware(input_bound: f64) -> Self {
        Self { inputs: SeedMode::Box(input_bound), params: SeedMode::Observed }
    }

    /// Concrete min/max on both leaf kinds (differential testing against
    /// an eager tape whose inputs carry real data).
    pub fn observed() -> Self {
        Self { inputs: SeedMode::Observed, params: SeedMode::Observed }
    }

    /// No assumptions at all: every leaf is any finite `f32`. This is what
    /// the lint rules run under — a proof that survives it holds for every
    /// input the graph could ever see.
    pub fn unbounded() -> Self {
        Self { inputs: SeedMode::Box(f64::INFINITY), params: SeedMode::Box(f64::INFINITY) }
    }

    /// Human-readable seed description for report headers.
    pub fn describe(&self) -> String {
        format!("{}, {}", self.inputs.describe("inputs"), self.params.describe("params"))
    }
}

// ---------------------------------------------------------------------------
// Outward rounding

/// Relative slack covering `terms` dependent `f32` rounding steps (with a
/// safety factor; the soundness proptest is the empirical check).
fn rel(terms: usize) -> f64 {
    (terms as f64 + 4.0) * 4.0 * EPS32
}

fn widen_down(x: f64, r: f64) -> f64 {
    if x.is_finite() {
        x - (r * x.abs() + F32_TINY)
    } else {
        x
    }
}

fn widen_up(x: f64, r: f64) -> f64 {
    if x.is_finite() {
        x + (r * x.abs() + F32_TINY)
    } else {
        x
    }
}

/// Final clamp into the `f32` value domain. Bounds past `f32::MAX` become
/// attainable infinities (clearing `finite`); a positive lower bound in
/// the subnormal flush region collapses to 0 and is reported as `flushed`
/// (exact-math positivity that `f32` execution cannot guarantee).
fn seal(mut lo: f64, mut hi: f64, finite_in: bool, nan_free: bool) -> (Interval, bool) {
    debug_assert!(!lo.is_nan() && !hi.is_nan(), "sealed bounds must not be NaN");
    let mut finite = finite_in;
    if hi > F32_MAX {
        hi = f64::INFINITY;
        finite = false;
    }
    if lo < -F32_MAX {
        lo = f64::NEG_INFINITY;
        finite = false;
    }
    let flushed = lo > 0.0 && lo < F32_TINY;
    if flushed {
        lo = 0.0;
    }
    if hi < 0.0 && hi > -F32_TINY {
        hi = 0.0;
    }
    (Interval { lo: lo.min(hi), hi, finite, nan_free }, flushed)
}

/// Seals an elementwise result whose kernel is one correctly-rounded op
/// (error relative to the true result, so per-endpoint slack is sound).
fn seal_elem(lo: f64, hi: f64, terms: usize, finite_in: bool, nan_free: bool) -> (Interval, bool) {
    let r = rel(terms);
    seal(widen_down(lo, r), widen_up(hi, r), finite_in, nan_free)
}

/// Seals a `k`-term `f32` accumulation of elements in `[elem_lo, elem_hi]`.
///
/// Cancellation error scales with the largest *element* magnitude, not the
/// result: sign-indefinite unbounded elements lose both bounds, while
/// sign-definite sums keep a relative bound (partials cannot cancel). A
/// mixed-sign sum whose partials can overflow may produce `inf - inf`
/// NaN, so NaN freedom also requires staying inside `f32` range.
fn seal_accum(
    elem_lo: f64,
    elem_hi: f64,
    k: usize,
    finite_in: bool,
    nan_free: bool,
) -> (Interval, bool) {
    let kf = k.max(1) as f64;
    let g = rel(k.max(1));
    let mag = elem_lo.abs().max(elem_hi.abs());
    let lo = if elem_lo >= 0.0 {
        widen_down(kf * elem_lo, g)
    } else if mag.is_finite() {
        kf * elem_lo - g * kf * mag - F32_TINY
    } else {
        f64::NEG_INFINITY
    };
    let hi = if elem_hi <= 0.0 {
        widen_up(kf * elem_hi, g)
    } else if mag.is_finite() {
        kf * elem_hi + g * kf * mag + F32_TINY
    } else {
        f64::INFINITY
    };
    let one_signed = elem_lo >= 0.0 || elem_hi <= 0.0;
    let in_range = mag.is_finite() && kf * mag <= F32_MAX;
    seal(lo, hi, finite_in, nan_free && (one_signed || in_range))
}

// ---------------------------------------------------------------------------
// Interval arithmetic

fn add_iv(a: &Interval, b: &Interval, terms: usize) -> (Interval, bool) {
    let nan = a.nan_free
        && b.nan_free
        && !(a.may_pos_inf() && b.may_neg_inf())
        && !(a.may_neg_inf() && b.may_pos_inf());
    seal_elem(a.lo + b.lo, a.hi + b.hi, terms, a.finite && b.finite, nan)
}

fn sub_iv(a: &Interval, b: &Interval) -> (Interval, bool) {
    let nan = a.nan_free
        && b.nan_free
        && !(a.may_pos_inf() && b.may_pos_inf())
        && !(a.may_neg_inf() && b.may_neg_inf());
    seal_elem(a.lo - b.hi, a.hi - b.lo, 1, a.finite && b.finite, nan)
}

/// Endpoint product with the `0 * inf` corner defined as 0: sound for
/// bound search because any corner pairing an infinite endpoint with a
/// *nonzero* endpoint still contributes the infinity.
fn pmul(x: f64, y: f64) -> f64 {
    if x == 0.0 || y == 0.0 {
        0.0
    } else {
        x * y
    }
}

/// Raw product bounds (no rounding/sealing).
fn mul_bounds(a: &Interval, b: &Interval) -> (f64, f64) {
    let c = [pmul(a.lo, b.lo), pmul(a.lo, b.hi), pmul(a.hi, b.lo), pmul(a.hi, b.hi)];
    let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

fn mul_nan_free(a: &Interval, b: &Interval) -> bool {
    a.nan_free && b.nan_free && !(a.may_inf() && b.may_zero()) && !(b.may_inf() && a.may_zero())
}

fn mul_iv(a: &Interval, b: &Interval) -> (Interval, bool) {
    let (lo, hi) = mul_bounds(a, b);
    seal_elem(lo, hi, 1, a.finite && b.finite, mul_nan_free(a, b))
}

/// `x * x` with the same tape node on both sides: never negative.
fn square_iv(a: &Interval) -> (Interval, bool) {
    let (lo, hi) = if a.lo >= 0.0 {
        (pmul(a.lo, a.lo), pmul(a.hi, a.hi))
    } else if a.hi <= 0.0 {
        (pmul(a.hi, a.hi), pmul(a.lo, a.lo))
    } else {
        (0.0, pmul(a.mag(), a.mag()))
    };
    seal_elem(lo, hi, 1, a.finite, a.nan_free)
}

fn div_iv(num: &Interval, den: &Interval) -> (Interval, bool) {
    if den.may_zero() || !den.nan_free {
        // x / 0 is ±inf in f32 (NaN at 0/0): no bound survives.
        return (Interval::top(), false);
    }
    // Sign-definite denominator: reciprocal is the monotone image
    // [1/hi, 1/lo] (1/±inf → ±0), then a product.
    let recip = Interval { lo: 1.0 / den.hi, hi: 1.0 / den.lo, finite: true, nan_free: true };
    let (lo, hi) = mul_bounds(num, &recip);
    // inf/inf NaN needs an infinite numerator; infinite *bounds* with
    // finite elements stay safe (huge/huge is finite).
    let nan = num.nan_free && (den.finite || !num.may_inf());
    seal_elem(lo, hi, 2, num.finite, nan)
}

// ---------------------------------------------------------------------------
// The forward pass

struct AbsState {
    iv: Vec<Interval>,
    /// Positivity lost to the f32 subnormal flush at this node.
    flushed: Vec<bool>,
}

/// Proven interval for every tape node, in tape order.
pub fn propagate(tape: &Tape, ps: &ParamStore, cfg: &AbsintConfig) -> Vec<Interval> {
    propagate_state(tape, ps, cfg).iv
}

#[allow(clippy::too_many_lines)] // one arm per tape op, by design
fn propagate_state(tape: &Tape, ps: &ParamStore, cfg: &AbsintConfig) -> AbsState {
    let n = tape.len();
    let mut iv: Vec<Interval> = Vec::with_capacity(n);
    let mut flushed: Vec<bool> = Vec::with_capacity(n);
    for i in 0..n {
        let g = |v: &Var| iv[v.index()];
        let gf = |v: &Var| flushed[v.index()];
        let shape = tape.value(Var::from_index(i)).shape();
        let (out, fl): (Interval, bool) = match tape.op_at(i) {
            Op::Input => (cfg.inputs.seed(tape.value(Var::from_index(i))), false),
            Op::Param(pid) => (cfg.params.seed(ps.value(*pid)), false),
            Op::Add(a, b) | Op::AddRow(a, b) => add_iv(&g(a), &g(b), 1),
            Op::AddCol(a, b) => {
                let (mut out, fl) = add_iv(&g(a), &g(b), 1);
                // Max-subtraction: add_col(x, scale(max_cols(x), -1)) is
                // x - max(x) computed in one correctly-rounded subtraction
                // per element — exactly ≤ 0. A non-relational domain
                // cannot see this (x and max(x) are independent
                // intervals), so the stabilizer pattern is matched
                // syntactically and intersected in.
                if let Op::Scale(m, k) = tape.op_at(b.index()) {
                    if *k == -1.0 {
                        if let Op::MaxCols(src) = tape.op_at(m.index()) {
                            if src.index() == a.index() {
                                out.hi = out.hi.min(0.0);
                                out.lo = out.lo.min(out.hi);
                            }
                        }
                    }
                }
                (out, fl)
            }
            Op::Sub(a, b) => sub_iv(&g(a), &g(b)),
            Op::Mul(a, b) | Op::MulCol(a, b) => {
                if a.index() == b.index() {
                    square_iv(&g(a))
                } else {
                    mul_iv(&g(a), &g(b))
                }
            }
            Op::Div(a, b) => div_iv(&g(a), &g(b)),
            Op::Scale(a, k) => {
                let x = g(a);
                let k = f64::from(*k);
                let (lo, hi) = mul_bounds(&x, &Interval::point(k));
                let nan = x.nan_free && !(k == 0.0 && x.may_inf());
                seal_elem(lo, hi, 1, x.finite, nan)
            }
            Op::AddScalar(a, k) => add_iv(&g(a), &Interval::point(f64::from(*k)), 1),
            // The tensor kernels evaluate every `a_ik * b_kj` term (no
            // zero-skipping), so `inf` meeting a possibly-zero operand
            // really can produce NaN at runtime — exactly what
            // `mul_nan_free` assumes.
            Op::Matmul(a, b) | Op::MatmulNt(a, b) | Op::MatmulTn(a, b) => {
                let (xa, xb) = (g(a), g(b));
                let k = match tape.op_at(i) {
                    Op::MatmulTn(..) => tape.value(*a).shape().0,
                    _ => tape.value(*a).shape().1,
                }
                .max(1);
                let (plo, phi) = mul_bounds(&xa, &xb);
                let fin = xa.finite && xb.finite;
                seal_accum(plo, phi, k, fin, mul_nan_free(&xa, &xb) && fin)
            }
            Op::SumAll(a) => {
                let x = g(a);
                let k = tape.value(*a).len().max(1);
                seal_accum(x.lo, x.hi, k, x.finite, x.nan_free && x.finite)
            }
            Op::MeanAll(a) => {
                let x = g(a);
                let k = tape.value(*a).len().max(1);
                let (sum, fl) = seal_accum(x.lo, x.hi, k, x.finite, x.nan_free && x.finite);
                let kf = k as f64;
                let (out, fl2) = seal_elem(sum.lo / kf, sum.hi / kf, 1, sum.finite, sum.nan_free);
                (out, fl || fl2)
            }
            Op::SumRows(a) => {
                let x = g(a);
                let k = tape.value(*a).shape().0.max(1);
                seal_accum(x.lo, x.hi, k, x.finite, x.nan_free && x.finite)
            }
            Op::SumCols(a) => {
                let x = g(a);
                let k = tape.value(*a).shape().1.max(1);
                seal_accum(x.lo, x.hi, k, x.finite, x.nan_free && x.finite)
            }
            Op::MaxCols(a) => {
                let x = g(a);
                if x.nan_free {
                    (x, gf(a))
                } else {
                    // The max fold skips NaN; a fully-NaN row yields the
                    // -inf init value, never NaN itself.
                    (
                        Interval { lo: f64::NEG_INFINITY, hi: x.hi, finite: false, nan_free: true },
                        false,
                    )
                }
            }
            Op::Softmax(a) => softmax_iv(&g(a), tape.value(*a).shape().1.max(1)),
            Op::LogSoftmax(a) => log_softmax_iv(&g(a), tape.value(*a).shape().1.max(1)),
            Op::Exp(a) => {
                let x = g(a);
                // exp never creates NaN from non-NaN input (exp(-inf)=0,
                // exp(inf)=inf); relative error grows with |x|.
                let r = rel(8 + x.mag().min(200.0) as usize);
                let raw_lo = x.lo.exp();
                let lo = widen_down(raw_lo, r).max(0.0);
                let hi = widen_up(x.hi.exp(), r);
                let (out, fl) = seal(lo, hi, hi <= F32_MAX, x.nan_free);
                (out, fl || (raw_lo > 0.0 && out.lo == 0.0))
            }
            Op::Ln(a) => ln_iv(&g(a)),
            Op::Sqrt(a) => {
                let x = g(a);
                if x.hi < 0.0 {
                    // Entirely negative: every element is NaN.
                    (Interval { lo: 0.0, hi: 0.0, finite: true, nan_free: false }, false)
                } else {
                    let lo = widen_down(x.lo.max(0.0).sqrt(), rel(1)).max(0.0);
                    let hi = widen_up(x.hi.sqrt(), rel(1));
                    seal(lo, hi, x.finite || x.hi.is_finite(), x.nan_free && x.lo >= 0.0)
                }
            }
            Op::Relu(a) => {
                let x = g(a);
                // The kernel is v.max(0.0): f32::max returns the other
                // operand on NaN, so relu *launders* NaN to 0 and the
                // output is always NaN-free.
                let lo = if x.nan_free { x.lo.max(0.0) } else { 0.0 };
                seal(lo, x.hi.max(0.0), x.hi <= F32_MAX, true)
            }
            Op::LeakyRelu(a, alpha) => {
                let x = g(a);
                let al = f64::from(*alpha);
                let mut c = vec![x.lo.max(0.0).min(x.hi), pmul(al, x.lo), pmul(al, x.hi)];
                if x.hi > 0.0 {
                    c.push(x.hi);
                }
                if x.lo > 0.0 {
                    c.push(x.lo);
                }
                let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                seal_elem(lo, hi, 1, x.finite, x.nan_free)
            }
            Op::Tanh(a) => {
                let x = g(a);
                let lo = widen_down(x.lo.tanh(), rel(2)).max(-1.0);
                let hi = widen_up(x.hi.tanh(), rel(2)).min(1.0);
                (Interval { lo, hi, finite: true, nan_free: x.nan_free }, false)
            }
            Op::Sigmoid(a) => {
                let x = g(a);
                // sigmoid(±inf) is exactly 0/1 — no NaN even off-range.
                let raw_lo = sigmoid64(x.lo);
                let lo = widen_down(raw_lo, rel(4)).max(0.0);
                let hi = widen_up(sigmoid64(x.hi), rel(4)).min(1.0);
                let (out, fl) = seal(lo, hi, true, x.nan_free);
                // Exact-math positivity that f32 cannot hold: sigmoid
                // saturates to exactly 0 once exp(-x) overflows.
                (out, fl || (raw_lo > 0.0 && out.lo == 0.0))
            }
            Op::Gelu(a) => gelu_iv(&g(a)),
            Op::LayerNorm { x, gamma, beta, .. } => {
                let c = tape.value(*x).shape().1.max(1);
                layer_norm_iv(&g(x), &g(gamma), &g(beta), c)
            }
            Op::ConcatCols(parts) | Op::ConcatRows(parts) => {
                let mut out: Option<Interval> = None;
                let mut fl = false;
                for p in parts {
                    let pv = iv[p.index()];
                    fl = fl || flushed[p.index()];
                    out = Some(out.map_or(pv, |o| o.hull(&pv)));
                }
                (out.unwrap_or_else(Interval::top), fl)
            }
            Op::Transpose(a)
            | Op::SliceCols { x: a, .. }
            | Op::SliceRows { x: a, .. }
            | Op::GatherRows { table: a, .. } => (g(a), gf(a)),
            Op::Dropout { x, mask } => {
                let xv = g(x);
                let factor = if tape.is_shape_only() || mask.is_placeholder() || mask.is_empty() {
                    // No mask sampled: the keep-probability (and so the
                    // 1/keep scale) is unknown — any non-negative factor.
                    Interval { lo: 0.0, hi: f64::INFINITY, finite: true, nan_free: true }
                } else {
                    Interval::bounded(f64::from(mask.min()), f64::from(mask.max()))
                };
                let (lo, hi) = mul_bounds(&xv, &factor);
                seal_elem(lo, hi, 1, xv.finite, mul_nan_free(&xv, &factor))
            }
            Op::CrossEntropyLogits { logits, targets } => {
                ce_iv(&g(logits), tape.value(*logits).shape().1.max(1), targets.len(), 1.0)
            }
            Op::WeightedCrossEntropyLogits { logits, targets, weights } => {
                let wsum: f64 = weights.iter().map(|&w| f64::from(w)).sum();
                let wabs: f64 = weights.iter().map(|&w| f64::from(w).abs()).sum();
                let skew = if wsum > 0.0 { wabs / wsum } else { f64::INFINITY };
                ce_iv(&g(logits), tape.value(*logits).shape().1.max(1), targets.len(), skew)
            }
            Op::BceWithLogits { logits, targets } => bce_iv(&g(logits), targets),
            Op::MseLoss { pred, target } => {
                let p = g(pred);
                let t = SeedMode::Observed.seed(target);
                let (d, _) = sub_iv(&p, &t);
                let (sq, _) = square_iv(&d);
                let k = target.len().max(1);
                let (sum, fl) = seal_accum(sq.lo, sq.hi, k, sq.finite, sq.nan_free && sq.finite);
                let kf = k as f64;
                let (out, fl2) = seal_elem(sum.lo / kf, sum.hi / kf, 1, sum.finite, sum.nan_free);
                (out, fl || fl2)
            }
        };
        debug_assert!(
            out.lo <= out.hi,
            "inverted interval [{}, {}] at op #{i} ({}) of shape {shape:?}",
            out.lo,
            out.hi,
            tape.op_name(i)
        );
        iv.push(out);
        flushed.push(fl);
    }
    AbsState { iv, flushed }
}

fn sigmoid64(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Softmax rows: outputs in `[p_min, 1]`. The minimum probability is the
/// one-logit-at-`lo`, rest-at-`hi` configuration, `1/(1+(c-1)e^w)`; it
/// only survives narrow input widths (past ~80 the f32 numerator
/// underflows to exactly 0).
fn softmax_iv(x: &Interval, c: usize) -> (Interval, bool) {
    let nan = x.nan_free && x.finite;
    let w = x.hi - x.lo;
    let (lo, clamped) = if x.is_bounded() && w <= 80.0 {
        let p_min = 1.0 / (1.0 + (c.saturating_sub(1)) as f64 * w.exp());
        let lo = widen_down(p_min, rel(c + w as usize + 8)).max(0.0);
        (lo, lo == 0.0)
    } else {
        // Wide inputs: the shifted numerator exp(x - max) underflows to
        // exactly 0 in f32 — the zero probability is attainable.
        (0.0, x.is_bounded())
    };
    let (out, fl) = seal(lo, 1.0, true, nan);
    (out, fl || clamped)
}

/// Log-softmax rows: `[-(w + ln(c-1+e^-w)), 0]` for bounded inputs (the
/// exact worst case: one logit at `lo`, the rest at `hi`), with slack for
/// the kernel's shifted exp-sum-log pipeline.
fn log_softmax_iv(x: &Interval, c: usize) -> (Interval, bool) {
    let nan = x.nan_free && x.finite;
    if !x.is_bounded() {
        return (Interval { lo: f64::NEG_INFINITY, hi: 0.0, finite: false, nan_free: nan }, false);
    }
    let w = x.hi - x.lo;
    let lo_raw = -(w + ((c.saturating_sub(1)) as f64 + (-w).exp()).ln());
    let r = rel(c + 8) + rel(1) * x.mag();
    let lo = if lo_raw.is_finite() {
        lo_raw - (r * lo_raw.abs() + r * x.mag() + F32_TINY)
    } else {
        lo_raw
    };
    let hi = r * x.mag() + F32_TINY;
    seal(lo, hi, lo.is_finite(), nan)
}

fn ln_iv(x: &Interval) -> (Interval, bool) {
    if x.hi <= 0.0 {
        // ln(0) = -inf, ln(negative) = NaN: nothing bounded survives.
        let nan = x.nan_free && x.lo >= 0.0 && x.hi >= 0.0;
        return (
            Interval { lo: f64::NEG_INFINITY, hi: f64::NEG_INFINITY, finite: false, nan_free: nan },
            false,
        );
    }
    // ln is insensitive to relative input error (ln(x(1+e)) = ln x + e):
    // absolute eps-scale slack plus output-relative kernel slack.
    let abs = 16.0 * EPS32;
    let lo = if x.lo > 0.0 { widen_down(x.lo.ln(), rel(8)) - abs } else { f64::NEG_INFINITY };
    let hi = widen_up(x.hi.ln(), rel(8)) + abs;
    let finite = lo.is_finite() && x.finite;
    (Interval { lo, hi: hi.min(F32_MAX), finite, nan_free: x.nan_free && x.lo >= 0.0 }, false)
}

/// GELU (tanh approximation): endpoints are the only extrema candidates
/// except the interior dip (min ≈ -0.17 near x ≈ -0.75, covered by -0.2).
fn gelu_iv(x: &Interval) -> (Interval, bool) {
    let g64 = |v: f64| -> f64 {
        if v == f64::NEG_INFINITY {
            return 0.0; // limit; the interior-dip candidate covers the rest
        }
        let u = 0.797_884_6 * (v + 0.044_715 * v * v * v);
        0.5 * v * (1.0 + u.tanh())
    };
    let (a, b) = (g64(x.lo), g64(x.hi));
    let mut lo = a.min(b);
    let mut hi = a.max(b);
    if x.lo < 0.0 {
        lo = lo.min(-0.2);
        hi = hi.max(0.0);
    }
    // f32 gelu(-inf) evaluates 0.5 * -inf * 0 = NaN.
    let nan = x.nan_free && !x.may_neg_inf();
    seal_elem(lo, hi, 8, x.finite, nan)
}

/// LayerNorm: `|x̂| ≤ sqrt(c)` for the biased row variance (each squared
/// deviation is at most `c` times their mean), then the affine map by
/// gamma/beta intervals. Needs the row statistics themselves to stay in
/// f32 range: `c * mag²` within `f32::MAX`.
fn layer_norm_iv(x: &Interval, gamma: &Interval, beta: &Interval, c: usize) -> (Interval, bool) {
    let cf = c as f64;
    let stats_ok = x.nan_free && x.finite && x.is_bounded() && cf * x.mag() * x.mag() <= F32_MAX;
    if !stats_ok {
        return (Interval::top(), false);
    }
    let s = widen_up(cf.sqrt(), rel(c + 4));
    let xhat = Interval::bounded(-s, s);
    let (scaled, _) = mul_iv(&xhat, gamma);
    add_iv(&scaled, beta, 2)
}

/// Cross-entropy family: mean of per-row `-log p(target)`, each in
/// `[0, -ls_lo]` where `ls_lo` is the log-softmax lower bound. `skew` is
/// `Σ|w|/Σw` (1 for the unweighted mean); negative weights widen the
/// bounds symmetrically.
fn ce_iv(logits: &Interval, c: usize, rows: usize, skew: f64) -> (Interval, bool) {
    let (ls, _) = log_softmax_iv(logits, c);
    let nan = ls.nan_free && skew.is_finite();
    if ls.lo == f64::NEG_INFINITY || !skew.is_finite() {
        return (
            Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, finite: false, nan_free: nan },
            false,
        );
    }
    let v = -ls.lo; // largest per-row contribution
    let hi = widen_up(skew * v, rel(rows + c + 8));
    let lo = if skew <= 1.0 { -F32_TINY } else { -hi };
    seal(lo, hi, true, nan)
}

/// Stable BCE-with-logits: per-row `max(z,0) - z*y + ln(1+e^-|z|)`, which
/// for `y in [0, 1]` lies in `[0, |z| + ln 2]`.
fn bce_iv(logits: &Interval, targets: &[f32]) -> (Interval, bool) {
    let tmax = targets.iter().map(|&t| f64::from(t).abs()).fold(0.0f64, f64::max);
    let in_range = targets.iter().all(|&t| (0.0..=1.0).contains(&t));
    let nan = logits.nan_free && logits.finite;
    if !logits.is_bounded() {
        let lo = if in_range { 0.0 } else { f64::NEG_INFINITY };
        return (Interval { lo, hi: f64::INFINITY, finite: false, nan_free: nan }, false);
    }
    let m = logits.mag();
    let hi = widen_up(m * (1.0 + tmax) + std::f64::consts::LN_2, rel(targets.len() + 8));
    let lo = if in_range { -F32_TINY } else { -hi };
    seal(lo, hi, true, nan)
}

// ---------------------------------------------------------------------------
// Audit report

/// Proven range of one tape node.
#[derive(Debug, Clone, Serialize)]
pub struct NodeRange {
    /// Tape index.
    pub op_index: usize,
    /// Diagnostic op name.
    pub op_name: String,
    /// Output shape.
    pub shape: (usize, usize),
    /// Proven lower bound (serialized as `null` when `-inf`).
    pub lo: f64,
    /// Proven upper bound (serialized as `null` when `+inf`).
    pub hi: f64,
    /// No element can be `±inf`.
    pub finite: bool,
    /// No element can be NaN.
    pub nan_free: bool,
}

/// One numerical-safety finding, attributed to the op introducing it.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Finding kind: `nan-risk`, `overflow-risk`, or `underflow-risk`.
    pub kind: String,
    /// Gate severity (NaN/overflow deny; underflow warns).
    pub severity: Severity,
    /// Tape index of the responsible op.
    pub op_index: usize,
    /// Diagnostic op name.
    pub op_name: String,
    /// Output shape of the responsible op.
    pub shape: (usize, usize),
    /// What can go wrong, in one sentence.
    pub message: String,
}

/// Quantisation feasibility of one tensor reachable from the audit root.
#[derive(Debug, Clone, Serialize)]
pub struct QuantEntry {
    /// Tape index.
    pub op_index: usize,
    /// Diagnostic op name.
    pub op_name: String,
    /// `int8`, `f16`, or `f32` (required).
    pub class: String,
    /// Affine scale `(max(hi, 0) - min(lo, 0)) / 255` — the proven
    /// interval extended to include zero so the `u8` zero point is always
    /// representable (0 unless int8).
    pub scale: f64,
    /// Affine zero point in `[0, 255]` (0 unless int8).
    pub zero_point: u8,
}

/// Per-class tensor counts over the reachable graph.
#[derive(Debug, Clone, Default, Serialize)]
pub struct QuantSummary {
    /// Tensors representable on an 8-bit affine grid.
    pub int8: usize,
    /// Bounded tensors too wide for int8 but within f16 range.
    pub f16: usize,
    /// Unbounded or NaN-risky tensors that must stay f32.
    pub f32_required: usize,
}

/// Everything one abstract-interpretation audit proves about a graph.
#[derive(Debug, Clone, Serialize)]
pub struct AuditReport {
    /// Nodes on the audited tape.
    pub node_count: usize,
    /// Human-readable seed description.
    pub seed: String,
    /// Nodes with both bounds finite.
    pub bounded_nodes: usize,
    /// Per-node proven ranges, in tape order.
    pub ranges: Vec<NodeRange>,
    /// Numerical-safety findings, in tape order.
    pub findings: Vec<Finding>,
    /// Quantisation feasibility per reachable tensor, in tape order.
    pub quant: Vec<QuantEntry>,
    /// Per-class counts over `quant`.
    pub quant_summary: QuantSummary,
}

impl AuditReport {
    /// Count of findings at exactly `severity`.
    pub fn count_at(&self, severity: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == severity).count()
    }

    /// `true` when no finding is at or above `gate` (`--deny` semantics,
    /// matching [`crate::lint::LintReport::is_clean_at`]).
    pub fn is_clean_at(&self, gate: Severity) -> bool {
        !self.findings.iter().any(|f| f.severity >= gate)
    }

    /// Pretty JSON via the vendored serializer (infinite bounds serialize
    /// as `null`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("audit report serializes infallibly")
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {} nodes, {} bounded; seed: {}",
            self.node_count, self.bounded_nodes, self.seed
        )?;
        writeln!(
            f,
            "  quant: {} int8, {} f16, {} f32-required (of {} reachable tensors)",
            self.quant_summary.int8,
            self.quant_summary.f16,
            self.quant_summary.f32_required,
            self.quant.len()
        )?;
        if self.findings.is_empty() {
            writeln!(f, "  findings: none")?;
        } else {
            for d in &self.findings {
                writeln!(
                    f,
                    "  {}[{}] op #{} ({}, {}x{}): {}",
                    d.kind,
                    d.severity.name(),
                    d.op_index,
                    d.op_name,
                    d.shape.0,
                    d.shape.1,
                    d.message
                )?;
            }
        }
        Ok(())
    }
}

/// Runs the interval pass and assembles the [`AuditReport`] for the graph
/// rooted at `root` (quantisation classifies only tensors reachable from
/// it — what a quantised session would materialize).
pub fn audit_graph(tape: &Tape, root: Var, ps: &ParamStore, cfg: &AbsintConfig) -> AuditReport {
    let n = tape.len();
    let state = propagate_state(tape, ps, cfg);
    let shape = |i: usize| tape.value(Var::from_index(i)).shape();

    let ranges: Vec<NodeRange> = (0..n)
        .map(|i| NodeRange {
            op_index: i,
            op_name: tape.op_name(i).to_string(),
            shape: shape(i),
            lo: state.iv[i].lo,
            hi: state.iv[i].hi,
            finite: state.iv[i].finite,
            nan_free: state.iv[i].nan_free,
        })
        .collect();

    let mut findings = Vec::new();
    for i in 0..n {
        let out = &state.iv[i];
        let ins = tape.op_at(i).inputs();
        let ins_nan = ins.iter().all(|v| state.iv[v.index()].nan_free);
        let ins_fin = ins.iter().all(|v| state.iv[v.index()].finite);
        let mut push = |kind: &str, severity: Severity, message: String| {
            findings.push(Finding {
                kind: kind.to_string(),
                severity,
                op_index: i,
                op_name: tape.op_name(i).to_string(),
                shape: shape(i),
                message,
            });
        };
        if !out.nan_free && ins_nan {
            let msg = match tape.op_at(i) {
                Op::Div(_, d) => format!(
                    "denominator range [{:.3e}, {:.3e}] contains 0: 0/0 is NaN",
                    state.iv[d.index()].lo,
                    state.iv[d.index()].hi
                ),
                Op::Ln(a) => format!(
                    "input lower bound {:.3e} is negative: ln of a negative value is NaN",
                    state.iv[a.index()].lo
                ),
                Op::Sqrt(a) => format!(
                    "input lower bound {:.3e} is negative: sqrt of a negative value is NaN",
                    state.iv[a.index()].lo
                ),
                _ => "op can produce NaN although every input is proven NaN-free".to_string(),
            };
            push("nan-risk", Severity::Deny, msg);
        } else if !out.finite && ins_fin {
            let msg = match tape.op_at(i) {
                Op::Exp(a) => format!(
                    "proven input upper bound {:.1} exceeds ln(f32::MAX) ≈ 88.7: \
                     exp overflows to +inf",
                    state.iv[a.index()].hi
                ),
                Op::Ln(a) => format!(
                    "input lower bound {:.3e} reaches 0: ln underflows to -inf",
                    state.iv[a.index()].lo
                ),
                Op::Div(..) => "denominator can reach 0: quotient overflows to ±inf".to_string(),
                Op::Input | Op::Param(_) => "seed tensor contains non-finite values".to_string(),
                _ => format!(
                    "proven bounds [{:.3e}, {:.3e}] exceed f32 range: result overflows to ±inf",
                    out.lo, out.hi
                ),
            };
            push("overflow-risk", Severity::Deny, msg);
        }
        // Positivity lost to the f32 subnormal flush only matters where a
        // consumer needs it.
        let needs_pos = match tape.op_at(i) {
            Op::Ln(a) => Some(a),
            Op::Div(_, d) => Some(d),
            _ => None,
        };
        if let Some(a) = needs_pos {
            let av = &state.iv[a.index()];
            if av.lo == 0.0 && state.flushed[a.index()] {
                push(
                    "underflow-risk",
                    Severity::Warn,
                    "input is positive in exact arithmetic but its lower bound \
                     flushes to zero in f32 subnormals"
                        .to_string(),
                );
            }
        }
    }

    // Quantisation table over the subgraph the root actually consumes.
    let mut reachable = vec![false; n];
    if root.index() < n {
        let mut stack = vec![root.index()];
        reachable[root.index()] = true;
        while let Some(i) = stack.pop() {
            for v in tape.op_at(i).inputs() {
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
    }
    let mut quant = Vec::new();
    let mut summary = QuantSummary::default();
    for (i, _) in reachable.iter().enumerate().take(n).filter(|&(_, r)| *r) {
        let (class, scale, zero_point) = classify(&state.iv[i]);
        match class {
            "int8" => summary.int8 += 1,
            "f16" => summary.f16 += 1,
            _ => summary.f32_required += 1,
        }
        quant.push(QuantEntry {
            op_index: i,
            op_name: tape.op_name(i).to_string(),
            class: class.to_string(),
            scale,
            zero_point,
        });
    }

    let bounded_nodes = state.iv.iter().filter(|v| v.is_bounded()).count();
    AuditReport {
        node_count: n,
        seed: cfg.describe(),
        bounded_nodes,
        ranges,
        findings,
        quant,
        quant_summary: summary,
    }
}

/// int8 / f16 / f32 classification with the affine int8 parameters.
///
/// The int8 grid is derived from the proven interval *extended to include
/// zero*: a `u8` zero point can only represent zero exactly when
/// `lo <= 0 <= hi`, and without the extension an interval like `[2, 5]`
/// would clamp its zero point to 0 and leave the grid covering `[0, 3]` —
/// values near `hi` would saturate with error far beyond `scale / 2`. With
/// the extension every in-interval value round-trips within half a grid
/// step (the executor's quantiser relies on this bound).
fn classify(iv: &Interval) -> (&'static str, f64, u8) {
    if !iv.finite || !iv.nan_free || !iv.is_bounded() {
        return ("f32", 0.0, 0);
    }
    let lo = iv.lo.min(0.0);
    let hi = iv.hi.max(0.0);
    let width = hi - lo;
    let scale = width / 255.0;
    if scale <= INT8_MAX_SCALE {
        let zp = if scale > 0.0 { (-lo / scale).round().clamp(0.0, 255.0) as u8 } else { 0 };
        return ("int8", scale, zp);
    }
    if iv.mag() <= F16_MAX {
        return ("f16", 0.0, 0);
    }
    ("f32", 0.0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(bound: f64) -> (Tape, ParamStore, Var, AbsintConfig) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0xAB51);
        let w = ps.add("w", Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng));
        let mut t = Tape::shape_only();
        let wv = t.param(&ps, w);
        (t, ps, wv, AbsintConfig::symbolic(bound, bound))
    }

    #[test]
    fn bounded_seed_flows_through_elementwise_chain() {
        let (mut t, ps, wv, cfg) = fixture(2.0);
        let h = t.tanh(wv);
        let s = t.add_scalar(h, 3.0);
        let iv = propagate(&t, &ps, &cfg);
        let out = iv[s.index()];
        // tanh([-2, 2]) = [-0.964, 0.964], shifted by 3.
        assert!(out.lo > 2.0 && out.lo < 2.1, "lo {}", out.lo);
        assert!(out.hi > 3.9 && out.hi < 4.0, "hi {}", out.hi);
        assert!(out.finite && out.nan_free);
        assert!(out.proven_positive());
    }

    #[test]
    fn exp_of_wide_box_loses_finiteness_but_not_nan_freedom() {
        let (mut t, ps, wv, cfg) = fixture(100.0);
        let e = t.exp(wv);
        let iv = propagate(&t, &ps, &cfg);
        let out = iv[e.index()];
        assert!(!out.finite, "exp(100) overflows f32");
        assert!(out.nan_free, "exp never creates NaN");
        assert!(out.lo >= 0.0);
    }

    #[test]
    fn max_subtraction_caps_unbounded_input_at_zero() {
        let (mut t, ps, wv, _) = fixture(2.0);
        let m = t.max_cols(wv);
        let neg = t.scale(m, -1.0);
        let shifted = t.add_col(wv, neg);
        let e = t.exp(shifted);
        let iv = propagate(&t, &ps, &AbsintConfig::unbounded());
        assert!(iv[shifted.index()].hi <= 0.0, "x - max(x) must cap at 0");
        let eo = iv[e.index()];
        assert!(eo.finite && eo.nan_free && eo.hi <= 1.001, "exp in ~[0,1]: {eo:?}");
    }

    #[test]
    fn division_by_interval_spanning_zero_is_top() {
        let (mut t, ps, wv, cfg) = fixture(2.0);
        let q = t.div(wv, wv); // same node: still spans zero as an interval
        let iv = propagate(&t, &ps, &cfg);
        assert!(!iv[q.index()].nan_free, "0/0 risk must clear nan_free");
    }

    #[test]
    fn division_by_proven_positive_denominator_stays_bounded() {
        let (mut t, ps, wv, cfg) = fixture(2.0);
        let sq = t.mul(wv, wv);
        let den = t.add_scalar(sq, 1.0); // [1, 5]
        let q = t.div(wv, den);
        let iv = propagate(&t, &ps, &cfg);
        let out = iv[q.index()];
        assert!(out.finite && out.nan_free, "{out:?}");
        assert!(out.lo >= -2.1 && out.hi <= 2.1, "{out:?}");
    }

    #[test]
    fn softmax_of_narrow_box_is_proven_positive() {
        let (mut t, ps, wv, cfg) = fixture(4.0);
        let s = t.softmax(wv);
        let iv = propagate(&t, &ps, &cfg);
        let out = iv[s.index()];
        assert!(out.proven_positive(), "narrow softmax min prob must survive: {out:?}");
        assert!(out.hi <= 1.0);
    }

    #[test]
    fn softmax_of_unbounded_input_keeps_probability_range() {
        let (mut t, ps, wv, _) = fixture(1.0);
        let s = t.softmax(wv);
        let iv = propagate(&t, &ps, &AbsintConfig::unbounded());
        let out = iv[s.index()];
        assert_eq!(out.lo, 0.0);
        assert!(out.hi <= 1.0 && out.finite);
    }

    #[test]
    fn layer_norm_bound_scales_with_row_width() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let w = ps.add("x", Tensor::rand_normal(2, 16, 0.0, 1.0, &mut rng));
        let gamma = ps.add("g", Tensor::ones(1, 16));
        let beta = ps.add("b", Tensor::zeros(1, 16));
        let mut t = Tape::shape_only();
        let (xv, gv, bv) = (t.param(&ps, w), t.param(&ps, gamma), t.param(&ps, beta));
        let lnv = t.layer_norm(xv, gv, bv, 1e-5);
        let iv = propagate(&t, &ps, &AbsintConfig::symbolic(8.0, 1.0));
        let out = iv[lnv.index()];
        assert!(out.finite && out.nan_free, "{out:?}");
        // |x̂| ≤ sqrt(16) = 4, times γ in [-1, 1], plus β in [-1, 1].
        assert!(out.hi <= 5.1 && out.lo >= -5.1, "{out:?}");
        assert!(out.hi >= 4.0, "bound must not be tighter than attainable: {out:?}");
    }

    #[test]
    fn sigmoid_of_very_negative_range_flushes_and_ln_reports_underflow() {
        let (mut t, ps, wv, _) = fixture(1.0);
        let shifted = t.add_scalar(wv, -150.0); // [-151, -149]
        let s = t.sigmoid(shifted);
        let l = t.ln(s);
        let cfg = AbsintConfig::symbolic(1.0, 1.0);
        let report = audit_graph(&t, l, &ps, &cfg);
        assert!(
            report.findings.iter().any(|f| f.kind == "underflow-risk"),
            "flushed positive bound feeding ln must warn: {report}"
        );
    }

    #[test]
    fn audit_flags_exp_overflow_with_input_bound_in_message() {
        let (mut t, ps, wv, cfg) = fixture(100.0);
        let e = t.exp(wv);
        let loss = t.mean_all(e);
        let report = audit_graph(&t, loss, &ps, &cfg);
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == "overflow-risk" && f.op_name == "exp")
            .expect("exp overflow finding");
        assert!(f.message.contains("88.7"), "{}", f.message);
        assert_eq!(f.severity, Severity::Deny);
        assert!(!report.is_clean_at(Severity::Deny));
    }

    #[test]
    fn clean_bounded_graph_audits_clean_and_classifies_int8() {
        let (mut t, ps, wv, cfg) = fixture(8.0);
        let h = t.tanh(wv);
        let s = t.softmax(h);
        let report = audit_graph(&t, s, &ps, &cfg);
        assert!(report.is_clean_at(Severity::Warn), "{report}");
        assert_eq!(report.quant_summary.f32_required, 0, "{report}");
        let sm = report.quant.iter().find(|q| q.op_name == "softmax").expect("softmax entry");
        assert_eq!(sm.class, "int8");
        assert!(sm.scale > 0.0 && sm.scale <= 1.0 / 255.0 + 1e-6);
    }

    #[test]
    fn wide_but_bounded_tensors_classify_f16_and_unbounded_f32() {
        let (mut t, ps, wv, _) = fixture(8.0);
        let wide = t.scale(wv, 4096.0); // [-32768, 32768]: too wide for int8
        let loss = t.mean_all(wide);
        let cfg = AbsintConfig::symbolic(8.0, 8.0);
        let report = audit_graph(&t, loss, &ps, &cfg);
        let w = report.quant.iter().find(|q| q.op_name == "scale").expect("scale entry");
        assert_eq!(w.class, "f16");
        let unbounded = audit_graph(&t, loss, &ps, &AbsintConfig::unbounded());
        assert!(unbounded.quant.iter().all(|q| q.class == "f32"));
    }

    #[test]
    fn weight_aware_seeding_reads_concrete_parameter_ranges() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_vec(1, 3, vec![-0.25, 0.5, 0.125]).expect("1x3 literal"));
        let mut t = Tape::shape_only();
        let wv = t.param(&ps, w);
        let iv = propagate(&t, &ps, &AbsintConfig::weight_aware(8.0));
        let out = iv[wv.index()];
        assert_eq!(out.lo, -0.25);
        assert_eq!(out.hi, 0.5);
        let sym = propagate(&t, &ps, &AbsintConfig::symbolic(8.0, 4.0));
        assert_eq!(sym[wv.index()].lo, -4.0);
    }

    #[test]
    fn quant_table_covers_only_reachable_nodes() {
        let (mut t, ps, wv, cfg) = fixture(2.0);
        let _dead = t.tanh(wv);
        let live = t.sigmoid(wv);
        let report = audit_graph(&t, live, &ps, &cfg);
        assert_eq!(report.node_count, 3);
        assert_eq!(report.quant.len(), 2, "param + sigmoid only");
        assert!(report.quant.iter().all(|q| q.op_name != "tanh"));
    }

    #[test]
    fn report_json_roundtrips_and_serializes_infinite_bounds_as_null() {
        let (mut t, ps, wv, _) = fixture(1.0);
        let e = t.exp(wv);
        let report = audit_graph(&t, e, &ps, &AbsintConfig::unbounded());
        let json = report.to_json();
        assert!(json.contains("\"quant_summary\""), "{json}");
        assert!(json.contains("\"findings\""), "{json}");
        assert!(json.contains("null"), "unbounded lo/hi must serialize as null: {json}");
    }

    #[test]
    fn contains_covers_nan_and_infinity_semantics() {
        let iv = Interval::bounded(-1.0, 1.0);
        assert!(iv.contains(0.5));
        assert!(!iv.contains(2.0));
        assert!(!iv.contains(f32::NAN));
        assert!(!iv.contains(f32::INFINITY));
        let top = Interval::top();
        assert!(top.contains(f32::NAN));
        assert!(top.contains(f32::NEG_INFINITY));
        let unb = Interval::unbounded();
        assert!(unb.contains(1e30));
        assert!(!unb.contains(f32::INFINITY));
    }
}
