//! Certified tape-to-tape optimiser: DCE, CSE, constant folding, and
//! algebraic/fusion rewrites with translation validation.
//!
//! [`optimize`] re-emits a recorded graph onto a fresh tape of the same
//! recording mode, applying four passes in one emission sweep:
//!
//! 1. **Dead-code elimination** — reachability from the root over the
//!    *post-rewrite* edges (a transpose whose only consumer fuses away is
//!    dead too), reusing the same ancestor walk `analyze`/`plan` do.
//! 2. **Common-subexpression elimination** — structural hashing of
//!    (op, mapped inputs, constant payload); two nodes with identical keys
//!    compute identical values, so the second becomes an alias of the
//!    first. Dropout never merges (each node carries its own sampled
//!    mask); `Input` leaves merge only when small and bitwise-equal.
//! 3. **Constant folding** — a non-leaf node whose transitive support is
//!    `Input` leaves is evaluated once and re-emitted as an `Input`.
//!    Parameters are *never* constants (the executor reads them live from
//!    the store). On deferred tapes the subgraph is evaluated through a
//!    scratch eager tape — the exact kernels the arena plan would run —
//!    gated by an `absint` proof (observed input seeding) that every
//!    folded intermediate is finite and NaN-free, so the scratch
//!    evaluation cannot trip the eager tape's non-finite sentinels.
//! 4. **Algebraic/fusion rewrites** — `matmul(transpose(a), b)` →
//!    `matmul_tn`, `matmul(a, transpose(b))` → `matmul_nt`,
//!    `ln(softmax(x))` → `log_softmax`, and exact identity elisions
//!    (`scale(x, 1)`, `x + (-0.0)`, `x - 0.0`, `x * 1`, `x / 1` — the
//!    `±0.0` gating keeps every elision bitwise: `x + 0.0` is *not*
//!    elided because `-0.0 + 0.0 = +0.0`).
//!
//! Every applied rewrite emits a [`Certificate`]: the rewritten node's
//! inferred shape must equal the original's (always checked), and under
//! [`OptimizeConfig::verified`] its `absint` interval must be contained in
//! the original's (translation validation — the optimiser proves each
//! rewrite sound rather than trusting it). A failing certificate
//! suppresses that rewrite and re-plans; if verification still fails the
//! result falls back to an identity copy of the input graph.
//!
//! Except for the log-softmax fusion (which genuinely changes the
//! floating-point evaluation and only appears in hand-written graphs —
//! the models all record the fused op directly), every rewrite above is
//! bitwise-exact, which is why `runtime::Session` can run the optimiser
//! on its hot scoring path while the conformance suite pins
//! session == eager equality.

use crate::absint::{propagate, AbsintConfig, Interval, SeedMode};
use crate::analyze::cost_analysis;
use crate::params::ParamStore;
use crate::tape::{Op, Tape, Var};
use hiergat_tensor::Tensor;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// `Input` leaves larger than this never participate in CSE or carry their
/// value bits in a structural key — comparing big embeddings element-wise
/// on the scoring hot path would cost more than the merge saves.
const CSE_LEAF_ELEMS: usize = 256;

/// Which passes run, and whether rewrites are interval-verified.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeConfig {
    /// Drop nodes unreachable from the root (post-rewrite edges).
    pub dce: bool,
    /// Merge structurally identical nodes.
    pub cse: bool,
    /// Evaluate input-only subgraphs at optimise time.
    pub fold: bool,
    /// Fuse transpose+matmul / ln∘softmax and elide exact identities.
    pub fuse: bool,
    /// Run the `absint` interval containment check on every rewrite
    /// (translation validation). Off by default: the scoring hot path
    /// relies on the always-on shape certificates plus the differential
    /// conformance gates; interval proofs are for `--verify`, tests, and
    /// reports.
    pub verify: bool,
    /// Materialise one [`Certificate`] record per rewrite in the report,
    /// and estimate before/after FLOPs. Off, every shape check still runs
    /// and gates exactly as before and the pass counters stay exact — the
    /// optimiser just skips allocating the per-rewrite evidence and the
    /// cost walk (the FLOP fields report zero). The scoring hot path turns
    /// this off ([`OptimizeConfig::hot`]); `verify` implies collection.
    pub certificates: bool,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        Self { dce: true, cse: true, fold: true, fuse: true, verify: false, certificates: true }
    }
}

impl OptimizeConfig {
    /// All passes on, every rewrite interval-verified.
    pub fn verified() -> Self {
        Self { verify: true, ..Self::default() }
    }

    /// The scoring hot path: all rewrites on, no interval verification,
    /// no per-rewrite certificate records (shape checks still run).
    pub fn hot() -> Self {
        Self { certificates: false, ..Self::default() }
    }

    /// No passes at all: [`optimize`] produces an identity copy. This is
    /// the last-resort fallback when verification rejects a re-plan.
    pub fn disabled() -> Self {
        Self { dce: false, cse: false, fold: false, fuse: false, verify: false, certificates: true }
    }
}

/// Translation-validation evidence for one applied rewrite.
///
/// `shape_ok` is always populated; the interval fields are populated only
/// when the run verifies ([`OptimizeConfig::verified`]). `new_index` is
/// `None` for pure removals (DCE), where there is no new subgraph to
/// validate.
#[derive(Debug, Clone, Serialize)]
pub struct Certificate {
    /// Which rewrite fired: `dce`, `cse`, `constant-fold`,
    /// `fuse-matmul-tn`, `fuse-matmul-nt`, `fuse-log-softmax`, or
    /// `elide-identity`.
    pub rule: String,
    /// Index of the rewritten node on the original tape.
    pub old_index: usize,
    /// Index of the replacement node on the optimised tape (`None` for
    /// removals).
    pub new_index: Option<usize>,
    /// Op name on the original tape.
    pub old_op: String,
    /// Op name of the replacement node.
    pub new_op: Option<String>,
    /// Inferred shape on the original tape.
    pub old_shape: (usize, usize),
    /// Inferred shape of the replacement node.
    pub new_shape: Option<(usize, usize)>,
    /// The replacement's shape equals the original's.
    pub shape_ok: bool,
    /// Proven interval of the original node (verify runs only).
    pub old_interval: Option<Interval>,
    /// Proven interval of the replacement node (verify runs only).
    pub new_interval: Option<Interval>,
    /// The replacement's interval is contained in the original's (verify
    /// runs only).
    pub interval_ok: Option<bool>,
}

impl Certificate {
    /// `true` when every populated check passed.
    pub fn valid(&self) -> bool {
        self.shape_ok && self.interval_ok.unwrap_or(true)
    }
}

/// Summary of one [`optimize`] run.
#[derive(Debug, Clone, Serialize)]
pub struct OptimizeReport {
    /// Node count of the original tape.
    pub nodes_before: usize,
    /// Node count of the optimised tape.
    pub nodes_after: usize,
    /// Estimated forward FLOPs of the original tape.
    pub flops_before: u64,
    /// Estimated forward FLOPs of the optimised tape.
    pub flops_after: u64,
    /// Nodes dropped as unreachable.
    pub removed_dead: usize,
    /// Nodes merged into an earlier structural twin.
    pub merged_cse: usize,
    /// Nodes folded to constants.
    pub folded: usize,
    /// Fusion rewrites applied.
    pub fused: usize,
    /// Identity elisions applied.
    pub elided: usize,
    /// Mapped nodes whose optimised shape differs from the original
    /// (always 0 on a valid graph; non-zero trips the verify fallback).
    pub shape_mismatches: usize,
    /// Whether interval verification ran.
    pub verified: bool,
    /// Whether verification forced the identity fallback.
    pub fallback: bool,
    /// One certificate per applied rewrite.
    pub certificates: Vec<Certificate>,
}

impl OptimizeReport {
    /// Total rewrites applied (excluding pure removals).
    pub fn rewrites(&self) -> usize {
        self.merged_cse + self.folded + self.fused + self.elided
    }

    /// `true` when every certificate's populated checks passed.
    pub fn all_valid(&self) -> bool {
        self.shape_mismatches == 0 && self.certificates.iter().all(Certificate::valid)
    }

    /// Pretty JSON via the vendored serializer.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("optimize report serializes infallibly")
    }
}

impl fmt::Display for OptimizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  nodes {} -> {}, flops {} -> {}",
            self.nodes_before, self.nodes_after, self.flops_before, self.flops_after
        )?;
        writeln!(
            f,
            "  dce {}, cse {}, folded {}, fused {}, elided {}",
            self.removed_dead, self.merged_cse, self.folded, self.fused, self.elided
        )?;
        let status = if self.fallback {
            "identity fallback (verification rejected a re-plan)"
        } else if !self.all_valid() {
            "INVALID certificate present"
        } else if self.verified {
            "all certificates valid (shape + interval)"
        } else {
            "shape certificates valid (interval check not run)"
        };
        writeln!(f, "  certificates: {} rewrites, {status}", self.certificates.len())
    }
}

/// An optimised graph: the rewritten tape, the root's new handle, and the
/// evidence.
pub struct Optimized {
    /// The rewritten tape (same recording mode as the input, marked
    /// [`Tape::is_optimized`] so plan caches keep it distinct).
    pub tape: Tape,
    /// The root node's position on the rewritten tape.
    pub root: Var,
    /// Pass counts and per-rewrite certificates.
    pub report: OptimizeReport,
}

/// Rewrites the graph rooted at `root` onto a fresh tape.
///
/// See the module docs for the pass catalogue. The returned tape is in the
/// same recording mode as `tape` (eager values are recomputed with the
/// same kernels; deferred/inference tapes stay deferred and execute
/// through the arena planner as usual).
///
/// # Panics
/// Panics if `root` is not a node of `tape`.
pub fn optimize(tape: &Tape, root: Var, ps: &ParamStore, cfg: &OptimizeConfig) -> Optimized {
    optimize_impl(&mut Borrowed(tape), root, ps, cfg)
}

/// Like [`optimize`] but consumes the tape, letting the emission sweep
/// **move** `Input` leaf tensors onto the optimised tape instead of
/// deep-copying them. On the `Session` scoring hot path, where the
/// recorded tape is discarded right after optimisation anyway, this is
/// the difference between the optimiser paying for itself and not.
///
/// Semantics are identical to the borrowing path with one exception:
/// `Input` leaves no longer CSE-merge (the first twin's bits have already
/// moved out by the time the second is keyed, so the bitwise-equality
/// check conservatively fails). Param-read merges — the bulk of CSE wins
/// on model graphs — are unaffected. Under `cfg.verify` this delegates to
/// the borrowing path: verification re-plans over the original graph,
/// which must keep its values.
///
/// # Panics
/// Panics if `root` is not a node of `tape`.
pub fn optimize_owned(tape: Tape, root: Var, ps: &ParamStore, cfg: &OptimizeConfig) -> Optimized {
    if cfg.verify {
        return optimize(&tape, root, ps, cfg);
    }
    optimize_impl(&mut Owned(tape), root, ps, cfg)
}

/// One cached optimiser run: every planning decision, in old-index space.
struct Decisions {
    plan: PlanData,
    /// `merge_with[i] = Some(j)`: CSE merged node `i` into its earlier
    /// structural twin `j`.
    merge_with: Vec<Option<usize>>,
}

/// Old-index → optimised-index pairs for everything a fresh example
/// changes on an otherwise structurally identical graph.
struct PatchMaps {
    /// Pass-through `Input` leaves: fresh values move straight across.
    inputs: Vec<(u32, u32)>,
    /// Constant-fold roots: re-evaluated per call, then written across.
    folds: Vec<(u32, u32)>,
    /// Surviving ops whose `Op` carries payload the executor reads at run
    /// time (scale constants, gather indices, loss targets, …).
    payloads: Vec<(u32, u32)>,
}

struct CacheEntry {
    /// Full plan signature; hits confirm against it word-for-word
    /// (`sig_matches`), so two distinct structures can never share an
    /// entry.
    sig: Vec<u64>,
    /// Pass-selection flags the decisions were computed under.
    flags: u8,
    dec: Decisions,
    /// The optimised tape itself, patched in place on every replay.
    tape: Tape,
    root: Var,
    report: OptimizeReport,
    maps: PatchMaps,
}

/// Entry cap across all buckets; mirrors the arena executor's plan-cache
/// cap (a session only ever meets a bounded family of graph shapes).
const CACHE_CAP: usize = 256;

/// Memoised optimiser output keyed by graph structure, for callers that
/// optimise a stream of same-shaped deferred tapes
/// ([`optimize_with_cache`]).
///
/// Planning — fusion scanning, the absint fold proof, liveness, and above
/// all CSE keying — dominates the optimiser's cost, and even re-emitting
/// the optimised tape costs more than replaying it saves. Yet on a
/// deferred tape every non-leaf value is a storage-free placeholder: two
/// tapes with equal plan signatures differ only in their `Input` bits and
/// op payloads. So the cache keeps the *optimised tape itself* per
/// signature and, on a hit, revalidates the few value-dependent decisions
/// and patches fresh inputs/payloads/fold results into the cached tape —
/// no planning, no emission, no allocation. The patched tape's structure
/// never changes, so the arena executor's plan cache keeps hitting too.
#[derive(Default)]
pub struct OptimizerCache {
    /// Buckets by [`cheap_key`]; entries within a bucket are confirmed by
    /// full signature walk.
    entries: HashMap<u64, Vec<CacheEntry>>,
    scratch: Vec<u64>,
    count: usize,
    /// Holding slot for delegated (verify / non-deferred) runs, so the
    /// borrowed return type is uniform across all paths.
    uncached: Option<Optimized>,
}

impl OptimizerCache {
    /// Number of distinct graph structures cached.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no optimised graphs have been cached yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// An optimised graph borrowed from an [`OptimizerCache`] entry.
pub struct CachedOptimized<'c> {
    /// The optimised tape (owned by the cache; patched per call).
    pub tape: &'c Tape,
    /// The root node's position on the optimised tape.
    pub root: Var,
    /// Pass counts from the run that filled this entry (replays apply the
    /// identical rewrites, so the counters hold for every hit).
    pub report: &'c OptimizeReport,
}

fn pass_flags(cfg: &OptimizeConfig) -> u8 {
    u8::from(cfg.dce) | u8::from(cfg.cse) << 1 | u8::from(cfg.fold) << 2 | u8::from(cfg.fuse) << 3
}

/// Cheap bucket key: structure is confirmed by `sig_matches` afterwards,
/// so this only needs to spread genuinely different geometries.
fn cheap_key(tape: &Tape, root: Var) -> u64 {
    ((root.index() as u64) << 32) ^ (tape.len() as u64) ^ (u64::from(tape.is_inference()) << 63)
}

/// [`optimize_owned`] behind a decisions-and-tape cache: a deferred tape
/// whose plan signature (and pass selection) matches a prior call reuses
/// that call's optimised tape wholesale — fresh `Input` values, op
/// payloads, and re-evaluated fold constants are patched in place, and
/// planning/emission are skipped entirely.
///
/// Soundness of a replay rests on the signature walk plus three checks
/// over the *fresh* tape (`decisions_valid`): every cached CSE merge's
/// payload must still compare bitwise-equal, every cached identity
/// elision must still derive from the current operand values, and the
/// constant-fold gate (the absint finiteness proof) must still hold.
/// Everything else the decisions encode — fusions, liveness, DCE, all
/// wiring — is purely structural and pinned by signature equality. Any
/// failed check falls back to a full planning run, which refreshes the
/// cache. Eager and shape-only tapes delegate to [`optimize_owned`]
/// (their recorded values would go stale inside a patched cache), and
/// `cfg.verify` delegates to [`optimize`]; both still return through the
/// cache's holding slot so the borrowed result type is uniform.
///
/// # Panics
/// Panics if `root` is not a node of `tape`.
pub fn optimize_with_cache<'c>(
    cache: &'c mut OptimizerCache,
    mut tape: Tape,
    root: Var,
    ps: &ParamStore,
    cfg: &OptimizeConfig,
) -> CachedOptimized<'c> {
    if cfg.verify || tape.is_shape_only() || !tape.is_deferred() {
        let opt = if cfg.verify {
            optimize(&tape, root, ps, cfg)
        } else {
            optimize_owned(tape, root, ps, cfg)
        };
        let o = cache.uncached.insert(opt);
        return CachedOptimized { tape: &o.tape, root: o.root, report: &o.report };
    }
    assert!(root.index() < tape.len(), "optimize: root is not a node of this tape");
    assert!(!tape.is_shape_only() && tape.is_deferred(), "checked by the delegation gate above");
    let key = cheap_key(&tape, root);
    let flags = pass_flags(cfg);
    let inference = tape.is_inference();
    let pos = cache.entries.get(&key).and_then(|bucket| {
        bucket.iter().position(|e| {
            e.flags == flags
                && crate::plan::sig_matches(&tape, root, inference, &e.sig)
                && decisions_valid(&e.dec, &tape, ps)
        })
    });
    match pos {
        Some(ix) => {
            // Replay: re-prove the value-dependent facts held (done above),
            // then refresh only what a new example changes — `Input`
            // bits, op payloads, fold results. Structure, wiring, and the
            // executor's plan signature are untouched.
            let folded = {
                let e = &cache.entries[&key][ix];
                scratch_fold_values(&tape, &e.dec.plan, ps)
            };
            let e = &mut cache.entries.get_mut(&key).expect("bucket located above")[ix];
            patch_entry(e, &mut tape, folded);
            CachedOptimized { tape: &e.tape, root: e.root, report: &e.report }
        }
        None => {
            let nodes_before = tape.len();
            let flops_before =
                if cfg.certificates { cost_analysis(&tape, 1).total_flops } else { 0 };
            cache.scratch.clear();
            crate::plan::signature_into(&tape, root, inference, &mut cache.scratch);
            let mut src = Owned(tape);
            let mut out = run_passes(&mut src, root, ps, cfg, &HashSet::new());
            let plan = std::mem::take(&mut out.plan);
            let merge_with = std::mem::take(&mut out.merge_with);
            let maps = patch_maps(src.tape(), &plan, &merge_with, &out.map);
            let opt = finish(out, nodes_before, flops_before, cfg.certificates, false, false);
            if cache.count >= CACHE_CAP {
                // Runaway shape diversity: reset rather than grow without
                // bound (mirrors the arena executor's plan-cache cap).
                cache.entries.clear();
                cache.count = 0;
            }
            cache.count += 1;
            let bucket = cache.entries.entry(key).or_default();
            bucket.push(CacheEntry {
                sig: std::mem::take(&mut cache.scratch),
                flags,
                dec: Decisions { plan, merge_with },
                tape: opt.tape,
                root: opt.root,
                report: opt.report,
                maps,
            });
            let e = bucket.last().expect("entry just pushed");
            CachedOptimized { tape: &e.tape, root: e.root, report: &e.report }
        }
    }
}

/// Revalidates cached decisions against a fresh tape whose plan signature
/// already matched: only the value-dependent facts need rechecking (see
/// [`optimize_with_cache`]).
fn decisions_valid(d: &Decisions, tape: &Tape, ps: &ParamStore) -> bool {
    let n = tape.len();
    if d.plan.alias.len() != n || d.merge_with.len() != n {
        return false;
    }
    for i in 0..n {
        if let Some(j) = d.plan.alias[i] {
            if elision_target(tape, i) != Some(j) {
                return false;
            }
        }
        if let Some(j) = d.merge_with[i] {
            if !payload_eq(tape, i, j) {
                return false;
            }
        }
    }
    if d.plan.fold_ok.iter().any(|&f| f) {
        let eager = !tape.is_shape_only() && !tape.is_deferred();
        if eager {
            for i in 0..n {
                if d.plan.fold_ok[i] && tape.node_value(i).has_non_finite() {
                    return false;
                }
            }
        } else {
            // Same proof obligation as fold planning: every node the
            // scratch evaluation will run an eager kernel for is itself
            // fold_ok (fold support closes over fold_ok nodes and Input
            // leaves, and a non-finite Input poisons its consumers'
            // observed intervals), so proving the fold_ok set finite and
            // NaN-free re-arms the sentinel-safety argument per call.
            let cfg_iv =
                AbsintConfig { inputs: SeedMode::Observed, params: SeedMode::Box(f64::INFINITY) };
            let iv = propagate(tape, ps, &cfg_iv);
            for (ok, range) in d.plan.fold_ok.iter().zip(&iv) {
                if *ok && !(range.finite && range.nan_free) {
                    return false;
                }
            }
        }
    }
    true
}

/// `true` when nodes `i` and `j` — same op tag and shape, both pinned by
/// the plan signature — carry bitwise-identical payloads: the exact
/// condition under which a cached CSE merge of `i` into `j` is still
/// value-preserving on a fresh tape. Mirrors the payload words of
/// [`cse_key`], including its refuse-to-merge cases.
fn payload_eq(tape: &Tape, i: usize, j: usize) -> bool {
    let bits_eq = |x: &[f32], y: &[f32]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let (a, b) = (tape.op_at(i), tape.op_at(j));
    match (a, b) {
        (Op::Dropout { .. }, _) | (_, Op::Dropout { .. }) => false,
        (Op::Input, Op::Input) => {
            let (x, y) = (tape.node_value(i), tape.node_value(j));
            !x.is_placeholder()
                && !y.is_placeholder()
                && !x.is_empty()
                && x.len() <= CSE_LEAF_ELEMS
                && x.shape() == y.shape()
                && bits_eq(x.as_slice(), y.as_slice())
        }
        (Op::Param(p), Op::Param(q)) => p.index() == q.index(),
        (Op::Scale(_, p), Op::Scale(_, q))
        | (Op::AddScalar(_, p), Op::AddScalar(_, q))
        | (Op::LeakyRelu(_, p), Op::LeakyRelu(_, q)) => p.to_bits() == q.to_bits(),
        (Op::LayerNorm { eps: p, .. }, Op::LayerNorm { eps: q, .. }) => p.to_bits() == q.to_bits(),
        (Op::SliceCols { start: s1, len: l1, .. }, Op::SliceCols { start: s2, len: l2, .. })
        | (Op::SliceRows { start: s1, len: l1, .. }, Op::SliceRows { start: s2, len: l2, .. }) => {
            s1 == s2 && l1 == l2
        }
        (Op::GatherRows { indices: p, .. }, Op::GatherRows { indices: q, .. }) => p == q,
        (Op::CrossEntropyLogits { targets: p, .. }, Op::CrossEntropyLogits { targets: q, .. }) => {
            p == q
        }
        (
            Op::WeightedCrossEntropyLogits { targets: tp, weights: wp, .. },
            Op::WeightedCrossEntropyLogits { targets: tq, weights: wq, .. },
        ) => tp == tq && bits_eq(wp, wq),
        (Op::BceWithLogits { targets: p, .. }, Op::BceWithLogits { targets: q, .. }) => {
            bits_eq(p, q)
        }
        (Op::MseLoss { target: p, .. }, Op::MseLoss { target: q, .. }) => {
            p.len() <= CSE_LEAF_ELEMS
                && p.shape() == q.shape()
                && bits_eq(p.as_slice(), q.as_slice())
        }
        // Payload-free ops merge on structure alone; the tag guard keeps
        // this arm honest should the signature contract ever loosen.
        _ => a.tag() == b.tag(),
    }
}

/// Derives the patch maps for a freshly cached entry: which old-tape slots
/// the next structurally identical example must refresh on the cached
/// optimised tape, and where they landed.
fn patch_maps(
    tape: &Tape,
    plan: &PlanData,
    merge_with: &[Option<usize>],
    map: &[Option<Var>],
) -> PatchMaps {
    let mut maps = PatchMaps { inputs: Vec::new(), folds: Vec::new(), payloads: Vec::new() };
    for i in 0..tape.len() {
        // Elided/merged nodes borrow their surviving twin's slot (the
        // twin's own map entry covers the patch); dead nodes have none.
        if plan.alias[i].is_some() || merge_with[i].is_some() {
            continue;
        }
        let Some(v) = map[i] else { continue };
        let new = v.index() as u32;
        if plan.fold_ok[i] {
            maps.folds.push((i as u32, new));
            continue;
        }
        if plan.fused[i].is_some() {
            // Fusion replacements (matmul-tn/nt, log-softmax) carry no
            // payload.
            continue;
        }
        match tape.op_at(i) {
            Op::Input => maps.inputs.push((i as u32, new)),
            Op::Param(_)
            | Op::Scale(..)
            | Op::AddScalar(..)
            | Op::LeakyRelu(..)
            | Op::LayerNorm { .. }
            | Op::SliceCols { .. }
            | Op::SliceRows { .. }
            | Op::GatherRows { .. }
            | Op::Dropout { .. }
            | Op::CrossEntropyLogits { .. }
            | Op::WeightedCrossEntropyLogits { .. }
            | Op::BceWithLogits { .. }
            | Op::MseLoss { .. } => maps.payloads.push((i as u32, new)),
            _ => {}
        }
    }
    maps
}

/// Refreshes a cached optimised tape in place from a fresh, structurally
/// identical source tape: `Input` values move across, op payloads are
/// copied, and the re-evaluated fold constants are written into their
/// slots. Wiring and shapes never change, so the arena executor's plan
/// signature for the cached tape stays stable across patches.
fn patch_entry(e: &mut CacheEntry, tape: &mut Tape, mut folded: Vec<Option<Tensor>>) {
    for &(old, new) in &e.maps.inputs {
        e.tape.put_node_value(new as usize, tape.take_node_value(old as usize));
    }
    for &(old, new) in &e.maps.folds {
        let v = folded[old as usize].take().expect("fold roots are re-evaluated on every replay");
        e.tape.put_node_value(new as usize, v);
    }
    for &(old, new) in &e.maps.payloads {
        patch_payload(e.tape.op_at_mut(new as usize), tape.op_at(old as usize));
    }
}

/// Copies the payload words of `src` into `dst`. Only payloads move — the
/// wiring stays put, which is the whole point of patching a cached tape
/// instead of re-emitting one. `clone_from` reuses the destination's
/// buffers (signature-matched payload vectors have equal lengths), so the
/// hot path stays allocation-free.
fn patch_payload(dst: &mut Op, src: &Op) {
    debug_assert_eq!(dst.tag(), src.tag(), "the signature match pins op tags");
    match (dst, src) {
        (Op::Param(p), Op::Param(q)) => *p = *q,
        (Op::Scale(_, p), Op::Scale(_, q))
        | (Op::AddScalar(_, p), Op::AddScalar(_, q))
        | (Op::LeakyRelu(_, p), Op::LeakyRelu(_, q)) => *p = *q,
        (Op::LayerNorm { eps: p, .. }, Op::LayerNorm { eps: q, .. }) => *p = *q,
        (Op::SliceCols { start: s1, len: l1, .. }, Op::SliceCols { start: s2, len: l2, .. })
        | (Op::SliceRows { start: s1, len: l1, .. }, Op::SliceRows { start: s2, len: l2, .. }) => {
            *s1 = *s2;
            *l1 = *l2;
        }
        (Op::GatherRows { indices: p, .. }, Op::GatherRows { indices: q, .. }) => p.clone_from(q),
        (Op::Dropout { mask: p, .. }, Op::Dropout { mask: q, .. }) => p.clone_from(q),
        (Op::CrossEntropyLogits { targets: p, .. }, Op::CrossEntropyLogits { targets: q, .. }) => {
            p.clone_from(q);
        }
        (
            Op::WeightedCrossEntropyLogits { targets: tp, weights: wp, .. },
            Op::WeightedCrossEntropyLogits { targets: tq, weights: wq, .. },
        ) => {
            tp.clone_from(tq);
            wp.clone_from(wq);
        }
        (Op::BceWithLogits { targets: p, .. }, Op::BceWithLogits { targets: q, .. }) => {
            p.clone_from(q);
        }
        (Op::MseLoss { target: p, .. }, Op::MseLoss { target: q, .. }) => p.clone_from(q),
        _ => {}
    }
}

/// Where re-emission gets leaf values from: borrowed sources clone them,
/// owned sources move them out (leaving same-shape placeholders, so the
/// post-emission shape certification still reads the original geometry).
trait TapeSource {
    fn tape(&self) -> &Tape;
    fn grab(&mut self, i: usize) -> Tensor;
}

struct Borrowed<'a>(&'a Tape);

impl TapeSource for Borrowed<'_> {
    fn tape(&self) -> &Tape {
        self.0
    }
    fn grab(&mut self, i: usize) -> Tensor {
        self.0.node_value(i).clone()
    }
}

struct Owned(Tape);

impl TapeSource for Owned {
    fn tape(&self) -> &Tape {
        &self.0
    }
    fn grab(&mut self, i: usize) -> Tensor {
        self.0.take_node_value(i)
    }
}

fn optimize_impl<S: TapeSource>(
    src: &mut S,
    root: Var,
    ps: &ParamStore,
    cfg: &OptimizeConfig,
) -> Optimized {
    assert!(root.index() < src.tape().len(), "optimize: root is not a node of this tape");
    let nodes_before = src.tape().len();
    let track_cost = cfg.certificates || cfg.verify;
    let flops_before = if track_cost { cost_analysis(src.tape(), 1).total_flops } else { 0 };

    let mut fallback = false;
    let mut out = run_passes(src, root, ps, cfg, &HashSet::new());
    if cfg.verify {
        let ok = verify_intervals(src.tape(), ps, &mut out);
        if !ok || out.shape_mismatches > 0 {
            // Reject, don't trust: suppress exactly the rewrites whose
            // certificates failed and re-plan.
            let blacklist: HashSet<usize> =
                out.certificates.iter().filter(|c| !c.valid()).map(|c| c.old_index).collect();
            out = run_passes(src, root, ps, cfg, &blacklist);
            let ok = verify_intervals(src.tape(), ps, &mut out);
            if !ok || out.shape_mismatches > 0 {
                fallback = true;
                out = run_passes(src, root, ps, &OptimizeConfig::disabled(), &HashSet::new());
                verify_intervals(src.tape(), ps, &mut out);
            }
        }
    }
    finish(out, nodes_before, flops_before, track_cost, cfg.verify, fallback)
}

/// Assembles the final [`Optimized`] from one emission sweep's output.
fn finish(
    out: PassOutput,
    nodes_before: usize,
    flops_before: u64,
    track_cost: bool,
    verified: bool,
    fallback: bool,
) -> Optimized {
    let PassOutput {
        tape: mut new_tape,
        root: new_root,
        certificates,
        removed_dead,
        merged_cse,
        folded,
        fused,
        elided,
        shape_mismatches,
        plan: _,
        merge_with: _,
        map: _,
    } = out;
    new_tape.mark_optimized();
    let flops_after = if track_cost { cost_analysis(&new_tape, 1).total_flops } else { 0 };
    let report = OptimizeReport {
        nodes_before,
        nodes_after: new_tape.len(),
        flops_before,
        flops_after,
        removed_dead,
        merged_cse,
        folded,
        fused,
        elided,
        shape_mismatches,
        verified,
        fallback,
        certificates,
    };
    Optimized { tape: new_tape, root: new_root, report }
}

struct PassOutput {
    tape: Tape,
    root: Var,
    certificates: Vec<Certificate>,
    removed_dead: usize,
    merged_cse: usize,
    folded: usize,
    fused: usize,
    elided: usize,
    shape_mismatches: usize,
    /// The planning result — harvested by [`optimize_with_cache`] to seed
    /// its decisions cache.
    plan: PlanData,
    /// `merge_with[i] = Some(j)`: CSE merged node `i` into its earlier
    /// structural twin `j`.
    merge_with: Vec<Option<usize>>,
    /// Old-index → optimised-index for every surviving node.
    map: Vec<Option<Var>>,
}

/// Follows elision chains to the node that actually produces the value.
fn resolve(alias: &[Option<usize>], mut i: usize) -> usize {
    while let Some(j) = alias[i] {
        i = j;
    }
    i
}

/// The node's concrete value, when the recording mode guarantees one: any
/// node on an eager tape, `Input` leaves everywhere (they keep real data
/// even on shape-only and deferred tapes). Shape-only placeholders are
/// all-zeros and must never be mistaken for a recorded zero tensor.
fn concrete_value(tape: &Tape, i: usize) -> Option<&Tensor> {
    let eager = !tape.is_shape_only() && !tape.is_deferred();
    if !eager && !matches!(tape.op_at(i), Op::Input) {
        return None;
    }
    let v = tape.node_value(i);
    if v.is_placeholder() {
        return None;
    }
    Some(v)
}

/// `true` when the node's value is known and every element has exactly the
/// bit pattern `bits` (elisions key on bits, not numeric equality, so
/// `-0.0` and `+0.0` stay distinct).
fn all_bits(tape: &Tape, i: usize, bits: u32) -> bool {
    match concrete_value(tape, i) {
        Some(v) => !v.is_empty() && v.as_slice().iter().all(|x| x.to_bits() == bits),
        None => false,
    }
}

fn same_shape(tape: &Tape, i: usize, j: usize) -> bool {
    tape.node_value(i).shape() == tape.node_value(j).shape()
}

/// FNV-1a over the key words: a cheap, deterministic bucket hash. A
/// collision can never merge distinct computations — bucket hits are
/// confirmed by recomputing and comparing the full key.
fn hash_key(k: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &w in k {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pass-through hasher for the CSE bucket map: its keys are already
/// [`hash_key`] digests, so re-hashing them through SipHash per lookup
/// would only burn hot-path cycles.
#[derive(Default)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Unused for u64 keys, but stay correct for any key type.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type BucketMap = HashMap<u64, Vec<(usize, Var)>, std::hash::BuildHasherDefault<IdHasher>>;

const NEG_ZERO: u32 = 0x8000_0000; // (-0.0f32).to_bits()
const POS_ZERO: u32 = 0x0000_0000;
const ONE: u32 = 0x3F80_0000; // 1.0f32.to_bits()

/// The effective op at node `i`: the planned fusion replacement if one
/// exists, the recorded op otherwise.
fn eff<'a>(fused: &'a [Option<Op>], tape: &'a Tape, i: usize) -> &'a Op {
    match &fused[i] {
        Some(op) => op,
        None => tape.op_at(i),
    }
}

fn run_passes<S: TapeSource>(
    src: &mut S,
    root: Var,
    ps: &ParamStore,
    cfg: &OptimizeConfig,
    blacklist: &HashSet<usize>,
) -> PassOutput {
    let n = src.tape().len();
    let eager = !src.tape().is_shape_only() && !src.tape().is_deferred();

    // ---- Planning (borrows the source tape immutably throughout) ----------
    let planned = plan_passes(src.tape(), root, ps, cfg, blacklist);
    let plan = &planned;
    let (fused, alias, fold_ok, live) = (&plan.fused, &plan.alias, &plan.fold_ok, &plan.live);
    let mut folded_vals = scratch_fold_values(src.tape(), plan, ps);
    let mut merge_with: Vec<Option<usize>> = vec![None; n];

    // ---- Emission ---------------------------------------------------------
    let mut out = src.tape().mode_like();
    let mut map: Vec<Option<Var>> = vec![None; n];
    // CSE buckets by key hash; on a bucket hit the candidate's key is
    // recomputed into a reused scratch buffer and compared in full, so a
    // hash collision can never merge distinct computations — and the
    // common miss path allocates nothing per node.
    let mut cse = BucketMap::default();
    let (mut key_a, mut key_b): (Vec<u64>, Vec<u64>) = (Vec::new(), Vec::new());
    let collect = cfg.certificates || cfg.verify;
    let mut certificates = Vec::new();
    let (mut removed_dead, mut merged_cse, mut folded, mut fused_count, mut elided) =
        (0, 0, 0, 0, 0);

    for i in 0..n {
        if alias[i].is_some() {
            let j = resolve(alias, i);
            if let Some(mv) = map[j] {
                map[i] = Some(mv);
                elided += 1;
                if collect {
                    certificates.push(make_cert(src.tape(), "elide-identity", i, Some((&out, mv))));
                }
            } else {
                removed_dead += 1;
                if collect {
                    certificates.push(make_cert(src.tape(), "dce", i, None));
                }
            }
            continue;
        }
        if !live[i] {
            removed_dead += 1;
            if collect {
                certificates.push(make_cert(src.tape(), "dce", i, None));
            }
            continue;
        }
        if fold_ok[i] {
            let value = if eager {
                src.grab(i)
            } else {
                folded_vals[i].take().expect("live fold root was evaluated")
            };
            let v = out.input(value);
            map[i] = Some(v);
            folded += 1;
            if collect {
                certificates.push(make_cert(src.tape(), "constant-fold", i, Some((&out, v))));
            }
            continue;
        }
        let mut hit = None;
        let mut hit_src = None;
        let mut key_hash = None;
        if cfg.cse && !blacklist.contains(&i) {
            let tape = src.tape();
            key_a.clear();
            if cse_key(tape, i, eff(fused, tape, i), &map, alias, &mut key_a) {
                let h = hash_key(&key_a);
                key_hash = Some(h);
                if let Some(bucket) = cse.get(&h) {
                    for &(j, jv) in bucket {
                        key_b.clear();
                        if cse_key(tape, j, eff(fused, tape, j), &map, alias, &mut key_b)
                            && key_a == key_b
                        {
                            hit = Some(jv);
                            hit_src = Some(j);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(mv) = hit {
            map[i] = Some(mv);
            if let Some(j) = hit_src {
                merge_with[i] = Some(j);
            }
            merged_cse += 1;
            if collect {
                certificates.push(make_cert(src.tape(), "cse", i, Some((&out, mv))));
            }
            continue;
        }
        // `Input` leaves carry the only values that survive onto the new
        // tape; grab them through the source (clone or move) instead of
        // the always-cloning `emit_op` dispatch.
        let v = if fused[i].is_none() && matches!(src.tape().op_at(i), Op::Input) {
            let value = src.grab(i);
            out.input(value)
        } else {
            let tape = src.tape();
            let m = |v: Var| {
                map[resolve(alias, v.index())].expect("inputs are emitted before their consumers")
            };
            emit_op(&mut out, tape, i, eff(fused, tape, i), &m, ps)
        };
        map[i] = Some(v);
        if let Some(h) = key_hash {
            cse.entry(h).or_default().push((i, v));
        }
        if fused[i].is_some() {
            fused_count += 1;
            if collect {
                let rule = match &fused[i] {
                    Some(Op::MatmulTn(..)) => "fuse-matmul-tn",
                    Some(Op::MatmulNt(..)) => "fuse-matmul-nt",
                    _ => "fuse-log-softmax",
                };
                certificates.push(make_cert(src.tape(), rule, i, Some((&out, v))));
            }
        }
    }

    // Always-on shape certification: every surviving node's inferred shape
    // on the optimised tape must equal the original's, and re-emission must
    // not have introduced shape violations the original didn't have.
    // Vacated owned-source slots keep their shape, so this holds after
    // moves too; it also subsumes the per-certificate shape checks (every
    // rewrite target is a mapped node), keeping the gate exact when
    // certificate records are off.
    let mut shape_mismatches = certificates.iter().filter(|c| !c.shape_ok).count();
    for (i, mv) in map.iter().enumerate() {
        if let Some(v) = mv {
            if out.value(*v).shape() != src.tape().node_value(i).shape() {
                shape_mismatches += 1;
            }
        }
    }
    shape_mismatches +=
        out.shape_violations().len().saturating_sub(src.tape().shape_violations().len());

    let new_root = map[resolve(alias, root.index())].expect("the root is always live and mapped");
    PassOutput {
        tape: out,
        root: new_root,
        certificates,
        removed_dead,
        merged_cse,
        folded,
        fused: fused_count,
        elided,
        shape_mismatches,
        plan: planned,
        merge_with,
        map,
    }
}

/// Builds the shape half of a rewrite certificate.
fn make_cert(tape: &Tape, rule: &str, old_index: usize, new: Option<(&Tape, Var)>) -> Certificate {
    let old_shape = tape.node_value(old_index).shape();
    let (new_index, new_op, new_shape) = match new {
        Some((t, v)) => {
            (Some(v.index()), Some(t.op_name(v.index()).to_string()), Some(t.value(v).shape()))
        }
        None => (None, None, None),
    };
    Certificate {
        rule: rule.to_string(),
        old_index,
        new_index,
        old_op: tape.op_name(old_index).to_string(),
        new_op,
        old_shape,
        new_shape,
        shape_ok: new_shape.is_none_or(|s| s == old_shape),
        old_interval: None,
        new_interval: None,
        interval_ok: None,
    }
}

/// Planned rewrites in old-index space: `fused[i]` is a replacement op
/// (with old-tape operands) for node `i`; `alias[i]` marks node `i` as an
/// exact identity of old node `alias[i]`; `fold_ok` / `live` gate the
/// emission sweep.
#[derive(Default)]
struct PlanData {
    fused: Vec<Option<Op>>,
    alias: Vec<Option<usize>>,
    fold_ok: Vec<bool>,
    live: Vec<bool>,
}

fn plan_passes(
    tape: &Tape,
    root: Var,
    ps: &ParamStore,
    cfg: &OptimizeConfig,
    blacklist: &HashSet<usize>,
) -> PlanData {
    let n = tape.len();
    let shape_only = tape.is_shape_only();
    let eager = !shape_only && !tape.is_deferred();

    // ---- Rewrite planning (old-index space) -------------------------------
    let mut fused: Vec<Option<Op>> = (0..n).map(|_| None).collect();
    let mut alias: Vec<Option<usize>> = vec![None; n];
    if cfg.fuse {
        for i in 0..n {
            if blacklist.contains(&i) {
                continue;
            }
            match tape.op_at(i) {
                Op::Matmul(a, b) => {
                    if let Op::Transpose(x) = tape.op_at(a.index()) {
                        fused[i] = Some(Op::MatmulTn(*x, *b));
                    } else if let Op::Transpose(y) = tape.op_at(b.index()) {
                        fused[i] = Some(Op::MatmulNt(*a, *y));
                    }
                }
                Op::Ln(s) => {
                    if let Op::Softmax(x) = tape.op_at(s.index()) {
                        fused[i] = Some(Op::LogSoftmax(*x));
                    }
                }
                // Exact identity elisions; `elision_target` carries the
                // ±0.0 sign gating that keeps every one of them bitwise.
                _ => alias[i] = elision_target(tape, i),
            }
        }
    }

    let eff_op = |i: usize| -> &Op {
        match &fused[i] {
            Some(op) => op,
            None => tape.op_at(i),
        }
    };

    // ---- Constant-fold planning ------------------------------------------
    // Structurally foldable: non-leaf, every (alias-resolved) input is an
    // Input leaf or itself foldable. Never Param (live store reads), never
    // Dropout. Shape-only tapes record no input data to fold with.
    let mut fold_ok = vec![false; n];
    if cfg.fold && !shape_only {
        let mut structural = vec![false; n];
        let mut any = false;
        for i in 0..n {
            if alias[i].is_some() || blacklist.contains(&i) {
                continue;
            }
            let op = eff_op(i);
            if matches!(op, Op::Input | Op::Param(_) | Op::Dropout { .. }) {
                continue;
            }
            let (mut has_inputs, mut ok) = (false, true);
            op.for_each_input(|v| {
                has_inputs = true;
                let j = resolve(&alias, v.index());
                ok &= matches!(tape.op_at(j), Op::Input) || structural[j];
            });
            if has_inputs && ok {
                structural[i] = true;
                any = true;
            }
        }
        if any {
            // Gate: every folded intermediate must be provably finite and
            // NaN-free before eager kernels touch it (the scratch tape's
            // debug sentinels panic on non-finite values). Eager tapes
            // already hold the recorded value, so the proof is the value
            // itself. Params are irrelevant to input-only subgraphs, so
            // they seed as unbounded — no store scan on the hot path.
            let gate: Vec<bool> = if eager {
                (0..n).map(|i| structural[i] && !tape.node_value(i).has_non_finite()).collect()
            } else {
                let cfg_iv = AbsintConfig {
                    inputs: SeedMode::Observed,
                    params: SeedMode::Box(f64::INFINITY),
                };
                let iv = propagate(tape, ps, &cfg_iv);
                (0..n).map(|i| structural[i] && iv[i].finite && iv[i].nan_free).collect()
            };
            for i in 0..n {
                if !gate[i] {
                    continue;
                }
                let mut ok = true;
                eff_op(i).for_each_input(|v| {
                    let j = resolve(&alias, v.index());
                    ok &= matches!(tape.op_at(j), Op::Input) || fold_ok[j];
                });
                fold_ok[i] = ok;
            }
        }
    }

    // ---- Liveness over post-rewrite edges --------------------------------
    let mut live = vec![false; n];
    if cfg.dce {
        let r = resolve(&alias, root.index());
        live[r] = true;
        let mut stack = vec![r];
        while let Some(i) = stack.pop() {
            if fold_ok[i] {
                continue; // a folded node's support is consumed at optimise time
            }
            eff_op(i).for_each_input(|v| {
                let j = resolve(&alias, v.index());
                if !live[j] {
                    live[j] = true;
                    stack.push(j);
                }
            });
        }
    } else {
        live.fill(true);
    }

    PlanData { fused, alias, fold_ok, live }
}

/// The operand node `i` is an exact bitwise identity of, if any — the one
/// oracle behind elision planning *and* decisions-cache revalidation.
/// `x + (-0.0) = x` and `x - (+0.0) = x` hold bitwise for every x
/// (including ±0.0); the same with the zero signs swapped does NOT
/// (`-0.0 + 0.0 = +0.0`), so those never elide.
fn elision_target(tape: &Tape, i: usize) -> Option<usize> {
    match tape.op_at(i) {
        Op::Scale(a, k) if k.to_bits() == ONE => Some(a.index()),
        Op::AddScalar(a, k) if k.to_bits() == NEG_ZERO => Some(a.index()),
        Op::Add(a, b) => {
            if all_bits(tape, b.index(), NEG_ZERO) && same_shape(tape, i, a.index()) {
                Some(a.index())
            } else if all_bits(tape, a.index(), NEG_ZERO) && same_shape(tape, i, b.index()) {
                Some(b.index())
            } else {
                None
            }
        }
        Op::Sub(a, b) if all_bits(tape, b.index(), POS_ZERO) && same_shape(tape, i, a.index()) => {
            Some(a.index())
        }
        Op::Mul(a, b) => {
            if all_bits(tape, b.index(), ONE) && same_shape(tape, i, a.index()) {
                Some(a.index())
            } else if all_bits(tape, a.index(), ONE) && same_shape(tape, i, b.index()) {
                Some(b.index())
            } else {
                None
            }
        }
        Op::Div(a, b) if all_bits(tape, b.index(), ONE) && same_shape(tape, i, a.index()) => {
            Some(a.index())
        }
        _ => None,
    }
}

/// Scratch-evaluates the live fold roots of a deferred tape: the needed
/// support runs through an eager scratch tape — the same kernels, in the
/// same order, the arena plan would have run. Eager tapes already carry
/// every folded value, so they (and plans with no folds) return an empty
/// vector and the hot path allocates nothing.
fn scratch_fold_values(tape: &Tape, plan: &PlanData, ps: &ParamStore) -> Vec<Option<Tensor>> {
    let n = tape.len();
    let eager = !tape.is_shape_only() && !tape.is_deferred();
    let PlanData { fused, alias, fold_ok, live } = plan;
    if eager || !fold_ok.iter().any(|&f| f) {
        return Vec::new();
    }
    let mut needed = vec![false; n];
    for i in (0..n).rev() {
        if fold_ok[i] && (live[i] || needed[i]) {
            needed[i] = true;
            eff(fused, tape, i).for_each_input(|v| {
                needed[resolve(alias, v.index())] = true;
            });
        }
    }
    let mut folded_vals: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
    let mut scratch = Tape::new();
    let mut smap: Vec<Option<Var>> = vec![None; n];
    for i in 0..n {
        if !needed[i] {
            continue;
        }
        if matches!(tape.op_at(i), Op::Input) {
            smap[i] = Some(scratch.input(tape.node_value(i).clone()));
        } else if fold_ok[i] {
            let sv = {
                let m = |v: Var| {
                    smap[resolve(alias, v.index())]
                        .expect("fold support is evaluated in topological order")
                };
                emit_op(&mut scratch, tape, i, eff(fused, tape, i), &m, ps)
            };
            smap[i] = Some(sv);
            if live[i] {
                folded_vals[i] = Some(scratch.value(sv).clone());
            }
        }
    }
    folded_vals
}

/// Interval half of translation validation: propagate both tapes under the
/// same seeding and require every rewrite's replacement interval to be
/// contained in the original's. Returns `true` when all certificates pass.
fn verify_intervals(old: &Tape, ps: &ParamStore, out: &mut PassOutput) -> bool {
    let cfg = if old.is_shape_only() {
        // Shape-only placeholders are all zeros; observed seeding would be
        // vacuous, so prove containment over every finite input instead.
        AbsintConfig::unbounded()
    } else {
        AbsintConfig::observed()
    };
    let old_iv = propagate(old, ps, &cfg);
    let new_iv = propagate(&out.tape, ps, &cfg);
    let mut all_ok = true;
    for c in &mut out.certificates {
        let Some(ni) = c.new_index else { continue };
        let o = old_iv[c.old_index];
        let nv = new_iv[ni];
        let ok = contained(&nv, &o);
        c.old_interval = Some(o);
        c.new_interval = Some(nv);
        c.interval_ok = Some(ok);
        all_ok &= ok;
    }
    all_ok
}

/// `new ⊆ old`: tighter-or-equal bounds, and every element fact the old
/// interval proves must still be proven.
fn contained(new: &Interval, old: &Interval) -> bool {
    new.lo >= old.lo
        && new.hi <= old.hi
        && (!old.finite || new.finite)
        && (!old.nan_free || new.nan_free)
}

/// Structural hash key for CSE, written into the caller's reused buffer
/// `k`: op code, constant payload, and the mapped (new-tape) input
/// indices. Returns `false` — leaving `k` in an unspecified state — when
/// the node must never merge (dropout, oversized or already-vacated
/// `Input` leaves, unmapped inputs).
fn cse_key(
    tape: &Tape,
    i: usize,
    op: &Op,
    map: &[Option<Var>],
    alias: &[Option<usize>],
    k: &mut Vec<u64>,
) -> bool {
    k.push(op.tag());
    match op {
        // Each dropout node carries its own sampled mask; merging would
        // change the RNG semantics of the graph.
        Op::Dropout { .. } => return false,
        Op::Input => {
            let v = tape.node_value(i);
            if v.is_placeholder() || v.is_empty() || v.len() > CSE_LEAF_ELEMS {
                return false;
            }
            k.push(v.rows() as u64);
            k.push(v.cols() as u64);
            k.extend(v.as_slice().iter().map(|x| u64::from(x.to_bits())));
            return true;
        }
        Op::Param(id) => {
            k.push(id.index() as u64);
            return true;
        }
        Op::Scale(_, c) | Op::AddScalar(_, c) | Op::LeakyRelu(_, c) => {
            k.push(u64::from(c.to_bits()));
        }
        Op::LayerNorm { eps, .. } => k.push(u64::from(eps.to_bits())),
        Op::SliceCols { start, len, .. } | Op::SliceRows { start, len, .. } => {
            k.push(*start as u64);
            k.push(*len as u64);
        }
        Op::GatherRows { indices, .. } => {
            k.push(indices.len() as u64);
            k.extend(indices.iter().map(|&ix| ix as u64));
        }
        Op::CrossEntropyLogits { targets, .. } => {
            k.push(targets.len() as u64);
            k.extend(targets.iter().map(|&t| t as u64));
        }
        Op::WeightedCrossEntropyLogits { targets, weights, .. } => {
            k.push(targets.len() as u64);
            k.extend(targets.iter().map(|&t| t as u64));
            k.extend(weights.iter().map(|w| u64::from(w.to_bits())));
        }
        Op::BceWithLogits { targets, .. } => {
            k.push(targets.len() as u64);
            k.extend(targets.iter().map(|t| u64::from(t.to_bits())));
        }
        Op::MseLoss { target, .. } => {
            if target.len() > CSE_LEAF_ELEMS {
                return false;
            }
            k.push(target.rows() as u64);
            k.push(target.cols() as u64);
            k.extend(target.as_slice().iter().map(|x| u64::from(x.to_bits())));
        }
        _ => {}
    }
    let mut mapped = true;
    op.for_each_input(|v| {
        let j = resolve(alias, v.index());
        match map[j] {
            Some(mv) => k.push(mv.index() as u64),
            None => mapped = false,
        }
    });
    mapped
}

/// Re-records `op` (originally at `src` index `i`) onto `dst`, with inputs
/// remapped through `m`. Dispatching through the public recording methods
/// reuses the exact eager kernels / shape-inference paths of the original
/// recording, so eager re-emission is bitwise-identical recomputation.
fn emit_op(
    dst: &mut Tape,
    src: &Tape,
    i: usize,
    op: &Op,
    m: &dyn Fn(Var) -> Var,
    ps: &ParamStore,
) -> Var {
    match op {
        Op::Input => dst.input(src.node_value(i).clone()),
        Op::Param(id) => dst.param(ps, *id),
        Op::Add(a, b) => dst.add(m(*a), m(*b)),
        Op::Sub(a, b) => dst.sub(m(*a), m(*b)),
        Op::Mul(a, b) => dst.mul(m(*a), m(*b)),
        Op::Scale(a, k) => dst.scale(m(*a), *k),
        Op::AddScalar(a, k) => dst.add_scalar(m(*a), *k),
        Op::Div(a, b) => dst.div(m(*a), m(*b)),
        Op::AddRow(a, b) => dst.add_row(m(*a), m(*b)),
        Op::AddCol(a, b) => dst.add_col(m(*a), m(*b)),
        Op::MulCol(a, b) => dst.mul_col(m(*a), m(*b)),
        Op::Matmul(a, b) => dst.matmul(m(*a), m(*b)),
        Op::MatmulNt(a, b) => dst.matmul_nt(m(*a), m(*b)),
        Op::MatmulTn(a, b) => dst.matmul_tn(m(*a), m(*b)),
        Op::Transpose(a) => dst.transpose(m(*a)),
        Op::SumAll(a) => dst.sum_all(m(*a)),
        Op::MeanAll(a) => dst.mean_all(m(*a)),
        Op::SumRows(a) => dst.sum_rows(m(*a)),
        Op::SumCols(a) => dst.sum_cols(m(*a)),
        Op::MaxCols(a) => dst.max_cols(m(*a)),
        Op::Softmax(a) => dst.softmax(m(*a)),
        Op::LogSoftmax(a) => dst.log_softmax(m(*a)),
        Op::Exp(a) => dst.exp(m(*a)),
        Op::Ln(a) => dst.ln(m(*a)),
        Op::Sqrt(a) => dst.sqrt(m(*a)),
        Op::Relu(a) => dst.relu(m(*a)),
        Op::LeakyRelu(a, alpha) => dst.leaky_relu(m(*a), *alpha),
        Op::Tanh(a) => dst.tanh(m(*a)),
        Op::Sigmoid(a) => dst.sigmoid(m(*a)),
        Op::Gelu(a) => dst.gelu(m(*a)),
        Op::LayerNorm { x, gamma, beta, eps } => dst.layer_norm(m(*x), m(*gamma), m(*beta), *eps),
        Op::ConcatCols(parts) => {
            let mapped: Vec<Var> = parts.iter().map(|&p| m(p)).collect();
            dst.concat_cols(&mapped)
        }
        Op::ConcatRows(parts) => {
            let mapped: Vec<Var> = parts.iter().map(|&p| m(p)).collect();
            dst.concat_rows(&mapped)
        }
        Op::SliceCols { x, start, len } => dst.slice_cols(m(*x), *start, *len),
        Op::SliceRows { x, start, len } => dst.slice_rows(m(*x), *start, *len),
        Op::GatherRows { table, indices } => dst.gather_rows(m(*table), indices),
        Op::Dropout { x, mask } => dst.dropout_with_mask(m(*x), mask.clone()),
        Op::CrossEntropyLogits { logits, targets } => dst.cross_entropy_logits(m(*logits), targets),
        Op::WeightedCrossEntropyLogits { logits, targets, weights } => {
            dst.weighted_cross_entropy_logits(m(*logits), targets, weights)
        }
        Op::BceWithLogits { logits, targets } => dst.bce_with_logits(m(*logits), targets),
        Op::MseLoss { pred, target } => dst.mse_loss(m(*pred), target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ArenaExecutor;

    fn assert_bitwise(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape(), "shape mismatch");
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "bitwise mismatch: {x} vs {y}");
        }
    }

    fn op_names(t: &Tape) -> Vec<&'static str> {
        (0..t.len()).map(|i| t.op_name(i)).collect()
    }

    #[test]
    fn dce_drops_unreachable_nodes_bitwise() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![0.5, -1.0], vec![2.0, 0.25]]));
        let mut t = Tape::new();
        let x = t.input(Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let wv = t.param(&ps, w);
        let y = t.matmul(x, wv);
        let _dead = t.exp(y);
        let root = t.sum_all(y);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::default());
        assert!(opt.report.removed_dead >= 1, "exp branch should be dead");
        assert!(opt.report.nodes_after < opt.report.nodes_before);
        assert!(!op_names(&opt.tape).contains(&"exp"));
        assert_bitwise(t.value(root), opt.tape.value(opt.root));
    }

    #[test]
    fn cse_merges_param_reads_and_twin_ops() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![0.3, -0.7]]));
        let mut t = Tape::new();
        let w1 = t.param(&ps, w);
        let w2 = t.param(&ps, w);
        let a = t.add(w1, w2);
        let s1 = t.sigmoid(a);
        let s2 = t.sigmoid(a);
        let prod = t.mul(s1, s2);
        let root = t.sum_all(prod);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::default());
        assert!(opt.report.merged_cse >= 2, "param re-read and twin sigmoid should merge");
        let names = op_names(&opt.tape);
        assert_eq!(names.iter().filter(|n| **n == "param").count(), 1);
        assert_eq!(names.iter().filter(|n| **n == "sigmoid").count(), 1);
        assert_bitwise(t.value(root), opt.tape.value(opt.root));
    }

    #[test]
    fn transpose_matmul_fuses_both_sides_bitwise() {
        let ps = ParamStore::new();
        let mut t = Tape::new();
        let a = t.input(Tensor::from_rows(&[
            vec![1.0, 2.0, -1.5, 0.25],
            vec![0.5, -3.0, 2.0, 1.0],
            vec![-0.75, 1.25, 0.0, 4.0],
        ]));
        let b = t.input(Tensor::from_rows(&[
            vec![2.0, 0.5, -1.0, 3.0, 0.125],
            vec![-0.5, 1.5, 2.5, -2.0, 1.0],
            vec![1.0, -1.0, 0.5, 0.75, -0.25],
        ]));
        let c = t.input(Tensor::from_rows(&[
            vec![0.5, 1.0, -2.0, 0.25, 3.0],
            vec![1.5, -0.5, 0.75, 2.0, -1.0],
        ]));
        let at = t.transpose(a); // 4x3
        let tn = t.matmul(at, b); // 4x5 == a^T b
        let ct = t.transpose(c); // 5x2
        let nt = t.matmul(tn, ct); // 4x2 == tn c^T
        let root = t.sum_all(nt);

        // fold is off: this graph is input-only, and folding it away would
        // leave nothing to fuse.
        let opt = optimize(&t, root, &ps, &OptimizeConfig { fold: false, ..Default::default() });
        assert_eq!(opt.report.fused, 2);
        let names = op_names(&opt.tape);
        assert!(names.contains(&"matmul_tn"));
        assert!(names.contains(&"matmul_nt"));
        assert!(!names.contains(&"transpose"), "fused transposes should be dead");
        assert!(!names.contains(&"matmul"));
        assert_bitwise(t.value(root), opt.tape.value(opt.root));
    }

    #[test]
    fn identity_elisions_respect_zero_signs() {
        let ps = ParamStore::new();
        let mut t = Tape::new();
        // -0.0 in the data: the elision decisions must preserve its bits.
        let x = t.input(Tensor::from_rows(&[vec![-0.0, 1.5], vec![-2.0, 0.0]]));
        let ones = t.input(Tensor::ones(2, 2));
        let m = t.mul(x, ones); // elided: x * 1 == x bitwise
        let neg_zeros = t.input(Tensor::from_rows(&[vec![-0.0, -0.0], vec![-0.0, -0.0]]));
        let m2 = t.add(m, neg_zeros); // elided: x + (-0.0) == x bitwise
        let pos_zeros = t.input(Tensor::zeros(2, 2));
        let s = t.add(m2, pos_zeros); // NOT elided: -0.0 + 0.0 == +0.0
        let sc = t.scale(s, 1.0); // elided
        let root = t.sum_all(sc);

        let opt = optimize(&t, root, &ps, &OptimizeConfig { fold: false, ..Default::default() });
        assert_eq!(opt.report.elided, 3, "mul-by-one, add-neg-zero, scale-by-one");
        let names = op_names(&opt.tape);
        assert!(!names.contains(&"mul"));
        assert!(!names.contains(&"scale"));
        assert_eq!(
            names.iter().filter(|n| **n == "add").count(),
            1,
            "the +0.0 add must survive (it flips -0.0 to +0.0)"
        );
        assert_bitwise(t.value(root), opt.tape.value(opt.root));
        // The surviving add's output really differs bitwise from its input.
        assert_ne!((-0.0f32 + 0.0f32).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn eager_constant_folding_reuses_recorded_values() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![1.0, -2.0], vec![0.5, 0.25]]));
        let mut t = Tape::new();
        let a = t.input(Tensor::from_rows(&[vec![0.1, 0.2], vec![0.3, 0.4]]));
        let b = t.input(Tensor::from_rows(&[vec![1.0, -1.0], vec![2.0, -2.0]]));
        let s = t.add(a, b);
        let e = t.tanh(s); // fold root: input-only support
        let wv = t.param(&ps, w);
        let y = t.matmul(e, wv);
        let root = t.sum_all(y);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::default());
        assert_eq!(opt.report.folded, 1, "only the live fold root becomes an input");
        assert!(opt.report.removed_dead >= 3, "a, b, and the add are folded away");
        let names = op_names(&opt.tape);
        assert!(!names.contains(&"tanh"));
        assert!(!names.contains(&"add"));
        assert_bitwise(t.value(root), opt.tape.value(opt.root));
        assert!(opt.report.flops_after < opt.report.flops_before);
    }

    #[test]
    fn deferred_folding_is_bitwise_through_the_arena() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![1.0, -2.0], vec![0.5, 0.25]]));
        let build = |t: &mut Tape| {
            let a = t.input(Tensor::from_rows(&[vec![0.1, 0.2], vec![0.3, 0.4]]));
            let b = t.input(Tensor::from_rows(&[vec![1.0, -1.0], vec![2.0, -2.0]]));
            let s = t.add(a, b);
            let e = t.tanh(s);
            let wv = t.param(&ps, w);
            let y = t.matmul(e, wv);
            t.softmax(y)
        };
        let mut eager = Tape::new();
        let eager_root = build(&mut eager);

        let mut inf = Tape::inference();
        let inf_root = build(&mut inf);
        let opt = optimize(&inf, inf_root, &ps, &OptimizeConfig::default());
        assert!(opt.tape.is_deferred() && opt.tape.is_inference());
        assert!(opt.tape.is_optimized());
        assert_eq!(opt.report.folded, 1);

        let mut exec = ArenaExecutor::new();
        let got = exec.infer(&opt.tape, opt.root, &ps);
        assert_bitwise(eager.value(eager_root), &got);
    }

    #[test]
    fn deferred_folding_skips_non_finite_subgraphs() {
        let ps = ParamStore::new();
        let mut t = Tape::inference();
        let a = t.input(Tensor::from_rows(&[vec![f32::INFINITY, 1.0]]));
        let s = t.tanh(a); // support is non-finite: must not fold (nor panic)
        let b = t.input(Tensor::from_rows(&[vec![0.5, 0.25]]));
        let y = t.mul(s, b);
        let root = t.sum_all(y);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::default());
        assert_eq!(opt.report.folded, 0, "non-finite support must suppress folding");
        assert!(op_names(&opt.tape).contains(&"tanh"));
    }

    #[test]
    fn log_softmax_fusion_is_allclose() {
        let ps = ParamStore::new();
        let mut t = Tape::new();
        let x = t.input(Tensor::from_rows(&[vec![0.5, -1.0, 2.0], vec![3.0, 0.0, -2.5]]));
        let sm = t.softmax(x);
        let l = t.ln(sm);
        let root = t.sum_all(l);

        let opt = optimize(&t, root, &ps, &OptimizeConfig { fold: false, ..Default::default() });
        assert_eq!(opt.report.fused, 1);
        let names = op_names(&opt.tape);
        assert!(names.contains(&"log_softmax"));
        assert!(!names.contains(&"softmax"));
        let (a, b) = (t.value(root).item(), opt.tape.value(opt.root).item());
        assert!((a - b).abs() < 1e-5, "ln∘softmax vs log_softmax: {a} vs {b}");
    }

    #[test]
    fn verified_run_certifies_every_rewrite() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![0.5, -1.0], vec![2.0, 0.25]]));
        let mut t = Tape::new();
        let a = t.input(Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let at = t.transpose(a);
        let wv = t.param(&ps, w);
        let wv2 = t.param(&ps, w);
        let y = t.matmul(at, wv);
        let y2 = t.mul(y, y);
        let _dead = t.exp(wv2);
        let folded_in = t.input(Tensor::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]));
        let fold = t.sqrt(folded_in);
        let z = t.mul(y2, fold);
        let root = t.sum_all(z);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::verified());
        assert!(opt.report.verified);
        assert!(!opt.report.fallback);
        assert!(opt.report.all_valid(), "verified run must certify every rewrite");
        assert!(opt.report.rewrites() > 0);
        for c in &opt.report.certificates {
            if c.new_index.is_some() {
                assert!(c.interval_ok == Some(true), "interval cert missing for {}", c.rule);
            }
        }
        assert_bitwise(t.value(root), opt.tape.value(opt.root));
    }

    #[test]
    fn verified_ln_softmax_never_returns_invalid_certificates() {
        let ps = ParamStore::new();
        let mut t = Tape::new();
        let x = t.input(Tensor::from_rows(&[vec![0.5, -1.0, 2.0]]));
        let sm = t.softmax(x);
        let l = t.ln(sm);
        let root = t.sum_all(l);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::verified());
        // The fusion either certifies (and stays) or is suppressed on the
        // re-plan — the report must come back valid either way.
        assert!(opt.report.all_valid());
        let (a, b) = (t.value(root).item(), opt.tape.value(opt.root).item());
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn disabled_config_is_an_identity_copy() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![0.5, -1.0]]));
        let mut t = Tape::new();
        let w1 = t.param(&ps, w);
        let w2 = t.param(&ps, w);
        let a = t.add(w1, w2);
        let _dead = t.exp(a);
        let root = t.sum_all(a);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::disabled());
        assert_eq!(opt.report.nodes_after, opt.report.nodes_before);
        assert_eq!(opt.report.rewrites(), 0);
        assert_eq!(opt.report.removed_dead, 0);
        assert_eq!(op_names(&t), op_names(&opt.tape));
        assert_bitwise(t.value(root), opt.tape.value(opt.root));
    }

    #[test]
    fn shape_only_tapes_optimize_without_folding() {
        let ps = ParamStore::new();
        let mut t = Tape::shape_only();
        let a = t.input(Tensor::ones(3, 4));
        let b = t.input(Tensor::ones(3, 5));
        let at = t.transpose(a);
        let y = t.matmul(at, b);
        let _dead = t.exp(y);
        let root = t.sum_all(y);

        let opt = optimize(&t, root, &ps, &OptimizeConfig::default());
        assert!(opt.tape.is_shape_only());
        assert_eq!(opt.report.folded, 0, "shape-only placeholders must never fold");
        assert_eq!(opt.report.fused, 1);
        assert!(opt.report.removed_dead >= 1);
        assert!(opt.tape.shape_violations().is_empty());
        assert_eq!(opt.tape.value(opt.root).shape(), t.value(root).shape());
    }

    #[test]
    fn report_json_roundtrips_key_fields() {
        let ps = ParamStore::new();
        let mut t = Tape::new();
        let x = t.input(Tensor::ones(1, 2));
        let root = t.sum_all(x);
        let opt = optimize(&t, root, &ps, &OptimizeConfig::verified());
        let json = opt.report.to_json();
        assert!(json.contains("\"nodes_before\""));
        assert!(json.contains("\"certificates\""));
    }
}
