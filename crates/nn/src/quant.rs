//! Post-training quantisation of forward-only graphs, driven node-by-node
//! by the absint feasibility table.
//!
//! [`crate::absint::audit_graph`] proves a value interval for every
//! reachable tensor and classifies each one `int8` / `f16` / `f32`
//! (scale and zero point included). This module is the executor half:
//!
//! * [`QuantStore`] — parameters quantised **once** at
//!   `Session::quantise` time through the *rejecting* encoder
//!   ([`encode_checked`]): a value outside its audit-proven interval is
//!   an error, never a silent clamp, because the interval is the proof
//!   that the affine grid covers the tensor.
//! * [`QuantPlan`] — per graph shape, the f32 inference plan's liveness
//!   (`ExecutionPlan::build_inference` start/end times) re-packed into
//!   **one byte-granular arena** with the same best-fit free-list
//!   discipline, sized in bytes (1/2/4 per element by class). A single
//!   arena lets an expiring f16 node's bytes be reused by an int8 or f32
//!   node and vice versa — exactly the cross-lifetime reuse the f32 plan
//!   gets — so the quantised arena shrinks the f32 inference arena
//!   instead of merely re-labelling it (class-segregated arenas lose
//!   that sharing and can *grow* on mixed-class graphs). Values are
//!   stored as little-endian bytes and copied through the elementwise
//!   codecs, so no slot needs alignment. The graph root is always pinned
//!   to the f32 class: the output score feeds a decision threshold, and
//!   snapping it to an int8 grid would flip near-threshold decisions for
//!   zero storage benefit (the root is live until the end anyway).
//! * [`QuantExecutor`] — a forward interpreter that mirrors the f32
//!   executor's per-op arithmetic exactly: operands are decoded into f32
//!   scratch, computed with the same shared `hiergat_tensor` kernels,
//!   and the result is encoded into its arena slot. Matmuls whose
//!   operands are both int8 route through the dequant-free integer GEMM
//!   (`hiergat_tensor::quant::matmul_u8_into`) instead — exact `i32`
//!   accumulation, zero points folded out once per element.
//!
//! # Determinism and the optimiser
//!
//! Every kernel the interpreter calls is bitwise width-invariant (the
//! f32 slice kernels are pinned so by the tensor suite; integer
//! accumulation is exact), and encode/decode are elementwise — so
//! quantised predictions are **identical at every `HIERGAT_THREADS`
//! width** by construction. The certified tape optimiser is deliberately
//! *not* applied: its certificates prove f32 semantics (bitwise
//! equivalence of rewrites), which lossy stores would void. A quantised
//! session therefore always replays the as-recorded tape, and
//! `Session::set_optimize` is a no-op on the quantised path.
//!
//! Quantised plans are cached in the executor's own table, keyed by a
//! signature with a leading quantisation marker word — a quantised plan
//! can never alias an f32 plan (different cache *and* different key
//! space). Decode scratch follows the thread-local-scratch convention
//! the f32 microkernel established: it is reused across calls and is not
//! part of any arena budget.

use crate::absint::{audit_graph, AbsintConfig, AuditReport, QuantEntry};
use crate::lint::Severity;
use crate::params::{ParamId, ParamStore};
use crate::plan::ExecutionPlan;
use crate::tape::{Op, Tape, Var};
use hiergat_tensor::quant::{
    f16_decode_slice, f16_decode_slice_le, f16_encode_slice, f16_encode_slice_le,
    f32_decode_slice_le, f32_encode_slice_le, matmul_u8_into, transpose_u8_into, u8_decode_slice,
    u8_encode_slice, F16_MAX, MAX_U8_GEMM_DEPTH,
};
use hiergat_tensor::{
    log_softmax_rows_inplace, matmul_into, matmul_nt_into, matmul_tn_into, row_moments_into,
    softmax_rows_inplace,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Storage class the audit proved feasible for one tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantClass {
    /// u8 affine codes, 1 byte per element.
    Int8,
    /// IEEE 754 binary16 bits, 2 bytes per element.
    F16,
    /// Plain f32 fallback, 4 bytes per element.
    F32,
}

impl QuantClass {
    /// Class name as the audit table spells it.
    pub fn name(self) -> &'static str {
        match self {
            QuantClass::Int8 => "int8",
            QuantClass::F16 => "f16",
            QuantClass::F32 => "f32",
        }
    }

    /// Storage bytes per element.
    pub fn bytes_per_elem(self) -> usize {
        match self {
            QuantClass::Int8 => 1,
            QuantClass::F16 => 2,
            QuantClass::F32 => 4,
        }
    }
}

/// Why quantisation was refused. Rejection is the contract: a tensor that
/// escapes its audit-proven interval must fail loudly, not clamp.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A value fell outside the interval the audit proved for its tensor.
    OutOfInterval {
        /// Which tensor (parameter name or node label).
        tensor: String,
        /// The offending value.
        value: f32,
        /// Proven lower bound.
        lo: f64,
        /// Proven upper bound.
        hi: f64,
    },
    /// A value classified f16 does not fit finite binary16.
    NotF16 {
        /// Which tensor.
        tensor: String,
        /// The offending value.
        value: f32,
    },
    /// The audit reported numerical-safety findings at or above Warn;
    /// quantising a graph the interval pass cannot prove safe is refused.
    Unsafe {
        /// Finding count at or above the gate.
        findings: usize,
    },
    /// The graph contains an op the forward-only quantised interpreter
    /// does not execute (training losses).
    UnsupportedOp {
        /// Diagnostic op name.
        op: &'static str,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::OutOfInterval { tensor, value, lo, hi } => write!(
                f,
                "quantise {tensor}: value {value} outside the proven interval [{lo}, {hi}] \
                 (rejected, not clamped)"
            ),
            QuantError::NotF16 { tensor, value } => {
                write!(f, "quantise {tensor}: value {value} does not fit finite binary16")
            }
            QuantError::Unsafe { findings } => {
                write!(f, "quantise: audit reported {findings} numerical-safety finding(s)")
            }
            QuantError::UnsupportedOp { op } => {
                write!(f, "quantise: op '{op}' is not part of the forward-only inference engine")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Configuration for `Session::quantise`: how the feasibility audit seeds
/// the interval pass.
#[derive(Debug, Clone)]
pub struct QuantConfig {
    /// Symbolic bound for graph inputs (`inputs in [-B, B]`); parameters
    /// are always seeded from their observed values (weight-aware).
    pub input_bound: f64,
}

impl Default for QuantConfig {
    fn default() -> Self {
        // The same default box as the `hiergat audit` CLI gate.
        QuantConfig { input_bound: 8.0 }
    }
}

impl QuantConfig {
    /// The absint seeding this config audits with.
    pub fn audit_config(&self) -> AbsintConfig {
        AbsintConfig::weight_aware(self.input_bound)
    }
}

/// One tensor's storage codec: class plus the affine grid (int8 only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Codec {
    /// Storage class.
    pub class: QuantClass,
    /// Affine scale (0 unless int8).
    pub scale: f32,
    /// Affine zero point (0 unless int8).
    pub zero_point: u8,
}

impl Codec {
    /// The f32 passthrough codec.
    pub fn f32() -> Codec {
        Codec { class: QuantClass::F32, scale: 0.0, zero_point: 0 }
    }

    /// Builds the codec a feasibility-table entry prescribes.
    pub fn from_entry(e: &QuantEntry) -> Codec {
        let class = match e.class.as_str() {
            "int8" => QuantClass::Int8,
            "f16" => QuantClass::F16,
            _ => QuantClass::F32,
        };
        Codec { class, scale: e.scale as f32, zero_point: e.zero_point }
    }

    /// Worst-case `|decode(encode(v)) - v|` for an in-interval value `v`:
    /// half a grid step for int8 (plus f32 arithmetic slack), one
    /// round-to-nearest-even ulp for f16, zero for f32.
    pub fn roundtrip_bound(&self, v: f32) -> f32 {
        match self.class {
            QuantClass::Int8 => 0.501 * self.scale + 1e-5 * v.abs(),
            QuantClass::F16 => 2f32.powi(-11) * v.abs() + 2f32.powi(-25),
            QuantClass::F32 => 0.0,
        }
    }
}

/// Quantised storage for one tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantData {
    /// u8 affine codes.
    Int8(Vec<u8>),
    /// binary16 bit patterns.
    F16(Vec<u16>),
    /// Plain copy (f32 fallback).
    F32(Vec<f32>),
}

impl QuantData {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            QuantData::Int8(v) => v.len(),
            QuantData::F16(v) => v.len(),
            QuantData::F32(v) => v.len(),
        }
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            QuantData::Int8(v) => v.len() as u64,
            QuantData::F16(v) => 2 * v.len() as u64,
            QuantData::F32(v) => 4 * v.len() as u64,
        }
    }

    /// Decodes into `out` (resized to fit).
    pub fn decode_into(&self, codec: &Codec, out: &mut Vec<f32>) {
        out.resize(self.len(), 0.0);
        match self {
            QuantData::Int8(q) => u8_decode_slice(q, codec.scale, codec.zero_point, out),
            QuantData::F16(bits) => f16_decode_slice(bits, out),
            QuantData::F32(v) => out.copy_from_slice(v),
        }
    }
}

/// The rejecting quantiser: encodes `vals` with `codec` **iff** every
/// value lies inside the proven interval `[lo, hi]` (and, for f16, fits
/// finite binary16). Out-of-interval values — including NaN — are an
/// error, never a clamp: the interval is the audit's proof that the grid
/// covers the tensor, and silently clamping would convert a soundness
/// bug into a numerics bug.
pub fn encode_checked(
    vals: &[f32],
    lo: f64,
    hi: f64,
    codec: &Codec,
    tensor: &str,
) -> Result<QuantData, QuantError> {
    for &v in vals {
        if !(f64::from(v) >= lo && f64::from(v) <= hi) {
            return Err(QuantError::OutOfInterval { tensor: tensor.to_string(), value: v, lo, hi });
        }
    }
    match codec.class {
        QuantClass::Int8 => {
            let mut q = vec![0u8; vals.len()];
            u8_encode_slice(vals, codec.scale, codec.zero_point, &mut q);
            Ok(QuantData::Int8(q))
        }
        QuantClass::F16 => {
            for &v in vals {
                if !v.is_finite() || v.abs() > F16_MAX {
                    return Err(QuantError::NotF16 { tensor: tensor.to_string(), value: v });
                }
            }
            let mut bits = vec![0u16; vals.len()];
            f16_encode_slice(vals, &mut bits);
            Ok(QuantData::F16(bits))
        }
        QuantClass::F32 => Ok(QuantData::F32(vals.to_vec())),
    }
}

/// Per-parameter storage slot in a [`QuantStore`].
#[derive(Debug, Clone)]
enum StoredParam {
    /// Quantised copy; the f32 original in the `ParamStore` is no longer
    /// read by the quantised executor.
    Quantised { codec: Codec, data: QuantData },
    /// f32 passthrough: read straight from the `ParamStore` (either the
    /// audit classified the tensor f32, or no audited graph reached it).
    Plain,
}

/// Weight-byte accounting for a quantised parameter set.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantStoreReport {
    /// Parameters stored as int8.
    pub int8_params: usize,
    /// Parameters stored as f16.
    pub f16_params: usize,
    /// Parameters left f32 (classified f32, or unreached by the audit).
    pub f32_params: usize,
    /// Bytes the same parameters occupy in f32.
    pub bytes_f32: u64,
    /// Bytes after quantisation (f32 passthroughs counted at 4 bytes).
    pub bytes_quantised: u64,
}

/// Audit-driven quantised parameter storage, built once per session by
/// the rejecting quantiser and immutable (shareable across score-batch
/// workers) afterwards.
#[derive(Debug, Clone)]
pub struct QuantStore {
    cfg: QuantConfig,
    params: Vec<StoredParam>,
    report: QuantStoreReport,
}

impl QuantStore {
    /// Audits the graph rooted at `root` with weight-aware seeding and
    /// quantises every parameter the feasibility table classifies below
    /// f32. Fails if the audit has findings at or above Warn, or if any
    /// parameter value escapes its proven interval (impossible for
    /// observed seeding unless the audit is unsound — which is exactly
    /// why it must be an error).
    pub fn build(
        tape: &Tape,
        root: Var,
        store: &ParamStore,
        cfg: &QuantConfig,
    ) -> Result<(QuantStore, AuditReport), QuantError> {
        let audit = audit_graph(tape, root, store, &cfg.audit_config());
        let findings = audit.findings.iter().filter(|f| f.severity >= Severity::Warn).count();
        if findings > 0 {
            return Err(QuantError::Unsafe { findings });
        }
        let mut params = vec![StoredParam::Plain; store.len()];
        for e in &audit.quant {
            let Op::Param(pid) = tape.op_at(e.op_index) else { continue };
            let codec = Codec::from_entry(e);
            if codec.class == QuantClass::F32 {
                continue;
            }
            let range = &audit.ranges[e.op_index];
            let vals = store.value(*pid).as_slice();
            let data = encode_checked(vals, range.lo, range.hi, &codec, store.name(*pid))?;
            params[pid.index()] = StoredParam::Quantised { codec, data };
        }
        let mut report = QuantStoreReport::default();
        for (slot, (_, _, t)) in params.iter().zip(store.iter()) {
            let elems = t.as_slice().len() as u64;
            report.bytes_f32 += 4 * elems;
            match slot {
                StoredParam::Quantised { codec, data } => {
                    report.bytes_quantised += data.bytes();
                    match codec.class {
                        QuantClass::Int8 => report.int8_params += 1,
                        QuantClass::F16 => report.f16_params += 1,
                        QuantClass::F32 => report.f32_params += 1,
                    }
                }
                StoredParam::Plain => {
                    report.bytes_quantised += 4 * elems;
                    report.f32_params += 1;
                }
            }
        }
        Ok((QuantStore { cfg: cfg.clone(), params, report }, audit))
    }

    /// The seeding config this store was built with (new graph shapes are
    /// audited with the same config at plan time).
    pub fn config(&self) -> &QuantConfig {
        &self.cfg
    }

    /// Weight-byte accounting.
    pub fn report(&self) -> QuantStoreReport {
        self.report
    }

    /// The codec a parameter is stored with (f32 when passthrough).
    pub fn param_codec(&self, id: ParamId) -> Codec {
        match self.params.get(id.index()) {
            Some(StoredParam::Quantised { codec, .. }) => *codec,
            _ => Codec::f32(),
        }
    }

    fn raw_u8(&self, id: ParamId) -> Option<(&[u8], f32, u8)> {
        match self.params.get(id.index()) {
            Some(StoredParam::Quantised {
                codec: Codec { class: QuantClass::Int8, scale, zero_point },
                data: QuantData::Int8(q),
            }) => Some((q, *scale, *zero_point)),
            _ => None,
        }
    }

    /// Decodes only the indexed rows of parameter `id` (row-major, `cols`
    /// columns per row) straight into `out`, never materialising the full
    /// table. Returns `false` for passthrough parameters, which gather
    /// zero-copy from the `ParamStore` instead.
    fn gather_rows_into(
        &self,
        id: ParamId,
        indices: &[usize],
        cols: usize,
        out: &mut [f32],
    ) -> bool {
        let Some(StoredParam::Quantised { codec, data }) = self.params.get(id.index()) else {
            return false;
        };
        match data {
            QuantData::Int8(q) => {
                for (dst, &idx) in out.chunks_exact_mut(cols).zip(indices) {
                    u8_decode_slice(
                        &q[idx * cols..(idx + 1) * cols],
                        codec.scale,
                        codec.zero_point,
                        dst,
                    );
                }
            }
            QuantData::F16(bits) => {
                for (dst, &idx) in out.chunks_exact_mut(cols).zip(indices) {
                    f16_decode_slice(&bits[idx * cols..(idx + 1) * cols], dst);
                }
            }
            QuantData::F32(v) => {
                for (dst, &idx) in out.chunks_exact_mut(cols).zip(indices) {
                    dst.copy_from_slice(&v[idx * cols..(idx + 1) * cols]);
                }
            }
        }
        true
    }

    /// Decodes parameter `id` into `buf` and returns the slice — or the
    /// original f32 slice, copy-free, for passthrough parameters.
    fn fetch<'a>(&'a self, store: &'a ParamStore, id: ParamId, buf: &'a mut Vec<f32>) -> &'a [f32] {
        match &self.params[id.index()] {
            StoredParam::Quantised { codec, data } => {
                data.decode_into(codec, buf);
                buf
            }
            StoredParam::Plain => store.value(id).as_slice(),
        }
    }
}

/// Marker word prefixed to quantised plan signatures so a quantised plan
/// can never alias an f32 plan even if the caches were merged.
const QUANT_SIG_MARKER: u64 = 0x5155_414e_545f_3031; // "QUANT_01"

fn quant_signature(tape: &Tape, root: Var) -> Vec<u64> {
    let mut sig = vec![QUANT_SIG_MARKER, root.index() as u64, u64::from(tape.is_optimized())];
    for i in 0..=root.index() {
        let op = tape.op_at(i);
        let (r, c) = tape.value(Var::from_index(i)).shape();
        let ins = op.inputs();
        sig.extend([op.tag(), r as u64, c as u64, ins.len() as u64]);
        sig.extend(ins.iter().map(|v| v.index() as u64));
    }
    sig
}

fn hash_signature(sig: &[u64]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    sig.hash(&mut h);
    h.finish()
}

/// One node's storage assignment inside a [`QuantPlan`].
#[derive(Debug, Clone, Copy)]
struct NodeSlot {
    /// `false` = unreachable from the root (never executed or read).
    live: bool,
    codec: Codec,
    /// Byte offset inside the shared arena.
    offset: usize,
    /// Element count (bytes per element come from the codec class).
    len: usize,
    /// `true` when every read happens at the very next timestep: the
    /// value is handed to its consumer through the previous-output
    /// buffer and never touches the arena (no encode, no decode, no
    /// storage — quantisation noise included).
    transient: bool,
}

impl Default for NodeSlot {
    fn default() -> Self {
        NodeSlot { live: false, codec: Codec::f32(), offset: 0, len: 0, transient: false }
    }
}

/// Byte-granular best-fit free-list allocator — the same greedy
/// discipline `ExecutionPlan` uses, re-run in byte units over the f32
/// plan's proven lifetimes so every storage class shares one arena.
#[derive(Default)]
struct ByteAlloc {
    /// Free blocks `(offset, len)`, sorted by offset, coalesced.
    free: Vec<(usize, usize)>,
    /// Live blocks as `Reverse<(end_time, offset, len)>`.
    active: BinaryHeap<Reverse<(usize, usize, usize)>>,
    /// High-water byte count.
    extent: usize,
}

impl ByteAlloc {
    fn release_before(&mut self, time: usize) {
        while let Some(&Reverse((end, off, len))) = self.active.peek() {
            if end >= time {
                break;
            }
            self.active.pop();
            self.insert_free(off, len);
        }
    }

    fn insert_free(&mut self, off: usize, len: usize) {
        let at = self.free.partition_point(|&(o, _)| o < off);
        self.free.insert(at, (off, len));
        // Coalesce with the right, then the left, neighbour.
        if at + 1 < self.free.len() && self.free[at].0 + self.free[at].1 == self.free[at + 1].0 {
            self.free[at].1 += self.free[at + 1].1;
            self.free.remove(at + 1);
        }
        if at > 0 && self.free[at - 1].0 + self.free[at - 1].1 == self.free[at].0 {
            self.free[at - 1].1 += self.free[at].1;
            self.free.remove(at);
        }
    }

    fn alloc(&mut self, len: usize, end_time: usize) -> usize {
        // Smallest free block that fits; ties go to the lowest offset.
        let mut best: Option<usize> = None;
        for (i, &(_, flen)) in self.free.iter().enumerate() {
            if flen >= len && best.is_none_or(|b| flen < self.free[b].1) {
                best = Some(i);
            }
        }
        let off = if let Some(i) = best {
            let (off, flen) = self.free[i];
            if flen == len {
                self.free.remove(i);
            } else {
                self.free[i] = (off + len, flen - len);
            }
            off
        } else if self.free.last().is_some_and(|&(o, l)| o + l == self.extent) {
            // No block fits, but the last one touches the high-water mark:
            // extend the arena from its start instead of past its end.
            let (off, _) = self.free.pop().unwrap_or((self.extent, 0));
            self.extent = off + len;
            off
        } else {
            let off = self.extent;
            self.extent += len;
            off
        };
        self.active.push(Reverse((end_time, off, len)));
        off
    }
}

/// Ahead-of-time storage plan for one quantised graph shape: per-node
/// codecs from the feasibility table, byte offsets in one shared arena
/// packed from the f32 inference plan's liveness.
#[derive(Debug)]
pub struct QuantPlan {
    signature: Vec<u64>,
    nodes: Vec<NodeSlot>,
    /// High-water byte count of the shared arena.
    arena_extent: usize,
    max_node_elems: usize,
    max_rows: usize,
    /// Live activation-node counts per class (int8, f16, f32).
    class_nodes: (usize, usize, usize),
    /// Arena bytes the plain f32 inference plan needs for this shape.
    f32_arena_bytes: u64,
}

impl QuantPlan {
    /// Audits `tape` up to `root` (same seeding as the store) and packs
    /// the shared byte arena. Fails on audit findings or on graphs
    /// containing training-only ops.
    pub fn build(
        tape: &Tape,
        root: Var,
        store: &ParamStore,
        cfg: &QuantConfig,
    ) -> Result<QuantPlan, QuantError> {
        for i in 0..=root.index() {
            if matches!(
                tape.op_at(i),
                Op::CrossEntropyLogits { .. }
                    | Op::WeightedCrossEntropyLogits { .. }
                    | Op::BceWithLogits { .. }
                    | Op::MseLoss { .. }
            ) {
                return Err(QuantError::UnsupportedOp { op: tape.op_name(i) });
            }
        }
        let audit = audit_graph(tape, root, store, &cfg.audit_config());
        let findings = audit.findings.iter().filter(|f| f.severity >= Severity::Warn).count();
        if findings > 0 {
            return Err(QuantError::Unsafe { findings });
        }
        let mut codecs = vec![Codec::f32(); tape.len()];
        for e in &audit.quant {
            codecs[e.op_index] = Codec::from_entry(e);
        }
        // The root score feeds a decision threshold downstream; snapping
        // it to an int8 grid flips near-threshold decisions for zero
        // storage benefit, so the output always stays f32.
        codecs[root.index()] = Codec::f32();
        let plan = ExecutionPlan::build_inference(tape, root);
        let mut nodes = vec![NodeSlot::default(); tape.len()];
        let mut slots: Vec<_> = plan.slots().iter().filter(|s| !s.grad).collect();
        slots.sort_by_key(|s| s.start_time);
        let mut alloc = ByteAlloc::default();
        let mut mirror_extent = 0usize;
        let mut class_nodes = (0usize, 0usize, 0usize);
        let mut max_node_elems = 0usize;
        let mut max_rows = 0usize;
        for s in &slots {
            let codec = codecs[s.node];
            let len = s.span.len;
            let (rows, _) = tape.value(Var::from_index(s.node)).shape();
            max_node_elems = max_node_elems.max(len);
            max_rows = max_rows.max(rows);
            // Round every block up to a 4-byte multiple: mixed 1/2/4-byte
            // node sizes otherwise fragment the free list badly enough to
            // overshoot the f32 arena on int8/f32-interleaved graphs, while
            // uniform granularity keeps the packing elem-like (each block
            // still needs at most what its f32 twin needed).
            // A value whose liveness ends at the very next timestep is
            // handed to its consumer through the previous-output buffer:
            // no encode, no decode, no arena block at all.
            let transient = s.end_time == s.start_time + 1 && s.node != root.index();
            // Round every block up to a 4-byte multiple: mixed 1/2/4-byte
            // node sizes otherwise fragment the free list badly enough to
            // overshoot the f32 arena on int8/f32-interleaved graphs.
            let bytes = if transient { 0 } else { (len * codec.class.bytes_per_elem() + 3) & !3 };
            let offset = if bytes == 0 {
                0
            } else {
                alloc.release_before(s.start_time);
                alloc.alloc(bytes, s.end_time)
            };
            // Mirror packing: the f32 plan's element offsets scaled to
            // bytes. Shrunk blocks stay inside their f32 twin's span, so
            // disjointness is inherited and the extent never exceeds the
            // f32 arena — a guaranteed fallback when greedy best-fit hits
            // a packing anomaly on the smaller mixed sizes.
            mirror_extent = mirror_extent.max(4 * s.span.start + bytes);
            match codec.class {
                QuantClass::Int8 => class_nodes.0 += 1,
                QuantClass::F16 => class_nodes.1 += 1,
                QuantClass::F32 => class_nodes.2 += 1,
            }
            nodes[s.node] = NodeSlot { live: true, codec, offset, len, transient };
        }
        if mirror_extent < alloc.extent {
            for s in &slots {
                if !nodes[s.node].transient {
                    nodes[s.node].offset = 4 * s.span.start;
                }
            }
            alloc.extent = mirror_extent;
        }
        Ok(QuantPlan {
            signature: quant_signature(tape, root),
            nodes,
            arena_extent: alloc.extent,
            max_node_elems,
            max_rows,
            class_nodes,
            f32_arena_bytes: plan.report().arena_bytes,
        })
    }

    /// Bytes of shared-arena storage the plan needs.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_extent as u64
    }

    /// Arena bytes the plain f32 inference plan needs for the same shape.
    pub fn f32_arena_bytes(&self) -> u64 {
        self.f32_arena_bytes
    }

    /// Live activation-node counts per class `(int8, f16, f32)`.
    pub fn class_nodes(&self) -> (usize, usize, usize) {
        self.class_nodes
    }
}

/// Reusable decode scratch, split out of the executor so operand reads
/// and the result buffer can be borrowed simultaneously.
#[derive(Default)]
struct QuantScratch {
    in0: Vec<f32>,
    in1: Vec<f32>,
    in2: Vec<f32>,
    out: Vec<f32>,
    /// The previously computed node's full-precision value; consumers
    /// executing at the very next timestep read it here instead of
    /// decoding the arena (and transient producers never encode at all).
    prev: Vec<f32>,
    /// Interleaved per-row layer-norm moments.
    moments: Vec<f32>,
    /// u8 transpose staging for the NT/TN integer matmul routes.
    u8t: Vec<u8>,
}

/// Executes quantised inference tapes through cached [`QuantPlan`]s with
/// zero allocations in steady state (the arena and scratch grow once per
/// shape, then replay).
#[derive(Default)]
pub struct QuantExecutor {
    plans: HashMap<u64, QuantPlan>,
    arena: Vec<u8>,
    scratch: QuantScratch,
}

impl QuantExecutor {
    /// An executor with no cached plans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct graph shapes planned so far.
    pub fn plans_cached(&self) -> usize {
        self.plans.len()
    }

    /// Bytes of arena storage this executor currently owns (peak across
    /// all shapes it has replayed; decode scratch excluded by the same
    /// convention that keeps pack buffers out of the f32 budget).
    pub fn arena_capacity_bytes(&self) -> u64 {
        self.arena.len() as u64
    }

    /// Looks up (or builds) the quantised plan for this tape's shape.
    pub fn plan_for(
        &mut self,
        tape: &Tape,
        root: Var,
        store: &ParamStore,
        qstore: &QuantStore,
    ) -> Result<&QuantPlan, QuantError> {
        let key = self.ensure_plan(tape, root, store, qstore)?;
        Ok(&self.plans[&key])
    }

    /// Looks up (building on miss) the plan for `tape`'s shape and returns
    /// its cache key — the signature is computed exactly once per call.
    fn ensure_plan(
        &mut self,
        tape: &Tape,
        root: Var,
        store: &ParamStore,
        qstore: &QuantStore,
    ) -> Result<u64, QuantError> {
        let sig = quant_signature(tape, root);
        let key = hash_signature(&sig);
        if self.plans.len() > 512 && !self.plans.contains_key(&key) {
            self.plans.clear();
        }
        if !self.plans.contains_key(&key) {
            let plan = QuantPlan::build(tape, root, store, qstore.config())?;
            self.plans.insert(key, plan);
        } else if self.plans[&key].signature != sig {
            // Hash collision between distinct shapes: rebuild.
            let plan = QuantPlan::build(tape, root, store, qstore.config())?;
            self.plans.insert(key, plan);
        }
        Ok(key)
    }

    /// Replays `tape` up to `root` through the quantised plan and writes
    /// the decoded output values (row-major) into `out`.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the element count of `root`.
    pub fn infer_into(
        &mut self,
        tape: &Tape,
        root: Var,
        store: &ParamStore,
        qstore: &QuantStore,
        out: &mut [f32],
    ) -> Result<(), QuantError> {
        let key = self.ensure_plan(tape, root, store, qstore)?;
        let plan = &self.plans[&key];
        grow_u8(&mut self.arena, plan.arena_extent);
        grow_f32(&mut self.scratch.in0, plan.max_node_elems);
        grow_f32(&mut self.scratch.in1, plan.max_node_elems);
        grow_f32(&mut self.scratch.in2, plan.max_node_elems);
        grow_f32(&mut self.scratch.out, plan.max_node_elems);
        grow_f32(&mut self.scratch.prev, plan.max_node_elems);
        grow_f32(&mut self.scratch.moments, 2 * plan.max_rows);
        run_quant_forward(plan, tape, store, qstore, &mut self.arena, &mut self.scratch, root);
        let (yr, yc) = tape.value(root).shape();
        assert_eq!(out.len(), yr * yc, "quant infer_into: output buffer size mismatch");
        match tape.op_at(root.index()) {
            Op::Input => out.copy_from_slice(tape.value(root).as_slice()),
            Op::Param(pid) => {
                let slice = qstore.fetch(store, *pid, &mut self.scratch.in0);
                out.copy_from_slice(slice);
            }
            _ => {
                let slot = &plan.nodes[root.index()];
                decode_slot(slot, &self.arena, &mut self.scratch.in0);
                out.copy_from_slice(&self.scratch.in0[..slot.len]);
            }
        }
        Ok(())
    }
}

fn grow_f32(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

fn grow_u8(buf: &mut Vec<u8>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0);
    }
}

/// Decodes one arena slot into `buf` (resized to the slot length).
/// f16/f32 values live in the byte arena as little-endian bytes, so
/// every class decodes with an elementwise copy — no alignment needed.
fn decode_slot(slot: &NodeSlot, arena: &[u8], buf: &mut Vec<f32>) {
    buf.resize(slot.len, 0.0);
    let (off, len) = (slot.offset, slot.len);
    match slot.codec.class {
        QuantClass::Int8 => u8_decode_slice(
            &arena[off..off + len],
            slot.codec.scale,
            slot.codec.zero_point,
            &mut buf[..len],
        ),
        QuantClass::F16 => f16_decode_slice_le(&arena[off..off + 2 * len], &mut buf[..len]),
        QuantClass::F32 => f32_decode_slice_le(&arena[off..off + 4 * len], &mut buf[..len]),
    }
}

/// Operand fetch: leaves come from the tape / quantised store, the
/// previously computed node comes straight from the previous-output
/// buffer (full precision, no decode), and everything else decodes from
/// the shared arena into `buf`.
#[allow(clippy::too_many_arguments)]
fn fetch<'a>(
    plan: &QuantPlan,
    tape: &'a Tape,
    store: &'a ParamStore,
    qstore: &'a QuantStore,
    arena: &'a [u8],
    prev: Option<(usize, &'a [f32])>,
    v: Var,
    buf: &'a mut Vec<f32>,
) -> &'a [f32] {
    if let Some((pn, pv)) = prev {
        if pn == v.index() {
            return &pv[..plan.nodes[pn].len];
        }
    }
    match tape.op_at(v.index()) {
        Op::Input => tape.value(v).as_slice(),
        Op::Param(pid) => qstore.fetch(store, *pid, buf),
        _ => {
            let slot = &plan.nodes[v.index()];
            debug_assert!(
                slot.live && !slot.transient,
                "quant fetch of an unplanned or expired transient node"
            );
            decode_slot(slot, arena, buf);
            &buf[..slot.len]
        }
    }
}

/// Raw int8 view of an operand, if (and only if) it is stored int8:
/// quantised parameters and int8-class arena nodes qualify (int8 slots
/// are contiguous raw code bytes in the shared arena). Transient nodes
/// have no codes — their consumers take the f32 route via [`fetch`].
fn fetch_u8<'a>(
    plan: &QuantPlan,
    tape: &Tape,
    qstore: &'a QuantStore,
    arena: &'a [u8],
    v: Var,
) -> Option<(&'a [u8], f32, u8)> {
    match tape.op_at(v.index()) {
        Op::Input => None,
        Op::Param(pid) => qstore.raw_u8(*pid),
        _ => {
            let slot = &plan.nodes[v.index()];
            if slot.live && !slot.transient && slot.codec.class == QuantClass::Int8 {
                Some((
                    &arena[slot.offset..slot.offset + slot.len],
                    slot.codec.scale,
                    slot.codec.zero_point,
                ))
            } else {
                None
            }
        }
    }
}

/// Encodes the computed node value into its arena slot (little-endian
/// bytes for the f16/f32 classes).
fn encode_slot(slot: &NodeSlot, src: &[f32], arena: &mut [u8]) {
    let (off, len) = (slot.offset, slot.len);
    match slot.codec.class {
        QuantClass::Int8 => {
            u8_encode_slice(
                &src[..len],
                slot.codec.scale,
                slot.codec.zero_point,
                &mut arena[off..off + len],
            );
        }
        QuantClass::F16 => f16_encode_slice_le(&src[..len], &mut arena[off..off + 2 * len]),
        QuantClass::F32 => f32_encode_slice_le(&src[..len], &mut arena[off..off + 4 * len]),
    }
}

/// Replays the forward pass through the shared arena. Every arm mirrors
/// the f32 executor's arithmetic on decoded operands — same kernels,
/// same scalar expressions — and the int8 matmul route substitutes the
/// exact integer GEMM.
#[allow(clippy::too_many_lines)]
fn run_quant_forward(
    plan: &QuantPlan,
    tape: &Tape,
    store: &ParamStore,
    qstore: &QuantStore,
    arena: &mut [u8],
    sc: &mut QuantScratch,
    root: Var,
) {
    let mut prev_node: Option<usize> = None;
    for i in 0..=root.index() {
        let slot = plan.nodes[i];
        if !slot.live || slot.len == 0 {
            continue;
        }
        let op = tape.op_at(i);
        if matches!(op, Op::Input | Op::Param(_)) {
            continue;
        }
        let (yr, yc) = tape.value(Var::from_index(i)).shape();
        let prevv: Option<(usize, &[f32])> = prev_node.map(|n| (n, sc.prev.as_slice()));
        let out = &mut sc.out;
        out.resize(slot.len, 0.0);
        let o = &mut out[..slot.len];
        match op {
            Op::Input | Op::Param(_) => unreachable!("leaves skipped above"),
            Op::Add(a, b) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                let bv = fetch(plan, tape, store, qstore, arena, prevv, *b, &mut sc.in1);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] + bv[k];
                }
            }
            Op::Sub(a, b) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                let bv = fetch(plan, tape, store, qstore, arena, prevv, *b, &mut sc.in1);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] - bv[k];
                }
            }
            Op::Mul(a, b) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                let bv = fetch(plan, tape, store, qstore, arena, prevv, *b, &mut sc.in1);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] * bv[k];
                }
            }
            Op::Div(a, b) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                let bv = fetch(plan, tape, store, qstore, arena, prevv, *b, &mut sc.in1);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] / bv[k];
                }
            }
            Op::Scale(a, k0) => {
                let k0 = *k0;
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] * k0;
                }
            }
            Op::AddScalar(a, k0) => {
                let k0 = *k0;
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] + k0;
                }
            }
            Op::AddRow(a, row) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                let rv = fetch(plan, tape, store, qstore, arena, prevv, *row, &mut sc.in1);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] + rv[k % yc];
                }
            }
            Op::AddCol(a, col) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                let cv = fetch(plan, tape, store, qstore, arena, prevv, *col, &mut sc.in1);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] + cv[k / yc];
                }
            }
            Op::MulCol(a, col) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                let cv = fetch(plan, tape, store, qstore, arena, prevv, *col, &mut sc.in1);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k] * cv[k / yc];
                }
            }
            Op::Matmul(a, b) => {
                let (_, ac) = tape.value(*a).shape();
                let qa = fetch_u8(plan, tape, qstore, arena, *a);
                let qb = fetch_u8(plan, tape, qstore, arena, *b);
                match (qa, qb) {
                    (Some((aq, sa, za)), Some((bq, sb, zb))) if ac <= MAX_U8_GEMM_DEPTH => {
                        matmul_u8_into(aq, za, bq, zb, sa * sb, o, yr, ac, yc);
                    }
                    _ => {
                        let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                        let bv = fetch(plan, tape, store, qstore, arena, prevv, *b, &mut sc.in1);
                        matmul_into(av, bv, o, yr, ac, yc);
                    }
                }
            }
            Op::MatmulNt(a, b) => {
                // C = A · Bᵀ with B `yc x ac`: transpose the int8 codes and
                // reuse the NN integer GEMM, else decode and use the f32
                // NT kernel.
                let (_, ac) = tape.value(*a).shape();
                let qa = fetch_u8(plan, tape, qstore, arena, *a);
                let qb = fetch_u8(plan, tape, qstore, arena, *b);
                match (qa, qb) {
                    (Some((aq, sa, za)), Some((bq, sb, zb))) if ac <= MAX_U8_GEMM_DEPTH => {
                        sc.u8t.resize(bq.len(), 0);
                        transpose_u8_into(bq, &mut sc.u8t, yc, ac);
                        matmul_u8_into(aq, za, &sc.u8t, zb, sa * sb, o, yr, ac, yc);
                    }
                    _ => {
                        let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                        let bv = fetch(plan, tape, store, qstore, arena, prevv, *b, &mut sc.in1);
                        matmul_nt_into(av, bv, o, yr, ac, yc);
                    }
                }
            }
            Op::MatmulTn(a, b) => {
                // C = Aᵀ · B with A `ar x yr`: transpose the int8 codes and
                // reuse the NN integer GEMM, else decode and use the f32
                // TN kernel.
                let (ar, _) = tape.value(*a).shape();
                let qa = fetch_u8(plan, tape, qstore, arena, *a);
                let qb = fetch_u8(plan, tape, qstore, arena, *b);
                match (qa, qb) {
                    (Some((aq, sa, za)), Some((bq, sb, zb))) if ar <= MAX_U8_GEMM_DEPTH => {
                        sc.u8t.resize(aq.len(), 0);
                        transpose_u8_into(aq, &mut sc.u8t, ar, yr);
                        matmul_u8_into(&sc.u8t, za, bq, zb, sa * sb, o, yr, ar, yc);
                    }
                    _ => {
                        let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                        let bv = fetch(plan, tape, store, qstore, arena, prevv, *b, &mut sc.in1);
                        matmul_tn_into(av, bv, o, ar, yr, yc);
                    }
                }
            }
            Op::Transpose(a) => {
                let (ar, ac) = tape.value(*a).shape();
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[(k % ar) * ac + k / ar];
                }
            }
            Op::SumAll(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                o[0] = av.iter().sum();
            }
            Op::MeanAll(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                o[0] = if av.is_empty() { 0.0 } else { av.iter().sum::<f32>() / av.len() as f32 };
            }
            Op::SumRows(a) => {
                let (ar, _) = tape.value(*a).shape();
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                o.fill(0.0);
                for r in 0..ar {
                    for j in 0..yc {
                        o[j] += av[r * yc + j];
                    }
                }
            }
            Op::SumCols(a) => {
                let (_, ac) = tape.value(*a).shape();
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for r in 0..yr {
                    o[r] = av[r * ac..(r + 1) * ac].iter().sum();
                }
            }
            Op::MaxCols(a) => {
                let (_, ac) = tape.value(*a).shape();
                assert!(ac > 0, "max_cols: tensor has no columns");
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for r in 0..yr {
                    o[r] =
                        av[r * ac..(r + 1) * ac].iter().copied().fold(f32::NEG_INFINITY, f32::max);
                }
            }
            Op::Softmax(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                o.copy_from_slice(av);
                softmax_rows_inplace(o, yr, yc);
            }
            Op::LogSoftmax(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                o.copy_from_slice(av);
                log_softmax_rows_inplace(o, yr, yc);
            }
            Op::Exp(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k].exp();
                }
            }
            Op::Ln(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k].ln();
                }
            }
            Op::Sqrt(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k].sqrt();
                }
            }
            Op::Relu(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k].max(0.0);
                }
            }
            Op::LeakyRelu(a, alpha) => {
                let al = *alpha;
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = if av[k] >= 0.0 { av[k] } else { al * av[k] };
                }
            }
            Op::Tanh(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = av[k].tanh();
                }
            }
            Op::Sigmoid(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = 1.0 / (1.0 + (-av[k]).exp());
                }
            }
            Op::Gelu(a) => {
                let av = fetch(plan, tape, store, qstore, arena, prevv, *a, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = hiergat_tensor::gelu_scalar(av[k]);
                }
            }
            Op::LayerNorm { x, gamma, beta, eps } => {
                let eps = *eps;
                let xs = fetch(plan, tape, store, qstore, arena, prevv, *x, &mut sc.in0);
                row_moments_into(xs, &mut sc.moments[..2 * yr], yr, yc);
                let gs = fetch(plan, tape, store, qstore, arena, prevv, *gamma, &mut sc.in1);
                let bs = fetch(plan, tape, store, qstore, arena, prevv, *beta, &mut sc.in2);
                let sb = &sc.moments;
                for (k, d) in o.iter_mut().enumerate() {
                    let r = k / yc;
                    let j = k % yc;
                    let m = sb[2 * r];
                    let inv = 1.0 / (sb[2 * r + 1] + eps).sqrt();
                    *d = (xs[k] - m) * inv * gs[j] + bs[j];
                }
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let (_, pc) = tape.value(p).shape();
                    let pv = fetch(plan, tape, store, qstore, arena, prevv, p, &mut sc.in0);
                    for r in 0..yr {
                        o[r * yc + off..r * yc + off + pc]
                            .copy_from_slice(&pv[r * pc..(r + 1) * pc]);
                    }
                    off += pc;
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for &p in parts {
                    let (pr, pc) = tape.value(p).shape();
                    let pv = fetch(plan, tape, store, qstore, arena, prevv, p, &mut sc.in0);
                    o[off..off + pr * pc].copy_from_slice(pv);
                    off += pr * pc;
                }
            }
            Op::SliceCols { x, start, len } => {
                let (start, len) = (*start, *len);
                let (_, ac) = tape.value(*x).shape();
                let av = fetch(plan, tape, store, qstore, arena, prevv, *x, &mut sc.in0);
                for r in 0..yr {
                    o[r * len..(r + 1) * len]
                        .copy_from_slice(&av[r * ac + start..r * ac + start + len]);
                }
            }
            Op::SliceRows { x, start, .. } => {
                let start = *start;
                let (_, ac) = tape.value(*x).shape();
                let av = fetch(plan, tape, store, qstore, arena, prevv, *x, &mut sc.in0);
                o.copy_from_slice(&av[start * ac..start * ac + yr * ac]);
            }
            Op::GatherRows { table, indices } => {
                let (_, tc) = tape.value(*table).shape();
                // Embedding tables are the largest parameters in the store;
                // decode only the gathered rows instead of the whole table.
                let gathered = match tape.op_at(table.index()) {
                    Op::Param(pid) => qstore.gather_rows_into(*pid, indices, tc, o),
                    _ => false,
                };
                if !gathered {
                    let tv = fetch(plan, tape, store, qstore, arena, prevv, *table, &mut sc.in0);
                    for (r, &idx) in indices.iter().enumerate() {
                        o[r * tc..(r + 1) * tc].copy_from_slice(&tv[idx * tc..(idx + 1) * tc]);
                    }
                }
            }
            Op::Dropout { x, mask } => {
                let ms = mask.as_slice();
                let xs = fetch(plan, tape, store, qstore, arena, prevv, *x, &mut sc.in0);
                for (k, d) in o.iter_mut().enumerate() {
                    *d = xs[k] * ms[k];
                }
            }
            Op::CrossEntropyLogits { .. }
            | Op::WeightedCrossEntropyLogits { .. }
            | Op::BceWithLogits { .. }
            | Op::MseLoss { .. } => {
                unreachable!("loss ops rejected at plan build")
            }
        }
        if !slot.transient {
            encode_slot(&slot, o, arena);
        }
        // The freshly computed value becomes the previous-output buffer:
        // a consumer at the next timestep reads it at full precision
        // instead of decoding the arena.
        std::mem::swap(&mut sc.out, &mut sc.prev);
        prev_node = Some(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint;
    use hiergat_tensor::Tensor;

    /// Small fixed-weights model: `softmax(tanh(x·W + b))` with W `4x3`,
    /// b `1x3`, every value deterministic. Weight magnitudes keep the
    /// parameters and activations int8-feasible while the pre-activation
    /// matmul output lands in f16 territory under the default `[-8, 8]`
    /// input box.
    fn fixture_store() -> (ParamStore, ParamId, ParamId) {
        let mut store = ParamStore::new();
        let w = Tensor::from_rows(&[
            vec![0.81, -0.33, 0.12],
            vec![-0.77, 0.38, -0.45],
            vec![0.69, -0.18, 0.31],
            vec![-0.94, 0.22, -0.06],
        ]);
        let b = Tensor::from_rows(&[vec![-0.13, 0.07, 0.19]]);
        let wid = store.add("fixture.w", w);
        let bid = store.add("fixture.b", b);
        (store, wid, bid)
    }

    fn record_fixture(tape: &mut Tape, store: &ParamStore, wid: ParamId, bid: ParamId) -> Var {
        let x = tape.input(Tensor::from_rows(&[vec![1.5, -2.25, 0.75, 3.0]]));
        let w = tape.param(store, wid);
        let b = tape.param(store, bid);
        let z = tape.matmul(x, w);
        let z = tape.add_row(z, b);
        let h = tape.tanh(z);
        tape.softmax(h)
    }

    #[test]
    fn golden_feasibility_table_is_pinned() {
        // Round-trip the fixed weights through the binary checkpoint codec
        // first: the pinned table below is a property of the *checkpoint*,
        // so codec regressions fail here too.
        let (store, wid, bid) = fixture_store();
        let bytes = checkpoint::to_bytes(&store);
        let store = checkpoint::from_bytes(&bytes).expect("fixture checkpoint roundtrip");
        let wid2 = store.id_of("fixture.w").expect("w id");
        let bid2 = store.id_of("fixture.b").expect("b id");
        assert_eq!((wid.index(), bid.index()), (wid2.index(), bid2.index()));

        let mut tape = Tape::new();
        let root = record_fixture(&mut tape, &store, wid, bid);
        let cfg = QuantConfig::default();
        let audit = audit_graph(&tape, root, &store, &cfg.audit_config());
        // The pinned feasibility table. Classes and zero points are exact;
        // scales are (hi - lo) / 255 in f64, compared to 1e-9.
        let expected: &[(&str, &str, f64, u8)] = &[
            ("input", "int8", 16.0 / 255.0, 128),
            ("param", "int8", 1.75 / 255.0, 137),
            ("param", "int8", 0.32 / 255.0, 104),
            ("matmul", "f16", 0.0, 0),
            ("add_row", "f16", 0.0, 0),
            ("tanh", "int8", 2.0 / 255.0, 128),
            // Softmax proves [~0.063, 1.0]; the grid is derived from the
            // zero-extended interval [0, 1].
            ("softmax", "int8", 1.0 / 255.0, 0),
        ];
        assert_eq!(audit.quant.len(), expected.len(), "table row count shifted");
        for (e, (name, class, scale, zp)) in audit.quant.iter().zip(expected) {
            assert_eq!(e.op_name, *name, "op order shifted at node {}", e.op_index);
            assert_eq!(e.class, *class, "class regressed for {name}");
            assert!(
                (e.scale - scale).abs() < 1e-9,
                "scale regressed for {name}: {} vs pinned {scale}",
                e.scale
            );
            assert_eq!(e.zero_point, *zp, "zero point regressed for {name}");
        }
    }

    #[test]
    fn quantised_forward_matches_f32_reference() {
        let (store, wid, bid) = fixture_store();
        let mut tape = Tape::new();
        let root = record_fixture(&mut tape, &store, wid, bid);
        let reference = tape.value(root).as_slice().to_vec();

        let cfg = QuantConfig::default();
        let (qstore, _) = QuantStore::build(&tape, root, &store, &cfg).expect("quantise fixture");
        let mut exec = QuantExecutor::new();
        let mut out = vec![0.0f32; reference.len()];
        exec.infer_into(&tape, root, &store, &qstore, &mut out).expect("quant infer");
        for (q, f) in out.iter().zip(&reference) {
            assert!((q - f).abs() < 0.05, "quantised output {q} drifted from f32 reference {f}");
        }
        // Softmax rows still sum to ~1 after requantisation of the output.
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 0.02, "softmax row sum {sum}");
    }

    #[test]
    fn quantised_arena_is_smaller_than_f32_plan() {
        let (store, wid, bid) = fixture_store();
        let mut tape = Tape::new();
        let root = record_fixture(&mut tape, &store, wid, bid);
        let cfg = QuantConfig::default();
        let plan = QuantPlan::build(&tape, root, &store, &cfg).expect("plan fixture");
        assert!(
            plan.arena_bytes() < plan.f32_arena_bytes(),
            "quantised arena {} must undercut the f32 arena {}",
            plan.arena_bytes(),
            plan.f32_arena_bytes()
        );
        let (i8n, _f16n, _f32n) = plan.class_nodes();
        assert!(i8n > 0, "fixture should prove at least one int8 activation");
    }

    #[test]
    fn out_of_interval_values_are_rejected_not_clamped() {
        let codec = Codec { class: QuantClass::Int8, scale: 0.01, zero_point: 128 };
        let err =
            encode_checked(&[0.5, 1.51], -1.0, 1.0, &codec, "t").expect_err("out of interval");
        assert!(
            matches!(err, QuantError::OutOfInterval { value, .. } if value == 1.51),
            "expected rejection, got {err:?}"
        );
        // NaN never satisfies the interval check.
        let err = encode_checked(&[f32::NAN], -1.0, 1.0, &codec, "t").expect_err("NaN rejected");
        assert!(matches!(err, QuantError::OutOfInterval { .. }));
        // In-interval values encode fine and land on the affine grid.
        let data = encode_checked(&[0.5], -1.0, 1.0, &codec, "t").expect("in-interval");
        let mut back = Vec::new();
        data.decode_into(&codec, &mut back);
        assert!((back[0] - 0.5).abs() <= codec.roundtrip_bound(0.5));
    }

    #[test]
    fn loss_ops_are_rejected_by_the_plan() {
        let (store, wid, bid) = fixture_store();
        let mut tape = Tape::new();
        let root = record_fixture(&mut tape, &store, wid, bid);
        let loss = tape.cross_entropy_logits(root, &[1]);
        let cfg = QuantConfig::default();
        let err = QuantPlan::build(&tape, loss, &store, &cfg).expect_err("loss op rejected");
        assert!(matches!(err, QuantError::UnsupportedOp { .. }), "got {err:?}");
    }

    #[test]
    fn plan_cache_is_reused_across_same_shape_tapes() {
        let (store, wid, bid) = fixture_store();
        let cfg = QuantConfig::default();
        let mut exec = QuantExecutor::new();
        let mut qstore = None;
        for _ in 0..3 {
            let mut tape = Tape::new();
            let root = record_fixture(&mut tape, &store, wid, bid);
            if qstore.is_none() {
                qstore = Some(QuantStore::build(&tape, root, &store, &cfg).expect("quantise").0);
            }
            let qs = qstore.as_ref().expect("built");
            let mut out = vec![0.0f32; 3];
            exec.infer_into(&tape, root, &store, qs, &mut out).expect("quant infer");
        }
        assert_eq!(exec.plans_cached(), 1, "same shape must reuse one cached plan");
    }

    #[test]
    fn store_report_accounts_for_quantised_bytes() {
        let (store, wid, bid) = fixture_store();
        let mut tape = Tape::new();
        let root = record_fixture(&mut tape, &store, wid, bid);
        let cfg = QuantConfig::default();
        let (qstore, _) = QuantStore::build(&tape, root, &store, &cfg).expect("quantise");
        let r = qstore.report();
        assert_eq!(r.int8_params + r.f16_params + r.f32_params, 2);
        assert!(r.bytes_quantised < r.bytes_f32, "{} !< {}", r.bytes_quantised, r.bytes_f32);
        assert_eq!(r.bytes_f32, 4 * (12 + 3));
    }
}
