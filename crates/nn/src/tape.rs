//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records one forward pass as a topologically ordered list of
//! nodes (the order of creation). Values are computed eagerly when each op
//! is recorded; [`Tape::backward`] then walks the tape in reverse,
//! propagating adjoints and accumulating parameter gradients into the
//! [`ParamStore`].
//!
//! Every op's backward rule is validated against finite differences by the
//! `gradcheck` test module.

use crate::params::{ParamId, ParamStore};
use hiergat_tensor::{gelu_grad_scalar, Tensor};
use rand::Rng;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Constant input (no gradient flows past it).
    Input,
    /// Leaf reading a parameter from the store; backward accumulates there.
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    /// `(r x c) + broadcast (1 x c)`.
    AddRow(Var, Var),
    /// `(r x c) + broadcast (r x 1)`.
    AddCol(Var, Var),
    /// Row `i` of lhs scaled by `col[i]`.
    MulCol(Var, Var),
    Matmul(Var, Var),
    Transpose(Var),
    SumAll(Var),
    MeanAll(Var),
    SumRows(Var),
    SumCols(Var),
    Softmax(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    Gelu(Var),
    LayerNorm { x: Var, gamma: Var, beta: Var, eps: f32 },
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    SliceCols { x: Var, start: usize },
    SliceRows { x: Var, start: usize },
    GatherRows { table: Var, indices: Vec<usize> },
    Dropout { x: Var, mask: Tensor },
    CrossEntropyLogits { logits: Var, targets: Vec<usize> },
    WeightedCrossEntropyLogits { logits: Var, targets: Vec<usize>, weights: Vec<f32> },
    BceWithLogits { logits: Var, targets: Vec<f32> },
    MseLoss { pred: Var, target: Tensor },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// One recorded forward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        debug_assert!(!value.has_non_finite(), "tape op produced non-finite values");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant input tensor.
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Input)
    }

    /// Records a scalar constant.
    pub fn constant(&mut self, value: f32) -> Var {
        self.input(Tensor::scalar(value))
    }

    /// Records a parameter leaf; gradients will accumulate in the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = self.value(a).scale(k);
        self.push(v, Op::Scale(a, k))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let v = self.value(a).add_scalar(k);
        self.push(v, Op::AddScalar(a))
    }

    /// `1 - a`, elementwise (GRU gating convenience).
    pub fn one_minus(&mut self, a: Var) -> Var {
        let neg = self.scale(a, -1.0);
        self.add_scalar(neg, 1.0)
    }

    /// Broadcast-adds a `1 x c` row vector to each row of `a`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let v = self.value(a).add_row_broadcast(self.value(row));
        self.push(v, Op::AddRow(a, row))
    }

    /// Broadcast-adds an `r x 1` column vector to each column of `a`.
    pub fn add_col(&mut self, a: Var, col: Var) -> Var {
        let v = self.value(a).add_col_broadcast(self.value(col));
        self.push(v, Op::AddCol(a, col))
    }

    /// Scales row `i` of `a` by `col[i]` (attention-weighted rows).
    pub fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let v = self.value(a).mul_col_broadcast(self.value(col));
        self.push(v, Op::MulCol(a, col))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Sum of all elements (`1 x 1`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        self.push(v, Op::MeanAll(a))
    }

    /// Sums over rows, producing a `1 x c` vector.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_rows();
        self.push(v, Op::SumRows(a))
    }

    /// Sums over columns, producing an `r x 1` vector.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_cols();
        self.push(v, Op::SumCols(a))
    }

    /// Mean over rows (`1 x c`).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let rows = self.value(a).rows() as f32;
        let s = self.sum_rows(a);
        self.scale(s, 1.0 / rows)
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        self.push(v, Op::Softmax(a))
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).relu();
        self.push(v, Op::Relu(a))
    }

    /// Leaky ReLU with slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.value(a).leaky_relu(alpha);
        self.push(v, Op::LeakyRelu(a, alpha))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).tanh();
        self.push(v, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).sigmoid();
        self.push(v, Op::Sigmoid(a))
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = self.value(a).gelu();
        self.push(v, Op::Gelu(a))
    }

    /// Fused layer normalization over each row, with learnable `gamma`/`beta`
    /// (`1 x c` parameters).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let (mean, var) = xv.row_moments();
        let mut out = xv.clone();
        let g = self.value(gamma).clone();
        let b = self.value(beta).clone();
        for i in 0..out.rows() {
            let m = mean.get(i, 0);
            let inv = 1.0 / (var.get(i, 0) + eps).sqrt();
            for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                *v = (*v - m) * inv * g.get(0, j) + b.get(0, j);
            }
        }
        self.push(out, Op::LayerNorm { x, gamma, beta, eps })
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_rows(&tensors);
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Copies columns `[start, start + len)`.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let v = self.value(x).slice_cols(start, len);
        self.push(v, Op::SliceCols { x, start })
    }

    /// Copies rows `[start, start + len)`.
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let v = self.value(x).slice_rows(start, len);
        self.push(v, Op::SliceRows { x, start })
    }

    /// Row `r` of `x` as a `1 x c` vector.
    pub fn row(&mut self, x: Var, r: usize) -> Var {
        self.slice_rows(x, r, 1)
    }

    /// Embedding lookup: `out[i] = table[indices[i]]`.
    pub fn gather_rows(&mut self, table: Var, indices: &[usize]) -> Var {
        let v = self.value(table).gather_rows(indices);
        self.push(v, Op::GatherRows { table, indices: indices.to_vec() })
    }

    /// Inverted dropout. Identity when `train` is false or `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f32, train: bool, rng: &mut impl Rng) -> Var {
        if !train || p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout: p must be < 1");
        let keep = 1.0 - p;
        let xv = self.value(x);
        let mut mask = Tensor::zeros(xv.rows(), xv.cols());
        for m in mask.as_mut_slice() {
            if rng.gen::<f32>() < keep {
                *m = 1.0 / keep;
            }
        }
        let v = xv.mul(&mask);
        self.push(v, Op::Dropout { x, mask })
    }

    /// Mean cross-entropy of row-wise logits against class indices.
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.rows(), targets.len(), "cross_entropy: target count mismatch");
        let log_probs = lv.log_softmax_rows();
        let mut loss = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < lv.cols(), "cross_entropy: class {t} out of range");
            loss -= log_probs.get(i, t);
        }
        loss /= targets.len() as f32;
        self.push(
            Tensor::scalar(loss),
            Op::CrossEntropyLogits { logits, targets: targets.to_vec() },
        )
    }

    /// Weighted cross-entropy: per-row weights, normalized by the weight
    /// sum. Used to up-weight the rare positive class (9-25% in the
    /// benchmarks).
    pub fn weighted_cross_entropy_logits(
        &mut self,
        logits: Var,
        targets: &[usize],
        weights: &[f32],
    ) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.rows(), targets.len(), "wce: target count mismatch");
        assert_eq!(targets.len(), weights.len(), "wce: weight count mismatch");
        let w_sum: f32 = weights.iter().sum();
        assert!(w_sum > 0.0, "wce: weights must be positive");
        let log_probs = lv.log_softmax_rows();
        let mut loss = 0.0;
        for (i, (&t, &w)) in targets.iter().zip(weights).enumerate() {
            assert!(t < lv.cols(), "wce: class {t} out of range");
            loss -= w * log_probs.get(i, t);
        }
        loss /= w_sum;
        self.push(
            Tensor::scalar(loss),
            Op::WeightedCrossEntropyLogits {
                logits,
                targets: targets.to_vec(),
                weights: weights.to_vec(),
            },
        )
    }

    /// Mean binary cross-entropy with logits (`r x 1` logits, `targets` in `[0,1]`).
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.cols(), 1, "bce: logits must be a column vector");
        assert_eq!(lv.rows(), targets.len(), "bce: target count mismatch");
        let mut loss = 0.0;
        for (i, &y) in targets.iter().enumerate() {
            let z = lv.get(i, 0);
            // Numerically stable: max(z,0) - z*y + ln(1 + e^{-|z|}).
            loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        }
        loss /= targets.len() as f32;
        self.push(
            Tensor::scalar(loss),
            Op::BceWithLogits { logits, targets: targets.to_vec() },
        )
    }

    /// Mean squared error against a constant target.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "mse: shape mismatch");
        let diff = pv.sub(target);
        let loss = diff.as_slice().iter().map(|d| d * d).sum::<f32>() / pv.len() as f32;
        self.push(Tensor::scalar(loss), Op::MseLoss { pred, target: target.clone() })
    }

    /// Runs reverse-mode differentiation from the scalar `loss` node,
    /// accumulating parameter gradients into `store`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        assert!(self.value(loss).is_scalar(), "backward: loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(*pid, &g),
                Op::Add(a, b) => {
                    accum(&mut grads, *a, g.clone());
                    accum(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accum(&mut grads, *a, g.clone());
                    accum(&mut grads, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let da = g.mul(self.value(*b));
                    let db = g.mul(self.value(*a));
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::Scale(a, k) => accum(&mut grads, *a, g.scale(*k)),
                Op::AddScalar(a) => accum(&mut grads, *a, g),
                Op::AddRow(a, row) => {
                    accum(&mut grads, *row, g.sum_rows());
                    accum(&mut grads, *a, g);
                }
                Op::AddCol(a, col) => {
                    accum(&mut grads, *col, g.sum_cols());
                    accum(&mut grads, *a, g);
                }
                Op::MulCol(a, col) => {
                    let da = g.mul_col_broadcast(self.value(*col));
                    let dcol = g.mul(self.value(*a)).sum_cols();
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *col, dcol);
                }
                Op::Matmul(a, b) => {
                    // dA = G B^T ; dB = A^T G
                    let da = g.matmul_nt(self.value(*b));
                    let db = self.value(*a).matmul_tn(&g);
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::Transpose(a) => accum(&mut grads, *a, g.transpose()),
                Op::SumAll(a) => {
                    let (r, c) = self.value(*a).shape();
                    accum(&mut grads, *a, Tensor::full(r, c, g.item()));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.value(*a).shape();
                    let k = g.item() / (r * c) as f32;
                    accum(&mut grads, *a, Tensor::full(r, c, k));
                }
                Op::SumRows(a) => {
                    let rows = self.value(*a).rows();
                    let da = Tensor::zeros(rows, g.cols()).add_row_broadcast(&g);
                    accum(&mut grads, *a, da);
                }
                Op::SumCols(a) => {
                    let cols = self.value(*a).cols();
                    let da = Tensor::zeros(g.rows(), cols).add_col_broadcast(&g);
                    accum(&mut grads, *a, da);
                }
                Op::Softmax(a) => {
                    // dx = y * (g - rowsum(g * y))
                    let y = &self.nodes[i].value;
                    let gy = g.mul(y);
                    let row_dot = gy.sum_cols(); // r x 1
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        let d = row_dot.get(r, 0);
                        for (j, v) in da.row_mut(r).iter_mut().enumerate() {
                            *v = y.get(r, j) * (*v - d);
                        }
                    }
                    accum(&mut grads, *a, da);
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let da = g.zip_map(x, "relu_bwd", |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    accum(&mut grads, *a, da);
                }
                Op::LeakyRelu(a, alpha) => {
                    let x = self.value(*a);
                    let al = *alpha;
                    let da =
                        g.zip_map(x, "lrelu_bwd", |gv, xv| if xv > 0.0 { gv } else { al * gv });
                    accum(&mut grads, *a, da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let da = g.zip_map(y, "tanh_bwd", |gv, yv| gv * (1.0 - yv * yv));
                    accum(&mut grads, *a, da);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let da = g.zip_map(y, "sigmoid_bwd", |gv, yv| gv * yv * (1.0 - yv));
                    accum(&mut grads, *a, da);
                }
                Op::Gelu(a) => {
                    let x = self.value(*a);
                    let da = g.zip_map(x, "gelu_bwd", |gv, xv| gv * gelu_grad_scalar(xv));
                    accum(&mut grads, *a, da);
                }
                Op::LayerNorm { x, gamma, beta, eps } => {
                    let (dx, dgamma, dbeta) =
                        layer_norm_backward(self.value(*x), self.value(*gamma), &g, *eps);
                    accum(&mut grads, *x, dx);
                    accum(&mut grads, *gamma, dgamma);
                    accum(&mut grads, *beta, dbeta);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = self.value(p).cols();
                        accum(&mut grads, p, g.slice_cols(off, w));
                        off += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let h = self.value(p).rows();
                        accum(&mut grads, p, g.slice_rows(off, h));
                        off += h;
                    }
                }
                Op::SliceCols { x, start } => {
                    let (r, c) = self.value(*x).shape();
                    let mut dx = Tensor::zeros(r, c);
                    for row in 0..r {
                        let src = g.row(row);
                        dx.row_mut(row)[*start..*start + src.len()].copy_from_slice(src);
                    }
                    accum(&mut grads, *x, dx);
                }
                Op::SliceRows { x, start } => {
                    let (r, c) = self.value(*x).shape();
                    let mut dx = Tensor::zeros(r, c);
                    for row in 0..g.rows() {
                        dx.row_mut(start + row).copy_from_slice(g.row(row));
                    }
                    accum(&mut grads, *x, dx);
                }
                Op::GatherRows { table, indices } => {
                    let (r, c) = self.value(*table).shape();
                    let mut dt = Tensor::zeros(r, c);
                    dt.scatter_add_rows(indices, &g);
                    accum(&mut grads, *table, dt);
                }
                Op::Dropout { x, mask } => {
                    accum(&mut grads, *x, g.mul(mask));
                }
                Op::CrossEntropyLogits { logits, targets } => {
                    // d logits = (softmax - onehot) * g / n
                    let lv = self.value(*logits);
                    let mut dl = lv.softmax_rows();
                    let k = g.item() / targets.len() as f32;
                    for (r, &t) in targets.iter().enumerate() {
                        let cur = dl.get(r, t);
                        dl.set(r, t, cur - 1.0);
                    }
                    accum(&mut grads, *logits, dl.scale(k));
                }
                Op::WeightedCrossEntropyLogits { logits, targets, weights } => {
                    let lv = self.value(*logits);
                    let mut dl = lv.softmax_rows();
                    let w_sum: f32 = weights.iter().sum();
                    let k = g.item() / w_sum;
                    for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
                        let cur = dl.get(r, t);
                        dl.set(r, t, cur - 1.0);
                        for v in dl.row_mut(r) {
                            *v *= k * w;
                        }
                    }
                    accum(&mut grads, *logits, dl);
                }
                Op::BceWithLogits { logits, targets } => {
                    let lv = self.value(*logits);
                    let k = g.item() / targets.len() as f32;
                    let mut dl = Tensor::zeros(lv.rows(), 1);
                    for (r, &y) in targets.iter().enumerate() {
                        let z = lv.get(r, 0);
                        let s = 1.0 / (1.0 + (-z).exp());
                        dl.set(r, 0, (s - y) * k);
                    }
                    accum(&mut grads, *logits, dl);
                }
                Op::MseLoss { pred, target } => {
                    let pv = self.value(*pred);
                    let k = 2.0 * g.item() / pv.len() as f32;
                    accum(&mut grads, *pred, pv.sub(target).scale(k));
                }
            }
        }
    }
}

fn accum(grads: &mut [Option<Tensor>], v: Var, delta: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

/// Closed-form layer-norm backward for one batch of rows.
fn layer_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    g: &Tensor,
    eps: f32,
) -> (Tensor, Tensor, Tensor) {
    let (rows, cols) = x.shape();
    let c = cols as f32;
    let (mean, var) = x.row_moments();
    let mut dx = Tensor::zeros(rows, cols);
    let mut dgamma = Tensor::zeros(1, cols);
    let mut dbeta = Tensor::zeros(1, cols);
    for r in 0..rows {
        let m = mean.get(r, 0);
        let inv = 1.0 / (var.get(r, 0) + eps).sqrt();
        // x_hat and intermediate sums.
        let mut sum_dxhat = 0.0;
        let mut sum_dxhat_xhat = 0.0;
        let mut xhat = vec![0.0f32; cols];
        let mut dxhat = vec![0.0f32; cols];
        for j in 0..cols {
            xhat[j] = (x.get(r, j) - m) * inv;
            dxhat[j] = g.get(r, j) * gamma.get(0, j);
            sum_dxhat += dxhat[j];
            sum_dxhat_xhat += dxhat[j] * xhat[j];
            dgamma.set(0, j, dgamma.get(0, j) + g.get(r, j) * xhat[j]);
            dbeta.set(0, j, dbeta.get(0, j) + g.get(r, j));
        }
        for j in 0..cols {
            let v = inv * (dxhat[j] - sum_dxhat / c - xhat[j] * sum_dxhat_xhat / c);
            dx.set(r, j, v);
        }
    }
    (dx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_chain_gradient() {
        // loss = sum((w * 3)^2-ish): check a simple chain by hand.
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(2.0));
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let y = t.scale(wv, 3.0); // y = 6
        let loss = t.mul(y, y); // loss = 36, dloss/dw = 2*y*3 = 36
        let loss = t.sum_all(loss);
        assert!((t.value(loss).item() - 36.0).abs() < 1e-5);
        t.backward(loss, &mut ps);
        assert!((ps.grad(w).item() - 36.0).abs() < 1e-4);
    }

    #[test]
    fn matmul_gradient_manual() {
        // loss = sum(A W), dW = A^T 1, dA = 1 W^T
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let mut t = Tape::new();
        let a = t.input(Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]));
        let wv = t.param(&ps, w);
        let y = t.matmul(a, wv);
        let loss = t.sum_all(y);
        t.backward(loss, &mut ps);
        // dW = A^T @ ones(3,2) = [[2,2],[2,2]]
        assert_eq!(ps.grad(w).as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn param_used_twice_accumulates() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(5.0));
        let mut t = Tape::new();
        let w1 = t.param(&ps, w);
        let w2 = t.param(&ps, w);
        let s = t.add(w1, w2); // 2w
        let loss = t.sum_all(s);
        t.backward(loss, &mut ps);
        assert_eq!(ps.grad(w).item(), 2.0);
    }

    #[test]
    fn cross_entropy_forward_value() {
        let mut t = Tape::new();
        let logits = t.input(Tensor::from_rows(&[vec![0.0, 0.0]]));
        let loss = t.cross_entropy_logits(logits, &[0]);
        assert!((t.value(loss).item() - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_forward_value() {
        let mut t = Tape::new();
        let logits = t.input(Tensor::col_vector(&[0.0]));
        let loss = t.bce_with_logits(logits, &[1.0]);
        assert!((t.value(loss).item() - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let x = t.input(Tensor::ones(2, 4));
        let y = t.dropout(x, 0.5, false, &mut rng);
        assert_eq!(y, x); // same var: identity shortcut
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut kept = 0.0;
        let n = 200;
        for _ in 0..n {
            let mut t = Tape::new();
            let x = t.input(Tensor::ones(1, 50));
            let y = t.dropout(x, 0.3, true, &mut rng);
            kept += t.value(y).mean();
        }
        let avg = kept / n as f32;
        assert!((avg - 1.0).abs() < 0.05, "dropout expectation {avg}");
    }

    #[test]
    fn softmax_rows_grad_sums_to_zero() {
        // Because softmax output sums to 1, gradient wrt logits of any
        // function through softmax has zero row-sum when upstream grad is
        // uniform in that row only through the softmax path.
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::row_vector(&[0.2, -0.4, 0.9]));
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let s = t.softmax(wv);
        let picked = t.slice_cols(s, 1, 1); // prob of class 1
        let loss = t.sum_all(picked);
        t.backward(loss, &mut ps);
        let grad_sum: f32 = ps.grad(w).as_slice().iter().sum();
        assert!(grad_sum.abs() < 1e-5, "softmax grad row-sum {grad_sum}");
    }

    #[test]
    fn gather_rows_duplicate_indices_accumulate() {
        let mut ps = ParamStore::new();
        let table = ps.add("emb", Tensor::ones(3, 2));
        let mut t = Tape::new();
        let tv = t.param(&ps, table);
        let picked = t.gather_rows(tv, &[1, 1, 2]);
        let loss = t.sum_all(picked);
        t.backward(loss, &mut ps);
        assert_eq!(ps.grad(table).row(0), &[0.0, 0.0]);
        assert_eq!(ps.grad(table).row(1), &[2.0, 2.0]);
        assert_eq!(ps.grad(table).row(2), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let mut ps = ParamStore::new();
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(2, 2));
        t.backward(x, &mut ps);
    }
}
