//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records one forward pass as a topologically ordered list of
//! nodes (the order of creation). Values are computed eagerly when each op
//! is recorded; [`Tape::backward`] then walks the tape in reverse,
//! propagating adjoints and accumulating parameter gradients into the
//! [`ParamStore`].
//!
//! A tape can also be created with [`Tape::shape_only`]: recording then
//! skips every kernel, derives output shapes from the pure rules in
//! [`crate::analyze`], and collects shape-constraint failures as
//! diagnostics instead of panicking — the substrate for pre-flight static
//! analysis of a model's graph.
//!
//! Every op's backward rule is validated against finite differences by the
//! `gradcheck` test module.

use crate::analyze::{self, ShapeViolation};
use crate::params::{ParamId, ParamStore};
use hiergat_tensor::{gelu_grad_scalar, Tensor};
use rand::Rng;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Position of this node on its tape (diagnostics / analysis).
    pub fn index(self) -> usize {
        self.0
    }

    pub(crate) fn from_index(i: usize) -> Self {
        Self(i)
    }
}

pub(crate) enum Op {
    /// Constant input (no gradient flows past it).
    Input,
    /// Leaf reading a parameter from the store; backward accumulates there.
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    /// Adds constant `k` to every element. Carrying `k` on the node lets the
    /// lint rules recognize epsilon guards (`var + eps` before division) and
    /// positivity shifts; backward ignores it (identity gradient).
    AddScalar(Var, f32),
    /// Elementwise quotient `a / b`.
    Div(Var, Var),
    /// `(r x c) + broadcast (1 x c)`.
    AddRow(Var, Var),
    /// `(r x c) + broadcast (r x 1)`.
    AddCol(Var, Var),
    /// Row `i` of lhs scaled by `col[i]`.
    MulCol(Var, Var),
    Matmul(Var, Var),
    /// `a * b^T` without materializing the transpose (attention scoring).
    MatmulNt(Var, Var),
    /// `a^T * b` without materializing the transpose (context pooling).
    MatmulTn(Var, Var),
    Transpose(Var),
    SumAll(Var),
    MeanAll(Var),
    SumRows(Var),
    SumCols(Var),
    /// Per-row maximum as an `r x 1` column (softmax stabilizer).
    MaxCols(Var),
    Softmax(Var),
    /// Fused row-wise log-softmax (stable; never materializes probabilities).
    LogSoftmax(Var),
    /// Elementwise `e^x` (unbounded — the `naked-exp` lint watches this).
    Exp(Var),
    /// Elementwise natural log (`-inf` at zero — watched by lint).
    Ln(Var),
    /// Elementwise square root.
    Sqrt(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    Gelu(Var),
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    },
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    SliceCols {
        x: Var,
        start: usize,
        len: usize,
    },
    SliceRows {
        x: Var,
        start: usize,
        len: usize,
    },
    GatherRows {
        table: Var,
        indices: Vec<usize>,
    },
    Dropout {
        x: Var,
        mask: Tensor,
    },
    CrossEntropyLogits {
        logits: Var,
        targets: Vec<usize>,
    },
    WeightedCrossEntropyLogits {
        logits: Var,
        targets: Vec<usize>,
        weights: Vec<f32>,
    },
    BceWithLogits {
        logits: Var,
        targets: Vec<f32>,
    },
    MseLoss {
        pred: Var,
        target: Tensor,
    },
}

impl Op {
    /// Short stable name used in diagnostics.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Self::Input => "input",
            Self::Param(_) => "param",
            Self::Add(..) => "add",
            Self::Sub(..) => "sub",
            Self::Mul(..) => "mul",
            Self::Scale(..) => "scale",
            Self::AddScalar(..) => "add_scalar",
            Self::Div(..) => "div",
            Self::AddRow(..) => "add_row",
            Self::AddCol(..) => "add_col",
            Self::MulCol(..) => "mul_col",
            Self::Matmul(..) => "matmul",
            Self::MatmulNt(..) => "matmul_nt",
            Self::MatmulTn(..) => "matmul_tn",
            Self::Transpose(_) => "transpose",
            Self::SumAll(_) => "sum_all",
            Self::MeanAll(_) => "mean_all",
            Self::SumRows(_) => "sum_rows",
            Self::SumCols(_) => "sum_cols",
            Self::MaxCols(_) => "max_cols",
            Self::Softmax(_) => "softmax",
            Self::LogSoftmax(_) => "log_softmax",
            Self::Exp(_) => "exp",
            Self::Ln(_) => "ln",
            Self::Sqrt(_) => "sqrt",
            Self::Relu(_) => "relu",
            Self::LeakyRelu(..) => "leaky_relu",
            Self::Tanh(_) => "tanh",
            Self::Sigmoid(_) => "sigmoid",
            Self::Gelu(_) => "gelu",
            Self::LayerNorm { .. } => "layer_norm",
            Self::ConcatCols(_) => "concat_cols",
            Self::ConcatRows(_) => "concat_rows",
            Self::SliceCols { .. } => "slice_cols",
            Self::SliceRows { .. } => "slice_rows",
            Self::GatherRows { .. } => "gather_rows",
            Self::Dropout { .. } => "dropout",
            Self::CrossEntropyLogits { .. } => "cross_entropy_logits",
            Self::WeightedCrossEntropyLogits { .. } => "weighted_cross_entropy_logits",
            Self::BceWithLogits { .. } => "bce_with_logits",
            Self::MseLoss { .. } => "mse_loss",
        }
    }

    /// The upstream tape nodes this op reads (graph edges for reachability).
    /// Dense numeric variant tag for structural keys (CSE buckets, plan
    /// signatures) — variant identity without hashing the diagnostic name
    /// on hot paths.
    pub(crate) fn tag(&self) -> u64 {
        match self {
            Self::Input => 0,
            Self::Param(_) => 1,
            Self::Add(..) => 2,
            Self::Sub(..) => 3,
            Self::Mul(..) => 4,
            Self::Scale(..) => 5,
            Self::AddScalar(..) => 6,
            Self::Div(..) => 7,
            Self::AddRow(..) => 8,
            Self::AddCol(..) => 9,
            Self::MulCol(..) => 10,
            Self::Matmul(..) => 11,
            Self::MatmulNt(..) => 12,
            Self::MatmulTn(..) => 13,
            Self::Transpose(_) => 14,
            Self::SumAll(_) => 15,
            Self::MeanAll(_) => 16,
            Self::SumRows(_) => 17,
            Self::SumCols(_) => 18,
            Self::MaxCols(_) => 19,
            Self::Softmax(_) => 20,
            Self::LogSoftmax(_) => 21,
            Self::Exp(_) => 22,
            Self::Ln(_) => 23,
            Self::Sqrt(_) => 24,
            Self::Relu(_) => 25,
            Self::LeakyRelu(..) => 26,
            Self::Tanh(_) => 27,
            Self::Sigmoid(_) => 28,
            Self::Gelu(_) => 29,
            Self::LayerNorm { .. } => 30,
            Self::ConcatCols(_) => 31,
            Self::ConcatRows(_) => 32,
            Self::SliceCols { .. } => 33,
            Self::SliceRows { .. } => 34,
            Self::GatherRows { .. } => 35,
            Self::Dropout { .. } => 36,
            Self::CrossEntropyLogits { .. } => 37,
            Self::WeightedCrossEntropyLogits { .. } => 38,
            Self::BceWithLogits { .. } => 39,
            Self::MseLoss { .. } => 40,
        }
    }

    /// Calls `f` with each input operand in order — the allocation-free
    /// sibling of [`Self::inputs`] for per-node hot loops.
    pub(crate) fn for_each_input(&self, mut f: impl FnMut(Var)) {
        match self {
            Self::Input | Self::Param(_) => {}
            Self::Scale(a, _)
            | Self::AddScalar(a, _)
            | Self::Transpose(a)
            | Self::SumAll(a)
            | Self::MeanAll(a)
            | Self::SumRows(a)
            | Self::SumCols(a)
            | Self::MaxCols(a)
            | Self::Softmax(a)
            | Self::LogSoftmax(a)
            | Self::Exp(a)
            | Self::Ln(a)
            | Self::Sqrt(a)
            | Self::Relu(a)
            | Self::LeakyRelu(a, _)
            | Self::Tanh(a)
            | Self::Sigmoid(a)
            | Self::Gelu(a) => f(*a),
            Self::Add(a, b)
            | Self::Sub(a, b)
            | Self::Mul(a, b)
            | Self::Div(a, b)
            | Self::AddRow(a, b)
            | Self::AddCol(a, b)
            | Self::MulCol(a, b)
            | Self::Matmul(a, b)
            | Self::MatmulNt(a, b)
            | Self::MatmulTn(a, b) => {
                f(*a);
                f(*b);
            }
            Self::LayerNorm { x, gamma, beta, .. } => {
                f(*x);
                f(*gamma);
                f(*beta);
            }
            Self::ConcatCols(parts) | Self::ConcatRows(parts) => {
                for &p in parts {
                    f(p);
                }
            }
            Self::SliceCols { x, .. } | Self::SliceRows { x, .. } | Self::Dropout { x, .. } => {
                f(*x);
            }
            Self::GatherRows { table, .. } => f(*table),
            Self::CrossEntropyLogits { logits, .. }
            | Self::WeightedCrossEntropyLogits { logits, .. }
            | Self::BceWithLogits { logits, .. } => f(*logits),
            Self::MseLoss { pred, .. } => f(*pred),
        }
    }

    pub(crate) fn inputs(&self) -> Vec<Var> {
        match self {
            Self::Input | Self::Param(_) => Vec::new(),
            Self::Scale(a, _)
            | Self::AddScalar(a, _)
            | Self::Transpose(a)
            | Self::SumAll(a)
            | Self::MeanAll(a)
            | Self::SumRows(a)
            | Self::SumCols(a)
            | Self::MaxCols(a)
            | Self::Softmax(a)
            | Self::LogSoftmax(a)
            | Self::Exp(a)
            | Self::Ln(a)
            | Self::Sqrt(a)
            | Self::Relu(a)
            | Self::LeakyRelu(a, _)
            | Self::Tanh(a)
            | Self::Sigmoid(a)
            | Self::Gelu(a) => vec![*a],
            Self::Add(a, b)
            | Self::Sub(a, b)
            | Self::Mul(a, b)
            | Self::Div(a, b)
            | Self::AddRow(a, b)
            | Self::AddCol(a, b)
            | Self::MulCol(a, b)
            | Self::Matmul(a, b)
            | Self::MatmulNt(a, b)
            | Self::MatmulTn(a, b) => vec![*a, *b],
            Self::LayerNorm { x, gamma, beta, .. } => vec![*x, *gamma, *beta],
            Self::ConcatCols(parts) | Self::ConcatRows(parts) => parts.clone(),
            Self::SliceCols { x, .. } | Self::SliceRows { x, .. } | Self::Dropout { x, .. } => {
                vec![*x]
            }
            Self::GatherRows { table, .. } => vec![*table],
            Self::CrossEntropyLogits { logits, .. }
            | Self::WeightedCrossEntropyLogits { logits, .. }
            | Self::BceWithLogits { logits, .. } => vec![*logits],
            Self::MseLoss { pred, .. } => vec![*pred],
        }
    }
}

struct Node {
    value: Tensor,
    op: Op,
}

/// One recorded forward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    shape_only: bool,
    deferred: bool,
    inference: bool,
    optimized: bool,
    violations: Vec<ShapeViolation>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tape that records the graph without executing kernels.
    ///
    /// Every non-leaf node's value is a zero placeholder of the inferred
    /// shape; shape-constraint failures are collected (see
    /// [`Self::shape_violations`]) instead of panicking, and recording
    /// continues with a best-effort fallback shape so one pass surfaces
    /// every wiring mistake.
    pub fn shape_only() -> Self {
        Self { shape_only: true, ..Self::default() }
    }

    /// Creates a tape whose ops record **true** shapes but no values:
    /// non-leaf nodes hold storage-free [`Tensor::placeholder`]s and the
    /// whole graph executes later through an arena plan
    /// (`hiergat_nn::plan`).
    ///
    /// Differences from [`Self::shape_only`]: shapes are exact (no 1x1
    /// clamping of degenerate dims), a shape violation panics instead of
    /// being collected (an invalid graph cannot be planned), input tensors
    /// keep their real data (the executor copies leaf values from the tape
    /// and the [`ParamStore`]), and dropout samples its mask with exactly
    /// the eager RNG stream so arena execution is bitwise identical to
    /// eager execution.
    pub fn deferred() -> Self {
        Self { deferred: true, ..Self::default() }
    }

    /// Creates an eval-mode deferred tape for the forward-only inference
    /// engine.
    ///
    /// Like [`Self::deferred`], ops record exact shapes and storage-free
    /// placeholders for later arena execution — but the graph is a pure
    /// forward pass: dropout is elided entirely (no mask sampled, no RNG
    /// consumed, matching eager eval mode bitwise), [`Self::backward`] is
    /// rejected, and the plan built from it
    /// ([`crate::ExecutionPlan::build_inference`]) has no adjoint timeline,
    /// so gradients are never allocated and value spans are recycled as soon
    /// as their last forward consumer runs.
    pub fn inference() -> Self {
        Self { deferred: true, inference: true, ..Self::default() }
    }

    /// `true` if this tape skips kernels and only tracks shapes.
    pub fn is_shape_only(&self) -> bool {
        self.shape_only
    }

    /// `true` if this tape records true shapes for arena execution.
    pub fn is_deferred(&self) -> bool {
        self.deferred
    }

    /// `true` if this tape records an eval-mode forward-only graph.
    pub fn is_inference(&self) -> bool {
        self.inference
    }

    /// `true` if this tape was produced by the rewrite engine
    /// (`hiergat_nn::optimize`). The bit is folded into plan-cache
    /// signatures so optimised and as-recorded graphs never share a
    /// cached arena plan.
    pub fn is_optimized(&self) -> bool {
        self.optimized
    }

    pub(crate) fn mark_optimized(&mut self) {
        self.optimized = true;
    }

    /// An empty tape in the same recording mode as `self` (the rewrite
    /// engine re-emits surviving ops into one of these).
    pub(crate) fn mode_like(&self) -> Self {
        Self {
            shape_only: self.shape_only,
            deferred: self.deferred,
            inference: self.inference,
            ..Self::default()
        }
    }

    /// Shape-constraint failures collected during shape-only recording.
    pub fn shape_violations(&self) -> &[ShapeViolation] {
        &self.violations
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v` (a zero placeholder on shape-only tapes).
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The forward value at tape index `i` — the by-index sibling of
    /// [`Self::value`] for analyses that walk the whole tape (the absint
    /// containment tests compare every recorded value against its proven
    /// interval), or `None` if `i` is past the end of the tape.
    pub fn try_node_value(&self, i: usize) -> Option<&Tensor> {
        self.nodes.get(i).map(|n| &n.value)
    }

    /// Panicking sibling of [`Self::try_node_value`] for callers holding an
    /// index they already know is on the tape.
    ///
    /// # Panics
    /// Panics with the tape length if `i` is out of range.
    pub fn node_value(&self, i: usize) -> &Tensor {
        debug_assert!(
            i < self.nodes.len(),
            "node_value: index {i} out of range for tape of {} nodes",
            self.len()
        );
        match self.try_node_value(i) {
            Some(v) => v,
            None => panic!("node_value: index {i} out of range for tape of {} nodes", self.len()),
        }
    }

    pub(crate) fn op_at(&self, i: usize) -> &Op {
        &self.nodes[i].op
    }

    /// Moves node `i`'s value out of the tape, leaving a storage-free
    /// placeholder of the same shape behind. The rewrite engine's owned
    /// fast path (`optimize_owned`) uses this to re-home `Input` leaves
    /// onto the optimised tape without deep-copying them; shape queries
    /// against the vacated node keep answering the original geometry.
    ///
    /// # Panics
    /// Panics with the tape length if `i` is out of range.
    pub(crate) fn take_node_value(&mut self, i: usize) -> Tensor {
        assert!(
            i < self.nodes.len(),
            "take_node_value: index {i} out of range for tape of {} nodes",
            self.len()
        );
        let (rows, cols) = self.nodes[i].value.shape();
        std::mem::replace(&mut self.nodes[i].value, Tensor::placeholder(rows, cols))
    }

    /// Moves a fresh value into node `i`'s slot, replacing whatever was
    /// there. The optimiser's patch-in-place replay uses this to re-home
    /// each new example's `Input` leaves (and re-evaluated fold constants)
    /// onto a cached optimised tape whose structure already matched; the
    /// incoming value's shape must equal the slot's, so shape queries and
    /// the executor's plan signature stay stable across patches.
    ///
    /// # Panics
    /// Panics with the tape length if `i` is out of range.
    pub(crate) fn put_node_value(&mut self, i: usize, value: Tensor) {
        assert!(
            i < self.nodes.len(),
            "put_node_value: index {i} out of range for tape of {} nodes",
            self.len()
        );
        debug_assert_eq!(
            self.nodes[i].value.shape(),
            value.shape(),
            "put_node_value: patched value must keep the slot's shape"
        );
        self.nodes[i].value = value;
    }

    /// Mutable access to the op at tape index `i`, for the optimiser's
    /// patch-in-place replay (payload refresh only — wiring must never
    /// change, or the cached plan signature would lie).
    pub(crate) fn op_at_mut(&mut self, i: usize) -> &mut Op {
        &mut self.nodes[i].op
    }

    /// Diagnostic name of the op at tape index `i` (e.g. `"matmul"`), or
    /// `None` if `i` is past the end of the tape.
    pub fn try_op_name(&self, i: usize) -> Option<&'static str> {
        self.nodes.get(i).map(|n| n.op.name())
    }

    /// Panicking sibling of [`Self::try_op_name`].
    ///
    /// # Panics
    /// Panics with the tape length if `i` is out of range.
    pub fn op_name(&self, i: usize) -> &'static str {
        debug_assert!(
            i < self.nodes.len(),
            "op_name: index {i} out of range for tape of {} nodes",
            self.len()
        );
        match self.try_op_name(i) {
            Some(name) => name,
            None => panic!("op_name: index {i} out of range for tape of {} nodes", self.len()),
        }
    }

    /// Tape indices of the inputs of the op at index `i`, or `None` if `i`
    /// is past the end of the tape.
    pub fn try_op_inputs(&self, i: usize) -> Option<Vec<usize>> {
        self.nodes.get(i).map(|n| n.op.inputs().into_iter().map(Var::index).collect())
    }

    /// Panicking sibling of [`Self::try_op_inputs`].
    ///
    /// # Panics
    /// Panics with the tape length if `i` is out of range.
    pub fn op_inputs(&self, i: usize) -> Vec<usize> {
        debug_assert!(
            i < self.nodes.len(),
            "op_inputs: index {i} out of range for tape of {} nodes",
            self.len()
        );
        match self.try_op_inputs(i) {
            Some(inputs) => inputs,
            None => panic!("op_inputs: index {i} out of range for tape of {} nodes", self.len()),
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        #[cfg(debug_assertions)]
        if !matches!(op, Op::Input | Op::Param(_)) && value.has_non_finite() {
            panic!(
                "tape op #{} ({}) produced non-finite values; \
                 run hiergat_nn::analyze::finite_audit on the tape for a report",
                self.nodes.len(),
                op.name()
            );
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Shape-only recording: infer the output shape, log any violation, and
    /// push a zero placeholder so downstream ops still see a shape.
    fn push_inferred(&mut self, op: Op) -> Var {
        let ((rows, cols), violation) = analyze::infer_shape(self, &op);
        if let Some(message) = violation {
            self.violations.push(ShapeViolation {
                op_index: self.nodes.len(),
                op_name: op.name(),
                message,
            });
        }
        self.nodes.push(Node { value: Tensor::zeros(rows.max(1), cols.max(1)), op });
        Var(self.nodes.len() - 1)
    }

    /// Deferred recording: infer the exact output shape and push a
    /// storage-free placeholder. A shape violation is a hard error here — an
    /// invalid graph cannot be planned, so there is no best-effort fallback.
    fn push_deferred(&mut self, op: Op) -> Var {
        let ((rows, cols), violation) = analyze::infer_shape(self, &op);
        if let Some(message) = violation {
            panic!("deferred tape op #{} ({}): {message}", self.nodes.len(), op.name());
        }
        self.nodes.push(Node { value: Tensor::placeholder(rows, cols), op });
        Var(self.nodes.len() - 1)
    }

    /// Records `op`, computing its value with `eager` unless this is a
    /// shape-only or deferred tape.
    fn record(&mut self, op: Op, eager: impl FnOnce(&Self) -> Tensor) -> Var {
        if self.shape_only {
            return self.push_inferred(op);
        }
        if self.deferred {
            return self.push_deferred(op);
        }
        let value = eager(self);
        self.push(value, op)
    }

    /// Records a constant input tensor.
    ///
    /// Inputs keep their real data even on deferred tapes: the arena
    /// executor reads leaf values straight from the tape.
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Input)
    }

    /// Records a scalar constant.
    pub fn constant(&mut self, value: f32) -> Var {
        self.input(Tensor::scalar(value))
    }

    /// Records a parameter leaf; gradients will accumulate in the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if self.deferred {
            // The executor reads the live parameter from the store at
            // execution time; cloning the value here would be both a wasted
            // allocation and a staleness hazard across optimizer steps.
            let (rows, cols) = store.value(id).shape();
            return self.push(Tensor::placeholder(rows, cols), Op::Param(id));
        }
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Add(a, b), |t| t.value(a).add(t.value(b)))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Sub(a, b), |t| t.value(a).sub(t.value(b)))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Mul(a, b), |t| t.value(a).mul(t.value(b)))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        self.record(Op::Scale(a, k), |t| t.value(a).scale(k))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        self.record(Op::AddScalar(a, k), |t| t.value(a).add_scalar(k))
    }

    /// Elementwise quotient `a / b`.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Div(a, b), |t| t.value(a).div(t.value(b)))
    }

    /// Elementwise `e^x`. Overflows for unbounded inputs — subtract the row
    /// max first ([`Self::max_cols`]) or the `naked-exp` lint will flag it.
    pub fn exp(&mut self, a: Var) -> Var {
        self.record(Op::Exp(a), |t| t.value(a).exp())
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        self.record(Op::Ln(a), |t| t.value(a).ln())
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: Var) -> Var {
        self.record(Op::Sqrt(a), |t| t.value(a).sqrt())
    }

    /// `1 - a`, elementwise (GRU gating convenience).
    pub fn one_minus(&mut self, a: Var) -> Var {
        let neg = self.scale(a, -1.0);
        self.add_scalar(neg, 1.0)
    }

    /// Broadcast-adds a `1 x c` row vector to each row of `a`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        self.record(Op::AddRow(a, row), |t| t.value(a).add_row_broadcast(t.value(row)))
    }

    /// Broadcast-adds an `r x 1` column vector to each column of `a`.
    pub fn add_col(&mut self, a: Var, col: Var) -> Var {
        self.record(Op::AddCol(a, col), |t| t.value(a).add_col_broadcast(t.value(col)))
    }

    /// Scales row `i` of `a` by `col[i]` (attention-weighted rows).
    pub fn mul_col(&mut self, a: Var, col: Var) -> Var {
        self.record(Op::MulCol(a, col), |t| t.value(a).mul_col_broadcast(t.value(col)))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Matmul(a, b), |t| t.value(a).matmul(t.value(b)))
    }

    /// `a (r x k) * b^T (c x k) -> r x c` without materializing the
    /// transpose — the attention-scoring hot path (`Q K^T`).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::MatmulNt(a, b), |t| t.value(a).matmul_nt(t.value(b)))
    }

    /// `a^T (k x r) * b (k x c) -> r x c` without materializing the
    /// transpose — attention context pooling (`alpha^T V`).
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::MatmulTn(a, b), |t| t.value(a).matmul_tn(t.value(b)))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        self.record(Op::Transpose(a), |t| t.value(a).transpose())
    }

    /// Sum of all elements (`1 x 1`).
    pub fn sum_all(&mut self, a: Var) -> Var {
        self.record(Op::SumAll(a), |t| Tensor::scalar(t.value(a).sum()))
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean_all(&mut self, a: Var) -> Var {
        self.record(Op::MeanAll(a), |t| Tensor::scalar(t.value(a).mean()))
    }

    /// Sums over rows, producing a `1 x c` vector.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        self.record(Op::SumRows(a), |t| t.value(a).sum_rows())
    }

    /// Sums over columns, producing an `r x 1` vector.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        self.record(Op::SumCols(a), |t| t.value(a).sum_cols())
    }

    /// Mean over rows (`1 x c`).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let rows = self.value(a).rows() as f32;
        let s = self.sum_rows(a);
        self.scale(s, 1.0 / rows)
    }

    /// Per-row maximum (`r x 1`), the softmax/log-sum-exp stabilizer.
    pub fn max_cols(&mut self, a: Var) -> Var {
        self.record(Op::MaxCols(a), |t| t.value(a).max_cols())
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        self.record(Op::Softmax(a), |t| t.value(a).softmax_rows())
    }

    /// Fused row-wise log-softmax (use instead of `ln(softmax(x))`).
    pub fn log_softmax(&mut self, a: Var) -> Var {
        self.record(Op::LogSoftmax(a), |t| t.value(a).log_softmax_rows())
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        self.record(Op::Relu(a), |t| t.value(a).relu())
    }

    /// Leaky ReLU with slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        self.record(Op::LeakyRelu(a, alpha), |t| t.value(a).leaky_relu(alpha))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.record(Op::Tanh(a), |t| t.value(a).tanh())
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.record(Op::Sigmoid(a), |t| t.value(a).sigmoid())
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        self.record(Op::Gelu(a), |t| t.value(a).gelu())
    }

    /// Fused layer normalization over each row, with learnable `gamma`/`beta`
    /// (`1 x c` parameters).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        self.record(Op::LayerNorm { x, gamma, beta, eps }, |t| {
            let xv = t.value(x);
            let (mean, var) = xv.row_moments();
            let mut out = xv.clone();
            let g = t.value(gamma);
            let b = t.value(beta);
            for i in 0..out.rows() {
                let m = mean.get(i, 0);
                let inv = 1.0 / (var.get(i, 0) + eps).sqrt();
                for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                    *v = (*v - m) * inv * g.get(0, j) + b.get(0, j);
                }
            }
            out
        })
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        self.record(Op::ConcatCols(parts.to_vec()), |t| {
            let tensors: Vec<&Tensor> = parts.iter().map(|&p| t.value(p)).collect();
            Tensor::concat_cols(&tensors)
        })
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        self.record(Op::ConcatRows(parts.to_vec()), |t| {
            let tensors: Vec<&Tensor> = parts.iter().map(|&p| t.value(p)).collect();
            Tensor::concat_rows(&tensors)
        })
    }

    /// Copies columns `[start, start + len)`.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        self.record(Op::SliceCols { x, start, len }, |t| t.value(x).slice_cols(start, len))
    }

    /// Copies rows `[start, start + len)`.
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        self.record(Op::SliceRows { x, start, len }, |t| t.value(x).slice_rows(start, len))
    }

    /// Row `r` of `x` as a `1 x c` vector.
    pub fn row(&mut self, x: Var, r: usize) -> Var {
        self.slice_rows(x, r, 1)
    }

    /// Embedding lookup: `out[i] = table[indices[i]]`.
    pub fn gather_rows(&mut self, table: Var, indices: &[usize]) -> Var {
        self.record(Op::GatherRows { table, indices: indices.to_vec() }, |t| {
            t.value(table).gather_rows(indices)
        })
    }

    /// Inverted dropout. Identity when `train` is false or `p == 0`, and
    /// always on inference tapes (eval mode never drops; like eager eval, no
    /// RNG is consumed, so the streams stay aligned).
    pub fn dropout(&mut self, x: Var, p: f32, train: bool, rng: &mut impl Rng) -> Var {
        if !train || p <= 0.0 || self.inference {
            return x;
        }
        if self.shape_only {
            // No mask is sampled: shape analysis must not consume the RNG
            // stream or run kernels.
            return self.push_inferred(Op::Dropout { x, mask: Tensor::zeros(1, 1) });
        }
        assert!(p < 1.0, "dropout: p must be < 1");
        let keep = 1.0 - p;
        if self.deferred {
            // The mask is sampled here, with exactly the eager loop below, so
            // a deferred tape consumes the same RNG stream as an eager tape
            // and arena execution replays identical masks. Only the product
            // is deferred.
            let (rows, cols) = self.value(x).shape();
            let mut mask = Tensor::zeros(rows, cols);
            for m in mask.as_mut_slice() {
                if rng.gen::<f32>() < keep {
                    *m = 1.0 / keep;
                }
            }
            self.nodes
                .push(Node { value: Tensor::placeholder(rows, cols), op: Op::Dropout { x, mask } });
            return Var(self.nodes.len() - 1);
        }
        let xv = self.value(x);
        let mut mask = Tensor::zeros(xv.rows(), xv.cols());
        for m in mask.as_mut_slice() {
            if rng.gen::<f32>() < keep {
                *m = 1.0 / keep;
            }
        }
        let v = xv.mul(&mask);
        self.push(v, Op::Dropout { x, mask })
    }

    /// Re-records a dropout node with an already-sampled `mask` (no RNG is
    /// consumed). The rewrite engine uses this to carry a surviving dropout
    /// node — mask and all — onto an optimised tape bitwise-unchanged.
    pub(crate) fn dropout_with_mask(&mut self, x: Var, mask: Tensor) -> Var {
        self.record(Op::Dropout { x, mask: mask.clone() }, |t| t.value(x).mul(&mask))
    }

    /// Mean cross-entropy of row-wise logits against class indices.
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: &[usize]) -> Var {
        self.record(Op::CrossEntropyLogits { logits, targets: targets.to_vec() }, |t| {
            let lv = t.value(logits);
            assert_eq!(lv.rows(), targets.len(), "cross_entropy: target count mismatch");
            let log_probs = lv.log_softmax_rows();
            let mut loss = 0.0;
            for (i, &tc) in targets.iter().enumerate() {
                assert!(tc < lv.cols(), "cross_entropy: class {tc} out of range");
                loss -= log_probs.get(i, tc);
            }
            loss /= targets.len() as f32;
            Tensor::scalar(loss)
        })
    }

    /// Weighted cross-entropy: per-row weights, normalized by the weight
    /// sum. Used to up-weight the rare positive class (9-25% in the
    /// benchmarks).
    pub fn weighted_cross_entropy_logits(
        &mut self,
        logits: Var,
        targets: &[usize],
        weights: &[f32],
    ) -> Var {
        let op = Op::WeightedCrossEntropyLogits {
            logits,
            targets: targets.to_vec(),
            weights: weights.to_vec(),
        };
        self.record(op, |t| {
            let lv = t.value(logits);
            assert_eq!(lv.rows(), targets.len(), "wce: target count mismatch");
            assert_eq!(targets.len(), weights.len(), "wce: weight count mismatch");
            let w_sum: f32 = weights.iter().sum();
            assert!(w_sum > 0.0, "wce: weights must be positive");
            let log_probs = lv.log_softmax_rows();
            let mut loss = 0.0;
            for (i, (&tc, &w)) in targets.iter().zip(weights).enumerate() {
                assert!(tc < lv.cols(), "wce: class {tc} out of range");
                loss -= w * log_probs.get(i, tc);
            }
            loss /= w_sum;
            Tensor::scalar(loss)
        })
    }

    /// Mean binary cross-entropy with logits (`r x 1` logits, `targets` in `[0,1]`).
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        self.record(Op::BceWithLogits { logits, targets: targets.to_vec() }, |t| {
            let lv = t.value(logits);
            assert_eq!(lv.cols(), 1, "bce: logits must be a column vector");
            assert_eq!(lv.rows(), targets.len(), "bce: target count mismatch");
            let mut loss = 0.0;
            for (i, &y) in targets.iter().enumerate() {
                let z = lv.get(i, 0);
                // Numerically stable: max(z,0) - z*y + ln(1 + e^{-|z|}).
                loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
            }
            loss /= targets.len() as f32;
            Tensor::scalar(loss)
        })
    }

    /// Mean squared error against a constant target.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        self.record(Op::MseLoss { pred, target: target.clone() }, |t| {
            let pv = t.value(pred);
            assert_eq!(pv.shape(), target.shape(), "mse: shape mismatch");
            let diff = pv.sub(target);
            let loss = diff.as_slice().iter().map(|d| d * d).sum::<f32>() / pv.len() as f32;
            Tensor::scalar(loss)
        })
    }

    /// Runs reverse-mode differentiation from the scalar `loss` node,
    /// accumulating parameter gradients into `store`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`, or if called on a shape-only or
    /// deferred tape (placeholder values have no gradients; deferred tapes
    /// differentiate through `hiergat_nn::plan::ArenaExecutor`).
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        assert!(!self.shape_only, "backward: shape-only tapes record no values");
        assert!(!self.deferred, "backward: deferred tapes execute through the arena planner");
        assert!(self.value(loss).is_scalar(), "backward: loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            #[cfg(debug_assertions)]
            if g.has_non_finite() {
                panic!("backward adjoint of op #{i} ({}) is non-finite", self.nodes[i].op.name());
            }
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(*pid, &g),
                Op::Add(a, b) => {
                    accum(&mut grads, *a, g.clone());
                    accum(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accum(&mut grads, *a, g.clone());
                    accum(&mut grads, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let da = g.mul(self.value(*b));
                    let db = g.mul(self.value(*a));
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::Scale(a, k) => accum(&mut grads, *a, g.scale(*k)),
                Op::AddScalar(a, _) => accum(&mut grads, *a, g),
                Op::Div(a, b) => {
                    // y = a/b : da = g/b ; db = -g*y/b
                    let y = &self.nodes[i].value;
                    let da = g.div(self.value(*b));
                    let db = g.mul(y).div(self.value(*b)).scale(-1.0);
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::AddRow(a, row) => {
                    accum(&mut grads, *row, g.sum_rows());
                    accum(&mut grads, *a, g);
                }
                Op::AddCol(a, col) => {
                    accum(&mut grads, *col, g.sum_cols());
                    accum(&mut grads, *a, g);
                }
                Op::MulCol(a, col) => {
                    let da = g.mul_col_broadcast(self.value(*col));
                    let dcol = g.mul(self.value(*a)).sum_cols();
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *col, dcol);
                }
                Op::Matmul(a, b) => {
                    // dA = G B^T ; dB = A^T G
                    let da = g.matmul_nt(self.value(*b));
                    let db = self.value(*a).matmul_tn(&g);
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::MatmulNt(a, b) => {
                    // out = A B^T : dA = G B ; dB = G^T A
                    let da = g.matmul(self.value(*b));
                    let db = g.matmul_tn(self.value(*a));
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::MatmulTn(a, b) => {
                    // out = A^T B (A is k x r, B is k x c, G is r x c):
                    // dA = B G^T ; dB = A G
                    let da = self.value(*b).matmul_nt(&g);
                    let db = self.value(*a).matmul(&g);
                    accum(&mut grads, *a, da);
                    accum(&mut grads, *b, db);
                }
                Op::Transpose(a) => accum(&mut grads, *a, g.transpose()),
                Op::SumAll(a) => {
                    let (r, c) = self.value(*a).shape();
                    accum(&mut grads, *a, Tensor::full(r, c, g.item()));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.value(*a).shape();
                    let k = g.item() / (r * c) as f32;
                    accum(&mut grads, *a, Tensor::full(r, c, k));
                }
                Op::SumRows(a) => {
                    let rows = self.value(*a).rows();
                    let da = Tensor::zeros(rows, g.cols()).add_row_broadcast(&g);
                    accum(&mut grads, *a, da);
                }
                Op::SumCols(a) => {
                    let cols = self.value(*a).cols();
                    let da = Tensor::zeros(g.rows(), cols).add_col_broadcast(&g);
                    accum(&mut grads, *a, da);
                }
                Op::MaxCols(a) => {
                    // Subgradient: route each row's adjoint to the first
                    // argmax (matching the kernel's first-on-ties argmax).
                    let x = self.value(*a);
                    let mut dx = Tensor::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        dx.set(r, x.argmax_row(r), g.get(r, 0));
                    }
                    accum(&mut grads, *a, dx);
                }
                Op::LogSoftmax(a) => {
                    // dx = g - exp(y) * rowsum(g)
                    let y = &self.nodes[i].value;
                    let row_sum = g.sum_cols(); // r x 1
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        let s = row_sum.get(r, 0);
                        for (j, v) in da.row_mut(r).iter_mut().enumerate() {
                            *v -= y.get(r, j).exp() * s;
                        }
                    }
                    accum(&mut grads, *a, da);
                }
                Op::Exp(a) => {
                    let y = &self.nodes[i].value;
                    accum(&mut grads, *a, g.mul(y));
                }
                Op::Ln(a) => {
                    let da = g.div(self.value(*a));
                    accum(&mut grads, *a, da);
                }
                Op::Sqrt(a) => {
                    // dx = g / (2 * sqrt(x)) = 0.5 * g / y
                    let y = &self.nodes[i].value;
                    let da = g.div(y).scale(0.5);
                    accum(&mut grads, *a, da);
                }
                Op::Softmax(a) => {
                    // dx = y * (g - rowsum(g * y))
                    let y = &self.nodes[i].value;
                    let gy = g.mul(y);
                    let row_dot = gy.sum_cols(); // r x 1
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        let d = row_dot.get(r, 0);
                        for (j, v) in da.row_mut(r).iter_mut().enumerate() {
                            *v = y.get(r, j) * (*v - d);
                        }
                    }
                    accum(&mut grads, *a, da);
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let da = g.zip_map(x, "relu_bwd", |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    accum(&mut grads, *a, da);
                }
                Op::LeakyRelu(a, alpha) => {
                    let x = self.value(*a);
                    let al = *alpha;
                    let da =
                        g.zip_map(x, "lrelu_bwd", |gv, xv| if xv > 0.0 { gv } else { al * gv });
                    accum(&mut grads, *a, da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let da = g.zip_map(y, "tanh_bwd", |gv, yv| gv * (1.0 - yv * yv));
                    accum(&mut grads, *a, da);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let da = g.zip_map(y, "sigmoid_bwd", |gv, yv| gv * yv * (1.0 - yv));
                    accum(&mut grads, *a, da);
                }
                Op::Gelu(a) => {
                    let x = self.value(*a);
                    let da = g.zip_map(x, "gelu_bwd", |gv, xv| gv * gelu_grad_scalar(xv));
                    accum(&mut grads, *a, da);
                }
                Op::LayerNorm { x, gamma, beta, eps } => {
                    let (dx, dgamma, dbeta) =
                        layer_norm_backward(self.value(*x), self.value(*gamma), &g, *eps);
                    accum(&mut grads, *x, dx);
                    accum(&mut grads, *gamma, dgamma);
                    accum(&mut grads, *beta, dbeta);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = self.value(p).cols();
                        accum(&mut grads, p, g.slice_cols(off, w));
                        off += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let h = self.value(p).rows();
                        accum(&mut grads, p, g.slice_rows(off, h));
                        off += h;
                    }
                }
                Op::SliceCols { x, start, .. } => {
                    let (r, c) = self.value(*x).shape();
                    let mut dx = Tensor::zeros(r, c);
                    for row in 0..r {
                        let src = g.row(row);
                        dx.row_mut(row)[*start..*start + src.len()].copy_from_slice(src);
                    }
                    accum(&mut grads, *x, dx);
                }
                Op::SliceRows { x, start, .. } => {
                    let (r, c) = self.value(*x).shape();
                    let mut dx = Tensor::zeros(r, c);
                    for row in 0..g.rows() {
                        dx.row_mut(start + row).copy_from_slice(g.row(row));
                    }
                    accum(&mut grads, *x, dx);
                }
                Op::GatherRows { table, indices } => {
                    let (r, c) = self.value(*table).shape();
                    let mut dt = Tensor::zeros(r, c);
                    dt.scatter_add_rows(indices, &g);
                    accum(&mut grads, *table, dt);
                }
                Op::Dropout { x, mask } => {
                    accum(&mut grads, *x, g.mul(mask));
                }
                Op::CrossEntropyLogits { logits, targets } => {
                    // d logits = (softmax - onehot) * g / n
                    let lv = self.value(*logits);
                    let mut dl = lv.softmax_rows();
                    let k = g.item() / targets.len() as f32;
                    for (r, &t) in targets.iter().enumerate() {
                        let cur = dl.get(r, t);
                        dl.set(r, t, cur - 1.0);
                    }
                    accum(&mut grads, *logits, dl.scale(k));
                }
                Op::WeightedCrossEntropyLogits { logits, targets, weights } => {
                    let lv = self.value(*logits);
                    let mut dl = lv.softmax_rows();
                    let w_sum: f32 = weights.iter().sum();
                    let k = g.item() / w_sum;
                    for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
                        let cur = dl.get(r, t);
                        dl.set(r, t, cur - 1.0);
                        for v in dl.row_mut(r) {
                            *v *= k * w;
                        }
                    }
                    accum(&mut grads, *logits, dl);
                }
                Op::BceWithLogits { logits, targets } => {
                    let lv = self.value(*logits);
                    let k = g.item() / targets.len() as f32;
                    let mut dl = Tensor::zeros(lv.rows(), 1);
                    for (r, &y) in targets.iter().enumerate() {
                        let z = lv.get(r, 0);
                        let s = 1.0 / (1.0 + (-z).exp());
                        dl.set(r, 0, (s - y) * k);
                    }
                    accum(&mut grads, *logits, dl);
                }
                Op::MseLoss { pred, target } => {
                    let pv = self.value(*pred);
                    let k = 2.0 * g.item() / pv.len() as f32;
                    accum(&mut grads, *pred, pv.sub(target).scale(k));
                }
            }
        }
    }
}

fn accum(grads: &mut [Option<Tensor>], v: Var, delta: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

/// Closed-form layer-norm backward for one batch of rows.
fn layer_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    g: &Tensor,
    eps: f32,
) -> (Tensor, Tensor, Tensor) {
    let (rows, cols) = x.shape();
    let c = cols as f32;
    let (mean, var) = x.row_moments();
    let mut dx = Tensor::zeros(rows, cols);
    let mut dgamma = Tensor::zeros(1, cols);
    let mut dbeta = Tensor::zeros(1, cols);
    for r in 0..rows {
        let m = mean.get(r, 0);
        let inv = 1.0 / (var.get(r, 0) + eps).sqrt();
        // x_hat and intermediate sums.
        let mut sum_dxhat = 0.0;
        let mut sum_dxhat_xhat = 0.0;
        let mut xhat = vec![0.0f32; cols];
        let mut dxhat = vec![0.0f32; cols];
        for j in 0..cols {
            xhat[j] = (x.get(r, j) - m) * inv;
            dxhat[j] = g.get(r, j) * gamma.get(0, j);
            sum_dxhat += dxhat[j];
            sum_dxhat_xhat += dxhat[j] * xhat[j];
            dgamma.set(0, j, dgamma.get(0, j) + g.get(r, j) * xhat[j]);
            dbeta.set(0, j, dbeta.get(0, j) + g.get(r, j));
        }
        for j in 0..cols {
            let v = inv * (dxhat[j] - sum_dxhat / c - xhat[j] * sum_dxhat_xhat / c);
            dx.set(r, j, v);
        }
    }
    (dx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_chain_gradient() {
        // loss = sum((w * 3)^2-ish): check a simple chain by hand.
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(2.0));
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let y = t.scale(wv, 3.0); // y = 6
        let loss = t.mul(y, y); // loss = 36, dloss/dw = 2*y*3 = 36
        let loss = t.sum_all(loss);
        assert!((t.value(loss).item() - 36.0).abs() < 1e-5);
        t.backward(loss, &mut ps);
        assert!((ps.grad(w).item() - 36.0).abs() < 1e-4);
    }

    #[test]
    fn matmul_gradient_manual() {
        // loss = sum(A W), dW = A^T 1, dA = 1 W^T
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let mut t = Tape::new();
        let a = t.input(Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]));
        let wv = t.param(&ps, w);
        let y = t.matmul(a, wv);
        let loss = t.sum_all(y);
        t.backward(loss, &mut ps);
        // dW = A^T @ ones(3,2) = [[2,2],[2,2]]
        assert_eq!(ps.grad(w).as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn param_used_twice_accumulates() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(5.0));
        let mut t = Tape::new();
        let w1 = t.param(&ps, w);
        let w2 = t.param(&ps, w);
        let s = t.add(w1, w2); // 2w
        let loss = t.sum_all(s);
        t.backward(loss, &mut ps);
        assert_eq!(ps.grad(w).item(), 2.0);
    }

    #[test]
    fn cross_entropy_forward_value() {
        let mut t = Tape::new();
        let logits = t.input(Tensor::from_rows(&[vec![0.0, 0.0]]));
        let loss = t.cross_entropy_logits(logits, &[0]);
        assert!((t.value(loss).item() - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_forward_value() {
        let mut t = Tape::new();
        let logits = t.input(Tensor::col_vector(&[0.0]));
        let loss = t.bce_with_logits(logits, &[1.0]);
        assert!((t.value(loss).item() - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut t = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let x = t.input(Tensor::ones(2, 4));
        let y = t.dropout(x, 0.5, false, &mut rng);
        assert_eq!(y, x); // same var: identity shortcut
    }

    #[test]
    fn inference_tape_elides_dropout_without_consuming_rng() {
        let mut t = Tape::inference();
        assert!(t.is_inference());
        assert!(t.is_deferred());
        let mut rng = StdRng::seed_from_u64(7);
        let x = t.input(Tensor::ones(2, 4));
        // Even with train=true, an inference tape records no dropout node...
        let y = t.dropout(x, 0.5, true, &mut rng);
        assert_eq!(y, x);
        assert_eq!(t.len(), 1);
        // ...and leaves the RNG stream untouched (matches eager eval mode).
        let mut fresh = StdRng::seed_from_u64(7);
        assert_eq!(rng.gen::<f32>().to_bits(), fresh.gen::<f32>().to_bits());
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut kept = 0.0;
        let n = 200;
        for _ in 0..n {
            let mut t = Tape::new();
            let x = t.input(Tensor::ones(1, 50));
            let y = t.dropout(x, 0.3, true, &mut rng);
            kept += t.value(y).mean();
        }
        let avg = kept / n as f32;
        assert!((avg - 1.0).abs() < 0.05, "dropout expectation {avg}");
    }

    #[test]
    fn softmax_rows_grad_sums_to_zero() {
        // Because softmax output sums to 1, gradient wrt logits of any
        // function through softmax has zero row-sum when upstream grad is
        // uniform in that row only through the softmax path.
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::row_vector(&[0.2, -0.4, 0.9]));
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let s = t.softmax(wv);
        let picked = t.slice_cols(s, 1, 1); // prob of class 1
        let loss = t.sum_all(picked);
        t.backward(loss, &mut ps);
        let grad_sum: f32 = ps.grad(w).as_slice().iter().sum();
        assert!(grad_sum.abs() < 1e-5, "softmax grad row-sum {grad_sum}");
    }

    #[test]
    fn gather_rows_duplicate_indices_accumulate() {
        let mut ps = ParamStore::new();
        let table = ps.add("emb", Tensor::ones(3, 2));
        let mut t = Tape::new();
        let tv = t.param(&ps, table);
        let picked = t.gather_rows(tv, &[1, 1, 2]);
        let loss = t.sum_all(picked);
        t.backward(loss, &mut ps);
        assert_eq!(ps.grad(table).row(0), &[0.0, 0.0]);
        assert_eq!(ps.grad(table).row(1), &[2.0, 2.0]);
        assert_eq!(ps.grad(table).row(2), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let mut ps = ParamStore::new();
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(2, 2));
        t.backward(x, &mut ps);
    }

    #[test]
    #[should_panic(expected = "shape-only tapes record no values")]
    fn backward_rejects_shape_only_tapes() {
        let mut ps = ParamStore::new();
        let mut t = Tape::shape_only();
        let x = t.input(Tensor::zeros(1, 1));
        let loss = t.sum_all(x);
        t.backward(loss, &mut ps);
    }

    #[test]
    fn shape_only_dropout_keeps_shape_and_rng_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = Tape::shape_only();
        let x = t.input(Tensor::zeros(4, 6));
        let before = rng.clone();
        let y = t.dropout(x, 0.5, true, &mut rng);
        assert_eq!(t.value(y).shape(), (4, 6));
        assert_eq!(rng, before, "shape-only dropout must not consume the RNG");
    }

    #[test]
    fn deferred_records_true_shapes_without_values() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::ones(3, 2));
        let mut t = Tape::deferred();
        assert!(t.is_deferred());
        let x = t.input(Tensor::ones(4, 3));
        let wv = t.param(&ps, w);
        let y = t.matmul(x, wv);
        let loss = t.sum_all(y);
        // Inputs keep real data; everything else is a storage-free placeholder.
        assert!(!t.value(x).is_placeholder());
        assert!(t.value(wv).is_placeholder());
        assert!(t.value(y).is_placeholder());
        assert_eq!(t.value(wv).shape(), (3, 2));
        assert_eq!(t.value(y).shape(), (4, 2));
        assert_eq!(t.value(loss).shape(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "deferred tape op")]
    fn deferred_shape_violation_panics() {
        let mut t = Tape::deferred();
        let a = t.input(Tensor::ones(2, 3));
        let b = t.input(Tensor::ones(4, 5));
        t.matmul(a, b);
    }

    #[test]
    #[should_panic(expected = "deferred tapes execute through the arena planner")]
    fn backward_rejects_deferred_tapes() {
        let mut ps = ParamStore::new();
        let mut t = Tape::deferred();
        let x = t.input(Tensor::zeros(1, 1));
        let loss = t.sum_all(x);
        t.backward(loss, &mut ps);
    }

    #[test]
    fn try_accessors_return_none_past_the_end() {
        let mut t = Tape::new();
        let x = t.input(Tensor::ones(2, 3));
        t.sum_all(x);
        assert_eq!(t.try_node_value(1).map(Tensor::shape), Some((1, 1)));
        assert_eq!(t.try_op_name(1), Some("sum_all"));
        assert_eq!(t.try_op_inputs(1), Some(vec![0]));
        assert!(t.try_node_value(2).is_none());
        assert!(t.try_op_name(2).is_none());
        assert!(t.try_op_inputs(2).is_none());
        assert!(Tape::new().try_op_name(0).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range for tape of 1 nodes")]
    fn node_value_reports_tape_length_on_bad_index() {
        let mut t = Tape::new();
        t.input(Tensor::ones(1, 1));
        t.node_value(5);
    }

    #[test]
    #[should_panic(expected = "out of range for tape of 0 nodes")]
    fn op_inputs_reports_tape_length_on_bad_index() {
        Tape::new().op_inputs(0);
    }

    #[test]
    fn dropout_with_mask_replays_the_given_mask() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Tape::new();
        let x = t.input(Tensor::ones(3, 4));
        let y = t.dropout(x, 0.5, true, &mut rng);
        let Op::Dropout { mask, .. } = t.op_at(y.index()) else {
            panic!("expected dropout node");
        };
        let mask = mask.clone();

        let mut t2 = Tape::new();
        let x2 = t2.input(Tensor::ones(3, 4));
        let y2 = t2.dropout_with_mask(x2, mask);
        for (a, b) in t.value(y).as_slice().iter().zip(t2.value(y2).as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mode_like_copies_recording_mode_not_contents() {
        let mut t = Tape::inference();
        t.input(Tensor::ones(1, 1));
        let fresh = t.mode_like();
        assert!(fresh.is_deferred());
        assert!(fresh.is_inference());
        assert!(!fresh.is_shape_only());
        assert!(fresh.is_empty());
        assert!(!fresh.is_optimized());
    }

    #[test]
    fn deferred_dropout_consumes_eager_rng_stream() {
        let mut rng_eager = StdRng::seed_from_u64(11);
        let mut rng_def = rng_eager.clone();

        let mut eager = Tape::new();
        let xe = eager.input(Tensor::ones(4, 6));
        eager.dropout(xe, 0.4, true, &mut rng_eager);

        let mut def = Tape::deferred();
        let xd = def.input(Tensor::ones(4, 6));
        let yd = def.dropout(xd, 0.4, true, &mut rng_def);

        assert_eq!(rng_eager, rng_def, "deferred dropout must match eager RNG consumption");
        assert!(def.value(yd).is_placeholder());
        let Op::Dropout { mask, .. } = def.op_at(yd.index()) else {
            panic!("expected dropout node");
        };
        assert!(!mask.is_placeholder(), "deferred dropout mask must carry real data");
    }
}
