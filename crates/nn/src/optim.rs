//! Optimizers: SGD (with momentum) and Adam, plus gradient clipping hooks.

use crate::params::ParamStore;
use hiergat_tensor::Tensor;

/// Shared optimizer interface.
pub trait Optimizer {
    /// Applies one update step using the gradients currently held by `store`,
    /// then leaves the gradients untouched (call [`ParamStore::zero_grad`]
    /// afterwards).
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by warmup/decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.velocity.len() < ids.len() {
            for id in ids.iter().skip(self.velocity.len()) {
                let (r, c) = store.value(*id).shape();
                self.velocity.push(Tensor::zeros(r, c));
            }
        }
        for (i, id) in ids.into_iter().enumerate() {
            if store.is_frozen(id) {
                continue;
            }
            let (value, grad) = store.value_and_grad_mut(id);
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                for (vv, gv) in v.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                    *vv = self.momentum * *vv + gv;
                }
                value.axpy(-self.lr, v);
            } else {
                value.axpy(-self.lr, grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) — the optimizer used by the paper (§6.1).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully parameterized constructor.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Self { lr, beta1, beta2, eps, weight_decay, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let ids: Vec<_> = store.ids().collect();
        while self.m.len() < ids.len() {
            let id = ids[self.m.len()];
            let (r, c) = store.value(id).shape();
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in ids.into_iter().enumerate() {
            if store.is_frozen(id) {
                continue;
            }
            let (value, grad) = store.value_and_grad_mut(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mv, vv), gv) in
                m.as_mut_slice().iter_mut().zip(v.as_mut_slice()).zip(grad.as_slice())
            {
                let g = *gv;
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
            }
            let lr = self.lr;
            let (eps, wd) = (self.eps, self.weight_decay);
            for ((pv, mv), vv) in
                value.as_mut_slice().iter_mut().zip(m.as_slice()).zip(v.as_slice())
            {
                let m_hat = mv / bc1;
                let v_hat = vv / bc2;
                let mut update = m_hat / (v_hat.sqrt() + eps);
                if wd > 0.0 {
                    update += wd * *pv; // decoupled weight decay (AdamW-style)
                }
                *pv -= lr * update;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use hiergat_tensor::Tensor;

    /// Minimize (w - 3)^2 and check convergence.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        for _ in 0..steps {
            let mut t = Tape::new();
            let wv = t.param(&ps, w);
            let shifted = t.add_scalar(wv, -3.0);
            let sq = t.mul(shifted, shifted);
            let loss = t.sum_all(sq);
            t.backward(loss, &mut ps);
            opt.step(&mut ps);
            ps.zero_grad();
        }
        ps.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_skips_frozen_params() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(1.0));
        ps.freeze(w);
        ps.accumulate_grad(w, &Tensor::scalar(10.0));
        let mut opt = Adam::new(0.5);
        opt.step(&mut ps);
        assert_eq!(ps.value(w).item(), 1.0);
    }

    #[test]
    fn learning_rate_roundtrip() {
        let mut opt = Adam::new(0.1);
        assert!((opt.learning_rate() - 0.1).abs() < 1e-9);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn adam_handles_params_added_after_construction() {
        let mut ps = ParamStore::new();
        let a = ps.add("a", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        ps.accumulate_grad(a, &Tensor::scalar(1.0));
        opt.step(&mut ps);
        // Register a new parameter after the first step.
        let b = ps.add("b", Tensor::scalar(0.0));
        ps.zero_grad();
        ps.accumulate_grad(b, &Tensor::scalar(1.0));
        opt.step(&mut ps);
        assert!(ps.value(b).item() < 0.0, "new param must receive updates");
    }
}
