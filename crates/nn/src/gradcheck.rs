//! Finite-difference gradient checking.
//!
//! Every backward rule in this workspace is validated by comparing analytic
//! gradients against central finite differences. The checker is exported so
//! downstream crates (`hiergat-graph`, `hiergat`, `hiergat-baselines`) can
//! verify their composite models too.

use crate::params::ParamStore;
use crate::tape::{Tape, Var};

/// Result of a gradient check for a single parameter scalar.
#[derive(Debug, Clone)]
pub struct GradMismatch {
    /// Parameter name.
    pub param: String,
    /// Flat element index inside the parameter tensor.
    pub index: usize,
    /// Analytic gradient from backprop.
    pub analytic: f32,
    /// Central finite-difference estimate.
    pub numeric: f32,
}

/// Compares backprop gradients against central finite differences.
///
/// `build` must construct the full forward computation on the given tape,
/// returning the scalar loss node. It is invoked many times (twice per
/// parameter scalar plus once for the analytic pass), so keep the model
/// small in tests.
///
/// Returns all mismatches where the relative error
/// `|a - n| / max(1, |a|, |n|)` exceeds `tol`.
pub fn check_gradients(
    store: &mut ParamStore,
    mut build: impl FnMut(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) -> Vec<GradMismatch> {
    // Analytic pass.
    store.zero_grad();
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss, store);
    finite_difference_scan(store, build, eps, tol)
}

/// Like [`check_gradients`], but the analytic pass records the graph on a
/// deferred tape and backpropagates through the arena executor
/// ([`crate::plan::ArenaExecutor`]) instead of `Tape::backward`, proving
/// the planned replay produces correct gradients for the same builder.
/// The finite-difference side still uses eager tapes (it needs forward
/// values, which deferred tapes do not materialize).
pub fn check_gradients_arena(
    store: &mut ParamStore,
    mut build: impl FnMut(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) -> Vec<GradMismatch> {
    // Analytic pass through the planner.
    store.zero_grad();
    let mut tape = Tape::deferred();
    let loss = build(&mut tape, store);
    let mut exec = crate::plan::ArenaExecutor::new();
    let _ = exec.step(&tape, loss, store);
    finite_difference_scan(store, build, eps, tol)
}

/// Compares the analytic gradients currently held in `store` against
/// central finite differences of `build`.
fn finite_difference_scan(
    store: &mut ParamStore,
    mut build: impl FnMut(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) -> Vec<GradMismatch> {
    let ids: Vec<_> = store.ids().collect();
    let analytic: Vec<Vec<f32>> =
        ids.iter().map(|&id| store.grad(id).as_slice().to_vec()).collect();

    let mut mismatches = Vec::new();
    for (pi, &id) in ids.iter().enumerate() {
        let n = store.value(id).len();
        for (j, &a) in analytic[pi].iter().enumerate().take(n) {
            let orig = store.value(id).as_slice()[j];

            store.value_mut(id).as_mut_slice()[j] = orig + eps;
            let mut t_plus = Tape::new();
            let l_plus = build(&mut t_plus, store);
            let f_plus = t_plus.value(l_plus).item();

            store.value_mut(id).as_mut_slice()[j] = orig - eps;
            let mut t_minus = Tape::new();
            let l_minus = build(&mut t_minus, store);
            let f_minus = t_minus.value(l_minus).item();

            store.value_mut(id).as_mut_slice()[j] = orig;

            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            if (a - numeric).abs() / denom > tol {
                mismatches.push(GradMismatch {
                    param: store.name(id).to_string(),
                    index: j,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    mismatches
}

/// Panics with a readable report if any gradient mismatches are found.
pub fn assert_gradients_ok(
    store: &mut ParamStore,
    build: impl FnMut(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) {
    let mismatches = check_gradients(store, build, eps, tol);
    assert!(
        mismatches.is_empty(),
        "gradient check failed for {} scalars; first: {:?}",
        mismatches.len(),
        mismatches.first()
    );
}

/// Panics if the arena-backed analytic gradients disagree with finite
/// differences (see [`check_gradients_arena`]).
pub fn assert_gradients_ok_arena(
    store: &mut ParamStore,
    build: impl FnMut(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) {
    let mismatches = check_gradients_arena(store, build, eps, tol);
    assert!(
        mismatches.is_empty(),
        "arena gradient check failed for {} scalars; first: {:?}",
        mismatches.len(),
        mismatches.first()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seeded(rng_seed: u64) -> StdRng {
        StdRng::seed_from_u64(rng_seed)
    }

    #[test]
    fn linear_chain_passes() {
        let mut rng = seeded(1);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(3, 2, 0.0, 0.5, &mut rng));
        let b = ps.add("b", Tensor::rand_normal(1, 2, 0.0, 0.5, &mut rng));
        let x = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let wv = t.param(ps, w);
                let bv = t.param(ps, b);
                let y = t.matmul(xv, wv);
                let y = t.add_row(y, bv);
                let y = t.tanh(y);
                t.mean_all(y)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn softmax_cross_entropy_passes() {
        let mut rng = seeded(2);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(4, 3, 0.0, 0.7, &mut rng));
        let x = Tensor::rand_normal(5, 4, 0.0, 1.0, &mut rng);
        let targets = vec![0usize, 2, 1, 2, 0];
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let wv = t.param(ps, w);
                let logits = t.matmul(xv, wv);
                t.cross_entropy_logits(logits, &targets)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn layer_norm_passes() {
        let mut rng = seeded(3);
        let mut ps = ParamStore::new();
        let gamma = ps.add("gamma", Tensor::rand_normal(1, 4, 1.0, 0.2, &mut rng));
        let beta = ps.add("beta", Tensor::rand_normal(1, 4, 0.0, 0.2, &mut rng));
        let w = ps.add("w", Tensor::rand_normal(4, 4, 0.0, 0.5, &mut rng));
        let x = Tensor::rand_normal(3, 4, 0.0, 1.5, &mut rng);
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let wv = t.param(ps, w);
                let gv = t.param(ps, gamma);
                let bv = t.param(ps, beta);
                let h = t.matmul(xv, wv);
                let h = t.layer_norm(h, gv, bv, 1e-5);
                let h = t.gelu(h);
                t.mean_all(h)
            },
            1e-3,
            3e-2,
        );
    }

    #[test]
    fn attention_like_composition_passes() {
        // softmax(Q K^T) V with all three projected from a parameter.
        let mut rng = seeded(4);
        let mut ps = ParamStore::new();
        let wq = ps.add("wq", Tensor::rand_normal(3, 3, 0.0, 0.5, &mut rng));
        let wk = ps.add("wk", Tensor::rand_normal(3, 3, 0.0, 0.5, &mut rng));
        let wv_p = ps.add("wv", Tensor::rand_normal(3, 3, 0.0, 0.5, &mut rng));
        let x = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let q = {
                    let w = t.param(ps, wq);
                    t.matmul(xv, w)
                };
                let k = {
                    let w = t.param(ps, wk);
                    t.matmul(xv, w)
                };
                let v = {
                    let w = t.param(ps, wv_p);
                    t.matmul(xv, w)
                };
                let kt = t.transpose(k);
                let scores = t.matmul(q, kt);
                let scores = t.scale(scores, 1.0 / (3.0f32).sqrt());
                let att = t.softmax(scores);
                let out = t.matmul(att, v);
                t.mean_all(out)
            },
            1e-3,
            3e-2,
        );
    }

    #[test]
    fn matmul_nt_passes() {
        // Dedicated check for the fused `A B^T` op used by attention scoring:
        // both operands are parameters so dA = G B and dB = G^T A are exercised.
        let mut rng = seeded(6);
        let mut ps = ParamStore::new();
        let qa = ps.add("q", Tensor::rand_normal(4, 3, 0.0, 0.6, &mut rng));
        let ka = ps.add("k", Tensor::rand_normal(5, 3, 0.0, 0.6, &mut rng));
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let q = t.param(ps, qa);
                let k = t.param(ps, ka);
                let scores = t.matmul_nt(q, k); // 4 x 5
                let att = t.softmax(scores);
                t.mean_all(att)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn matmul_tn_passes() {
        // Fused `A^T B` (context pooling): dA = B G^T and dB = A G.
        let mut rng = seeded(8);
        let mut ps = ParamStore::new();
        let aa = ps.add("a", Tensor::rand_normal(5, 3, 0.0, 0.6, &mut rng));
        let ba = ps.add("b", Tensor::rand_normal(5, 4, 0.0, 0.6, &mut rng));
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let a = t.param(ps, aa);
                let b = t.param(ps, ba);
                let ctx = t.matmul_tn(a, b); // 3 x 4
                let h = t.tanh(ctx);
                t.mean_all(h)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn stable_log_sum_exp_chain_passes() {
        // exp / ln / max_cols / div / sqrt composed as a hand-written
        // log-sum-exp with max-subtraction — the exact shape the stability
        // lints push models toward, so its gradients must be right.
        let mut rng = seeded(9);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(3, 4, 0.0, 0.8, &mut rng));
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let wv = t.param(ps, w);
                let m = t.max_cols(wv); // 3 x 1
                let neg_m = t.scale(m, -1.0);
                let shifted = t.add_col(wv, neg_m);
                let e = t.exp(shifted);
                let z = t.sum_cols(e); // 3 x 1
                let lse = t.ln(z);
                let lse = t.add(lse, m);
                let denom = t.add_scalar(z, 1.0);
                let ratio = t.div(lse, denom);
                let ratio = t.add_scalar(ratio, 4.0); // keep sqrt away from 0
                let r = t.sqrt(ratio);
                t.mean_all(r)
            },
            1e-3,
            3e-2,
        );
    }

    #[test]
    fn log_softmax_matches_fused_backward() {
        let mut rng = seeded(10);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(4, 3, 0.0, 0.7, &mut rng));
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let wv = t.param(ps, w);
                let lp = t.log_softmax(wv);
                let picked = t.slice_cols(lp, 1, 1);
                let s = t.sum_all(picked);
                let m = t.mul(s, s);
                t.mean_all(m)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn structural_ops_pass() {
        let mut rng = seeded(5);
        let mut ps = ParamStore::new();
        let emb = ps.add("emb", Tensor::rand_normal(6, 4, 0.0, 0.8, &mut rng));
        let w = ps.add("w", Tensor::rand_normal(8, 1, 0.0, 0.5, &mut rng));
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let table = t.param(ps, emb);
                let a = t.gather_rows(table, &[0, 2, 2, 5]);
                let b = t.gather_rows(table, &[1, 3, 4, 0]);
                let cat = t.concat_cols(&[a, b]); // 4 x 8
                let wv = t.param(ps, w);
                let y = t.matmul(cat, wv); // 4 x 1
                let top = t.slice_rows(y, 0, 2);
                let bot = t.slice_rows(y, 2, 2);
                let s = t.add(top, bot);
                let s = t.leaky_relu(s, 0.2);
                t.sum_all(s)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn broadcast_and_bce_pass() {
        let mut rng = seeded(6);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(3, 1, 0.0, 0.6, &mut rng));
        let col = ps.add("col", Tensor::rand_normal(4, 1, 0.0, 0.6, &mut rng));
        let x = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
        let targets = vec![1.0, 0.0, 1.0, 0.0];
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let cv = t.param(ps, col);
                let xs = t.mul_col(xv, cv);
                let xs = t.add_col(xs, cv);
                let wv = t.param(ps, w);
                let logits = t.matmul(xs, wv);
                t.bce_with_logits(logits, &targets)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn sigmoid_sum_ops_pass() {
        let mut rng = seeded(7);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(2, 5, 0.0, 0.7, &mut rng));
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let wv = t.param(ps, w);
                let s = t.sigmoid(wv);
                let rows = t.sum_rows(s); // 1 x 5
                let cols = t.sum_cols(s); // 2 x 1
                let a = t.sum_all(rows);
                let b = t.sum_all(cols);
                let sum = t.add(a, b);
                let m = t.mul(sum, sum);
                t.mean_all(m)
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn mismatch_is_reported_for_wrong_loss() {
        // Sanity: deliberately non-differentiable-ish check isn't possible,
        // but we can verify the checker catches an inconsistent build closure
        // (different loss per invocation => numeric != analytic).
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(1.0));
        let mut flip = 0u32;
        let mismatches = check_gradients(
            &mut ps,
            move |t, ps| {
                flip += 1;
                let wv = t.param(ps, w);
                // Alternate the loss function between calls.
                let k = if flip.is_multiple_of(2) { 1.0 } else { 5.0 };
                let y = t.scale(wv, k);
                let m = t.mul(y, y);
                t.sum_all(m)
            },
            1e-3,
            1e-3,
        );
        assert!(!mismatches.is_empty());
    }
}
