//! Property-based tests: random op compositions must pass the
//! finite-difference gradient check, and optimizer/parameter invariants
//! must hold for arbitrary shapes.

use crate::absint::{propagate, AbsintConfig};
use crate::gradcheck::check_gradients;
use crate::lint::{lint_graph, LintConfig};
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use crate::{Adam, Optimizer};
use hiergat_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The unary ops exercised by the random-composition property.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Relu,
    LeakyRelu,
    Tanh,
    Sigmoid,
    Gelu,
    Softmax,
    Scale,
    AddScalar,
    Transpose2,
}

fn arb_unary() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Relu),
        Just(UnaryOp::LeakyRelu),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Gelu),
        Just(UnaryOp::Softmax),
        Just(UnaryOp::Scale),
        Just(UnaryOp::AddScalar),
        Just(UnaryOp::Transpose2),
    ]
}

fn apply(t: &mut Tape, op: UnaryOp, x: Var) -> Var {
    match op {
        UnaryOp::Relu => t.relu(x),
        UnaryOp::LeakyRelu => t.leaky_relu(x, 0.2),
        UnaryOp::Tanh => t.tanh(x),
        UnaryOp::Sigmoid => t.sigmoid(x),
        UnaryOp::Gelu => t.gelu(x),
        UnaryOp::Softmax => t.softmax(x),
        UnaryOp::Scale => t.scale(x, 0.7),
        UnaryOp::AddScalar => t.add_scalar(x, -0.3),
        UnaryOp::Transpose2 => {
            let tr = t.transpose(x);
            t.transpose(tr)
        }
    }
}

/// Step codes for the absint soundness property (indexes into
/// [`apply_abs_step`]'s match; a plain range composes with proptest
/// shrinking better than a 30-variant enum strategy).
const ABS_STEPS: usize = 30;

fn fresh_input(t: &mut Tape, rng: &mut StdRng, rows: usize, cols: usize, b: f32) -> Var {
    t.input(Tensor::rand_uniform(rows, cols, -b, b, rng))
}

/// Largest absolute eager value at `x` (the chain's growth monitor).
fn eager_mag(t: &Tape, x: Var) -> f32 {
    let v = t.value(x);
    v.max().abs().max(v.min().abs())
}

/// Squashes `x` before magnitude-growing steps so random chains cannot
/// overflow the eager tape (which panics on non-finite values in debug);
/// the squash is itself a recorded op and so also containment-checked.
fn squash_if_large(t: &mut Tape, x: Var) -> Var {
    if eager_mag(t, x) > 1e15 {
        t.tanh(x)
    } else {
        x
    }
}

/// Applies one random chain step, returning the new head and its shape.
/// Domain-restricted ops (exp/ln/sqrt/div) get their inputs guarded the
/// same way real models do — via bounded activations and epsilon shifts —
/// so the eager pass stays finite while the abstract pass still has to
/// prove it.
fn apply_abs_step(
    t: &mut Tape,
    rng: &mut StdRng,
    step: usize,
    x: Var,
    r: usize,
    c: usize,
    b: f32,
) -> (Var, usize, usize) {
    match step {
        0 => (t.relu(x), r, c),
        1 => (t.leaky_relu(x, 0.2), r, c),
        2 => (t.tanh(x), r, c),
        3 => (t.sigmoid(x), r, c),
        4 => (t.gelu(x), r, c),
        5 => (t.softmax(x), r, c),
        6 => (t.log_softmax(x), r, c),
        7 => {
            // exp over a genuinely wide but provably bounded input.
            let h = t.tanh(x);
            let wide = t.scale(h, 8.0);
            (t.exp(wide), r, c)
        }
        8 => {
            // ln of a proven-positive interval (square + epsilon).
            let h = t.tanh(x);
            let sq = t.mul(h, h);
            let shifted = t.add_scalar(sq, 0.5);
            (t.ln(shifted), r, c)
        }
        9 => {
            let h = t.tanh(x);
            let sq = t.mul(h, h);
            let shifted = t.add_scalar(sq, 0.1);
            (t.sqrt(shifted), r, c)
        }
        10 => {
            // Division by a proven-positive denominator in [1, 2].
            let h = t.tanh(x);
            let sq = t.mul(h, h);
            let den = t.add_scalar(sq, 1.0);
            (t.div(x, den), r, c)
        }
        11 => (t.scale(x, -0.7), r, c),
        12 => (t.add_scalar(x, 0.3), r, c),
        13 => {
            // The softmax max-subtraction stabilizer pattern.
            let m = t.max_cols(x);
            let neg = t.scale(m, -1.0);
            (t.add_col(x, neg), r, c)
        }
        14 => {
            let s = squash_if_large(t, x);
            (t.mul(s, s), r, c)
        }
        15 => {
            let f = fresh_input(t, rng, r, c, b);
            (t.add(x, f), r, c)
        }
        16 => {
            let f = fresh_input(t, rng, r, c, b);
            (t.sub(x, f), r, c)
        }
        17 => {
            let col = fresh_input(t, rng, r, 1, b);
            (t.mul_col(x, col), r, c)
        }
        18 => {
            let s = squash_if_large(t, x);
            let k = 2 + (r + c) % 3;
            let f = fresh_input(t, rng, c, k, b);
            (t.matmul(s, f), r, k)
        }
        19 => {
            let tr = t.transpose(x);
            (tr, c, r)
        }
        20 => {
            if c >= 4 {
                (t.slice_cols(x, 1, c - 1), r, c - 1)
            } else {
                (t.concat_cols(&[x, x]), r, c * 2)
            }
        }
        21 => (t.dropout(x, 0.3, true, rng), r, c),
        22 => {
            let row = fresh_input(t, rng, 1, c, b);
            (t.add_row(x, row), r, c)
        }
        23 => {
            let s = squash_if_large(t, x);
            let k = 2 + (r + c) % 3;
            let f = fresh_input(t, rng, k, c, b);
            (t.matmul_nt(s, f), r, k)
        }
        24 => {
            let s = squash_if_large(t, x);
            let k = 2 + (r + c) % 3;
            let f = fresh_input(t, rng, r, k, b);
            (t.matmul_tn(s, f), c, k)
        }
        25 => (t.sum_rows(x), 1, c),
        26 => (t.sum_cols(x), r, 1),
        27 => {
            if r >= 4 {
                (t.slice_rows(x, 1, r - 1), r - 1, c)
            } else {
                (t.concat_rows(&[x, x]), r * 2, c)
            }
        }
        28 => (t.gather_rows(x, &[0, r - 1, 0]), 3, c),
        _ => {
            // LayerNorm needs in-f32-range row statistics; models feed it
            // bounded activations, mirrored here.
            let h = t.tanh(x);
            let wide = t.scale(h, 50.0);
            let gamma = fresh_input(t, rng, 1, c, b);
            let beta = fresh_input(t, rng, 1, c, b);
            (t.layer_norm(wide, gamma, beta, 1e-5), r, c)
        }
    }
}

/// Terminal step: reductions and the loss kernels (which demand specific
/// shapes, so they close the chain rather than extend it). Returns the
/// loss node so callers can treat it as the chain's root.
fn apply_abs_terminal(
    t: &mut Tape,
    rng: &mut StdRng,
    terminal: usize,
    x: Var,
    r: usize,
    c: usize,
) -> Var {
    match terminal {
        0 => t.mean_all(x),
        1 => t.sum_all(x),
        2 => {
            let targets: Vec<usize> = (0..r).map(|i| i % c).collect();
            t.cross_entropy_logits(x, &targets)
        }
        3 => {
            let targets: Vec<usize> = (0..r).map(|i| i % c).collect();
            let weights = vec![0.5f32; r];
            t.weighted_cross_entropy_logits(x, &targets, &weights)
        }
        4 => {
            let col = t.slice_cols(x, 0, 1);
            let targets: Vec<f32> = Tensor::rand_uniform(r, 1, 0.0, 1.0, rng).as_slice().to_vec();
            t.bce_with_logits(col, &targets)
        }
        _ => {
            // MSE squares the difference, so squash first to keep the
            // eager pass finite on huge chains.
            let h = t.tanh(x);
            let target = Tensor::rand_uniform(r, c, -1.0, 1.0, rng);
            t.mse_loss(h, &target)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any chain of smooth unary ops on a square parameter passes gradcheck.
    ///
    /// ReLU-family kinks can sit exactly at a sampled point, so the check
    /// tolerates a small number of borderline scalars rather than requiring
    /// a perfect match.
    #[test]
    fn random_unary_chains_pass_gradcheck(
        seed in 0u64..1000,
        ops in proptest::collection::vec(arb_unary(), 1..4),
        dim in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(dim, dim, 0.0, 0.8, &mut rng));
        let mismatches = check_gradients(
            &mut ps,
            |t, ps| {
                let mut x = t.param(ps, w);
                for &op in &ops {
                    x = apply(t, op, x);
                }
                t.mean_all(x)
            },
            1e-3,
            5e-2,
        );
        // Allow at most one kink-adjacent scalar out of dim*dim.
        prop_assert!(
            mismatches.len() <= 1,
            "ops {:?}: {} mismatches, first {:?}",
            ops,
            mismatches.len(),
            mismatches.first()
        );
    }

    /// Binary compositions (add/sub/mul/matmul) of two parameters pass
    /// gradcheck.
    #[test]
    fn random_binary_compositions_pass_gradcheck(
        seed in 0u64..1000,
        which in 0usize..4,
        rows in 2usize..4,
        cols in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let a = ps.add("a", Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng));
        let b_shape = if which == 3 { (cols, rows) } else { (rows, cols) };
        let b = ps.add("b", Tensor::rand_normal(b_shape.0, b_shape.1, 0.0, 0.8, &mut rng));
        let mismatches = check_gradients(
            &mut ps,
            |t, ps| {
                let av = t.param(ps, a);
                let bv = t.param(ps, b);
                let y = match which {
                    0 => t.add(av, bv),
                    1 => t.sub(av, bv),
                    2 => t.mul(av, bv),
                    _ => t.matmul(av, bv),
                };
                let y = t.tanh(y);
                t.mean_all(y)
            },
            1e-3,
            4e-2,
        );
        prop_assert!(mismatches.is_empty(), "{:?}", mismatches.first());
    }

    /// Adam never produces non-finite parameters on bounded gradients.
    #[test]
    fn adam_keeps_parameters_finite(
        seed in 0u64..500,
        lr in 1e-4f32..0.5,
        steps in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(3, 3, 0.0, 1.0, &mut rng));
        let mut opt = Adam::new(lr);
        for k in 0..steps {
            let grad = Tensor::rand_normal(3, 3, 0.0, 1.0 + k as f32, &mut rng);
            ps.accumulate_grad(w, &grad);
            opt.step(&mut ps);
            ps.zero_grad();
            prop_assert!(!ps.value(w).has_non_finite());
        }
    }

    /// Snapshot/restore is an exact inverse regardless of store contents.
    #[test]
    fn snapshot_restore_roundtrip(seed in 0u64..500, n_params in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let ids: Vec<_> = (0..n_params)
            .map(|i| ps.add(format!("p{i}"), Tensor::rand_normal(2, 3, 0.0, 1.0, &mut rng)))
            .collect();
        let snap = ps.snapshot();
        // Trash the values.
        for &id in &ids {
            *ps.value_mut(id) = Tensor::zeros(2, 3);
        }
        ps.restore(&snap);
        for (i, &id) in ids.iter().enumerate() {
            prop_assert!(ps.value(id).allclose(&snap[i], 0.0));
        }
    }

    /// Fusing `matmul(a, transpose(b))` into `matmul_nt(a, b)` (and the
    /// `transpose`-on-the-left variant into `matmul_tn`) keeps lint-clean
    /// graphs clean: the unfused form's only diagnostic is the fusion hint
    /// itself, and the rewritten graph has none at all.
    #[test]
    fn matmul_fusion_rewrites_preserve_lint_cleanliness(
        seed in 0u64..500,
        rows in 2usize..5,
        k in 2usize..5,
        cols in 2usize..5,
        post in arb_unary(),
        lhs_side in 0usize..2,
    ) {
        let lhs_variant = lhs_side == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let a_t = Tensor::rand_normal(rows, k, 0.0, 0.8, &mut rng);
        // Shape b so the transpose-side product is well-formed in both
        // variants: rhs needs (cols x k), lhs needs (rows x cols).
        let b_t = if lhs_variant {
            Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng)
        } else {
            Tensor::rand_normal(cols, k, 0.0, 0.8, &mut rng)
        };
        let build = |fused: bool| {
            let mut ps = ParamStore::new();
            let a = ps.add("a", a_t.clone());
            let b = ps.add("b", b_t.clone());
            let mut t = Tape::shape_only();
            let av = t.param(&ps, a);
            let bv = t.param(&ps, b);
            let prod = match (fused, lhs_variant) {
                (false, false) => {
                    let bt = t.transpose(bv);
                    t.matmul(av, bt)
                }
                (true, false) => t.matmul_nt(av, bv),
                (false, true) => {
                    let at = t.transpose(av);
                    t.matmul(at, bv)
                }
                (true, true) => t.matmul_tn(av, bv),
            };
            let y = apply(&mut t, post, prod);
            let loss = t.mean_all(y);
            (lint_graph(&t, loss, &ps, &LintConfig::training()), t.shape_violations().len())
        };
        let (unfused_report, unfused_violations) = build(false);
        let (fused_report, fused_violations) = build(true);
        prop_assert_eq!(unfused_violations, 0, "unfused variant must shape-check");
        prop_assert_eq!(fused_violations, 0, "fused variant must shape-check");
        // The unfused graph's only complaint is the fusion hint itself...
        prop_assert!(
            unfused_report
                .diagnostics
                .iter()
                .all(|d| d.rule == "unfused-transpose-matmul"),
            "unexpected diagnostics before rewrite: {}",
            unfused_report
        );
        // ...and applying the suggested rewrite leaves the graph fully clean.
        prop_assert!(
            fused_report.diagnostics.is_empty(),
            "fusion rewrite introduced diagnostics: {}",
            fused_report
        );
    }

    /// The arena planner's core invariants hold on random op chains: every
    /// slot fits inside the arena, any two slots whose live intervals
    /// overlap get disjoint spans (the aliasing invariant the executor's
    /// correctness rests on), and the planned size is sandwiched between
    /// the liveness-theoretic lower bound and the no-reuse naive sum.
    #[test]
    fn planner_spans_are_disjoint_and_bounded(
        seed in 0u64..1000,
        ops in proptest::collection::vec(arb_unary(), 1..5),
        rows in 2usize..6,
        cols in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let a = ps.add("a", Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng));
        let b = ps.add("b", Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng));
        let mut t = Tape::deferred();
        let av = t.param(&ps, a);
        let bv = t.param(&ps, b);
        let mut x = t.add(av, bv);
        for &op in &ops {
            x = apply(&mut t, op, x);
        }
        // Fan `a` back in so at least one value stays live across the whole
        // chain, forcing overlapping intervals.
        let y = t.mul(x, av);
        let loss = t.mean_all(y);
        let plan = crate::plan::ExecutionPlan::build(&t, loss);
        let report = plan.report();
        let elems = plan.arena_elems();
        prop_assert_eq!(report.arena_bytes, (elems * size_of::<f32>()) as u64);
        for s in plan.slots() {
            prop_assert!(s.start_time <= s.end_time, "inverted interval {s:?}");
            prop_assert!(s.span.start + s.span.len <= elems, "slot out of arena: {s:?}");
        }
        for (i, si) in plan.slots().iter().enumerate() {
            for sj in &plan.slots()[i + 1..] {
                let live_overlap = si.start_time <= sj.end_time && sj.start_time <= si.end_time;
                if live_overlap && si.span.len > 0 && sj.span.len > 0 {
                    let disjoint = si.span.start + si.span.len <= sj.span.start
                        || sj.span.start + sj.span.len <= si.span.start;
                    prop_assert!(disjoint, "aliasing live slots: {si:?} vs {sj:?}");
                }
            }
        }
        prop_assert!(report.arena_bytes >= report.lower_bound_bytes, "{report}");
        prop_assert!(report.arena_bytes <= report.naive_bytes, "{report}");
    }

    /// Per-op abstract-interpretation soundness: every concrete value an
    /// eager forward pass produces lies inside the proven interval, for
    /// every node of a random op chain, under both symbolic-box and
    /// observed seeding. A failure here means a transfer function in
    /// `absint` is not conservative for the f32 kernels.
    #[test]
    fn abstract_intervals_contain_eager_values(
        seed in 0u64..2000,
        steps in proptest::collection::vec(0usize..ABS_STEPS, 1..6),
        terminal in 0usize..6,
        rows in 2usize..5,
        cols in 2usize..5,
        bound in 0.5f64..4.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = bound as f32;
        let mut t = Tape::new();
        let mut x = fresh_input(&mut t, &mut rng, rows, cols, b);
        let (mut r, mut c) = (rows, cols);
        for &s in &steps {
            (x, r, c) = apply_abs_step(&mut t, &mut rng, s, x, r, c, b);
        }
        apply_abs_terminal(&mut t, &mut rng, terminal, x, r, c);
        let ps = ParamStore::new();
        for cfg in [AbsintConfig::symbolic(bound, bound), AbsintConfig::observed()] {
            let iv = propagate(&t, &ps, &cfg);
            for (i, node_iv) in iv.iter().enumerate() {
                for &v in t.node_value(i).as_slice() {
                    prop_assert!(
                        node_iv.contains(v),
                        "op #{} ({}) value {} escapes {:?} under {} (steps {:?})",
                        i,
                        t.op_name(i),
                        v,
                        node_iv,
                        cfg.describe(),
                        steps
                    );
                }
            }
        }
    }

    /// The certified tape optimiser preserves random-chain semantics at
    /// widths 1 and 8: every applied rewrite carries a valid certificate,
    /// the optimised root agrees with the original element-wise (bitwise
    /// unless the reassociating ln∘softmax fusion fired, in which case
    /// allclose), and observed-seeding interval propagation over the
    /// REWRITTEN graph still contains every value it computes.
    #[test]
    fn optimiser_preserves_random_chain_semantics(
        seed in 0u64..2000,
        steps in proptest::collection::vec(0usize..ABS_STEPS, 1..9),
        terminal in 0usize..6,
        bound in 0.5f64..4.0,
    ) {
        let b = bound as f32;
        for rows in [1usize, 8] {
            let cols = 3;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tape::new();
            let mut x = fresh_input(&mut t, &mut rng, rows, cols, b);
            let (mut r, mut c) = (rows, cols);
            for &s in &steps {
                (x, r, c) = apply_abs_step(&mut t, &mut rng, s, x, r, c, b);
            }
            let root = apply_abs_terminal(&mut t, &mut rng, terminal, x, r, c);
            let ps = ParamStore::new();
            let opt = crate::optimize::optimize(
                &t,
                root,
                &ps,
                &crate::optimize::OptimizeConfig::verified(),
            );
            prop_assert!(opt.report.all_valid(), "invalid certificates: {}", opt.report);
            let orig = t.value(root);
            let new = opt.tape.value(opt.root);
            prop_assert_eq!(orig.shape(), new.shape(), "root shape changed");
            let reassociated =
                opt.report.certificates.iter().any(|ce| ce.rule == "fuse-log-softmax");
            for (&a, &g) in orig.as_slice().iter().zip(new.as_slice()) {
                if reassociated {
                    prop_assert!(
                        (a - g).abs() <= 1e-4 * (1.0 + a.abs()),
                        "allclose violated after reassociating fusion: {a} vs {g}"
                    );
                } else {
                    prop_assert_eq!(
                        a.to_bits(),
                        g.to_bits(),
                        "bitwise equality violated (steps {:?}, rows {}): {} vs {}",
                        steps, rows, a, g
                    );
                }
            }
            let iv = propagate(&opt.tape, &ps, &AbsintConfig::observed());
            for (i, node_iv) in iv.iter().enumerate() {
                for &v in opt.tape.node_value(i).as_slice() {
                    prop_assert!(
                        node_iv.contains(v),
                        "rewritten op #{} ({}) value {} escapes {:?} (steps {:?})",
                        i,
                        opt.tape.op_name(i),
                        v,
                        node_iv,
                        steps
                    );
                }
            }
        }
    }

    /// The audit-driven quantiser round-trips every value inside the
    /// proven interval within the scale-derived bound (half an int8 grid
    /// step, one f16 rounding ulp), and *rejects* values outside the
    /// proven interval — never silently clamps them onto the grid.
    #[test]
    fn quantiser_roundtrip_is_bounded_and_out_of_interval_is_rejected(
        seed in 0u64..2000,
        lo in -100.0f64..100.0,
        width in 0.001f64..50.0,
        rows in 1usize..5,
        cols in 1usize..5,
    ) {
        use crate::quant::{encode_checked, Codec, QuantClass, QuantError};
        let mut rng = StdRng::seed_from_u64(seed);
        let hi = lo + width;
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_uniform(rows, cols, lo as f32, hi as f32, &mut rng));
        let mut t = Tape::shape_only();
        let wv = t.param(&ps, w);
        let report = crate::absint::audit_graph(
            &t,
            wv,
            &ps,
            &AbsintConfig::weight_aware(8.0),
        );
        let entry = report
            .quant
            .iter()
            .find(|e| e.op_index == wv.index())
            .expect("param feasibility entry");
        let range = &report.ranges[wv.index()];
        let codec = Codec::from_entry(entry);
        let vals = ps.value(w).as_slice();

        // In-interval values encode, and every round-trip stays inside the
        // codec's scale-derived bound.
        let data = encode_checked(vals, range.lo, range.hi, &codec, "w")
            .expect("in-interval values must encode");
        let mut back = Vec::new();
        data.decode_into(&codec, &mut back);
        for (&v, &d) in vals.iter().zip(&back) {
            let bound = codec.roundtrip_bound(v);
            prop_assert!(
                (d - v).abs() <= bound,
                "{} round-trip {v} -> {d} exceeds bound {bound} (scale {})",
                codec.class.name(),
                codec.scale
            );
        }

        // A value past the proven upper bound is rejected, not clamped.
        if codec.class != QuantClass::F32 {
            let outside = (range.hi + 1.0) as f32;
            let mut poisoned = vals.to_vec();
            poisoned[0] = outside;
            let err = encode_checked(&poisoned, range.lo, range.hi, &codec, "w").expect_err("poisoned value rejected");
            prop_assert!(
                matches!(err, QuantError::OutOfInterval { .. }),
                "expected rejection, got {err:?}"
            );
        }
    }

    /// Weighted cross-entropy equals plain cross-entropy at unit weights.
    #[test]
    fn weighted_ce_reduces_to_plain_ce(
        seed in 0u64..500,
        n in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::rand_normal(n, 2, 0.0, 1.5, &mut rng);
        let targets: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let weights = vec![1.0f32; n];
        let mut t = Tape::new();
        let l = t.input(logits.clone());
        let plain = t.cross_entropy_logits(l, &targets);
        let l2 = t.input(logits);
        let weighted = t.weighted_cross_entropy_logits(l2, &targets, &weights);
        let a = t.value(plain).item();
        let b = t.value(weighted).item();
        prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}
