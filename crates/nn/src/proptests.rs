//! Property-based tests: random op compositions must pass the
//! finite-difference gradient check, and optimizer/parameter invariants
//! must hold for arbitrary shapes.

use crate::gradcheck::check_gradients;
use crate::lint::{lint_graph, LintConfig};
use crate::params::ParamStore;
use crate::tape::{Tape, Var};
use crate::{Adam, Optimizer};
use hiergat_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The unary ops exercised by the random-composition property.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Relu,
    LeakyRelu,
    Tanh,
    Sigmoid,
    Gelu,
    Softmax,
    Scale,
    AddScalar,
    Transpose2,
}

fn arb_unary() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Relu),
        Just(UnaryOp::LeakyRelu),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Gelu),
        Just(UnaryOp::Softmax),
        Just(UnaryOp::Scale),
        Just(UnaryOp::AddScalar),
        Just(UnaryOp::Transpose2),
    ]
}

fn apply(t: &mut Tape, op: UnaryOp, x: Var) -> Var {
    match op {
        UnaryOp::Relu => t.relu(x),
        UnaryOp::LeakyRelu => t.leaky_relu(x, 0.2),
        UnaryOp::Tanh => t.tanh(x),
        UnaryOp::Sigmoid => t.sigmoid(x),
        UnaryOp::Gelu => t.gelu(x),
        UnaryOp::Softmax => t.softmax(x),
        UnaryOp::Scale => t.scale(x, 0.7),
        UnaryOp::AddScalar => t.add_scalar(x, -0.3),
        UnaryOp::Transpose2 => {
            let tr = t.transpose(x);
            t.transpose(tr)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any chain of smooth unary ops on a square parameter passes gradcheck.
    ///
    /// ReLU-family kinks can sit exactly at a sampled point, so the check
    /// tolerates a small number of borderline scalars rather than requiring
    /// a perfect match.
    #[test]
    fn random_unary_chains_pass_gradcheck(
        seed in 0u64..1000,
        ops in proptest::collection::vec(arb_unary(), 1..4),
        dim in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(dim, dim, 0.0, 0.8, &mut rng));
        let mismatches = check_gradients(
            &mut ps,
            |t, ps| {
                let mut x = t.param(ps, w);
                for &op in &ops {
                    x = apply(t, op, x);
                }
                t.mean_all(x)
            },
            1e-3,
            5e-2,
        );
        // Allow at most one kink-adjacent scalar out of dim*dim.
        prop_assert!(
            mismatches.len() <= 1,
            "ops {:?}: {} mismatches, first {:?}",
            ops,
            mismatches.len(),
            mismatches.first()
        );
    }

    /// Binary compositions (add/sub/mul/matmul) of two parameters pass
    /// gradcheck.
    #[test]
    fn random_binary_compositions_pass_gradcheck(
        seed in 0u64..1000,
        which in 0usize..4,
        rows in 2usize..4,
        cols in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let a = ps.add("a", Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng));
        let b_shape = if which == 3 { (cols, rows) } else { (rows, cols) };
        let b = ps.add("b", Tensor::rand_normal(b_shape.0, b_shape.1, 0.0, 0.8, &mut rng));
        let mismatches = check_gradients(
            &mut ps,
            |t, ps| {
                let av = t.param(ps, a);
                let bv = t.param(ps, b);
                let y = match which {
                    0 => t.add(av, bv),
                    1 => t.sub(av, bv),
                    2 => t.mul(av, bv),
                    _ => t.matmul(av, bv),
                };
                let y = t.tanh(y);
                t.mean_all(y)
            },
            1e-3,
            4e-2,
        );
        prop_assert!(mismatches.is_empty(), "{:?}", mismatches.first());
    }

    /// Adam never produces non-finite parameters on bounded gradients.
    #[test]
    fn adam_keeps_parameters_finite(
        seed in 0u64..500,
        lr in 1e-4f32..0.5,
        steps in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::rand_normal(3, 3, 0.0, 1.0, &mut rng));
        let mut opt = Adam::new(lr);
        for k in 0..steps {
            let grad = Tensor::rand_normal(3, 3, 0.0, 1.0 + k as f32, &mut rng);
            ps.accumulate_grad(w, &grad);
            opt.step(&mut ps);
            ps.zero_grad();
            prop_assert!(!ps.value(w).has_non_finite());
        }
    }

    /// Snapshot/restore is an exact inverse regardless of store contents.
    #[test]
    fn snapshot_restore_roundtrip(seed in 0u64..500, n_params in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let ids: Vec<_> = (0..n_params)
            .map(|i| ps.add(format!("p{i}"), Tensor::rand_normal(2, 3, 0.0, 1.0, &mut rng)))
            .collect();
        let snap = ps.snapshot();
        // Trash the values.
        for &id in &ids {
            *ps.value_mut(id) = Tensor::zeros(2, 3);
        }
        ps.restore(&snap);
        for (i, &id) in ids.iter().enumerate() {
            prop_assert!(ps.value(id).allclose(&snap[i], 0.0));
        }
    }

    /// Fusing `matmul(a, transpose(b))` into `matmul_nt(a, b)` (and the
    /// `transpose`-on-the-left variant into `matmul_tn`) keeps lint-clean
    /// graphs clean: the unfused form's only diagnostic is the fusion hint
    /// itself, and the rewritten graph has none at all.
    #[test]
    fn matmul_fusion_rewrites_preserve_lint_cleanliness(
        seed in 0u64..500,
        rows in 2usize..5,
        k in 2usize..5,
        cols in 2usize..5,
        post in arb_unary(),
        lhs_side in 0usize..2,
    ) {
        let lhs_variant = lhs_side == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let a_t = Tensor::rand_normal(rows, k, 0.0, 0.8, &mut rng);
        // Shape b so the transpose-side product is well-formed in both
        // variants: rhs needs (cols x k), lhs needs (rows x cols).
        let b_t = if lhs_variant {
            Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng)
        } else {
            Tensor::rand_normal(cols, k, 0.0, 0.8, &mut rng)
        };
        let build = |fused: bool| {
            let mut ps = ParamStore::new();
            let a = ps.add("a", a_t.clone());
            let b = ps.add("b", b_t.clone());
            let mut t = Tape::shape_only();
            let av = t.param(&ps, a);
            let bv = t.param(&ps, b);
            let prod = match (fused, lhs_variant) {
                (false, false) => {
                    let bt = t.transpose(bv);
                    t.matmul(av, bt)
                }
                (true, false) => t.matmul_nt(av, bv),
                (false, true) => {
                    let at = t.transpose(av);
                    t.matmul(at, bv)
                }
                (true, true) => t.matmul_tn(av, bv),
            };
            let y = apply(&mut t, post, prod);
            let loss = t.mean_all(y);
            (lint_graph(&t, loss, &ps, &LintConfig::training()), t.shape_violations().len())
        };
        let (unfused_report, unfused_violations) = build(false);
        let (fused_report, fused_violations) = build(true);
        prop_assert_eq!(unfused_violations, 0, "unfused variant must shape-check");
        prop_assert_eq!(fused_violations, 0, "fused variant must shape-check");
        // The unfused graph's only complaint is the fusion hint itself...
        prop_assert!(
            unfused_report
                .diagnostics
                .iter()
                .all(|d| d.rule == "unfused-transpose-matmul"),
            "unexpected diagnostics before rewrite: {}",
            unfused_report
        );
        // ...and applying the suggested rewrite leaves the graph fully clean.
        prop_assert!(
            fused_report.diagnostics.is_empty(),
            "fusion rewrite introduced diagnostics: {}",
            fused_report
        );
    }

    /// The arena planner's core invariants hold on random op chains: every
    /// slot fits inside the arena, any two slots whose live intervals
    /// overlap get disjoint spans (the aliasing invariant the executor's
    /// correctness rests on), and the planned size is sandwiched between
    /// the liveness-theoretic lower bound and the no-reuse naive sum.
    #[test]
    fn planner_spans_are_disjoint_and_bounded(
        seed in 0u64..1000,
        ops in proptest::collection::vec(arb_unary(), 1..5),
        rows in 2usize..6,
        cols in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let a = ps.add("a", Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng));
        let b = ps.add("b", Tensor::rand_normal(rows, cols, 0.0, 0.8, &mut rng));
        let mut t = Tape::deferred();
        let av = t.param(&ps, a);
        let bv = t.param(&ps, b);
        let mut x = t.add(av, bv);
        for &op in &ops {
            x = apply(&mut t, op, x);
        }
        // Fan `a` back in so at least one value stays live across the whole
        // chain, forcing overlapping intervals.
        let y = t.mul(x, av);
        let loss = t.mean_all(y);
        let plan = crate::plan::ExecutionPlan::build(&t, loss);
        let report = plan.report();
        let elems = plan.arena_elems();
        prop_assert_eq!(report.arena_bytes, (elems * size_of::<f32>()) as u64);
        for s in plan.slots() {
            prop_assert!(s.start_time <= s.end_time, "inverted interval {s:?}");
            prop_assert!(s.span.start + s.span.len <= elems, "slot out of arena: {s:?}");
        }
        for (i, si) in plan.slots().iter().enumerate() {
            for sj in &plan.slots()[i + 1..] {
                let live_overlap = si.start_time <= sj.end_time && sj.start_time <= si.end_time;
                if live_overlap && si.span.len > 0 && sj.span.len > 0 {
                    let disjoint = si.span.start + si.span.len <= sj.span.start
                        || sj.span.start + sj.span.len <= si.span.start;
                    prop_assert!(disjoint, "aliasing live slots: {si:?} vs {sj:?}");
                }
            }
        }
        prop_assert!(report.arena_bytes >= report.lower_bound_bytes, "{report}");
        prop_assert!(report.arena_bytes <= report.naive_bytes, "{report}");
    }

    /// Weighted cross-entropy equals plain cross-entropy at unit weights.
    #[test]
    fn weighted_ce_reduces_to_plain_ce(
        seed in 0u64..500,
        n in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::rand_normal(n, 2, 0.0, 1.5, &mut rng);
        let targets: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let weights = vec![1.0f32; n];
        let mut t = Tape::new();
        let l = t.input(logits.clone());
        let plain = t.cross_entropy_logits(l, &targets);
        let l2 = t.input(logits);
        let weighted = t.weighted_cross_entropy_logits(l2, &targets, &weights);
        let a = t.value(plain).item();
        let b = t.value(weighted).item();
        prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}
