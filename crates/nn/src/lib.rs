//! Tape-based reverse-mode autograd, layers, optimizers, and checkpointing.
//!
//! This crate is the stand-in for PyTorch in the HierGAT reproduction: it
//! provides exactly the functionality the paper's models need — eager
//! forward execution recorded on a [`Tape`], reverse-mode [`Tape::backward`]
//! into a [`ParamStore`], [`optim`] optimizers (Adam is what the paper uses,
//! §6.1), Transformer / GRU / attention [`layers`], and binary/JSON
//! [`checkpoint`]s for the pre-trained language models.
//!
//! Every backward rule is validated against central finite differences; the
//! checker itself is exported in [`gradcheck`] so downstream crates can
//! verify composite models.

pub mod absint;
pub mod analyze;
pub mod checkpoint;
pub mod gradcheck;
mod layers;
pub mod lint;
mod optim;
pub mod optimize;
mod params;
pub mod plan;
pub mod quant;
mod tape;

#[cfg(test)]
mod proptests;

pub use absint::{
    audit_graph, propagate, AbsintConfig, AuditReport, Finding, Interval, NodeRange, QuantEntry,
    QuantSummary, SeedMode,
};
pub use analyze::{
    analyze_graph, cost_analysis, finite_audit, peak_bytes_backward, CostReport, DeadParam,
    GraphReport, OpCost, SentinelHit, ShapeViolation, UnusedNode,
};
pub use layers::{
    GruCell, LayerNorm, Linear, MultiHeadSelfAttention, TransformerEncoder, TransformerEncoderLayer,
};
pub use lint::{lint_graph, Diagnostic, LintConfig, LintReport, Severity};
pub use optim::{Adam, Optimizer, Sgd};
pub use optimize::{
    optimize, optimize_owned, optimize_with_cache, CachedOptimized, Certificate, OptimizeConfig,
    OptimizeReport, Optimized, OptimizerCache,
};
pub use params::{ParamId, ParamStore};
pub use plan::{ArenaExecutor, ExecutionPlan, PlanReport, PlannedSlot};
pub use quant::{
    encode_checked, Codec, QuantClass, QuantConfig, QuantData, QuantError, QuantExecutor,
    QuantPlan, QuantStore, QuantStoreReport,
};
pub use tape::{Tape, Var};
