//! Analyzer acceptance for every layer in `hiergat_nn::layers`.
//!
//! Each test drives the same forward builder through three harnesses:
//!
//! 1. finite-difference gradient checking on an eager tape, proving the
//!    graph the layer records is differentiable and correct;
//! 2. the same gradient check with the analytic pass routed through the
//!    arena executor on a deferred tape, proving the planned replay
//!    backpropagates the layer correctly;
//! 3. the static analyzer on a shape-only tape, proving the same graph
//!    passes shape inference with no dead parameters or unused nodes.
//!
//! Together they pin down the contract the analyzer assumes: any graph a
//! layer builds is analyzable without running kernels.

use hiergat_nn::gradcheck::{assert_gradients_ok, assert_gradients_ok_arena};
use hiergat_nn::{
    analyze_graph, GruCell, LayerNorm, Linear, MultiHeadSelfAttention, ParamStore, Tape,
    TransformerEncoder, TransformerEncoderLayer, Var,
};
use hiergat_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_analyzer_clean(ps: &ParamStore, build: impl FnOnce(&mut Tape, &ParamStore) -> Var) {
    let mut t = Tape::shape_only();
    let loss = build(&mut t, ps);
    let report = analyze_graph(&t, loss, ps);
    assert!(report.is_clean(), "{report}");
    assert!(report.node_count > 0);
}

#[test]
fn linear_layer_gradchecks_and_analyzes_clean() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut ps = ParamStore::new();
    let layer = Linear::new(&mut ps, "lin", 3, 2, true, &mut rng);
    let x = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
    let build = |t: &mut Tape, ps: &ParamStore| {
        let xv = t.input(x.clone());
        let h = layer.forward(t, ps, xv);
        t.mean_all(h)
    };
    assert_gradients_ok(&mut ps, build, 1e-3, 2e-2);
    assert_gradients_ok_arena(&mut ps, build, 1e-3, 2e-2);
    assert_analyzer_clean(&ps, build);
}

#[test]
fn layer_norm_gradchecks_and_analyzes_clean() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut ps = ParamStore::new();
    let ln = LayerNorm::new(&mut ps, "ln", 4);
    let x = Tensor::rand_normal(3, 4, 0.0, 1.5, &mut rng);
    let build = |t: &mut Tape, ps: &ParamStore| {
        let xv = t.input(x.clone());
        let h = ln.forward(t, ps, xv);
        let h = t.tanh(h);
        t.mean_all(h)
    };
    assert_gradients_ok(&mut ps, build, 1e-3, 3e-2);
    assert_gradients_ok_arena(&mut ps, build, 1e-3, 3e-2);
    assert_analyzer_clean(&ps, build);
}

#[test]
fn gru_cell_gradchecks_and_analyzes_clean() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut ps = ParamStore::new();
    let gru = GruCell::new(&mut ps, "gru", 3, 3, &mut rng);
    let seq = Tensor::rand_normal(3, 3, 0.0, 0.8, &mut rng);
    let build = |t: &mut Tape, ps: &ParamStore| {
        let sv = t.input(seq.clone());
        let states = gru.run(t, ps, sv);
        t.mean_all(states)
    };
    assert_gradients_ok(&mut ps, build, 1e-3, 3e-2);
    assert_gradients_ok_arena(&mut ps, build, 1e-3, 3e-2);
    assert_analyzer_clean(&ps, build);
}

#[test]
fn multi_head_attention_gradchecks_and_analyzes_clean() {
    let mut rng = StdRng::seed_from_u64(14);
    let mut ps = ParamStore::new();
    let mha = MultiHeadSelfAttention::new(&mut ps, "mha", 4, 2, &mut rng);
    let x = Tensor::rand_normal(3, 4, 0.0, 0.7, &mut rng);
    let build = |t: &mut Tape, ps: &ParamStore| {
        let xv = t.input(x.clone());
        let h = mha.forward(t, ps, xv);
        t.mean_all(h)
    };
    assert_gradients_ok(&mut ps, build, 1e-3, 3e-2);
    assert_gradients_ok_arena(&mut ps, build, 1e-3, 3e-2);
    assert_analyzer_clean(&ps, build);
}

#[test]
fn transformer_layer_gradchecks_and_analyzes_clean() {
    let mut rng = StdRng::seed_from_u64(15);
    let mut ps = ParamStore::new();
    let block = TransformerEncoderLayer::new(&mut ps, "blk", 4, 2, 8, 0.0, &mut rng);
    let x = Tensor::rand_normal(3, 4, 0.0, 0.7, &mut rng);
    let build = |t: &mut Tape, ps: &ParamStore| {
        let xv = t.input(x.clone());
        let mut fwd_rng = StdRng::seed_from_u64(99);
        let h = block.forward(t, ps, xv, false, &mut fwd_rng);
        t.mean_all(h)
    };
    assert_gradients_ok(&mut ps, build, 1e-3, 4e-2);
    assert_gradients_ok_arena(&mut ps, build, 1e-3, 4e-2);
    assert_analyzer_clean(&ps, build);
}

#[test]
fn transformer_encoder_gradchecks_and_analyzes_clean() {
    let mut rng = StdRng::seed_from_u64(16);
    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 1, 4, 2, 8, 8, 0.0, &mut rng);
    let x = Tensor::rand_normal(3, 4, 0.0, 0.7, &mut rng);
    let build = |t: &mut Tape, ps: &ParamStore| {
        let xv = t.input(x.clone());
        let mut fwd_rng = StdRng::seed_from_u64(99);
        let h = enc.forward(t, ps, xv, false, &mut fwd_rng);
        t.mean_all(h)
    };
    assert_gradients_ok(&mut ps, build, 1e-3, 4e-2);
    assert_gradients_ok_arena(&mut ps, build, 1e-3, 4e-2);
    assert_analyzer_clean(&ps, build);
}
