//! Corpus-scale synthetic entity store: DI2KG-style multi-source records
//! with gold cluster ids, at 10^6+ records, in O(1) memory.
//!
//! The [`World`](crate::synth::World) generator materialises its catalog,
//! which is fine for benchmark-sized tables but not for the resolve
//! pipeline's million-record corpora. [`SynthCorpus`] instead *derives*
//! every record on demand: a product's ground truth is a pure function of
//! `(seed, uid)` (family-shared fields of `(seed, family)`), and each of
//! its `copies` renderings re-seeds the noise RNG from
//! `(seed, uid, copy)`. Any record can therefore be re-rendered at any
//! time — the scoring stage fetches band-pair entities by index without
//! the corpus ever being resident.
//!
//! Layout: record `i` is copy `i % copies` of product `i / copies`, so
//! the gold cluster id of record `i` is simply `i / copies`. Products are
//! grouped into families of `family_size` (shared brand + name words,
//! distinct model codes) — the hard negatives that make blocking earn its
//! keep.

use crate::entity::Entity;
use crate::lexicon::{self, model_code, pseudo_word, DomainLexicon};
use crate::synth::{render_entity, AttrKind, NoiseConfig, Product, Schema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// DI2KG-shaped schema for corpus records.
const CORPUS_SCHEMA: Schema = Schema {
    name: "corpus",
    attrs: &[
        ("page_title", AttrKind::TitleFull),
        ("brand", AttrKind::Brand),
        ("model", AttrKind::Model),
        ("description", AttrKind::Description),
    ],
};

/// Configuration for [`SynthCorpus`].
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Total records in the corpus (`n_products * copies` when divisible;
    /// the last product simply has fewer renderings otherwise).
    pub n_records: usize,
    /// Renderings ("source pages") per product; gold clusters have this
    /// size. Must be at least 1.
    pub copies: usize,
    /// Products per family (hard-negative groups sharing brand + name).
    pub family_size: usize,
    /// Master seed; every derived RNG mixes it.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self { n_records: 1000, copies: 3, family_size: 4, seed: 0xC0FFEE }
    }
}

/// A virtual multi-source corpus with gold cluster ids. `Sync`, cheap to
/// share, and O(1) memory regardless of `n_records`.
#[derive(Debug, Clone)]
pub struct SynthCorpus {
    cfg: CorpusConfig,
    lexicon: &'static DomainLexicon,
}

/// splitmix64 — the standard 64-bit seed scrambler.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn derive_seed(master: u64, stream: u64, index: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index))
}

impl SynthCorpus {
    pub fn new(cfg: CorpusConfig) -> Self {
        assert!(cfg.copies >= 1, "corpus needs at least one copy per product");
        assert!(cfg.family_size >= 1, "corpus needs at least one product per family");
        Self { cfg, lexicon: &lexicon::ELECTRONICS }
    }

    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.cfg.n_records
    }

    pub fn is_empty(&self) -> bool {
        self.cfg.n_records == 0
    }

    /// Number of distinct products (= gold clusters).
    pub fn n_products(&self) -> usize {
        self.cfg.n_records.div_ceil(self.cfg.copies)
    }

    /// Gold cluster id of record `i` (its product uid).
    pub fn gold(&self, i: usize) -> u32 {
        u32::try_from(i / self.cfg.copies).expect("corpus supports at most u32::MAX products")
    }

    /// Gold labels for the whole corpus, record order.
    pub fn gold_labels(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.gold(i)).collect()
    }

    /// Derives product `uid`'s ground truth. Family-shared fields (brand,
    /// name, category) come from the family RNG so siblings agree on them.
    fn product(&self, uid: usize) -> Product {
        let family = uid / self.cfg.family_size;
        let mut frng = StdRng::seed_from_u64(derive_seed(self.cfg.seed, 0xFA, family as u64));
        let category = frng.gen_range(0..self.lexicon.categories.len());
        let brand_syllables = frng.gen_range(2..=3);
        let brand = pseudo_word(&mut frng, brand_syllables);
        let n_name = frng.gen_range(2..=3);
        let name_words: Vec<String> = (0..n_name)
            .map(|i| {
                if i % 2 == 0 {
                    self.lexicon.nouns.choose(&mut frng).expect("nonempty").to_string()
                } else {
                    self.lexicon.modifiers.choose(&mut frng).expect("nonempty").to_string()
                }
            })
            .collect();
        let mut prng = StdRng::seed_from_u64(derive_seed(self.cfg.seed, 0x9D, uid as u64));
        let n_desc = prng.gen_range(6..=14);
        let desc_words: Vec<String> = (0..n_desc)
            .map(|_| {
                let pool =
                    if prng.gen_bool(0.5) { self.lexicon.nouns } else { self.lexicon.modifiers };
                pool.choose(&mut prng).expect("nonempty").to_string()
            })
            .collect();
        Product {
            uid,
            family,
            category,
            brand,
            model: model_code(&mut prng),
            name_words,
            desc_words,
            person: format!("{} {}", pseudo_word(&mut prng, 2), pseudo_word(&mut prng, 3)),
            price: (prng.gen_range(5.0..2000.0f64) * 100.0).round() / 100.0,
            year: prng.gen_range(1995..2022),
        }
    }

    /// Renders record `i`: copy `i % copies` of product `i / copies`,
    /// through the copy's source-noise profile. Deterministic: the same
    /// `i` always yields the identical entity.
    pub fn entity(&self, i: usize) -> Entity {
        assert!(i < self.cfg.n_records, "record {i} out of bounds");
        let uid = i / self.cfg.copies;
        let copy = i % self.cfg.copies;
        let product = self.product(uid);
        // Sources cycle the four formatting profiles, like the DI2KG
        // generator's per-source noise.
        let noise = match copy % 4 {
            0 => NoiseConfig::clean(),
            1 => NoiseConfig::light(),
            2 => NoiseConfig::medium(),
            _ => NoiseConfig::heavy(),
        };
        let mut rng = StdRng::seed_from_u64(derive_seed(
            self.cfg.seed,
            0xE27,
            (uid as u64) << 8 | copy as u64,
        ));
        render_entity(&product, self.lexicon, &CORPUS_SCHEMA, &noise, &format!("s{copy}"), &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> SynthCorpus {
        SynthCorpus::new(CorpusConfig { n_records: n, ..CorpusConfig::default() })
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = corpus(60);
        let b = corpus(60);
        for i in [0, 1, 7, 59] {
            assert_eq!(a.entity(i), b.entity(i));
        }
    }

    #[test]
    fn gold_groups_copies_of_one_product() {
        let c = corpus(60);
        assert_eq!(c.gold(0), 0);
        assert_eq!(c.gold(2), 0);
        assert_eq!(c.gold(3), 1);
        assert_eq!(c.n_products(), 20);
        let labels = c.gold_labels();
        assert_eq!(labels.len(), 60);
        assert!(labels.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn copies_share_ground_truth_but_render_differently() {
        let c = corpus(60);
        let (a, b) = (c.entity(0), c.entity(1));
        // Same product: clean copy keeps the model code in the title.
        assert_ne!(a.id, b.id, "copies get distinct source-prefixed ids");
        // Family siblings share brand text.
        let p0 = c.product(0);
        let p1 = c.product(1);
        assert_eq!(p0.brand, p1.brand, "products 0 and 1 are family siblings");
        assert_ne!(p0.model, p1.model, "siblings differ in model code");
        let p4 = c.product(4);
        assert_ne!(p0.family, p4.family);
    }

    #[test]
    fn random_access_is_cheap_at_scale() {
        // A billion-record virtual corpus: rendering the last record must
        // not depend on corpus size.
        let c =
            SynthCorpus::new(CorpusConfig { n_records: 1_000_000_000, ..CorpusConfig::default() });
        let e = c.entity(999_999_999);
        assert!(!e.full_text().is_empty());
        assert_eq!(c.gold(999_999_999), 333_333_333);
    }

    #[test]
    fn family_rng_is_isolated_from_product_rng() {
        // Two products in the same family must agree on family fields even
        // though their per-product draws differ.
        let c = corpus(60);
        let (p2, p3) = (c.product(2), c.product(3));
        assert_eq!(p2.family, p3.family);
        assert_eq!(p2.brand, p3.brand);
        assert_eq!(p2.name_words, p3.name_words);
        assert_ne!(p2.model, p3.model);
    }
}
