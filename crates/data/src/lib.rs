//! Entity model and synthetic benchmark generators for the HierGAT
//! reproduction.
//!
//! Provides the `<key, val>` [`Entity`] record model (§2 of the paper),
//! pairwise and collective dataset containers with the paper's split
//! protocols, and deterministic synthetic stand-ins for the Magellan, WDC,
//! and DI2KG benchmarks (see DESIGN.md for the substitution rationale).

mod corpus;
mod corrupt;
mod dataset;
mod di2kg;
mod entity;
pub mod io;
pub mod lexicon;
mod magellan;
mod pairgen;
pub mod synth;

#[cfg(test)]
mod proptests;
mod wdc;

pub use corpus::{CorpusConfig, SynthCorpus};
pub use corrupt::{corrupt_entity, make_dirty, DirtyConfig};
pub use dataset::{CollectiveDataset, PairDataset};
pub use di2kg::{load_di2kg, Di2kgCategory};
pub use entity::{CollectiveExample, Entity, EntityPair, MISSING};
pub use magellan::MagellanDataset;
pub use pairgen::{
    generate_collective, generate_collective_dataset, generate_pair_dataset, generate_pairs,
    CollectiveGenConfig, PairGenConfig,
};
pub use wdc::{load_wdc, load_wdc_all, WdcDomain, WdcSize, WDC_TEST_PAIRS, WDC_TEST_POS};
