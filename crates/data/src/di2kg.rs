//! Synthetic stand-in for the DI2KG datasets (Table 6 of the paper):
//! camera and monitor entities scraped from many e-commerce source tables.
//!
//! Unlike the two-table Magellan data, DI2KG entities come from 24 (camera)
//! or 26 (monitor) different sources, each with its own formatting quirks.
//! The generator renders every product through a per-source noise profile
//! and builds collective examples by comparing a query against all other
//! sources' entities with TF-IDF top-16 blocking, exactly like §6.3.

use crate::dataset::CollectiveDataset;
use crate::entity::{CollectiveExample, Entity};
use crate::lexicon;
use crate::synth::{render_entity, AttrKind, NoiseConfig, Schema, World};
use hiergat_text::{tokenize, CosineIndex, TfIdf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// DI2KG categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Di2kgCategory {
    /// Camera products (24 source tables in the paper).
    Camera,
    /// Monitor products (26 source tables).
    Monitor,
}

const DI2KG_SCHEMA: Schema = Schema {
    name: "di2kg",
    attrs: &[
        ("page_title", AttrKind::TitleFull),
        ("brand", AttrKind::Brand),
        ("model", AttrKind::Model),
        ("description", AttrKind::Description),
    ],
};

impl Di2kgCategory {
    /// Both categories.
    pub fn all() -> [Self; 2] {
        [Self::Camera, Self::Monitor]
    }

    /// Category name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Camera => "camera",
            Self::Monitor => "monitor",
        }
    }

    /// Number of source tables (paper Table 6).
    pub fn n_sources(&self) -> usize {
        match self {
            Self::Camera => 24,
            Self::Monitor => 26,
        }
    }

    fn lexicon(&self) -> &'static lexicon::DomainLexicon {
        match self {
            Self::Camera => &lexicon::CAMERA,
            Self::Monitor => &lexicon::MONITOR,
        }
    }

    fn seed(&self) -> u64 {
        match self {
            Self::Camera => 0xd12c,
            Self::Monitor => 0xd12d,
        }
    }
}

/// Per-source noise: sources cycle through four formatting profiles.
fn source_noise(source: usize) -> NoiseConfig {
    match source % 4 {
        0 => NoiseConfig::clean(),
        1 => NoiseConfig::light(),
        2 => NoiseConfig::medium(),
        _ => NoiseConfig::heavy(),
    }
}

/// Loads a DI2KG category as a collective dataset.
///
/// Every product appears in a random subset of sources; each query entity is
/// blocked against the entities of **all other sources** with TF-IDF top-16.
pub fn load_di2kg(category: Di2kgCategory, scale: f64) -> CollectiveDataset {
    let n_products = ((140.0 * scale).round() as usize).max(30);
    let n_queries = ((110.0 * scale).round() as usize).max(15);
    let world = World::generate(category.lexicon(), n_products, 4, category.seed());
    let mut rng = StdRng::seed_from_u64(category.seed() ^ 0xfeed);

    // Render each product into 2-4 random sources.
    let n_sources = category.n_sources();
    let mut records: Vec<(usize, usize, Entity)> = Vec::new(); // (uid, source, entity)
    for p in &world.products {
        let copies = rng.gen_range(2..=4usize);
        let mut sources: Vec<usize> = (0..n_sources).collect();
        sources.shuffle(&mut rng);
        for &s in sources.iter().take(copies) {
            let e = render_entity(
                p,
                world.lexicon,
                &DI2KG_SCHEMA,
                &source_noise(s),
                &format!("s{s}"),
                &mut rng,
            );
            records.push((p.uid, s, e));
        }
    }

    // TF-IDF index over all records.
    let docs: Vec<Vec<String>> = records.iter().map(|(_, _, e)| tokenize(&e.full_text())).collect();
    let tfidf = TfIdf::fit(&docs);
    let vectors: Vec<_> = docs.iter().map(|d| tfidf.transform(d)).collect();
    let index = CosineIndex::build(&vectors);

    // Queries: random records, blocked against records from other sources.
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.shuffle(&mut rng);
    let mut examples = Vec::new();
    for &ri in &order {
        if examples.len() >= n_queries {
            break;
        }
        let (q_uid, q_source, q_entity) = &records[ri];
        let qvec = tfidf.transform(&docs[ri]);
        // Over-fetch, then drop same-source records and self.
        let hits = index.top_n(&qvec, 16 * 3);
        let mut candidates = Vec::new();
        let mut labels = Vec::new();
        for (doc, _) in hits {
            if doc == ri {
                continue;
            }
            let (uid, source, entity) = &records[doc];
            if source == q_source {
                continue;
            }
            candidates.push(entity.clone());
            labels.push(uid == q_uid);
            if candidates.len() == 16 {
                break;
            }
        }
        if candidates.is_empty() {
            continue;
        }
        examples.push(CollectiveExample::new(q_entity.clone(), candidates, labels));
    }
    CollectiveDataset::split_3_1_1(category.name(), examples, category.seed() ^ 0x5117)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_both_categories() {
        for cat in Di2kgCategory::all() {
            let ds = load_di2kg(cat, 0.3);
            assert!(ds.n_queries() >= 15, "{}: {}", cat.name(), ds.n_queries());
            assert_eq!(ds.name, cat.name());
        }
    }

    #[test]
    fn candidates_come_from_other_sources() {
        let ds = load_di2kg(Di2kgCategory::Camera, 0.3);
        for ex in ds.train.iter().chain(&ds.test) {
            let q_source = ex.query.id.split('-').next().expect("source prefix").to_string();
            for c in &ex.candidates {
                let c_source = c.id.split('-').next().expect("source prefix");
                assert_ne!(c_source, q_source, "candidate from the query's own source");
            }
        }
    }

    #[test]
    fn most_queries_have_a_match_in_candidates() {
        let ds = load_di2kg(Di2kgCategory::Monitor, 0.3);
        let total = ds.n_queries();
        let with_match: usize =
            ds.train.iter().chain(&ds.valid).chain(&ds.test).filter(|e| e.n_positive() > 0).count();
        assert!(with_match * 10 >= total * 5, "{with_match}/{total} queries with matches");
    }

    #[test]
    fn candidate_sets_capped_at_16() {
        let ds = load_di2kg(Di2kgCategory::Camera, 0.3);
        for e in ds.train.iter().chain(&ds.valid).chain(&ds.test) {
            assert!(e.n_candidates() <= 16);
        }
    }

    #[test]
    fn source_counts_match_paper() {
        assert_eq!(Di2kgCategory::Camera.n_sources(), 24);
        assert_eq!(Di2kgCategory::Monitor.n_sources(), 26);
    }
}
