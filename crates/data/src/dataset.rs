//! Dataset containers and split protocols.

use crate::entity::{CollectiveExample, EntityPair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A pairwise ER dataset with fixed train/validation/test splits.
///
/// The paper follows DeepMatcher's 3:1:1 split (§6.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairDataset {
    /// Dataset name (e.g. "Amazon-Google").
    pub name: String,
    /// Training pairs.
    pub train: Vec<EntityPair>,
    /// Validation pairs (model selection).
    pub valid: Vec<EntityPair>,
    /// Held-out test pairs.
    pub test: Vec<EntityPair>,
}

impl PairDataset {
    /// Splits a pool of labeled pairs 3:1:1 with a seeded shuffle,
    /// **stratified by label** so every split keeps the dataset's positive
    /// rate (small benchmarks like Beer would otherwise routinely end up
    /// with positive-free validation splits).
    pub fn split_3_1_1(name: impl Into<String>, pairs: Vec<EntityPair>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut pos, mut neg): (Vec<EntityPair>, Vec<EntityPair>) =
            pairs.into_iter().partition(|p| p.label);
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        let mut train = Vec::new();
        let mut valid = Vec::new();
        let mut test = Vec::new();
        for mut stratum in [pos, neg] {
            let n = stratum.len();
            let n_train = n * 3 / 5;
            let n_valid = n / 5;
            test.extend(stratum.split_off(n_train + n_valid));
            valid.extend(stratum.split_off(n_train));
            train.extend(stratum);
        }
        // Interleave labels within each split deterministically.
        train.shuffle(&mut rng);
        valid.shuffle(&mut rng);
        test.shuffle(&mut rng);
        Self { name: name.into(), train, valid, test }
    }

    /// Total number of pairs.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// `true` if the dataset holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of positive pairs across all splits.
    pub fn n_positive(&self) -> usize {
        self.train.iter().chain(&self.valid).chain(&self.test).filter(|p| p.label).count()
    }

    /// Positive rate across all splits.
    pub fn positive_rate(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.n_positive() as f64 / self.len() as f64
        }
    }

    /// Number of attributes in the schema (taken from the first pair).
    pub fn arity(&self) -> usize {
        self.train
            .first()
            .or(self.valid.first())
            .or(self.test.first())
            .map_or(0, |p| p.left.arity())
    }

    /// Returns a copy truncated to at most `n` training pairs (label
    /// efficiency experiments, Figure 10).
    pub fn with_train_budget(&self, n: usize) -> Self {
        let mut out = self.clone();
        out.train.truncate(n);
        out
    }

    /// Average token count per entity across the dataset (Figure 11's
    /// x-axis is `dataset size x average length`).
    pub fn avg_token_len(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for p in self.train.iter().chain(&self.valid).chain(&self.test) {
            total += p.left.all_tokens().len() + p.right.all_tokens().len();
            count += 2;
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

/// A collective ER dataset: query entities with blocked candidate sets,
/// split **before** blocking so test queries are unseen (§6.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectiveDataset {
    /// Dataset name.
    pub name: String,
    /// Training examples.
    pub train: Vec<CollectiveExample>,
    /// Validation examples.
    pub valid: Vec<CollectiveExample>,
    /// Test examples (queries never seen during training).
    pub test: Vec<CollectiveExample>,
}

impl CollectiveDataset {
    /// Splits examples 3:1:1 with a seeded shuffle. The caller must have
    /// produced examples query-by-query (split-then-block protocol).
    pub fn split_3_1_1(
        name: impl Into<String>,
        mut examples: Vec<CollectiveExample>,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        examples.shuffle(&mut rng);
        let n = examples.len();
        let n_train = n * 3 / 5;
        let n_valid = n / 5;
        let test = examples.split_off(n_train + n_valid);
        let valid = examples.split_off(n_train);
        Self { name: name.into(), train: examples, valid, test }
    }

    /// Total candidate pairs across all splits.
    pub fn total_candidates(&self) -> usize {
        self.train
            .iter()
            .chain(&self.valid)
            .chain(&self.test)
            .map(CollectiveExample::n_candidates)
            .sum()
    }

    /// Number of query entities.
    pub fn n_queries(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Entity;

    fn pairs(n: usize) -> Vec<EntityPair> {
        (0..n)
            .map(|i| {
                let e = Entity::new(format!("e{i}"), vec![("t".into(), format!("v{i}"))]);
                EntityPair::new(e.clone(), e, i % 4 == 0)
            })
            .collect()
    }

    #[test]
    fn split_ratios_are_3_1_1() {
        let ds = PairDataset::split_3_1_1("x", pairs(100), 1);
        assert_eq!(ds.train.len(), 60);
        assert_eq!(ds.valid.len(), 20);
        assert_eq!(ds.test.len(), 20);
        assert_eq!(ds.len(), 100);
    }

    #[test]
    fn split_is_stratified() {
        // 25% positives overall; every split must hold positives.
        let ds = PairDataset::split_3_1_1("x", pairs(100), 1);
        let rate =
            |ps: &[EntityPair]| ps.iter().filter(|p| p.label).count() as f64 / ps.len() as f64;
        assert!((rate(&ds.train) - 0.25).abs() < 0.05, "train {}", rate(&ds.train));
        assert!((rate(&ds.valid) - 0.25).abs() < 0.06, "valid {}", rate(&ds.valid));
        assert!((rate(&ds.test) - 0.25).abs() < 0.06, "test {}", rate(&ds.test));
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = PairDataset::split_3_1_1("x", pairs(50), 7);
        let b = PairDataset::split_3_1_1("x", pairs(50), 7);
        assert_eq!(a.train[0].left.id, b.train[0].left.id);
        let c = PairDataset::split_3_1_1("x", pairs(50), 8);
        // Overwhelmingly likely to differ.
        let same = a.train.iter().zip(&c.train).all(|(x, y)| x.left.id == y.left.id);
        assert!(!same);
    }

    #[test]
    fn positive_accounting() {
        let ds = PairDataset::split_3_1_1("x", pairs(100), 1);
        assert_eq!(ds.n_positive(), 25);
        assert!((ds.positive_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn train_budget_truncates_only_train() {
        let ds = PairDataset::split_3_1_1("x", pairs(100), 1);
        let small = ds.with_train_budget(10);
        assert_eq!(small.train.len(), 10);
        assert_eq!(small.valid.len(), 20);
        assert_eq!(small.test.len(), 20);
    }

    #[test]
    fn collective_split_counts() {
        let q = Entity::new("q", vec![("t".into(), "x".into())]);
        let examples: Vec<CollectiveExample> = (0..10)
            .map(|_| CollectiveExample::new(q.clone(), vec![q.clone()], vec![true]))
            .collect();
        let ds = CollectiveDataset::split_3_1_1("c", examples, 3);
        assert_eq!(ds.train.len(), 6);
        assert_eq!(ds.valid.len(), 2);
        assert_eq!(ds.test.len(), 2);
        assert_eq!(ds.n_queries(), 10);
        assert_eq!(ds.total_candidates(), 10);
    }
}
