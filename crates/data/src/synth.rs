//! The synthetic product world: ground-truth entities, noisy per-source
//! rendering, and labeled pair construction.
//!
//! A *world* is a catalog of ground-truth products organized into
//! **families** (same brand, category, and base name; different model codes).
//! Rendering a product through a [`NoiseConfig`] simulates one data source's
//! formatting; pairing two renderings of the same product gives a positive,
//! pairing family siblings gives the hard negatives that make benchmarks
//! like Amazon-Google difficult (shared brand/series text, one different
//! model token — exactly the failure mode of the RNN models in Figure 1 of
//! the paper).

use crate::entity::Entity;
use crate::lexicon::{model_code, pseudo_word, DomainLexicon, FILLERS, POLYSEMOUS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Per-source rendering noise.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Probability of dropping each non-essential token.
    pub token_drop: f64,
    /// Probability of swapping adjacent tokens.
    pub token_swap: f64,
    /// Probability of a character typo per token.
    pub typo: f64,
    /// Probability an attribute value is replaced by `"NAN"`.
    pub missing_attr: f64,
    /// Relative jitter applied to numeric fields.
    pub numeric_jitter: f64,
    /// Probability of inserting a filler token after each token.
    pub extra_filler: f64,
    /// Probability that the discriminative model code is dropped entirely
    /// (this is what makes hard datasets hard).
    pub model_drop: f64,
    /// Probability of moving one attribute's value into another (mild
    /// structural heterogeneity; the dirty datasets crank this up).
    pub attr_inject: f64,
}

impl NoiseConfig {
    /// Nearly exact copies (DBLP-ACM-like, paper F1 ≈ 99).
    pub fn clean() -> Self {
        Self {
            token_drop: 0.02,
            token_swap: 0.02,
            typo: 0.01,
            missing_attr: 0.01,
            numeric_jitter: 0.0,
            extra_filler: 0.02,
            model_drop: 0.0,
            attr_inject: 0.0,
        }
    }

    /// Light formatting differences (iTunes-Amazon-like).
    pub fn light() -> Self {
        Self {
            token_drop: 0.08,
            token_swap: 0.05,
            typo: 0.03,
            missing_attr: 0.04,
            numeric_jitter: 0.02,
            extra_filler: 0.06,
            model_drop: 0.02,
            attr_inject: 0.03,
        }
    }

    /// Substantial heterogeneity (Walmart-Amazon-like).
    pub fn medium() -> Self {
        Self {
            token_drop: 0.18,
            token_swap: 0.10,
            typo: 0.05,
            missing_attr: 0.14,
            numeric_jitter: 0.10,
            extra_filler: 0.12,
            model_drop: 0.06,
            attr_inject: 0.30,
        }
    }

    /// Heavy noise (Amazon-Google / Abt-Buy-like, paper F1 ≈ 76).
    pub fn heavy() -> Self {
        Self {
            token_drop: 0.22,
            token_swap: 0.12,
            typo: 0.06,
            missing_attr: 0.14,
            numeric_jitter: 0.15,
            extra_filler: 0.15,
            model_drop: 0.06,
            attr_inject: 0.40,
        }
    }
}

/// A ground-truth product in the world.
#[derive(Debug, Clone)]
pub struct Product {
    /// Unique id within the world.
    pub uid: usize,
    /// Family id (products in one family are hard negatives of each other).
    pub family: usize,
    /// Category index into the domain lexicon.
    pub category: usize,
    /// Brand pseudo-word (shared within a family).
    pub brand: String,
    /// Model code — the discriminative token.
    pub model: String,
    /// Base name words (shared within a family).
    pub name_words: Vec<String>,
    /// Member-specific descriptive words.
    pub desc_words: Vec<String>,
    /// A person-like name (artist / author / brewer), pseudo-generated.
    pub person: String,
    /// Ground-truth price.
    pub price: f64,
    /// Ground-truth year.
    pub year: u32,
}

/// A catalog of products over one domain lexicon.
pub struct World {
    /// The domain lexicon used for rendering.
    pub lexicon: &'static DomainLexicon,
    /// The ground-truth catalog.
    pub products: Vec<Product>,
}

impl World {
    /// Generates `n_products` products in families of `family_size`.
    pub fn generate(
        lexicon: &'static DomainLexicon,
        n_products: usize,
        family_size: usize,
        seed: u64,
    ) -> Self {
        assert!(family_size >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut products = Vec::with_capacity(n_products);
        let mut uid = 0;
        let mut family = 0;
        while products.len() < n_products {
            let category = rng.gen_range(0..lexicon.categories.len());
            let brand_syllables = rng.gen_range(2..=3);
            let brand = pseudo_word(&mut rng, brand_syllables);
            let n_name = rng.gen_range(2..=3);
            let name_words: Vec<String> = (0..n_name)
                .map(|i| {
                    if i % 2 == 0 {
                        lexicon.nouns.choose(&mut rng).expect("nonempty").to_string()
                    } else {
                        lexicon.modifiers.choose(&mut rng).expect("nonempty").to_string()
                    }
                })
                .collect();
            let members = family_size.min(n_products - products.len());
            for _ in 0..members {
                let mut desc_words = Vec::new();
                let n_desc = rng.gen_range(6..=14);
                for _ in 0..n_desc {
                    let pool = if rng.gen_bool(0.5) { lexicon.nouns } else { lexicon.modifiers };
                    desc_words.push(pool.choose(&mut rng).expect("nonempty").to_string());
                }
                // Polysemous words appear with category-specific companions,
                // so context disambiguates them (§1 of the paper).
                if rng.gen_bool(0.25) {
                    let p = POLYSEMOUS.choose(&mut rng).expect("nonempty").to_string();
                    let companion = lexicon.nouns[category % lexicon.nouns.len()].to_string();
                    desc_words.push(p);
                    desc_words.push(companion);
                }
                products.push(Product {
                    uid,
                    family,
                    category,
                    brand: brand.clone(),
                    model: model_code(&mut rng),
                    name_words: name_words.clone(),
                    desc_words,
                    person: format!("{} {}", pseudo_word(&mut rng, 2), pseudo_word(&mut rng, 3)),
                    price: (rng.gen_range(5.0..2000.0f64) * 100.0).round() / 100.0,
                    year: rng.gen_range(1995..2022),
                });
                uid += 1;
            }
            family += 1;
        }
        Self { lexicon, products }
    }

    /// Siblings of a product (same family, different uid).
    pub fn family_siblings(&self, p: &Product) -> Vec<&Product> {
        self.products.iter().filter(|q| q.family == p.family && q.uid != p.uid).collect()
    }
}

/// Attribute semantics used by dataset schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// Brand + name + model (+modifiers): the headline attribute.
    TitleFull,
    /// Brand + name words only (no model code).
    Name,
    /// The brand token.
    Brand,
    /// The model code.
    Model,
    /// Formatted price.
    Price,
    /// Release/publication year.
    Year,
    /// Member-specific description words.
    Description,
    /// Category label.
    Category,
    /// Person-like name (artist, authors, brewer).
    PersonName,
    /// Venue-like short phrase (citation datasets).
    Venue,
    /// Phone number derived from the uid.
    Phone,
    /// Street address derived from the uid.
    Address,
    /// Long free text (Company dataset): name + description + fillers.
    LongText,
    /// Duration mm:ss derived from the uid.
    Time,
    /// ABV percentage (beer).
    Abv,
}

/// A dataset schema: named attributes with semantics.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Schema name for diagnostics.
    pub name: &'static str,
    /// `(attribute key, semantics)` in order.
    pub attrs: &'static [(&'static str, AttrKind)],
}

impl Schema {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

fn apply_token_noise(tokens: &mut Vec<String>, noise: &NoiseConfig, rng: &mut StdRng) {
    // Drop.
    if noise.token_drop > 0.0 && tokens.len() > 1 {
        tokens.retain(|_| !rng.gen_bool(noise.token_drop));
        if tokens.is_empty() {
            tokens.push(FILLERS[0].to_string());
        }
    }
    // Adjacent swaps.
    if tokens.len() >= 2 {
        for i in 0..tokens.len() - 1 {
            if rng.gen_bool(noise.token_swap) {
                tokens.swap(i, i + 1);
            }
        }
    }
    // Typos: duplicate or drop one character.
    for t in tokens.iter_mut() {
        if t.len() > 3 && rng.gen_bool(noise.typo) {
            let pos = rng.gen_range(1..t.len() - 1);
            if t.is_char_boundary(pos) && t.is_char_boundary(pos + 1) {
                if rng.gen_bool(0.5) {
                    t.remove(pos);
                } else {
                    let c = t.as_bytes()[pos] as char;
                    t.insert(pos, c);
                }
            }
        }
    }
    // Filler insertion. Single-token attributes (brand, model) keep their
    // identity under formatting noise, mirroring the drop guard above.
    if noise.extra_filler > 0.0 && tokens.len() > 1 {
        let mut out = Vec::with_capacity(tokens.len() + 2);
        for t in tokens.drain(..) {
            out.push(t);
            if rng.gen_bool(noise.extra_filler) {
                out.push(FILLERS.choose(rng).expect("nonempty").to_string());
            }
        }
        *tokens = out;
    }
}

fn jitter_number(value: f64, rel: f64, rng: &mut StdRng) -> f64 {
    if rel <= 0.0 {
        return value;
    }
    let factor = 1.0 + rng.gen_range(-rel..rel);
    (value * factor * 100.0).round() / 100.0
}

/// Renders one attribute value for a product.
fn render_attr(
    p: &Product,
    lexicon: &DomainLexicon,
    kind: AttrKind,
    noise: &NoiseConfig,
    rng: &mut StdRng,
) -> String {
    let mut tokens: Vec<String> = match kind {
        AttrKind::TitleFull => {
            let mut t = vec![p.brand.clone()];
            t.extend(p.name_words.iter().cloned());
            if !rng.gen_bool(noise.model_drop) {
                t.push(p.model.clone());
            }
            if rng.gen_bool(0.4) {
                t.push(lexicon.modifiers.choose(rng).expect("nonempty").to_string());
            }
            t
        }
        AttrKind::Name => {
            let mut t = vec![p.brand.clone()];
            t.extend(p.name_words.iter().cloned());
            t
        }
        AttrKind::Brand => vec![p.brand.clone()],
        AttrKind::Model => vec![p.model.clone()],
        AttrKind::Price => {
            let v = jitter_number(p.price, noise.numeric_jitter, rng);
            return format!("{v:.2}");
        }
        AttrKind::Year => return p.year.to_string(),
        AttrKind::Description => p.desc_words.clone(),
        AttrKind::Category => {
            return lexicon.categories[p.category % lexicon.categories.len()].to_string()
        }
        AttrKind::PersonName => p.person.split(' ').map(str::to_string).collect(),
        AttrKind::Venue => {
            // Venue derived from the family so related records agree.
            let v1 = lexicon.nouns[p.family % lexicon.nouns.len()].to_string();
            vec!["proc".to_string(), v1, "conf".to_string()]
        }
        AttrKind::Phone => {
            return format!(
                "{:03}-{:03}-{:04}",
                200 + p.uid % 700,
                (p.uid * 7) % 1000,
                (p.uid * 31) % 10000
            );
        }
        AttrKind::Address => {
            let street = lexicon.nouns[(p.uid * 13) % lexicon.nouns.len()];
            vec![format!("{}", 10 + p.uid % 980), street.to_string(), "st".to_string()]
        }
        AttrKind::LongText => {
            let mut t = vec![p.brand.clone()];
            t.extend(p.name_words.iter().cloned());
            t.push(p.model.clone());
            t.extend(p.desc_words.iter().cloned());
            for _ in 0..12 {
                let pool = if rng.gen_bool(0.5) { lexicon.nouns } else { lexicon.modifiers };
                t.push(pool.choose(rng).expect("nonempty").to_string());
            }
            t
        }
        AttrKind::Time => {
            return format!("{}:{:02}", 2 + p.uid % 6, (p.uid * 17) % 60);
        }
        AttrKind::Abv => {
            let v = jitter_number(4.0 + (p.uid % 80) as f64 / 10.0, noise.numeric_jitter, rng);
            return format!("{v:.1}%");
        }
    };
    apply_token_noise(&mut tokens, noise, rng);
    tokens.join(" ")
}

/// Renders a full entity for `p` under a schema and noise level.
///
/// The `source` string namespaces entity ids so two renderings of the same
/// product are distinguishable.
pub fn render_entity(
    p: &Product,
    lexicon: &DomainLexicon,
    schema: &Schema,
    noise: &NoiseConfig,
    source: &str,
    rng: &mut StdRng,
) -> Entity {
    let attrs = schema
        .attrs
        .iter()
        .map(|&(key, kind)| {
            let v = if rng.gen_bool(noise.missing_attr) {
                crate::entity::MISSING.to_string()
            } else {
                render_attr(p, lexicon, kind, noise, rng)
            };
            (key.to_string(), v)
        })
        .collect();
    Entity::new(format!("{source}-{}", p.uid), attrs)
}

/// Derives a second-source view of an already-rendered entity by applying
/// token noise, numeric jitter, missing values, and attribute injection.
///
/// Matching records in real benchmarks are *edited copies* of one another
/// (a retailer reformats the manufacturer's text), not independent
/// renderings, so the pair generator renders source A from the ground truth
/// and perturbs that rendering into the source-B view.
pub fn perturb_entity(e: &Entity, noise: &NoiseConfig, id: &str, rng: &mut StdRng) -> Entity {
    let mut attrs: Vec<(String, String)> = Vec::with_capacity(e.arity());
    for (key, val) in &e.attrs {
        if rng.gen_bool(noise.missing_attr) || val == crate::entity::MISSING {
            attrs.push((key.clone(), crate::entity::MISSING.to_string()));
            continue;
        }
        // Numeric fields get jitter instead of token noise.
        if let Ok(num) = val.trim_end_matches('%').parse::<f64>() {
            let jittered = jitter_number(num, noise.numeric_jitter, rng);
            let rendered = if val.ends_with('%') {
                format!("{jittered:.1}%")
            } else {
                format!("{jittered:.2}")
            };
            attrs.push((key.clone(), rendered));
            continue;
        }
        let mut tokens: Vec<String> = val.split(' ').map(str::to_string).collect();
        apply_token_noise(&mut tokens, noise, rng);
        attrs.push((key.clone(), tokens.join(" ")));
    }
    // Attribute injection: move one value into another attribute (mild
    // version of the dirty corruption).
    if attrs.len() >= 2 && rng.gen_bool(noise.attr_inject) {
        let src = rng.gen_range(0..attrs.len());
        let mut dst = rng.gen_range(0..attrs.len() - 1);
        if dst >= src {
            dst += 1;
        }
        let moved = std::mem::replace(&mut attrs[src].1, crate::entity::MISSING.to_string());
        if moved != crate::entity::MISSING {
            if attrs[dst].1 == crate::entity::MISSING {
                attrs[dst].1 = moved;
            } else {
                attrs[dst].1.push(' ');
                attrs[dst].1.push_str(&moved);
            }
        }
    }
    Entity::new(id, attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::SOFTWARE;

    const SCHEMA: Schema = Schema {
        name: "test",
        attrs: &[
            ("title", AttrKind::TitleFull),
            ("manufacturer", AttrKind::Brand),
            ("price", AttrKind::Price),
        ],
    };

    #[test]
    fn world_generation_is_deterministic() {
        let w1 = World::generate(&SOFTWARE, 20, 4, 42);
        let w2 = World::generate(&SOFTWARE, 20, 4, 42);
        assert_eq!(w1.products.len(), 20);
        for (a, b) in w1.products.iter().zip(&w2.products) {
            assert_eq!(a.brand, b.brand);
            assert_eq!(a.model, b.model);
        }
    }

    #[test]
    fn families_share_brand_and_name() {
        let w = World::generate(&SOFTWARE, 12, 4, 1);
        let p = &w.products[0];
        let siblings = w.family_siblings(p);
        assert_eq!(siblings.len(), 3);
        for s in siblings {
            assert_eq!(s.brand, p.brand);
            assert_eq!(s.name_words, p.name_words);
            assert_ne!(s.model, p.model, "siblings must differ in model code");
        }
    }

    #[test]
    fn render_produces_schema_attrs() {
        let w = World::generate(&SOFTWARE, 4, 2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let e =
            render_entity(&w.products[0], w.lexicon, &SCHEMA, &NoiseConfig::clean(), "a", &mut rng);
        assert_eq!(e.arity(), 3);
        assert!(e.attr("title").expect("title").contains(&w.products[0].brand));
        assert!(e.attr("price").expect("price").parse::<f64>().is_ok());
    }

    #[test]
    fn clean_renderings_of_same_product_share_model_code() {
        let w = World::generate(&SOFTWARE, 4, 2, 5);
        let p = &w.products[0];
        let mut rng = StdRng::seed_from_u64(7);
        let noise = NoiseConfig::clean();
        let a = render_entity(p, w.lexicon, &SCHEMA, &noise, "a", &mut rng);
        let b = render_entity(p, w.lexicon, &SCHEMA, &noise, "b", &mut rng);
        assert!(a.attr("title").expect("t").contains(&p.model));
        assert!(b.attr("title").expect("t").contains(&p.model));
    }

    #[test]
    fn heavy_noise_changes_text() {
        let w = World::generate(&SOFTWARE, 4, 2, 6);
        let p = &w.products[0];
        let mut rng = StdRng::seed_from_u64(8);
        let clean = render_entity(p, w.lexicon, &SCHEMA, &NoiseConfig::clean(), "a", &mut rng);
        let noisy = render_entity(p, w.lexicon, &SCHEMA, &NoiseConfig::heavy(), "b", &mut rng);
        assert_ne!(clean.attr("title"), noisy.attr("title"));
    }

    #[test]
    fn missing_attr_probability_one_yields_all_nan() {
        let w = World::generate(&SOFTWARE, 2, 1, 9);
        let mut noise = NoiseConfig::clean();
        noise.missing_attr = 1.0;
        let mut rng = StdRng::seed_from_u64(1);
        let e = render_entity(&w.products[0], w.lexicon, &SCHEMA, &noise, "a", &mut rng);
        assert!(e.attrs.iter().all(|(_, v)| v == crate::entity::MISSING));
    }

    #[test]
    fn render_never_produces_empty_values() {
        let w = World::generate(&SOFTWARE, 10, 2, 10);
        let mut rng = StdRng::seed_from_u64(11);
        for p in &w.products {
            let e = render_entity(p, w.lexicon, &SCHEMA, &NoiseConfig::heavy(), "a", &mut rng);
            for (_, v) in &e.attrs {
                assert!(!v.is_empty());
            }
        }
    }
}
