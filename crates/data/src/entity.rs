//! The entity/record model.
//!
//! Following §2 of the paper, an entity is a list of `<key, val>` attribute
//! pairs; missing values are filled with the literal word `"NAN"`.

use serde::{Deserialize, Serialize};

/// The placeholder value for missing attributes (§2.1 of the paper).
pub const MISSING: &str = "NAN";

/// One data entity: an identifier plus ordered `<key, val>` attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Stable identifier within its source collection.
    pub id: String,
    /// Ordered attribute pairs; keys follow the dataset schema.
    pub attrs: Vec<(String, String)>,
}

impl Entity {
    /// Creates an entity, replacing empty values with [`MISSING`].
    pub fn new(id: impl Into<String>, attrs: Vec<(String, String)>) -> Self {
        let attrs = attrs
            .into_iter()
            .map(|(k, v)| {
                let v = if v.trim().is_empty() { MISSING.to_string() } else { v };
                (k, v)
            })
            .collect();
        Self { id: id.into(), attrs }
    }

    /// Looks up an attribute value by key (first occurrence).
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Mutable access to an attribute value by key.
    pub fn attr_mut(&mut self, key: &str) -> Option<&mut String> {
        self.attrs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute keys in schema order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|(k, _)| k.as_str())
    }

    /// All tokens across all attribute values (tokenized lazily).
    pub fn all_tokens(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (_, v) in &self.attrs {
            out.extend(hiergat_text::tokenize(v));
        }
        out
    }

    /// Serializes the entity Ditto-style:
    /// `[COL] key [VAL] value [COL] key [VAL] value ...`
    pub fn serialize_ditto(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.attrs {
            s.push_str("[COL] ");
            s.push_str(k);
            s.push_str(" [VAL] ");
            s.push_str(v);
            s.push(' ');
        }
        s.trim_end().to_string()
    }

    /// Concatenation of all attribute values (used by single-text models
    /// and TF-IDF blocking).
    pub fn full_text(&self) -> String {
        self.attrs.iter().map(|(_, v)| v.as_str()).collect::<Vec<_>>().join(" ")
    }

    /// `true` if the attribute is missing or the NAN placeholder.
    pub fn is_missing(&self, key: &str) -> bool {
        match self.attr(key) {
            None => true,
            Some(v) => v == MISSING,
        }
    }
}

/// A labeled pair of entities for pairwise ER.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityPair {
    /// Entity from the first source.
    pub left: Entity,
    /// Entity from the second source.
    pub right: Entity,
    /// `true` if both refer to the same real-world entity.
    pub label: bool,
}

impl EntityPair {
    /// Creates a labeled pair.
    pub fn new(left: Entity, right: Entity, label: bool) -> Self {
        Self { left, right, label }
    }

    /// The shared attribute keys of the two entities, in left-schema order.
    pub fn common_keys(&self) -> Vec<String> {
        self.left.keys().filter(|k| self.right.attr(k).is_some()).map(str::to_string).collect()
    }
}

/// A collective-ER example: one query entity and its candidate set (§2.1,
/// Figure 2 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectiveExample {
    /// The query entity from source A.
    pub query: Entity,
    /// Top-N blocked candidates from source B.
    pub candidates: Vec<Entity>,
    /// `labels[i]` is `true` iff `candidates[i]` matches the query.
    pub labels: Vec<bool>,
}

impl CollectiveExample {
    /// Creates an example, checking the label count.
    pub fn new(query: Entity, candidates: Vec<Entity>, labels: Vec<bool>) -> Self {
        assert_eq!(candidates.len(), labels.len(), "label count mismatch");
        Self { query, candidates, labels }
    }

    /// Number of candidates.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of matching candidates.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Flattens into labeled pairs (for evaluating pairwise models on
    /// collective data).
    pub fn to_pairs(&self) -> Vec<EntityPair> {
        self.candidates
            .iter()
            .zip(&self.labels)
            .map(|(c, &l)| EntityPair::new(self.query.clone(), c.clone(), l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Entity {
        Entity::new(
            "a1",
            vec![
                ("title".into(), "Adobe Photoshop 5.0".into()),
                ("price".into(), "49.99".into()),
                ("desc".into(), "".into()),
            ],
        )
    }

    #[test]
    fn empty_values_become_nan() {
        let e = sample();
        assert_eq!(e.attr("desc"), Some(MISSING));
        assert!(e.is_missing("desc"));
        assert!(!e.is_missing("title"));
        assert!(e.is_missing("nonexistent"));
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("price"), Some("49.99"));
        assert_eq!(e.attr("none"), None);
        assert_eq!(e.arity(), 3);
    }

    #[test]
    fn tokens_span_attributes() {
        let toks = sample().all_tokens();
        assert!(toks.contains(&"adobe".to_string()));
        assert!(toks.contains(&"49.99".to_string()));
        assert!(toks.contains(&"nan".to_string()));
    }

    #[test]
    fn ditto_serialization_format() {
        let e = Entity::new("x", vec![("t".into(), "hello".into())]);
        assert_eq!(e.serialize_ditto(), "[COL] t [VAL] hello");
    }

    #[test]
    fn pair_common_keys() {
        let l = Entity::new("l", vec![("a".into(), "1".into()), ("b".into(), "2".into())]);
        let r = Entity::new("r", vec![("b".into(), "3".into()), ("c".into(), "4".into())]);
        let p = EntityPair::new(l, r, false);
        assert_eq!(p.common_keys(), vec!["b".to_string()]);
    }

    #[test]
    fn collective_example_counts() {
        let q = sample();
        let c1 = sample();
        let c2 = Entity::new("b2", vec![("title".into(), "Other".into())]);
        let ex = CollectiveExample::new(q, vec![c1, c2], vec![true, false]);
        assert_eq!(ex.n_candidates(), 2);
        assert_eq!(ex.n_positive(), 1);
        let pairs = ex.to_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].label && !pairs[1].label);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn collective_label_mismatch_panics() {
        CollectiveExample::new(sample(), vec![], vec![true]);
    }
}
