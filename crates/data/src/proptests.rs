//! Property-based tests over the synthetic generators and split protocols.

use crate::corrupt::{corrupt_entity, DirtyConfig};
use crate::dataset::PairDataset;
use crate::entity::{Entity, EntityPair, MISSING};
use crate::io::{entities_from_csv, pairs_from_csv, parse_csv};
use crate::pairgen::{generate_pairs, PairGenConfig};
use crate::synth::{NoiseConfig, World};
use crate::{lexicon, MagellanDataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_noise() -> impl Strategy<Value = NoiseConfig> {
    (0.0f64..0.4, 0.0f64..0.3, 0.0f64..0.15, 0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.4).prop_map(
        |(drop, swap, typo, missing, filler, inject)| NoiseConfig {
            token_drop: drop,
            token_swap: swap,
            typo,
            missing_attr: missing,
            numeric_jitter: 0.1,
            extra_filler: filler,
            model_drop: 0.05,
            attr_inject: inject,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pair generation honours the requested counts and positive rate under
    /// any noise configuration.
    #[test]
    fn pairgen_counts_hold(seed in 0u64..500, noise in arb_noise(), pos_rate in 0.05f64..0.5) {
        let world = World::generate(&lexicon::ELECTRONICS, 40, 3, seed);
        let cfg = PairGenConfig {
            n_pairs: 60,
            pos_rate,
            hard_negative_frac: 0.5,
            noise_a: noise,
            noise_b: noise,
            seed,
        };
        let pairs = generate_pairs(&world, MagellanDataset::WalmartAmazon.schema(), &cfg);
        prop_assert_eq!(pairs.len(), 60);
        let pos = pairs.iter().filter(|p| p.label).count();
        prop_assert_eq!(pos, (60.0 * pos_rate).round() as usize);
        // Every entity has the schema's arity and non-empty values.
        for p in &pairs {
            prop_assert_eq!(p.left.arity(), 5);
            prop_assert_eq!(p.right.arity(), 5);
            prop_assert!(p.left.attrs.iter().all(|(_, v)| !v.is_empty()));
        }
    }

    /// Stratified 3:1:1 splitting conserves pairs and labels exactly.
    #[test]
    fn split_conserves_pairs(seed in 0u64..500, n in 10usize..120, pos_every in 2usize..6) {
        let e = Entity::new("e", vec![("t".into(), "x".into())]);
        let pairs: Vec<EntityPair> = (0..n)
            .map(|i| EntityPair::new(e.clone(), e.clone(), i % pos_every == 0))
            .collect();
        let total_pos = pairs.iter().filter(|p| p.label).count();
        let ds = PairDataset::split_3_1_1("p", pairs, seed);
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.n_positive(), total_pos);
        // Ratios are approximately 3:1:1.
        prop_assert!(ds.train.len() >= ds.valid.len());
        prop_assert!(ds.train.len() >= ds.test.len());
    }

    /// Dirty corruption never loses tokens — it only moves them.
    #[test]
    fn corruption_conserves_tokens(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut e = Entity::new(
            "e",
            vec![
                ("a".into(), "alpha beta".into()),
                ("b".into(), "gamma".into()),
                ("c".into(), "delta epsilon".into()),
            ],
        );
        let mut before = e.all_tokens();
        before.retain(|t| t != "nan");
        before.sort();
        corrupt_entity(&mut e, &DirtyConfig { entity_rate: 1.0, max_injections: 2 }, &mut rng);
        let mut after = e.all_tokens();
        after.retain(|t| t != "nan");
        after.sort();
        prop_assert_eq!(before, after, "corruption moved tokens but must not lose them");
    }

    /// CSV writing then parsing is the identity on arbitrary field content.
    #[test]
    fn csv_roundtrip_arbitrary_fields(
        fields in proptest::collection::vec("[ -~]{0,12}", 1..5),
    ) {
        // Build a single-pair CSV via the public writers in memory: emulate
        // by constructing entities whose values are the arbitrary fields.
        let attrs: Vec<(String, String)> = fields
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("k{i}"), v.clone()))
            .collect();
        let left = Entity::new("l", attrs.clone());
        let right = Entity::new("r", attrs);
        let pair = EntityPair::new(left, right, true);
        // Serialize through the same escaping as write_pairs.
        let dir = std::env::temp_dir().join("hiergat-prop-csv");
        std::fs::create_dir_all(&dir).expect("tmp");
        let path = dir.join("prop.csv");
        crate::io::write_pairs(&path, std::slice::from_ref(&pair)).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let loaded = pairs_from_csv(&text).expect("parse");
        prop_assert_eq!(loaded.len(), 1);
        prop_assert_eq!(&loaded[0].left.attrs, &pair.left.attrs);
    }

    /// The CSV parser never panics on arbitrary printable input.
    #[test]
    fn csv_parser_total(s in "[ -~\n]{0,200}") {
        let _ = parse_csv(&s);
        let _ = entities_from_csv(&s);
        let _ = pairs_from_csv(&s);
    }

    /// Missing values always surface as the NAN sentinel, never empty.
    #[test]
    fn missing_values_become_nan(seed in 0u64..300) {
        let mut noise = NoiseConfig::clean();
        noise.missing_attr = 0.9;
        let world = World::generate(&lexicon::SOFTWARE, 6, 2, seed);
        let cfg = PairGenConfig {
            n_pairs: 10,
            pos_rate: 0.5,
            hard_negative_frac: 0.0,
            noise_a: noise,
            noise_b: noise,
            seed,
        };
        let pairs = generate_pairs(&world, MagellanDataset::AmazonGoogle.schema(), &cfg);
        let mut saw_missing = false;
        for p in &pairs {
            for (_, v) in p.left.attrs.iter().chain(&p.right.attrs) {
                prop_assert!(!v.is_empty());
                if v == MISSING {
                    saw_missing = true;
                }
            }
        }
        prop_assert!(saw_missing, "0.9 missing rate must produce NANs");
    }
}
