//! Dirty-dataset corruption.
//!
//! The paper's dirty variants (§6.1) corrupt entity structure by randomly
//! "injecting" attribute values into other attributes — e.g. the title ends
//! up containing the price — while the underlying match labels stay the
//! same. This module reproduces that corruption.

use crate::dataset::PairDataset;
use crate::entity::{Entity, EntityPair, MISSING};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probability settings for the dirty corruption.
#[derive(Debug, Clone, Copy)]
pub struct DirtyConfig {
    /// Probability each entity gets at least one injection.
    pub entity_rate: f64,
    /// Maximum number of attribute injections per entity.
    pub max_injections: usize,
}

impl Default for DirtyConfig {
    fn default() -> Self {
        Self { entity_rate: 0.5, max_injections: 2 }
    }
}

/// Moves the value of one random attribute into another, leaving `NAN`
/// behind (DeepMatcher's dirty-set construction).
fn inject_once(e: &mut Entity, rng: &mut StdRng) {
    if e.arity() < 2 {
        return;
    }
    let src = rng.gen_range(0..e.arity());
    let mut dst = rng.gen_range(0..e.arity() - 1);
    if dst >= src {
        dst += 1;
    }
    let val = std::mem::replace(&mut e.attrs[src].1, MISSING.to_string());
    if val == MISSING {
        return;
    }
    let target = &mut e.attrs[dst].1;
    if target == MISSING {
        *target = val;
    } else {
        target.push(' ');
        target.push_str(&val);
    }
}

/// Corrupts a single entity in place.
pub fn corrupt_entity(e: &mut Entity, cfg: &DirtyConfig, rng: &mut StdRng) {
    if rng.gen_bool(cfg.entity_rate) {
        let n = rng.gen_range(1..=cfg.max_injections);
        for _ in 0..n {
            inject_once(e, rng);
        }
    }
}

/// Produces the dirty version of a pairwise dataset (labels unchanged).
pub fn make_dirty(ds: &PairDataset, cfg: &DirtyConfig, seed: u64) -> PairDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let corrupt_split = |pairs: &[EntityPair], rng: &mut StdRng| {
        pairs
            .iter()
            .map(|p| {
                let mut left = p.left.clone();
                let mut right = p.right.clone();
                corrupt_entity(&mut left, cfg, rng);
                corrupt_entity(&mut right, cfg, rng);
                EntityPair::new(left, right, p.label)
            })
            .collect::<Vec<_>>()
    };
    PairDataset {
        name: format!("Dirty-{}", ds.name),
        train: corrupt_split(&ds.train, &mut rng),
        valid: corrupt_split(&ds.valid, &mut rng),
        test: corrupt_split(&ds.test, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity() -> Entity {
        Entity::new(
            "e",
            vec![
                ("title".into(), "adobe photoshop".into()),
                ("price".into(), "49.99".into()),
                ("brand".into(), "adobe".into()),
            ],
        )
    }

    #[test]
    fn injection_moves_value_and_leaves_nan() {
        let mut e = entity();
        let mut rng = StdRng::seed_from_u64(1);
        inject_once(&mut e, &mut rng);
        let nan_count = e.attrs.iter().filter(|(_, v)| v == MISSING).count();
        assert_eq!(nan_count, 1, "exactly one attribute must become NAN");
        // All original token content survives somewhere.
        let all: String = e.attrs.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>().join(" ");
        assert!(all.contains("photoshop"));
        assert!(all.contains("49.99"));
    }

    #[test]
    fn single_attr_entity_is_untouched() {
        let mut e = Entity::new("e", vec![("t".into(), "x".into())]);
        let mut rng = StdRng::seed_from_u64(2);
        inject_once(&mut e, &mut rng);
        assert_eq!(e.attr("t"), Some("x"));
    }

    #[test]
    fn make_dirty_preserves_labels_and_counts() {
        let pairs: Vec<EntityPair> =
            (0..50).map(|i| EntityPair::new(entity(), entity(), i % 3 == 0)).collect();
        let ds = PairDataset::split_3_1_1("X", pairs, 1);
        let dirty = make_dirty(&ds, &DirtyConfig::default(), 9);
        assert_eq!(dirty.name, "Dirty-X");
        assert_eq!(dirty.len(), ds.len());
        assert_eq!(dirty.n_positive(), ds.n_positive());
    }

    #[test]
    fn dirty_actually_corrupts_some_entities() {
        let pairs: Vec<EntityPair> =
            (0..40).map(|_| EntityPair::new(entity(), entity(), false)).collect();
        let ds = PairDataset::split_3_1_1("X", pairs, 2);
        let dirty = make_dirty(&ds, &DirtyConfig { entity_rate: 1.0, max_injections: 1 }, 3);
        let changed =
            dirty.train.iter().zip(&ds.train).filter(|(d, o)| d.left.attrs != o.left.attrs).count();
        assert!(changed > ds.train.len() / 2, "corruption too rare: {changed}");
    }

    #[test]
    fn dirty_is_deterministic() {
        let pairs: Vec<EntityPair> =
            (0..20).map(|_| EntityPair::new(entity(), entity(), true)).collect();
        let ds = PairDataset::split_3_1_1("X", pairs, 4);
        let a = make_dirty(&ds, &DirtyConfig::default(), 5);
        let b = make_dirty(&ds, &DirtyConfig::default(), 5);
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.left.attrs, y.left.attrs);
        }
    }
}
