//! CSV import/export for entity tables and labeled pair sets.
//!
//! The real Magellan/DeepMatcher releases ship entity tables (`tableA.csv`,
//! `tableB.csv`) and labeled pair files (`train.csv` with `ltable_`/`rtable_`
//! prefixed columns). This module reads and writes both shapes with a small
//! RFC-4180-subset parser (quoted fields, embedded commas/quotes/newlines),
//! so a downstream user can run the models on the genuine benchmark files.

use crate::entity::{Entity, EntityPair};
use std::fmt;
use std::fs;
use std::path::Path;

/// Error from CSV reading.
#[derive(Debug)]
pub enum CsvError {
    /// I/O failure.
    Io(std::io::Error),
    /// Structural problem, with a line number (1-based).
    Malformed { line: usize, reason: String },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "csv I/O error: {e}"),
            Self::Malformed { line, reason } => write!(f, "csv line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parses CSV text into rows of fields (RFC-4180 subset).
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut field = String::new();
    let mut row: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(c) = chars.next() {
        match (in_quotes, c) {
            (false, '"') if field.is_empty() => in_quotes = true,
            (false, '"') => {
                return Err(CsvError::Malformed {
                    line,
                    reason: "quote inside unquoted field".into(),
                })
            }
            (true, '"') => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (false, ',') => row.push(std::mem::take(&mut field)),
            (false, '\r') => {} // tolerate CRLF
            (false, '\n') => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                line += 1;
            }
            (true, '\n') => {
                field.push('\n');
                line += 1;
            }
            (_, c) => field.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError::Malformed { line, reason: "unterminated quoted field".into() });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Escapes one field for CSV output.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Reads an entity table: first column is the id, remaining header names
/// become attribute keys.
pub fn read_entity_table(path: impl AsRef<Path>) -> Result<Vec<Entity>, CsvError> {
    let text = fs::read_to_string(path)?;
    entities_from_csv(&text)
}

/// Parses an entity table from CSV text (see [`read_entity_table`]).
pub fn entities_from_csv(text: &str) -> Result<Vec<Entity>, CsvError> {
    let rows = parse_csv(text)?;
    let Some((header, data)) = rows.split_first() else {
        return Ok(Vec::new());
    };
    if header.is_empty() {
        return Err(CsvError::Malformed { line: 1, reason: "empty header".into() });
    }
    let keys = &header[1..];
    let mut out = Vec::with_capacity(data.len());
    for (i, row) in data.iter().enumerate() {
        if row.len() != header.len() {
            return Err(CsvError::Malformed {
                line: i + 2,
                reason: format!("expected {} fields, got {}", header.len(), row.len()),
            });
        }
        let attrs = keys.iter().zip(&row[1..]).map(|(k, v)| (k.clone(), v.clone())).collect();
        out.push(Entity::new(row[0].clone(), attrs));
    }
    Ok(out)
}

/// Writes an entity table (inverse of [`read_entity_table`]).
///
/// # Panics
/// Panics if entities have inconsistent schemas.
pub fn write_entity_table(path: impl AsRef<Path>, entities: &[Entity]) -> Result<(), CsvError> {
    let mut out = String::new();
    if let Some(first) = entities.first() {
        out.push_str("id");
        for key in first.keys() {
            out.push(',');
            out.push_str(&escape(key));
        }
        out.push('\n');
        for e in entities {
            assert_eq!(
                e.keys().collect::<Vec<_>>(),
                first.keys().collect::<Vec<_>>(),
                "write_entity_table: schema mismatch for {}",
                e.id
            );
            out.push_str(&escape(&e.id));
            for (_, v) in &e.attrs {
                out.push(',');
                out.push_str(&escape(v));
            }
            out.push('\n');
        }
    }
    fs::write(path, out)?;
    Ok(())
}

/// Reads a DeepMatcher-style labeled pair file:
/// `label,ltable_<k1>,...,rtable_<k1>,...` (ids optional).
pub fn read_pairs(path: impl AsRef<Path>) -> Result<Vec<EntityPair>, CsvError> {
    let text = fs::read_to_string(path)?;
    pairs_from_csv(&text)
}

/// Parses a labeled pair file from CSV text (see [`read_pairs`]).
pub fn pairs_from_csv(text: &str) -> Result<Vec<EntityPair>, CsvError> {
    let rows = parse_csv(text)?;
    let Some((header, data)) = rows.split_first() else {
        return Ok(Vec::new());
    };
    let label_col = header
        .iter()
        .position(|h| h == "label")
        .ok_or(CsvError::Malformed { line: 1, reason: "missing 'label' column".into() })?;
    let left_cols: Vec<(usize, String)> = header
        .iter()
        .enumerate()
        .filter_map(|(i, h)| h.strip_prefix("ltable_").map(|k| (i, k.to_string())))
        .collect();
    let right_cols: Vec<(usize, String)> = header
        .iter()
        .enumerate()
        .filter_map(|(i, h)| h.strip_prefix("rtable_").map(|k| (i, k.to_string())))
        .collect();
    if left_cols.is_empty() || right_cols.is_empty() {
        return Err(CsvError::Malformed {
            line: 1,
            reason: "missing ltable_/rtable_ columns".into(),
        });
    }
    let mut out = Vec::with_capacity(data.len());
    for (i, row) in data.iter().enumerate() {
        if row.len() != header.len() {
            return Err(CsvError::Malformed {
                line: i + 2,
                reason: format!("expected {} fields, got {}", header.len(), row.len()),
            });
        }
        let label = matches!(row[label_col].trim(), "1" | "true" | "True");
        let build = |cols: &[(usize, String)], id: String| {
            Entity::new(id, cols.iter().map(|(ci, k)| (k.clone(), row[*ci].clone())).collect())
        };
        out.push(EntityPair::new(
            build(&left_cols, format!("l{i}")),
            build(&right_cols, format!("r{i}")),
            label,
        ));
    }
    Ok(out)
}

/// Writes labeled pairs in the DeepMatcher CSV shape (inverse of
/// [`read_pairs`]).
pub fn write_pairs(path: impl AsRef<Path>, pairs: &[EntityPair]) -> Result<(), CsvError> {
    let mut out = String::new();
    if let Some(first) = pairs.first() {
        out.push_str("label");
        for k in first.left.keys() {
            out.push_str(&format!(",ltable_{}", escape(k)));
        }
        for k in first.right.keys() {
            out.push_str(&format!(",rtable_{}", escape(k)));
        }
        out.push('\n');
        for p in pairs {
            out.push_str(if p.label { "1" } else { "0" });
            for (_, v) in p.left.attrs.iter().chain(&p.right.attrs) {
                out.push(',');
                out.push_str(&escape(v));
            }
            out.push('\n');
        }
    }
    fs::write(path, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_handles_quotes_and_embedded_commas() {
        let rows = parse_csv("a,\"b,c\",\"d\"\"e\"\nf,g,h\n").expect("parse");
        assert_eq!(rows, vec![vec!["a", "b,c", "d\"e"], vec!["f", "g", "h"]]);
    }

    #[test]
    fn parse_handles_embedded_newline() {
        let rows = parse_csv("x,\"line1\nline2\"\n").expect("parse");
        assert_eq!(rows[0][1], "line1\nline2");
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(matches!(parse_csv("a,\"b\n"), Err(CsvError::Malformed { .. })));
    }

    #[test]
    fn parse_tolerates_missing_trailing_newline_and_crlf() {
        let rows = parse_csv("a,b\r\nc,d").expect("parse");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["c", "d"]);
    }

    #[test]
    fn entity_table_roundtrip() {
        let dir = std::env::temp_dir().join("hiergat-csv-test");
        fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("tableA.csv");
        let entities = vec![
            Entity::new(
                "1",
                vec![("title".into(), "canon, eos".into()), ("price".into(), "9.99".into())],
            ),
            Entity::new(
                "2",
                vec![("title".into(), "say \"hi\"".into()), ("price".into(), "".into())],
            ),
        ];
        write_entity_table(&path, &entities).expect("write");
        let loaded = read_entity_table(&path).expect("read");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].attr("title"), Some("canon, eos"));
        assert_eq!(loaded[1].attr("title"), Some("say \"hi\""));
        // Empty value became the NAN placeholder on load.
        assert_eq!(loaded[1].attr("price"), Some(crate::entity::MISSING));
    }

    #[test]
    fn pair_file_roundtrip() {
        let dir = std::env::temp_dir().join("hiergat-csv-test");
        fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("train.csv");
        let pairs = vec![EntityPair::new(
            Entity::new("l0", vec![("name".into(), "a b".into())]),
            Entity::new("r0", vec![("name".into(), "a c".into())]),
            true,
        )];
        write_pairs(&path, &pairs).expect("write");
        let loaded = read_pairs(&path).expect("read");
        assert_eq!(loaded.len(), 1);
        assert!(loaded[0].label);
        assert_eq!(loaded[0].left.attr("name"), Some("a b"));
        assert_eq!(loaded[0].right.attr("name"), Some("a c"));
    }

    #[test]
    fn pairs_require_label_column() {
        assert!(matches!(
            pairs_from_csv("ltable_x,rtable_x\na,b\n"),
            Err(CsvError::Malformed { .. })
        ));
    }

    #[test]
    fn mismatched_row_width_is_reported_with_line() {
        let err = entities_from_csv("id,a\n1,x\n2\n").expect_err("ragged row must fail");
        match err {
            CsvError::Malformed { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn generated_dataset_roundtrips_through_csv() {
        let ds = crate::MagellanDataset::Beer.load(0.2);
        let dir = std::env::temp_dir().join("hiergat-csv-test");
        fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("beer_train.csv");
        write_pairs(&path, &ds.train).expect("write");
        let loaded = read_pairs(&path).expect("read");
        assert_eq!(loaded.len(), ds.train.len());
        for (a, b) in loaded.iter().zip(&ds.train) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.left.attrs, b.left.attrs);
        }
    }
}
