//! Word pools and deterministic pseudo-word generation for the synthetic
//! benchmark corpora.
//!
//! The generators must reproduce the phenomena the paper's analysis hinges
//! on: rare brand/model tokens that are highly discriminative (§4.1),
//! long descriptions full of shared filler words, and polysemous words whose
//! meaning depends on the category ("Giant" the grocery store vs. the bike
//! brand, §1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// High-frequency filler words shared across all domains.
pub const FILLERS: &[&str] = &[
    "the", "and", "with", "for", "of", "new", "best", "great", "quality", "premium", "original",
    "edition", "series", "pro", "plus", "ultra", "classic", "standard", "deluxe", "official",
    "genuine", "top", "rated", "popular", "latest", "improved",
];

/// Polysemous words that occur in several categories with different senses.
pub const POLYSEMOUS: &[&str] = &["giant", "spark", "delta", "apple", "eclipse", "fusion", "titan"];

/// A domain lexicon: nouns/adjectives characteristic of one product domain.
#[derive(Debug, Clone)]
pub struct DomainLexicon {
    /// Domain name ("software", "music", ...).
    pub name: &'static str,
    /// Category labels within the domain.
    pub categories: &'static [&'static str],
    /// Characteristic nouns.
    pub nouns: &'static [&'static str],
    /// Characteristic modifiers.
    pub modifiers: &'static [&'static str],
}

/// Software (Amazon-Google).
pub const SOFTWARE: DomainLexicon = DomainLexicon {
    name: "software",
    categories: &["office", "graphics", "security", "data", "os"],
    nouns: &[
        "software",
        "suite",
        "server",
        "framework",
        "cluster",
        "database",
        "editor",
        "studio",
        "manager",
        "toolkit",
        "platform",
        "engine",
        "compiler",
        "analyzer",
        "backup",
        "antivirus",
        "firewall",
        "spreadsheet",
        "processor",
        "designer",
    ],
    modifiers: &[
        "professional",
        "enterprise",
        "home",
        "academic",
        "upgrade",
        "retail",
        "license",
        "user",
        "big",
        "data",
        "cloud",
        "desktop",
        "windows",
        "mac",
        "linux",
        "bit",
        "32",
        "64",
    ],
};

/// Music (iTunes-Amazon).
pub const MUSIC: DomainLexicon = DomainLexicon {
    name: "music",
    categories: &["rock", "pop", "jazz", "country", "electronic"],
    nouns: &[
        "love", "night", "heart", "dream", "fire", "road", "river", "dance", "song", "blues",
        "light", "rain", "summer", "midnight", "soul", "angel", "moon", "story", "home", "train",
    ],
    modifiers: &[
        "remix",
        "live",
        "acoustic",
        "feat",
        "deluxe",
        "remastered",
        "single",
        "album",
        "version",
        "radio",
        "explicit",
        "bonus",
        "track",
        "original",
        "mix",
    ],
};

/// Restaurant (Fodors-Zagats).
pub const RESTAURANT: DomainLexicon = DomainLexicon {
    name: "restaurant",
    categories: &["italian", "french", "asian", "american", "mexican"],
    nouns: &[
        "grill",
        "cafe",
        "bistro",
        "kitchen",
        "house",
        "garden",
        "palace",
        "corner",
        "room",
        "tavern",
        "diner",
        "bar",
        "steakhouse",
        "trattoria",
        "brasserie",
        "cantina",
    ],
    modifiers: &[
        "golden", "royal", "little", "blue", "old", "grand", "silver", "red", "green", "east",
        "west", "north", "south", "downtown",
    ],
};

/// Citation (DBLP-ACM, DBLP-Scholar).
pub const CITATION: DomainLexicon = DomainLexicon {
    name: "citation",
    categories: &["database", "systems", "learning", "theory", "web"],
    nouns: &[
        "query",
        "optimization",
        "index",
        "transaction",
        "stream",
        "graph",
        "mining",
        "learning",
        "model",
        "network",
        "algorithm",
        "system",
        "storage",
        "cache",
        "join",
        "schema",
        "integration",
        "resolution",
        "entity",
        "knowledge",
    ],
    modifiers: &[
        "efficient",
        "scalable",
        "distributed",
        "parallel",
        "adaptive",
        "incremental",
        "approximate",
        "online",
        "robust",
        "deep",
        "probabilistic",
        "semantic",
        "hierarchical",
        "attention",
    ],
};

/// Electronics (Walmart-Amazon).
pub const ELECTRONICS: DomainLexicon = DomainLexicon {
    name: "electronics",
    categories: &["audio", "video", "computing", "mobile", "gaming"],
    nouns: &[
        "headphones",
        "speaker",
        "monitor",
        "keyboard",
        "mouse",
        "router",
        "charger",
        "cable",
        "adapter",
        "camera",
        "tablet",
        "laptop",
        "drive",
        "memory",
        "battery",
        "screen",
        "printer",
        "projector",
        "console",
        "controller",
    ],
    modifiers: &[
        "wireless",
        "bluetooth",
        "portable",
        "rechargeable",
        "hd",
        "4k",
        "usb",
        "hdmi",
        "gaming",
        "ergonomic",
        "compact",
        "slim",
        "inch",
        "gb",
        "tb",
        "black",
        "white",
        "silver",
    ],
};

/// Generic product (Abt-Buy).
pub const PRODUCT: DomainLexicon = DomainLexicon {
    name: "product",
    categories: &["home", "kitchen", "outdoor", "fitness", "office"],
    nouns: &[
        "blender",
        "toaster",
        "vacuum",
        "heater",
        "fan",
        "lamp",
        "chair",
        "desk",
        "grill",
        "cooker",
        "mixer",
        "kettle",
        "iron",
        "scale",
        "purifier",
        "humidifier",
        "dehumidifier",
        "treadmill",
        "bike",
        "tent",
    ],
    modifiers: &[
        "stainless",
        "steel",
        "electric",
        "digital",
        "automatic",
        "adjustable",
        "folding",
        "heavy",
        "duty",
        "cordless",
        "compact",
        "quiet",
        "speed",
        "watt",
        "quart",
        "piece",
    ],
};

/// Company descriptions (Company dataset; single long text attribute).
pub const COMPANY: DomainLexicon = DomainLexicon {
    name: "company",
    categories: &["tech", "finance", "retail", "energy", "health"],
    nouns: &[
        "company",
        "corporation",
        "group",
        "holdings",
        "solutions",
        "services",
        "technologies",
        "industries",
        "partners",
        "ventures",
        "systems",
        "labs",
        "global",
        "international",
        "consulting",
        "logistics",
        "capital",
        "media",
        "networks",
        "dynamics",
    ],
    modifiers: &[
        "founded",
        "headquartered",
        "leading",
        "provider",
        "customers",
        "worldwide",
        "products",
        "revenue",
        "employees",
        "markets",
        "innovative",
        "acquired",
        "subsidiary",
        "publicly",
        "traded",
        "privately",
    ],
};

/// Beer (Beer dataset).
pub const BEER: DomainLexicon = DomainLexicon {
    name: "beer",
    categories: &["ipa", "stout", "lager", "ale", "porter"],
    nouns: &[
        "ipa", "stout", "lager", "ale", "porter", "pilsner", "wheat", "saison", "brewing",
        "brewery", "hops", "barrel", "reserve", "harvest", "session",
    ],
    modifiers: &[
        "imperial", "double", "dark", "pale", "amber", "golden", "hazy", "dry", "hopped", "aged",
        "small", "batch", "craft", "seasonal",
    ],
};

/// Camera products (WDC camera, DI2KG camera).
pub const CAMERA: DomainLexicon = DomainLexicon {
    name: "camera",
    categories: &["dslr", "mirrorless", "compact", "action", "film"],
    nouns: &[
        "camera",
        "lens",
        "body",
        "kit",
        "zoom",
        "sensor",
        "flash",
        "tripod",
        "viewfinder",
        "shutter",
        "aperture",
        "megapixel",
        "stabilizer",
        "battery",
        "strap",
    ],
    modifiers: &[
        "digital",
        "full",
        "frame",
        "wide",
        "angle",
        "telephoto",
        "prime",
        "macro",
        "optical",
        "black",
        "silver",
        "mm",
        "f1.8",
        "f2.8",
        "waterproof",
    ],
};

/// Watches (WDC watch).
pub const WATCH: DomainLexicon = DomainLexicon {
    name: "watch",
    categories: &["dive", "dress", "chrono", "smart", "field"],
    nouns: &[
        "watch",
        "chronograph",
        "dial",
        "strap",
        "bracelet",
        "bezel",
        "movement",
        "crystal",
        "case",
        "band",
        "clasp",
        "crown",
        "calendar",
        "alarm",
    ],
    modifiers: &[
        "automatic",
        "quartz",
        "stainless",
        "leather",
        "sapphire",
        "water",
        "resistant",
        "mens",
        "womens",
        "gold",
        "rose",
        "blue",
        "mm",
        "swiss",
        "luminous",
    ],
};

/// Shoes (WDC shoe).
pub const SHOE: DomainLexicon = DomainLexicon {
    name: "shoe",
    categories: &["running", "basketball", "casual", "hiking", "training"],
    nouns: &[
        "shoes", "sneakers", "boots", "trainers", "sandals", "runners", "cleats", "loafers",
        "sole", "cushion", "mesh", "laces", "heel", "toe",
    ],
    modifiers: &[
        "mens",
        "womens",
        "kids",
        "lightweight",
        "breathable",
        "waterproof",
        "leather",
        "knit",
        "black",
        "white",
        "red",
        "blue",
        "size",
        "wide",
        "trail",
    ],
};

/// Computers (WDC computer).
pub const COMPUTER: DomainLexicon = DomainLexicon {
    name: "computer",
    categories: &["laptop", "desktop", "workstation", "server", "mini"],
    nouns: &[
        "laptop",
        "desktop",
        "notebook",
        "workstation",
        "processor",
        "ram",
        "ssd",
        "graphics",
        "display",
        "motherboard",
        "tower",
        "chassis",
        "cooler",
        "keyboard",
    ],
    modifiers: &[
        "intel",
        "core",
        "i5",
        "i7",
        "ryzen",
        "ghz",
        "gb",
        "tb",
        "inch",
        "gaming",
        "business",
        "touchscreen",
        "backlit",
        "slim",
        "refurbished",
    ],
};

/// Monitors (DI2KG monitor).
pub const MONITOR: DomainLexicon = DomainLexicon {
    name: "monitor",
    categories: &["office", "gaming", "professional", "ultrawide", "portable"],
    nouns: &[
        "monitor",
        "display",
        "screen",
        "panel",
        "stand",
        "mount",
        "bezel",
        "backlight",
        "resolution",
        "refresh",
        "contrast",
        "brightness",
        "pixel",
    ],
    modifiers: &[
        "led",
        "lcd",
        "ips",
        "curved",
        "ultrawide",
        "4k",
        "1080p",
        "144hz",
        "60hz",
        "hdmi",
        "displayport",
        "inch",
        "anti",
        "glare",
        "adjustable",
    ],
};

const CONSONANT: &[char] = &['b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z'];
const VOWEL: &[char] = &['a', 'e', 'i', 'o', 'u'];

/// Generates a pronounceable pseudo-word (used for brand names) with
/// `syllables` consonant-vowel syllables.
pub fn pseudo_word(rng: &mut StdRng, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push(*CONSONANT.choose(rng).expect("non-empty"));
        w.push(*VOWEL.choose(rng).expect("non-empty"));
    }
    if rng.gen_bool(0.4) {
        w.push(*CONSONANT.choose(rng).expect("non-empty"));
    }
    w
}

/// Generates a model code like "xk382" — a rare, highly discriminative token.
pub fn model_code(rng: &mut StdRng) -> String {
    let a = *CONSONANT.choose(rng).expect("non-empty");
    let b = *CONSONANT.choose(rng).expect("non-empty");
    let num: u32 = rng.gen_range(100..9999);
    format!("{a}{b}{num}")
}

/// All lexicons, for enumeration in tests.
pub const ALL_LEXICONS: &[&DomainLexicon] = &[
    &SOFTWARE,
    &MUSIC,
    &RESTAURANT,
    &CITATION,
    &ELECTRONICS,
    &PRODUCT,
    &COMPANY,
    &BEER,
    &CAMERA,
    &WATCH,
    &SHOE,
    &COMPUTER,
    &MONITOR,
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lexicons_are_nonempty_and_named() {
        for lex in ALL_LEXICONS {
            assert!(!lex.name.is_empty());
            assert!(lex.nouns.len() >= 10, "{} has too few nouns", lex.name);
            assert!(lex.modifiers.len() >= 10, "{} has too few modifiers", lex.name);
            assert!(lex.categories.len() >= 3);
        }
    }

    #[test]
    fn pseudo_words_are_deterministic() {
        let a = pseudo_word(&mut StdRng::seed_from_u64(5), 3);
        let b = pseudo_word(&mut StdRng::seed_from_u64(5), 3);
        assert_eq!(a, b);
        assert!(a.len() >= 6);
    }

    #[test]
    fn model_codes_look_like_tokens() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = model_code(&mut rng);
        assert!(m.len() >= 5);
        assert!(m.chars().take(2).all(char::is_alphabetic));
        assert!(m.chars().skip(2).all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn pseudo_words_vary_with_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        let words: std::collections::HashSet<String> =
            (0..50).map(|_| pseudo_word(&mut rng, 2)).collect();
        assert!(words.len() > 30, "pseudo-word space too small: {}", words.len());
    }
}
