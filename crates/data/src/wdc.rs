//! Synthetic stand-in for the WDC product-matching corpus (Table 2 of the
//! paper): four domains x four training-set sizes plus the combined "all"
//! dataset, with a fixed test set per domain.
//!
//! As in the paper, only the `title` attribute is aligned, positives come
//! from shared product identity, and negatives are chosen with high text
//! similarity (family siblings), which is what makes WDC hard.

use crate::dataset::PairDataset;
use crate::entity::EntityPair;
use crate::lexicon;
use crate::pairgen::{generate_pairs, PairGenConfig};
use crate::synth::{AttrKind, NoiseConfig, Schema, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// WDC product domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WdcDomain {
    /// Computers.
    Computer,
    /// Cameras.
    Camera,
    /// Watches.
    Watch,
    /// Shoes.
    Shoe,
}

/// WDC training-set size tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WdcSize {
    /// ~1/24 of xlarge.
    Small,
    /// ~1/8 of xlarge.
    Medium,
    /// ~1/2 of xlarge.
    Large,
    /// Full size.
    Xlarge,
}

const WDC_SCHEMA: Schema = Schema { name: "wdc", attrs: &[("title", AttrKind::TitleFull)] };

impl WdcDomain {
    /// All four domains.
    pub fn all() -> [Self; 4] {
        [Self::Computer, Self::Camera, Self::Watch, Self::Shoe]
    }

    /// Domain name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Computer => "computer",
            Self::Camera => "camera",
            Self::Watch => "watch",
            Self::Shoe => "shoe",
        }
    }

    fn lexicon(&self) -> &'static lexicon::DomainLexicon {
        match self {
            Self::Computer => &lexicon::COMPUTER,
            Self::Camera => &lexicon::CAMERA,
            Self::Watch => &lexicon::WATCH,
            Self::Shoe => &lexicon::SHOE,
        }
    }

    fn seed(&self) -> u64 {
        match self {
            Self::Computer => 0x3dc0,
            Self::Camera => 0x3dc1,
            Self::Watch => 0x3dc2,
            Self::Shoe => 0x3dc3,
        }
    }
}

impl WdcSize {
    /// All tiers, smallest first.
    pub fn all() -> [Self; 4] {
        [Self::Small, Self::Medium, Self::Large, Self::Xlarge]
    }

    /// Tier name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Small => "small",
            Self::Medium => "medium",
            Self::Large => "large",
            Self::Xlarge => "xlarge",
        }
    }

    /// Scaled-down training+validation pair counts mirroring the paper's
    /// relative sizes (~1 : 2.9 : 11.8 : 24).
    fn train_pairs(&self) -> usize {
        match self {
            Self::Small => 40,
            Self::Medium => 110,
            Self::Large => 460,
            Self::Xlarge => 940,
        }
    }
}

/// Scaled-down fixed test-set size per domain (paper: 1100 with 300
/// positives).
pub const WDC_TEST_PAIRS: usize = 88;
/// Positive pairs inside [`WDC_TEST_PAIRS`] (paper ratio 300:1100).
pub const WDC_TEST_POS: usize = 24;

/// Loads one WDC domain at one size tier.
///
/// The test set is identical across tiers of the same domain (as in WDC,
/// where every training size is evaluated on the same gold standard); the
/// training+validation pool grows with the tier and is split 4:1 (§6.1).
pub fn load_wdc(domain: WdcDomain, size: WdcSize, scale: f64) -> PairDataset {
    let world = World::generate(domain.lexicon(), 420, 5, domain.seed());
    let noise = NoiseConfig::light();
    // Fixed test set: generated with a tier-independent seed.
    let test_cfg = PairGenConfig {
        n_pairs: ((WDC_TEST_PAIRS as f64 * scale).round() as usize).max(15),
        pos_rate: WDC_TEST_POS as f64 / WDC_TEST_PAIRS as f64,
        hard_negative_frac: 0.55,
        noise_a: noise,
        noise_b: NoiseConfig::medium(),
        seed: domain.seed() ^ 0x7e57,
    };
    let test = generate_pairs(&world, &WDC_SCHEMA, &test_cfg);

    let pool_cfg = PairGenConfig {
        n_pairs: ((size.train_pairs() as f64 * scale).round() as usize).max(10),
        pos_rate: 0.27,
        hard_negative_frac: 0.55,
        noise_a: noise,
        noise_b: NoiseConfig::medium(),
        // Tier-specific stream so bigger tiers are supersets in distribution.
        seed: domain.seed() ^ 0x1234,
    };
    let pool = generate_pairs(&world, &WDC_SCHEMA, &pool_cfg);

    // 4:1 train/validation split over the pool (paper §6.1), stratified by
    // label — generate_pairs emits positives first, so an unshuffled tail
    // split would leave validation positive-free.
    let mut rng = StdRng::seed_from_u64(domain.seed() ^ 0x5117);
    let (mut pos, mut neg): (Vec<EntityPair>, Vec<EntityPair>) =
        pool.into_iter().partition(|p| p.label);
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut train = Vec::new();
    let mut valid = Vec::new();
    for mut stratum in [pos, neg] {
        let n_train = stratum.len() * 4 / 5;
        valid.extend(stratum.split_off(n_train));
        train.extend(stratum);
    }
    train.shuffle(&mut rng);
    valid.shuffle(&mut rng);
    PairDataset { name: format!("wdc-{}-{}", domain.name(), size.name()), train, valid, test }
}

/// Loads the multi-domain "all" dataset: the union of the four domains at
/// the given tier, with the concatenated fixed test sets.
pub fn load_wdc_all(size: WdcSize, scale: f64) -> PairDataset {
    let mut train = Vec::new();
    let mut valid = Vec::new();
    let mut test = Vec::new();
    for domain in WdcDomain::all() {
        let ds = load_wdc(domain, size, scale);
        train.extend(ds.train);
        valid.extend(ds.valid);
        test.extend(ds.test);
    }
    PairDataset { name: format!("wdc-all-{}", size.name()), train, valid, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_grow_monotonically() {
        let mut prev = 0;
        for size in WdcSize::all() {
            let ds = load_wdc(WdcDomain::Camera, size, 1.0);
            assert!(ds.train.len() > prev, "{}: {}", size.name(), ds.train.len());
            prev = ds.train.len();
        }
    }

    #[test]
    fn test_set_is_fixed_across_tiers() {
        let small = load_wdc(WdcDomain::Shoe, WdcSize::Small, 1.0);
        let xl = load_wdc(WdcDomain::Shoe, WdcSize::Xlarge, 1.0);
        assert_eq!(small.test.len(), xl.test.len());
        for (a, b) in small.test.iter().zip(&xl.test) {
            assert_eq!(a.left.attrs, b.left.attrs);
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn only_title_attribute() {
        let ds = load_wdc(WdcDomain::Computer, WdcSize::Small, 1.0);
        assert_eq!(ds.arity(), 1);
        assert_eq!(ds.train[0].left.keys().next(), Some("title"));
    }

    #[test]
    fn all_dataset_unions_domains() {
        let all = load_wdc_all(WdcSize::Small, 1.0);
        let single = load_wdc(WdcDomain::Computer, WdcSize::Small, 1.0);
        assert_eq!(all.test.len(), 4 * single.test.len());
        assert!(all.train.len() >= 4 * single.train.len() - 4);
    }

    #[test]
    fn test_positive_ratio_matches_paper_shape() {
        let ds = load_wdc(WdcDomain::Watch, WdcSize::Medium, 1.0);
        let pos = ds.test.iter().filter(|p| p.label).count();
        let rate = pos as f64 / ds.test.len() as f64;
        assert!((rate - 0.27).abs() < 0.08, "rate {rate}");
    }
}
