//! Synthetic stand-ins for the Magellan benchmark datasets (Table 1 of the
//! paper) and their dirty variants, plus the collective versions built with
//! the §6.3 split-then-block protocol (Table 5).
//!
//! Sizes are scaled down ~20x so the whole benchmark suite trains on CPU in
//! minutes; positive rates, attribute counts, domains, and difficulty
//! ordering follow the paper.

use crate::corrupt::{make_dirty, DirtyConfig};
use crate::dataset::{CollectiveDataset, PairDataset};
use crate::lexicon;
use crate::pairgen::{
    generate_collective_dataset, generate_pair_dataset, CollectiveGenConfig, PairGenConfig,
};
use crate::synth::{AttrKind, NoiseConfig, Schema, World};

/// The nine Magellan benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MagellanDataset {
    /// Beer (450 pairs, 4 attrs in the paper).
    Beer,
    /// iTunes-Amazon (539 pairs, 8 attrs). Has a dirty version.
    ItunesAmazon,
    /// Fodors-Zagats (946 pairs, 6 attrs).
    FodorsZagats,
    /// DBLP-ACM (12,363 pairs, 4 attrs). Has a dirty version.
    DblpAcm,
    /// DBLP-Scholar (28,707 pairs, 4 attrs). Has a dirty version.
    DblpScholar,
    /// Amazon-Google (11,460 pairs, 3 attrs).
    AmazonGoogle,
    /// Walmart-Amazon (10,242 pairs, 5 attrs). Has a dirty version.
    WalmartAmazon,
    /// Abt-Buy (9,575 pairs, 3 attrs).
    AbtBuy,
    /// Company (112,632 pairs, 1 attr).
    Company,
}

const BEER_SCHEMA: Schema = Schema {
    name: "beer",
    attrs: &[
        ("beer_name", AttrKind::TitleFull),
        ("brew_factory", AttrKind::Brand),
        ("style", AttrKind::Category),
        ("abv", AttrKind::Abv),
    ],
};

const ITUNES_SCHEMA: Schema = Schema {
    name: "itunes-amazon",
    attrs: &[
        ("song_name", AttrKind::TitleFull),
        ("artist", AttrKind::PersonName),
        ("album", AttrKind::Name),
        ("genre", AttrKind::Category),
        ("price", AttrKind::Price),
        ("copyright", AttrKind::Brand),
        ("time", AttrKind::Time),
        ("released", AttrKind::Year),
    ],
};

const FODORS_SCHEMA: Schema = Schema {
    name: "fodors-zagats",
    attrs: &[
        ("name", AttrKind::Name),
        ("addr", AttrKind::Address),
        ("city", AttrKind::Category),
        ("phone", AttrKind::Phone),
        ("type", AttrKind::Category),
        ("class", AttrKind::Model),
    ],
};

const CITATION_SCHEMA: Schema = Schema {
    name: "citation",
    attrs: &[
        ("title", AttrKind::TitleFull),
        ("authors", AttrKind::PersonName),
        ("venue", AttrKind::Venue),
        ("year", AttrKind::Year),
    ],
};

const AMAZON_GOOGLE_SCHEMA: Schema = Schema {
    name: "amazon-google",
    attrs: &[
        ("title", AttrKind::TitleFull),
        ("manufacturer", AttrKind::Brand),
        ("price", AttrKind::Price),
    ],
};

const WALMART_SCHEMA: Schema = Schema {
    name: "walmart-amazon",
    attrs: &[
        ("title", AttrKind::TitleFull),
        ("category", AttrKind::Category),
        ("brand", AttrKind::Brand),
        ("modelno", AttrKind::Model),
        ("price", AttrKind::Price),
    ],
};

const ABT_BUY_SCHEMA: Schema = Schema {
    name: "abt-buy",
    attrs: &[
        ("name", AttrKind::TitleFull),
        ("description", AttrKind::Description),
        ("price", AttrKind::Price),
    ],
};

const COMPANY_SCHEMA: Schema =
    Schema { name: "company", attrs: &[("content", AttrKind::LongText)] };

/// Per-dataset generation settings.
struct Profile {
    schema: &'static Schema,
    lexicon: &'static lexicon::DomainLexicon,
    n_pairs: usize,
    pos_rate: f64,
    hard_negative_frac: f64,
    noise_a: NoiseConfig,
    noise_b: NoiseConfig,
    world_products: usize,
    family_size: usize,
    seed: u64,
}

impl MagellanDataset {
    /// All nine datasets, in Table 1 order.
    pub fn all() -> [Self; 9] {
        [
            Self::Beer,
            Self::ItunesAmazon,
            Self::FodorsZagats,
            Self::DblpAcm,
            Self::DblpScholar,
            Self::AmazonGoogle,
            Self::WalmartAmazon,
            Self::AbtBuy,
            Self::Company,
        ]
    }

    /// The four datasets with dirty versions in the paper.
    pub fn dirty_capable() -> [Self; 4] {
        [Self::ItunesAmazon, Self::DblpAcm, Self::DblpScholar, Self::WalmartAmazon]
    }

    /// The five datasets with public raw tables used for collective ER
    /// (Table 5 of the paper).
    pub fn collective_capable() -> [Self; 5] {
        [Self::ItunesAmazon, Self::DblpAcm, Self::AmazonGoogle, Self::WalmartAmazon, Self::AbtBuy]
    }

    /// Canonical dataset name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Beer => "Beer",
            Self::ItunesAmazon => "iTunes-Amazon",
            Self::FodorsZagats => "Fodors-Zagats",
            Self::DblpAcm => "DBLP-ACM",
            Self::DblpScholar => "DBLP-Scholar",
            Self::AmazonGoogle => "Amazon-Google",
            Self::WalmartAmazon => "Walmart-Amazon",
            Self::AbtBuy => "Abt-Buy",
            Self::Company => "Company",
        }
    }

    /// Short name used in the paper's tables (I-A, D-A, ...).
    pub fn short_name(&self) -> &'static str {
        match self {
            Self::Beer => "Beer",
            Self::ItunesAmazon => "I-A",
            Self::FodorsZagats => "F-Z",
            Self::DblpAcm => "D-A",
            Self::DblpScholar => "D-S",
            Self::AmazonGoogle => "A-G",
            Self::WalmartAmazon => "W-A",
            Self::AbtBuy => "A-B",
            Self::Company => "C",
        }
    }

    /// Dataset schema.
    pub fn schema(&self) -> &'static Schema {
        self.profile().schema
    }

    fn profile(&self) -> Profile {
        match self {
            Self::Beer => Profile {
                schema: &BEER_SCHEMA,
                lexicon: &lexicon::BEER,
                n_pairs: 280,
                pos_rate: 0.15,
                hard_negative_frac: 0.4,
                noise_a: NoiseConfig::light(),
                noise_b: NoiseConfig::light(),
                world_products: 90,
                family_size: 3,
                seed: 0xbee0,
            },
            Self::ItunesAmazon => Profile {
                schema: &ITUNES_SCHEMA,
                lexicon: &lexicon::MUSIC,
                n_pairs: 300,
                pos_rate: 0.245,
                hard_negative_frac: 0.5,
                noise_a: NoiseConfig::light(),
                noise_b: NoiseConfig::light(),
                world_products: 110,
                family_size: 3,
                seed: 0x17a0,
            },
            Self::FodorsZagats => Profile {
                schema: &FODORS_SCHEMA,
                lexicon: &lexicon::RESTAURANT,
                n_pairs: 300,
                pos_rate: 0.13,
                hard_negative_frac: 0.3,
                noise_a: NoiseConfig::clean(),
                noise_b: NoiseConfig::clean(),
                world_products: 130,
                family_size: 2,
                seed: 0xf0d0,
            },
            Self::DblpAcm => Profile {
                schema: &CITATION_SCHEMA,
                lexicon: &lexicon::CITATION,
                n_pairs: 480,
                pos_rate: 0.18,
                hard_negative_frac: 0.35,
                noise_a: NoiseConfig::clean(),
                noise_b: NoiseConfig::clean(),
                world_products: 260,
                family_size: 3,
                seed: 0xdb1a,
            },
            Self::DblpScholar => Profile {
                schema: &CITATION_SCHEMA,
                lexicon: &lexicon::CITATION,
                n_pairs: 520,
                pos_rate: 0.186,
                hard_negative_frac: 0.4,
                noise_a: NoiseConfig::clean(),
                noise_b: NoiseConfig::light(),
                world_products: 300,
                family_size: 3,
                seed: 0xdb15,
            },
            Self::AmazonGoogle => Profile {
                schema: &AMAZON_GOOGLE_SCHEMA,
                lexicon: &lexicon::SOFTWARE,
                n_pairs: 600,
                pos_rate: 0.14,
                hard_negative_frac: 0.55,
                noise_a: NoiseConfig::medium(),
                noise_b: NoiseConfig::heavy(),
                world_products: 320,
                family_size: 4,
                seed: 0xa600,
            },
            Self::WalmartAmazon => Profile {
                schema: &WALMART_SCHEMA,
                lexicon: &lexicon::ELECTRONICS,
                n_pairs: 500,
                pos_rate: 0.12,
                hard_negative_frac: 0.6,
                noise_a: NoiseConfig::light(),
                noise_b: NoiseConfig::medium(),
                world_products: 240,
                family_size: 4,
                seed: 0x3a1a,
            },
            Self::AbtBuy => Profile {
                schema: &ABT_BUY_SCHEMA,
                lexicon: &lexicon::PRODUCT,
                n_pairs: 460,
                pos_rate: 0.12,
                hard_negative_frac: 0.55,
                noise_a: NoiseConfig::light(),
                noise_b: NoiseConfig::medium(),
                world_products: 230,
                family_size: 4,
                seed: 0xab7b,
            },
            Self::Company => Profile {
                schema: &COMPANY_SCHEMA,
                lexicon: &lexicon::COMPANY,
                n_pairs: 300,
                pos_rate: 0.25,
                hard_negative_frac: 0.45,
                noise_a: NoiseConfig::medium(),
                noise_b: NoiseConfig::medium(),
                world_products: 180,
                family_size: 3,
                seed: 0xc0c0,
            },
        }
    }

    /// Generates the dataset. `scale` multiplies the pair count (1.0 is the
    /// default benchmark size; smaller values speed up tests).
    pub fn load(&self, scale: f64) -> PairDataset {
        let p = self.profile();
        let world = World::generate(p.lexicon, p.world_products, p.family_size, p.seed);
        let cfg = PairGenConfig {
            n_pairs: ((p.n_pairs as f64 * scale).round() as usize).max(20),
            pos_rate: p.pos_rate,
            hard_negative_frac: p.hard_negative_frac,
            noise_a: p.noise_a,
            noise_b: p.noise_b,
            seed: p.seed ^ 0x9a1,
        };
        generate_pair_dataset(self.name(), &world, p.schema, &cfg)
    }

    /// Generates the dirty variant (only for [`Self::dirty_capable`]).
    pub fn load_dirty(&self, scale: f64) -> PairDataset {
        let clean = self.load(scale);
        make_dirty(&clean, &DirtyConfig::default(), self.profile().seed ^ 0xd1d1)
    }

    /// Generates the collective version under the split-then-block protocol
    /// with top-16 TF-IDF blocking (§6.3).
    pub fn load_collective(&self, scale: f64) -> CollectiveDataset {
        let p = self.profile();
        let world = World::generate(p.lexicon, p.world_products, p.family_size, p.seed ^ 0xc01);
        let n_queries = (((p.n_pairs / 4) as f64 * scale).round() as usize).max(10);
        let cfg = CollectiveGenConfig {
            n_queries,
            top_n: 16,
            noise_a: p.noise_a,
            noise_b: p.noise_b,
            distractor_frac: 0.3,
            seed: p.seed ^ 0xc02,
        };
        generate_collective_dataset(self.name(), &world, p.schema, &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_with_correct_arity() {
        let expected_arity = [4usize, 8, 6, 4, 4, 3, 5, 3, 1];
        for (ds, &arity) in MagellanDataset::all().iter().zip(&expected_arity) {
            let d = ds.load(0.2);
            assert_eq!(d.arity(), arity, "{}", ds.name());
            assert!(!d.train.is_empty(), "{} empty train", ds.name());
        }
    }

    #[test]
    fn positive_rates_roughly_match_paper() {
        let ds = MagellanDataset::AmazonGoogle.load(1.0);
        assert!((ds.positive_rate() - 0.14).abs() < 0.03, "rate {}", ds.positive_rate());
        let ds = MagellanDataset::Company.load(1.0);
        assert!((ds.positive_rate() - 0.25).abs() < 0.03);
    }

    #[test]
    fn dirty_variant_differs_but_keeps_labels() {
        let clean = MagellanDataset::WalmartAmazon.load(0.3);
        let dirty = MagellanDataset::WalmartAmazon.load_dirty(0.3);
        assert_eq!(clean.len(), dirty.len());
        assert_eq!(clean.n_positive(), dirty.n_positive());
        let changed = clean
            .train
            .iter()
            .zip(&dirty.train)
            .filter(|(c, d)| c.left.attrs != d.left.attrs || c.right.attrs != d.right.attrs)
            .count();
        assert!(changed > 0);
    }

    #[test]
    fn collective_versions_have_top16_candidates() {
        let ds = MagellanDataset::AmazonGoogle.load_collective(0.3);
        assert!(ds.n_queries() >= 10);
        for e in ds.train.iter().chain(&ds.test) {
            assert!(e.n_candidates() <= 16);
        }
    }

    #[test]
    fn loads_are_deterministic() {
        let a = MagellanDataset::Beer.load(0.5);
        let b = MagellanDataset::Beer.load(0.5);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.left.attrs, y.left.attrs);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MagellanDataset::DblpScholar.short_name(), "D-S");
        assert_eq!(MagellanDataset::AbtBuy.name(), "Abt-Buy");
        assert_eq!(MagellanDataset::all().len(), 9);
        assert_eq!(MagellanDataset::dirty_capable().len(), 4);
        assert_eq!(MagellanDataset::collective_capable().len(), 5);
    }
}
