//! Labeled pair and collective example construction from a [`World`].

use crate::dataset::{CollectiveDataset, PairDataset};
use crate::entity::{CollectiveExample, Entity, EntityPair};
use crate::synth::{perturb_entity, render_entity, NoiseConfig, Schema, World};
use hiergat_text::{tokenize, CosineIndex, TfIdf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for pairwise dataset generation.
#[derive(Debug, Clone)]
pub struct PairGenConfig {
    /// Total labeled pairs to produce.
    pub n_pairs: usize,
    /// Fraction of positives (the Magellan datasets range 9.4%–25%, §6.1).
    pub pos_rate: f64,
    /// Among negatives, the fraction drawn from the same family (hard).
    pub hard_negative_frac: f64,
    /// Noise for the source-A rendering.
    pub noise_a: NoiseConfig,
    /// Noise for the source-B rendering.
    pub noise_b: NoiseConfig,
    /// RNG seed.
    pub seed: u64,
}

/// Generates labeled pairs from a world under a schema.
pub fn generate_pairs(world: &World, schema: &Schema, cfg: &PairGenConfig) -> Vec<EntityPair> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_pos = ((cfg.n_pairs as f64) * cfg.pos_rate).round() as usize;
    let n_neg = cfg.n_pairs.saturating_sub(n_pos);

    let mut product_order: Vec<usize> = (0..world.products.len()).collect();
    product_order.shuffle(&mut rng);

    let mut pairs = Vec::with_capacity(cfg.n_pairs);
    // Positives: a source-A rendering and a perturbed (edited) copy of it —
    // matching records in real catalogs are edited copies, not independent
    // re-renderings.
    for i in 0..n_pos {
        let p = &world.products[product_order[i % product_order.len()]];
        let left = render_entity(p, world.lexicon, schema, &cfg.noise_a, "a", &mut rng);
        let right = perturb_entity(&left, &cfg.noise_b, &format!("b-{}", p.uid), &mut rng);
        pairs.push(EntityPair::new(left, right, true));
    }
    // Negatives: family siblings (hard) or random products (easy).
    let mut produced = 0;
    let mut guard = 0;
    while produced < n_neg && guard < n_neg * 20 {
        guard += 1;
        let p = &world.products[rng.gen_range(0..world.products.len())];
        let hard = rng.gen_bool(cfg.hard_negative_frac);
        let q = if hard {
            let sib = world.family_siblings(p);
            match sib.choose(&mut rng) {
                Some(&q) => q,
                None => continue,
            }
        } else {
            let q = &world.products[rng.gen_range(0..world.products.len())];
            if q.uid == p.uid {
                continue;
            }
            q
        };
        let left = render_entity(p, world.lexicon, schema, &cfg.noise_a, "a", &mut rng);
        // The negative's right side goes through the same render+perturb
        // pipeline so both classes share the same marginal noise.
        let right_base = render_entity(q, world.lexicon, schema, &cfg.noise_a, "q", &mut rng);
        let right = perturb_entity(&right_base, &cfg.noise_b, &format!("b-{}", q.uid), &mut rng);
        pairs.push(EntityPair::new(left, right, false));
        produced += 1;
    }
    pairs
}

/// Generates a complete pairwise dataset with the paper's 3:1:1 split.
pub fn generate_pair_dataset(
    name: &str,
    world: &World,
    schema: &Schema,
    cfg: &PairGenConfig,
) -> PairDataset {
    let pairs = generate_pairs(world, schema, cfg);
    PairDataset::split_3_1_1(name, pairs, cfg.seed ^ 0x5eed)
}

/// Configuration for collective dataset generation (§6.3 protocol).
#[derive(Debug, Clone)]
pub struct CollectiveGenConfig {
    /// Number of query entities drawn from table A.
    pub n_queries: usize,
    /// Candidates per query (the paper uses N = 16).
    pub top_n: usize,
    /// Noise for table A.
    pub noise_a: NoiseConfig,
    /// Noise for table B.
    pub noise_b: NoiseConfig,
    /// Extra distractor-only products rendered into table B, as a fraction
    /// of the world size.
    pub distractor_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates collective examples: every query is TF-IDF-blocked against a
/// rendered table B, exactly like the paper's top-N cosine protocol.
pub fn generate_collective(
    world: &World,
    schema: &Schema,
    cfg: &CollectiveGenConfig,
) -> Vec<CollectiveExample> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Render table B: every product plus distractors drawn from re-rendered
    // family siblings (distractors share text statistics with real entries).
    let mut table_b: Vec<(Option<usize>, Entity)> = Vec::new();
    for p in &world.products {
        let base = render_entity(p, world.lexicon, schema, &cfg.noise_a, "base", &mut rng);
        let e = perturb_entity(&base, &cfg.noise_b, &format!("b-{}", p.uid), &mut rng);
        table_b.push((Some(p.uid), e));
    }
    let n_distractors = (world.products.len() as f64 * cfg.distractor_frac) as usize;
    for d in 0..n_distractors {
        let p = &world.products[rng.gen_range(0..world.products.len())];
        let base = render_entity(p, world.lexicon, schema, &cfg.noise_b, "bdb", &mut rng);
        let mut e = perturb_entity(&base, &cfg.noise_b, "bd", &mut rng);
        e.id = format!("bd-{d}");
        // Distractors are not matches of anything.
        table_b.push((None, e));
    }

    // TF-IDF index over table B.
    let docs: Vec<Vec<String>> = table_b.iter().map(|(_, e)| tokenize(&e.full_text())).collect();
    let tfidf = TfIdf::fit(&docs);
    let vectors: Vec<_> = docs.iter().map(|d| tfidf.transform(d)).collect();
    let index = CosineIndex::build(&vectors);

    // Queries.
    let mut order: Vec<usize> = (0..world.products.len()).collect();
    order.shuffle(&mut rng);
    let mut examples = Vec::with_capacity(cfg.n_queries);
    for &pi in order.iter().take(cfg.n_queries) {
        let p = &world.products[pi];
        let query = render_entity(p, world.lexicon, schema, &cfg.noise_a, "a", &mut rng);
        let qvec = tfidf.transform(&tokenize(&query.full_text()));
        let hits = index.top_n(&qvec, cfg.top_n);
        if hits.is_empty() {
            continue;
        }
        let mut candidates = Vec::with_capacity(hits.len());
        let mut labels = Vec::with_capacity(hits.len());
        for (doc, _) in hits {
            let (truth, entity) = &table_b[doc];
            candidates.push(entity.clone());
            labels.push(*truth == Some(p.uid));
        }
        examples.push(CollectiveExample::new(query, candidates, labels));
    }
    examples
}

/// Generates a complete collective dataset with split-then-block semantics:
/// queries are split 3:1:1, so test queries never appear in training.
pub fn generate_collective_dataset(
    name: &str,
    world: &World,
    schema: &Schema,
    cfg: &CollectiveGenConfig,
) -> CollectiveDataset {
    let examples = generate_collective(world, schema, cfg);
    CollectiveDataset::split_3_1_1(name, examples, cfg.seed ^ 0xb10c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::SOFTWARE;
    use crate::synth::AttrKind;

    const SCHEMA: Schema = Schema {
        name: "sw",
        attrs: &[
            ("title", AttrKind::TitleFull),
            ("manufacturer", AttrKind::Brand),
            ("price", AttrKind::Price),
        ],
    };

    fn cfg() -> PairGenConfig {
        PairGenConfig {
            n_pairs: 100,
            pos_rate: 0.2,
            hard_negative_frac: 0.5,
            noise_a: NoiseConfig::light(),
            noise_b: NoiseConfig::light(),
            seed: 1,
        }
    }

    #[test]
    fn pair_counts_and_rate() {
        let world = World::generate(&SOFTWARE, 60, 4, 3);
        let pairs = generate_pairs(&world, &SCHEMA, &cfg());
        assert_eq!(pairs.len(), 100);
        let pos = pairs.iter().filter(|p| p.label).count();
        assert_eq!(pos, 20);
    }

    #[test]
    fn positives_share_more_tokens_than_negatives() {
        let world = World::generate(&SOFTWARE, 80, 4, 4);
        let pairs = generate_pairs(&world, &SCHEMA, &cfg());
        let avg_overlap = |label: bool| {
            let sel: Vec<_> = pairs.iter().filter(|p| p.label == label).collect();
            let total: f64 = sel
                .iter()
                .map(|p| hiergat_text::jaccard(&p.left.all_tokens(), &p.right.all_tokens()))
                .sum();
            total / sel.len() as f64
        };
        assert!(
            avg_overlap(true) > avg_overlap(false),
            "positives must overlap more: {} vs {}",
            avg_overlap(true),
            avg_overlap(false)
        );
    }

    #[test]
    fn hard_negatives_share_brand() {
        let world = World::generate(&SOFTWARE, 40, 4, 5);
        let mut c = cfg();
        c.hard_negative_frac = 1.0;
        c.pos_rate = 0.0;
        let pairs = generate_pairs(&world, &SCHEMA, &c);
        let mut brand_shared = 0;
        for p in &pairs {
            let lt = p.left.attr("manufacturer").unwrap_or_default();
            let rt = p.right.attr("manufacturer").unwrap_or_default();
            if lt == rt && lt != crate::entity::MISSING {
                brand_shared += 1;
            }
        }
        // Most hard negatives share the brand (missing-attr noise aside).
        assert!(brand_shared * 10 > pairs.len() * 7, "{brand_shared}/{}", pairs.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let world = World::generate(&SOFTWARE, 60, 4, 6);
        let a = generate_pairs(&world, &SCHEMA, &cfg());
        let b = generate_pairs(&world, &SCHEMA, &cfg());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.left.attrs, y.left.attrs);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn collective_examples_contain_match_usually() {
        let world = World::generate(&SOFTWARE, 80, 4, 7);
        let ccfg = CollectiveGenConfig {
            n_queries: 30,
            top_n: 16,
            noise_a: NoiseConfig::light(),
            noise_b: NoiseConfig::light(),
            distractor_frac: 0.2,
            seed: 9,
        };
        let examples = generate_collective(&world, &SCHEMA, &ccfg);
        assert_eq!(examples.len(), 30);
        let with_match = examples.iter().filter(|e| e.n_positive() > 0).count();
        assert!(with_match >= 24, "blocking should usually retain the match: {with_match}/30");
        for e in &examples {
            assert!(e.n_candidates() <= 16);
        }
    }

    #[test]
    fn collective_dataset_split_is_disjoint_by_query() {
        let world = World::generate(&SOFTWARE, 60, 4, 8);
        let ccfg = CollectiveGenConfig {
            n_queries: 25,
            top_n: 8,
            noise_a: NoiseConfig::light(),
            noise_b: NoiseConfig::light(),
            distractor_frac: 0.1,
            seed: 10,
        };
        let ds = generate_collective_dataset("c", &world, &SCHEMA, &ccfg);
        let train_ids: std::collections::HashSet<_> =
            ds.train.iter().map(|e| e.query.id.clone()).collect();
        for e in &ds.test {
            assert!(!train_ids.contains(&e.query.id), "test query leaked into train");
        }
    }
}
