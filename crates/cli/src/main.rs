//! `hiergat` — command-line entity resolution.
//!
//! Subcommands:
//!
//! * `train   --train train.csv --valid valid.csv --test test.csv --model DIR`
//!   trains HierGAT on DeepMatcher-style labeled CSV pair files (columns
//!   `label,ltable_*,rtable_*`) and saves the checkpoint.
//! * `predict --model DIR --pairs pairs.csv [--threshold T]`
//!   scores a pair file with a saved model through a forward-only
//!   inference [`Session`] (cached arena plans, thread-pool batching;
//!   bitwise identical to eager scoring) and prints `score,prediction`
//!   rows as CSV. The decision threshold defaults to the checkpoint's
//!   validation-tuned value; `--threshold` overrides it.
//! * `block   --left tableA.csv --right tableB.csv [--top 16]`
//!   TF-IDF top-N candidate generation between two entity tables.
//! * `demo    [--dataset amazon-google] [--scale 0.5]`
//!   trains on a bundled synthetic benchmark (no files needed).
//! * `analyze [--dataset amazon-google] [--scale 0.5]`
//!   runs the static tape analyzer (shape inference, gradient
//!   reachability, node liveness, HHG validation) over the training
//!   graphs of HierGAT, HierGAT+, and every baseline — no kernels run.
//!
//! `analyze`, `lint`, `plan`, and `audit` resolve the model set through
//! [`ModelRegistry`] — no per-model code here; adding a model to the
//! registry adds it to all four subcommands.
//! * `lint    [--dataset amazon-google] [--scale 0.5] [--deny warn] [--json]`
//!   runs the numerical-stability / efficiency / gradient-hygiene rule
//!   engine over the same model graphs plus the kernel write-disjointness
//!   race audit, failing (deny-by-default) on any diagnostic at or above
//!   the gate severity.
//! * `plan    [--dataset amazon-google] [--scale 0.5]`
//!   builds the ahead-of-time arena memory plan for each model's training
//!   graph and the forward-only inference plan its scoring session uses,
//!   printing both arena budgets (planned arena bytes vs the naive sum of
//!   buffer sizes vs the liveness lower bound).
//! * `audit   [--dataset amazon-google] [--scale 0.5] [--deny warn] [--json]
//!   [--weights DIR] [--input-bound B] [--param-bound W]`
//!   runs the interval abstract interpreter over each model's inference
//!   scoring graph: proven per-node value ranges, overflow/underflow/NaN
//!   findings, and the int8/f16/f32 quantisation feasibility table.
//!   Symbolic by default (inputs in `[-B, B]`, parameters in `[-W, W]`);
//!   `--weights DIR` audits a saved HierGAT checkpoint with concrete
//!   per-parameter ranges instead (weight-aware seeding).
//! * `optimize [--dataset amazon-google] [--scale 0.5] [--json] [--verify]`
//!   runs the certified tape optimiser (DCE / CSE / constant folding /
//!   fusion) over each model's inference scoring graph and prints the
//!   node / FLOP / arena-byte deltas plus per-rewrite certificate tallies.
//!   `--verify` additionally proves interval containment for every rewrite
//!   and differentially checks the optimised session against eager
//!   prediction (bitwise), failing if either check does.
//! * `quantise [--dataset amazon-google] [--scale 0.5] [--delta 0.05]
//!   [--input-bound B] [--report] [--json]`
//!   quantises every registry model's scoring session post-training,
//!   driven by the absint feasibility table (int8 / f16 / f32 per tensor),
//!   and gates the result: evaluation F1 must stay within `--delta` of the
//!   f32 session and both the weight bytes and the inference arena must
//!   shrink. `--report` adds the per-class parameter / activation-node
//!   breakdown.
//! * `resolve (--entities N | --table FILE) [--top 8] [--accept 0.85]
//!   [--band LO:HI --model DIR] [--shards 8] [--out FILE] [--json]`
//!   end-to-end streaming entity resolution: sharded TF-IDF top-N
//!   blocking → cosine cascade (auto-accept above `--accept`; the
//!   ambiguous `--band` adjudicated by a saved HierGAT session) →
//!   union-find clustering with canonical labels. Synthetic mode
//!   (`--entities`) scores pairwise cluster P/R/F1 against the corpus's
//!   gold ids. Cluster output is bitwise-identical at any
//!   `HIERGAT_THREADS` width.
//!
//! `train` and `demo` also accept `--analyze` to run the same static
//! check on the model being trained before epoch 0.

use hiergat::{load_model, save_model, train_pairwise, HierGat, HierGatConfig};
use hiergat_data::io::{read_entity_table, read_pairs};
use hiergat_data::{CollectiveDataset, MagellanDataset, PairDataset};
use hiergat_lm::{corpus_from_entities, pretrain, LmTier, PretrainConfig};
use hiergat_runtime::{
    BuildContext, ErModel, Example, HierGatPairwise, ModelKind, ModelRegistry, ModelSpec, Session,
};
use std::collections::HashMap;
use std::process::ExitCode;

mod args;

use args::Args;

fn main() -> ExitCode {
    // `std::env::args()` panics on non-UTF-8 argv entries (easy to hit with
    // byte-string paths on Unix); collect OsStrings and reject them cleanly.
    let mut argv = Vec::new();
    for (i, arg) in std::env::args_os().skip(1).enumerate() {
        match arg.into_string() {
            Ok(s) => argv.push(s),
            Err(bad) => {
                eprintln!("error: argument {} is not valid UTF-8: {bad:?}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  hiergat train   --train FILE --valid FILE --test FILE --model DIR
                  [--tier dbert|roberta|lroberta] [--epochs N] [--no-pretrain]
                  [--analyze]
  hiergat predict --model DIR --pairs FILE [--threshold T]
  hiergat block   --left FILE --right FILE [--top N]
  hiergat demo    [--dataset NAME] [--scale S] [--epochs N]
  hiergat analyze [--dataset NAME] [--scale S]
  hiergat lint    [--dataset NAME] [--scale S] [--deny warn|deny] [--json]
  hiergat plan    [--dataset NAME] [--scale S]
  hiergat audit   [--dataset NAME] [--scale S] [--deny warn|deny] [--json]
                  [--weights DIR] [--input-bound B] [--param-bound W]
  hiergat optimize [--dataset NAME] [--scale S] [--json] [--verify]
  hiergat quantise [--dataset NAME] [--scale S] [--delta D] [--input-bound B]
                  [--report] [--json]
  hiergat resolve (--entities N | --table FILE) [--copies K] [--family-size F]
                  [--seed S] [--top N] [--min-cosine C] [--accept A]
                  [--band LO:HI --model DIR] [--shards K] [--max-df R]
                  [--batch B] [--chunk C] [--out FILE] [--json]";

fn run(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv.split_first().ok_or("missing subcommand")?;
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "train" => cmd_train(&args),
        "predict" => cmd_predict(&args),
        "block" => cmd_block(&args),
        "demo" => cmd_demo(&args),
        "analyze" => cmd_analyze(&args),
        "lint" => cmd_lint(&args),
        "plan" => cmd_plan(&args),
        "audit" => cmd_audit(&args),
        "optimize" => cmd_optimize(&args),
        "quantise" => cmd_quantise(&args),
        "resolve" => cmd_resolve(&args),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn tier_of(args: &Args) -> Result<LmTier, String> {
    match args.get("tier").unwrap_or("roberta") {
        "dbert" => Ok(LmTier::MiniDistil),
        "roberta" => Ok(LmTier::MiniBase),
        "lroberta" => Ok(LmTier::MiniLarge),
        other => Err(format!("unknown tier '{other}' (dbert|roberta|lroberta)")),
    }
}

fn train_on(ds: &PairDataset, args: &Args) -> Result<HierGat, String> {
    let tier = tier_of(args)?;
    let epochs: usize = args.get_parsed("epochs").unwrap_or(Ok(8))?;
    let mut model = HierGat::new(
        HierGatConfig::pairwise().with_tier(tier).with_epochs(epochs),
        ds.arity().max(1),
    );
    if args.has_flag("analyze") {
        let pair = ds.train.first().ok_or("dataset has no training pairs")?;
        let report = model.analyze_pair(pair);
        eprintln!("static analysis of the training graph:\n{report}");
        if !report.is_clean() {
            return Err("static analysis found issues; aborting before training".into());
        }
    }
    if !args.has_flag("no-pretrain") {
        let entities: Vec<_> =
            ds.train.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
        let corpus = corpus_from_entities(entities.iter());
        eprintln!("pre-training {} LM on {} sentences...", tier.name(), corpus.len());
        let pre = pretrain(tier.config(), &corpus, &PretrainConfig::default());
        model.load_pretrained(&pre.store);
    }
    eprintln!(
        "training HierGAT ({} parameters, {} epochs) on {} train pairs...",
        model.num_parameters(),
        epochs,
        ds.train.len()
    );
    let report = train_pairwise(&mut model, ds);
    let m = report.test_confusion.pr_f1();
    eprintln!(
        "test F1 {:.1}  precision {:.1}  recall {:.1}  ({:.1}s)",
        m.f1 * 100.0,
        m.precision * 100.0,
        m.recall * 100.0,
        report.total_seconds()
    );
    Ok(model)
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let train = read_pairs(args.require("train")?).map_err(|e| e.to_string())?;
    let valid = read_pairs(args.require("valid")?).map_err(|e| e.to_string())?;
    let test = read_pairs(args.require("test")?).map_err(|e| e.to_string())?;
    if train.is_empty() {
        return Err("training file has no pairs".into());
    }
    let ds = PairDataset { name: "cli".into(), train, valid, test };
    let model = train_on(&ds, args)?;
    let dir = args.require("model")?;
    save_model(&model, dir).map_err(|e| e.to_string())?;
    eprintln!("saved model to {dir}");
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let model = load_model(args.require("model")?).map_err(|e| e.to_string())?;
    let pairs = read_pairs(args.require("pairs")?).map_err(|e| e.to_string())?;
    // The session scores through cached forward-only arena plans (bitwise
    // identical to the eager path) and carries the checkpoint's
    // validation-tuned threshold; `--threshold` overrides it.
    let mut session = Session::new(Box::new(HierGatPairwise(model)));
    if let Some(threshold) = args.get_parsed("threshold") {
        session.set_threshold(threshold?);
    }
    let threshold = session.threshold();
    let scores = session.score_pairs(&pairs);
    println!("score,prediction");
    for score in scores {
        println!("{score:.4},{}", u8::from(score >= threshold));
    }
    Ok(())
}

fn cmd_block(args: &Args) -> Result<(), String> {
    let left = read_entity_table(args.require("left")?).map_err(|e| e.to_string())?;
    let right = read_entity_table(args.require("right")?).map_err(|e| e.to_string())?;
    let top: usize = args.get_parsed("top").unwrap_or(Ok(16))?;
    let blocker = hiergat_blocking::TfIdfBlocker::fit(&right);
    println!("left_id,right_id,cosine");
    for l in &left {
        for (idx, score) in blocker.top_n(l, top) {
            println!("{},{},{score:.4}", l.id, right[idx].id);
        }
    }
    Ok(())
}

/// Machine-readable summary of a `hiergat resolve` run (`--json`).
#[derive(serde::Serialize)]
struct ResolveSummary {
    records: usize,
    clusters: usize,
    candidates: u64,
    cosine_accepted: u64,
    model_scored: u64,
    model_accepted: u64,
    merges: u64,
    index_bytes: u64,
    batch_peak_bytes: u64,
    pruned_terms: usize,
    fit_secs: f64,
    resolve_secs: f64,
    scoring_secs: f64,
    entities_per_s: f64,
    candidates_per_s: f64,
    cluster_precision: Option<f64>,
    cluster_recall: Option<f64>,
    cluster_f1: Option<f64>,
}

/// End-to-end streaming resolution: sharded TF-IDF blocking → cosine
/// cascade (optional HierGAT session for the ambiguous band) → union-find
/// clustering. Synthetic mode (`--entities N`) also scores the clustering
/// against the corpus's gold cluster ids.
fn cmd_resolve(args: &Args) -> Result<(), String> {
    use hiergat_blocking::{EntityStore, TfIdfCandidates, TfIdfSourceConfig};
    use hiergat_data::{CorpusConfig, SynthCorpus};
    use hiergat_metrics::pairwise_cluster_metrics;
    use hiergat_runtime::{resolve, ResolveConfig};
    use std::time::Instant;

    let top: usize = args.get_parsed("top").unwrap_or(Ok(8))?;
    let min_cosine: f32 = args.get_parsed("min-cosine").unwrap_or(Ok(0.15))?;
    let accept: f32 = args.get_parsed("accept").unwrap_or(Ok(0.85))?;
    let shards: usize = args.get_parsed("shards").unwrap_or(Ok(8))?;
    let max_df: f64 = args.get_parsed("max-df").unwrap_or(Ok(0.01))?;
    let batch: usize = args.get_parsed("batch").unwrap_or(Ok(1024))?;
    let chunk: usize = args.get_parsed("chunk").unwrap_or(Ok(128))?;

    let band = match args.get("band") {
        Some(spec) => {
            let (lo, hi) = spec.split_once(':').ok_or("--band expects LO:HI (e.g. 0.5:0.85)")?;
            let lo: f32 = lo.parse().map_err(|e| format!("--band low bound: {e}"))?;
            let hi: f32 = hi.parse().map_err(|e| format!("--band high bound: {e}"))?;
            Some((lo, hi))
        }
        None => None,
    };
    let mut session = match args.get("model") {
        Some(dir) => {
            let model = load_model(dir).map_err(|e| e.to_string())?;
            Some(Session::new(Box::new(HierGatPairwise(model))))
        }
        None => None,
    };
    if band.is_some() && session.is_none() {
        return Err("--band routes pairs through a model; pass --model DIR".into());
    }
    if let (Some(session), Some(t)) = (session.as_mut(), args.get_parsed::<f32>("threshold")) {
        session.set_threshold(t?);
    }

    let (store, gold): (Box<dyn EntityStore>, Option<Vec<u32>>) = match args.get("entities") {
        Some(_) => {
            let n: usize = args.get_parsed("entities").unwrap_or(Ok(0))?;
            let corpus = SynthCorpus::new(CorpusConfig {
                n_records: n,
                copies: args.get_parsed("copies").unwrap_or(Ok(3))?,
                family_size: args.get_parsed("family-size").unwrap_or(Ok(4))?,
                seed: args.get_parsed("seed").unwrap_or(Ok(0xC0FFEE))?,
            });
            let gold = corpus.gold_labels();
            (Box::new(corpus), Some(gold))
        }
        None => {
            let path = args
                .get("table")
                .ok_or("resolve needs a corpus: --entities N (synthetic) or --table FILE")?;
            let table = read_entity_table(path).map_err(|e| e.to_string())?;
            (Box::new(table), None)
        }
    };
    if store.is_empty() {
        return Err("corpus is empty".into());
    }

    let src_cfg = TfIdfSourceConfig {
        top_n: top,
        min_score: min_cosine,
        n_shards: shards,
        max_df: if max_df > 0.0 { Some(max_df) } else { None },
        fit_chunk: 4096,
    };
    let fit_start = Instant::now();
    let source = TfIdfCandidates::fit_dedup(store.as_ref(), &src_cfg);
    let fit_secs = fit_start.elapsed().as_secs_f64();
    eprintln!(
        "fitted sharded index: {} records, {} shards, {} postings ({} terms pruned), {:.1} MB, {fit_secs:.1}s",
        store.len(),
        shards,
        source.index().n_postings(),
        source.index().pruned_terms(),
        source.memory_bytes() as f64 / 1e6,
    );

    let cfg = ResolveConfig { batch_size: batch, score_chunk: chunk, accept, band };
    let resolution = resolve(&source, store.as_ref(), session.as_mut(), &cfg);
    let stats = &resolution.stats;

    let cluster_scores =
        gold.as_deref().map(|gold| pairwise_cluster_metrics(&resolution.labels, gold).pr_f1());
    let summary = ResolveSummary {
        records: stats.records,
        clusters: stats.clusters,
        candidates: stats.candidates,
        cosine_accepted: stats.cosine_accepted,
        model_scored: stats.model_scored,
        model_accepted: stats.model_accepted,
        merges: stats.merges,
        index_bytes: source.memory_bytes(),
        batch_peak_bytes: stats.batch_peak_bytes,
        pruned_terms: source.index().pruned_terms(),
        fit_secs,
        resolve_secs: stats.total_secs,
        scoring_secs: stats.scoring_secs,
        entities_per_s: stats.records as f64 / (fit_secs + stats.total_secs).max(1e-9),
        candidates_per_s: stats.candidates as f64 / stats.total_secs.max(1e-9),
        cluster_precision: cluster_scores.map(|s| s.precision),
        cluster_recall: cluster_scores.map(|s| s.recall),
        cluster_f1: cluster_scores.map(|s| s.f1),
    };

    eprintln!(
        "resolved {} records into {} clusters in {:.1}s ({:.0} entities/s): \
         {} candidates, {} cosine-accepted, {} model-scored, {} model-accepted",
        summary.records,
        summary.clusters,
        fit_secs + stats.total_secs,
        summary.entities_per_s,
        summary.candidates,
        summary.cosine_accepted,
        summary.model_scored,
        summary.model_accepted,
    );
    if let Some(s) = cluster_scores {
        eprintln!(
            "cluster pairwise vs gold: precision {:.1} recall {:.1} F1 {:.1}",
            s.precision * 100.0,
            s.recall * 100.0,
            s.f1 * 100.0
        );
    }

    // Cluster assignment CSV: canonical labels, so the bytes are identical
    // at any pool width.
    let mut csv = String::with_capacity(16 * resolution.labels.len() + 16);
    csv.push_str("record,cluster\n");
    for (i, label) in resolution.labels.iter().enumerate() {
        csv.push_str(&format!("{i},{label}\n"));
    }
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} cluster assignments to {path}", resolution.labels.len());
        }
        None if !args.has_flag("json") => print!("{csv}"),
        None => {}
    }
    if args.has_flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| format!("serializing: {e}"))?
        );
    }
    Ok(())
}

fn dataset_of(args: &Args) -> Result<MagellanDataset, String> {
    let name = args.get("dataset").unwrap_or("amazon-google");
    let by_name: HashMap<String, MagellanDataset> =
        MagellanDataset::all().into_iter().map(|d| (d.name().to_lowercase(), d)).collect();
    by_name.get(&name.to_lowercase()).copied().ok_or_else(|| {
        format!(
            "unknown dataset '{name}'; one of: {}",
            MagellanDataset::all().map(|d| d.name().to_lowercase()).join(", ")
        )
    })
}

fn cmd_demo(args: &Args) -> Result<(), String> {
    let kind = dataset_of(args)?;
    let scale: f64 = args.get_parsed("scale").unwrap_or(Ok(0.5))?;
    let ds = kind.load(scale);
    eprintln!("demo on {} ({} pairs)", ds.name, ds.len());
    let model = train_on(&ds, args)?;
    if let Some(dir) = args.get("model") {
        save_model(&model, dir).map_err(|e| e.to_string())?;
        eprintln!("saved model to {dir}");
    }
    Ok(())
}

/// Loads the pairwise + collective views of the selected dataset along with
/// the LM tier — the shared inputs of the registry-driven subcommands.
fn registry_inputs(args: &Args) -> Result<(PairDataset, CollectiveDataset, LmTier), String> {
    let kind = dataset_of(args)?;
    let scale: f64 = args.get_parsed("scale").unwrap_or(Ok(0.5))?;
    Ok((kind.load(scale), kind.load_collective(scale), tier_of(args)?))
}

/// Builds every registered model with the context its kind requires and
/// hands it to `f` together with the matching first training example.
fn for_each_model(
    tier: LmTier,
    ds: &PairDataset,
    ds_c: &CollectiveDataset,
    mut f: impl FnMut(&ModelSpec, &dyn ErModel, Example<'_>),
) -> Result<(), String> {
    let pair = ds.train.first().ok_or("dataset has no training pairs")?;
    let ex = ds_c.train.first().ok_or("collective dataset has no training examples")?;
    let pair_cx = BuildContext { tier, arity: ds.arity().max(1) };
    let coll_cx = BuildContext { tier, arity: ex.query.attrs.len().max(1) };
    for spec in ModelRegistry::builtin().specs() {
        let (cx, example) = match spec.kind() {
            ModelKind::Pairwise => (&pair_cx, Example::Pair(pair)),
            ModelKind::Collective => (&coll_cx, Example::Collective(ex)),
        };
        f(spec, &*spec.build(cx), example);
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let (ds, ds_c, tier) = registry_inputs(args)?;
    let mut dirty = 0usize;
    for_each_model(tier, &ds, &ds_c, |spec, model, example| {
        let report = model.analyze(example);
        println!("== {} ==", spec.display());
        println!("{report}");
        if !report.is_clean() {
            dirty += 1;
        }
    })?;
    if dirty > 0 {
        Err(format!("{dirty} model graph(s) reported static-analysis issues"))
    } else {
        println!("all model graphs analyze clean");
        Ok(())
    }
}

/// One linted model graph in the `lint --json` document.
#[derive(serde::Serialize)]
struct ModelLint {
    model: String,
    clean: bool,
    report: hiergat_nn::LintReport,
}

/// The full `lint --json` document: per-model rule-engine reports plus the
/// kernel write-disjointness race audit.
#[derive(serde::Serialize)]
struct LintOutput {
    gate: String,
    models: Vec<ModelLint>,
    race_audit: hiergat_tensor::RaceAuditReport,
    skipped: Vec<String>,
    failed: bool,
}

/// Parses the `--deny` gate severity shared by `lint` and `audit`.
fn deny_gate(args: &Args) -> Result<hiergat_nn::Severity, String> {
    match args.get("deny").unwrap_or("deny") {
        "warn" => Ok(hiergat_nn::Severity::Warn),
        "deny" => Ok(hiergat_nn::Severity::Deny),
        other => Err(format!("unknown --deny level '{other}' (warn|deny)")),
    }
}

fn cmd_lint(args: &Args) -> Result<(), String> {
    let gate = deny_gate(args)?;
    let (ds, ds_c, tier) = registry_inputs(args)?;

    let mut models = Vec::new();
    for_each_model(tier, &ds, &ds_c, |spec, model, example| {
        let report = model.lint_training(example);
        models.push(ModelLint {
            model: spec.display().to_string(),
            clean: report.is_clean_at(gate),
            report,
        });
    })?;

    let race_audit = hiergat_tensor::race_audit();
    let out = LintOutput {
        gate: format!("{gate:?}").to_lowercase(),
        skipped: ModelRegistry::builtin().tapeless_notes(),
        failed: models.iter().any(|m| !m.clean) || !race_audit.is_clean(),
        models,
        race_audit,
    };

    if args.has_flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| format!("serializing report: {e}"))?
        );
    } else {
        for m in &out.models {
            println!("== {} ==", m.model);
            println!("{}", m.report);
        }
        println!("== race audit (write disjointness) ==");
        print!("{}", out.race_audit);
        for note in &out.skipped {
            println!("note: {note}");
        }
    }
    if out.failed {
        let dirty = out.models.iter().filter(|m| !m.clean).count();
        let races = out.race_audit.failures().len();
        Err(format!(
            "lint gate failed: {dirty} model graph(s) at or above --deny {}, \
             {races} race-audit violation(s)",
            out.gate
        ))
    } else {
        if !args.has_flag("json") {
            println!("all model graphs lint clean at --deny {}", out.gate);
        }
        Ok(())
    }
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let (ds, ds_c, tier) = registry_inputs(args)?;
    for_each_model(tier, &ds, &ds_c, |spec, model, example| {
        // Training plan (forward + backward liveness) next to the session's
        // forward-only inference plan, which needs strictly less arena.
        println!("{:32} {}", spec.display(), model.plan_training(example));
        println!("{:32} {}", format!("{} [infer]", spec.display()), model.plan_inference(example));
    })?;
    Ok(())
}

/// One audited model graph in the `audit --json` document.
#[derive(serde::Serialize)]
struct ModelAudit {
    model: String,
    clean: bool,
    report: hiergat_nn::AuditReport,
}

/// The full `audit --json` document: per-model interval-audit reports
/// (proven ranges, findings, quantisation table) under one seeding.
#[derive(serde::Serialize)]
struct AuditOutput {
    gate: String,
    seed: String,
    models: Vec<ModelAudit>,
    skipped: Vec<String>,
    failed: bool,
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    let gate = deny_gate(args)?;
    let input_bound: f64 = args.get_parsed("input-bound").unwrap_or(Ok(8.0))?;
    let param_bound: f64 = args.get_parsed("param-bound").unwrap_or(Ok(4.0))?;
    if input_bound <= 0.0 || param_bound <= 0.0 {
        return Err("--input-bound and --param-bound must be positive".into());
    }
    let (ds, ds_c, tier) = registry_inputs(args)?;

    let mut models = Vec::new();
    let cfg;
    if let Some(dir) = args.get("weights") {
        // Weight-aware: audit the saved HierGAT checkpoint with concrete
        // per-parameter ranges read from its store.
        cfg = hiergat_nn::AbsintConfig::weight_aware(input_bound);
        let pair = ds.train.first().ok_or("dataset has no training pairs")?;
        let model = HierGatPairwise(load_model(dir).map_err(|e| e.to_string())?);
        let report = model.audit(Example::Pair(pair), &cfg);
        models.push(ModelAudit {
            model: format!("hiergat [checkpoint {dir}]"),
            clean: report.is_clean_at(gate),
            report,
        });
    } else {
        cfg = hiergat_nn::AbsintConfig::symbolic(input_bound, param_bound);
        for_each_model(tier, &ds, &ds_c, |spec, model, example| {
            let report = model.audit(example, &cfg);
            models.push(ModelAudit {
                model: spec.display().to_string(),
                clean: report.is_clean_at(gate),
                report,
            });
        })?;
    }

    let out = AuditOutput {
        gate: format!("{gate:?}").to_lowercase(),
        seed: cfg.describe(),
        skipped: ModelRegistry::builtin().tapeless_notes(),
        failed: models.iter().any(|m| !m.clean),
        models,
    };

    if args.has_flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| format!("serializing report: {e}"))?
        );
    } else {
        for m in &out.models {
            println!("== {} ==", m.model);
            println!("{}", m.report);
        }
        for note in &out.skipped {
            println!("note: {note}");
        }
    }
    if out.failed {
        let dirty = out.models.iter().filter(|m| !m.clean).count();
        Err(format!(
            "audit gate failed: {dirty} model graph(s) with findings at or above --deny {}",
            out.gate
        ))
    } else {
        if !args.has_flag("json") {
            println!("all model graphs audit clean at --deny {} ({})", out.gate, out.seed);
        }
        Ok(())
    }
}

/// One optimised model graph in the `optimize --json` document.
#[derive(serde::Serialize)]
struct ModelOptimize {
    model: String,
    arena_bytes_before: u64,
    arena_bytes_after: u64,
    certificates_valid: bool,
    /// Eager predict vs optimised session, bitwise; always `true` when
    /// `--verify` is off (the check is skipped).
    differential_ok: bool,
    report: hiergat_nn::OptimizeReport,
}

/// The full `optimize --json` document: per-model optimiser reports plus
/// the arena deltas of the session plans they feed.
#[derive(serde::Serialize)]
struct OptimizeOutput {
    verify: bool,
    models: Vec<ModelOptimize>,
    skipped: Vec<String>,
    failed: bool,
}

fn cmd_optimize(args: &Args) -> Result<(), String> {
    let verify = args.has_flag("verify");
    let (ds, ds_c, tier) = registry_inputs(args)?;
    let pair = ds.train.first().ok_or("dataset has no training pairs")?;
    let ex_c = ds_c.train.first().ok_or("collective dataset has no training examples")?;
    let pair_cx = BuildContext { tier, arity: ds.arity().max(1) };
    let coll_cx = BuildContext { tier, arity: ex_c.query.attrs.len().max(1) };

    // Builds boxed models directly (rather than via `for_each_model`)
    // because the `--verify` differential consumes each model into a
    // scoring `Session`.
    let mut models = Vec::new();
    for spec in ModelRegistry::builtin().specs() {
        let (cx, example) = match spec.kind() {
            ModelKind::Pairwise => (&pair_cx, Example::Pair(pair)),
            ModelKind::Collective => (&coll_cx, Example::Collective(ex_c)),
        };
        let model = spec.build(cx);
        let report = model.optimize_report(example, verify);
        // Arena budget of the as-recorded inference plan vs the optimised
        // one the session actually replays.
        let mut t = hiergat_nn::Tape::inference();
        let probs = model.record_scores(&mut t, example);
        let arena_bytes_before =
            hiergat_nn::ExecutionPlan::build_inference(&t, probs).report().arena_bytes;
        let arena_bytes_after = model.plan_inference(example).arena_bytes;
        let differential_ok = if verify {
            let eager = model.predict(example);
            let mut session = Session::new(model);
            let scored = session.score(example);
            eager.len() == scored.len()
                && eager.iter().zip(&scored).all(|(e, s)| e.to_bits() == s.to_bits())
        } else {
            true
        };
        models.push(ModelOptimize {
            model: spec.display().to_string(),
            arena_bytes_before,
            arena_bytes_after,
            certificates_valid: report.all_valid(),
            differential_ok,
            report,
        });
    }

    let out = OptimizeOutput {
        verify,
        skipped: ModelRegistry::builtin().tapeless_notes(),
        failed: models.iter().any(|m| !m.certificates_valid || !m.differential_ok),
        models,
    };

    if args.has_flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| format!("serializing report: {e}"))?
        );
    } else {
        for m in &out.models {
            println!("== {} ==", m.model);
            println!("{}", m.report);
            println!(
                "arena {} -> {} bytes{}",
                m.arena_bytes_before,
                m.arena_bytes_after,
                if out.verify {
                    if m.differential_ok {
                        "  [differential: bitwise ok]"
                    } else {
                        "  [differential: MISMATCH]"
                    }
                } else {
                    ""
                }
            );
        }
        for note in &out.skipped {
            println!("note: {note}");
        }
    }
    if out.failed {
        let bad = out.models.iter().filter(|m| !m.certificates_valid || !m.differential_ok).count();
        Err(format!("optimize gate failed: {bad} model graph(s) with invalid certificates or differential mismatches"))
    } else {
        if !args.has_flag("json") {
            println!(
                "all model graphs optimize with valid certificates{}",
                if out.verify { " and bitwise differentials" } else { "" }
            );
        }
        Ok(())
    }
}

/// One quantised model in the `quantise --json` document.
#[derive(serde::Serialize)]
struct ModelQuantise {
    model: String,
    f1_f32: f64,
    f1_quantised: f64,
    f1_delta: f64,
    weight_bytes_f32: u64,
    weight_bytes_quantised: u64,
    int8_params: usize,
    f16_params: usize,
    f32_params: usize,
    arena_bytes_f32: u64,
    arena_bytes_quantised: u64,
    int8_nodes: usize,
    f16_nodes: usize,
    f32_nodes: usize,
    ok: bool,
}

/// The full `quantise --json` document: per-model F1 deltas and storage
/// footprints, f32 vs quantised.
#[derive(serde::Serialize)]
struct QuantiseOutput {
    delta: f64,
    input_bound: f64,
    models: Vec<ModelQuantise>,
    skipped: Vec<String>,
    failed: bool,
}

fn cmd_quantise(args: &Args) -> Result<(), String> {
    // The default F1 delta absorbs a single flipped decision at the
    // bundled gate datasets' positive counts (one flip on ~10 positive
    // pairs moves F1 by ~0.1); larger eval sets should tighten it.
    let delta: f64 = args.get_parsed("delta").unwrap_or(Ok(0.10))?;
    let input_bound: f64 = args.get_parsed("input-bound").unwrap_or(Ok(8.0))?;
    if delta <= 0.0 || input_bound <= 0.0 {
        return Err("--delta and --input-bound must be positive".into());
    }
    let (ds, ds_c, tier) = registry_inputs(args)?;
    let pair_cx = BuildContext { tier, arity: ds.arity().max(1) };
    let cfg = hiergat_nn::QuantConfig { input_bound };

    let mut models = Vec::new();
    for spec in ModelRegistry::builtin().specs() {
        // Evaluation set: every split pooled (the gate checks the storage
        // contract, not generalisation, and small Magellan test splits
        // make F1 far too coarse on their own), with the flattened
        // ground-truth labels in matching output order.
        let (cx, examples, labels): (_, Vec<Example<'_>>, Vec<bool>) = match spec.kind() {
            ModelKind::Pairwise => {
                let pool: Vec<&hiergat_data::EntityPair> =
                    [&ds.train, &ds.valid, &ds.test].into_iter().flatten().collect();
                let pairs = &pool[..pool.len().min(128)];
                (
                    pair_cx,
                    pairs.iter().map(|p| Example::Pair(p)).collect(),
                    pairs.iter().map(|p| p.label).collect(),
                )
            }
            ModelKind::Collective => {
                let pool = if ds_c.test.is_empty() { &ds_c.train } else { &ds_c.test };
                let exs = &pool[..pool.len().min(8)];
                let arity = exs.first().map_or(1, |e| e.query.attrs.len()).max(1);
                (
                    BuildContext { tier, arity },
                    exs.iter().map(Example::Collective).collect(),
                    exs.iter().flat_map(|e| e.labels.iter().copied()).collect(),
                )
            }
        };
        if examples.is_empty() {
            return Err(format!("{}: no evaluation examples in the split", spec.display()));
        }
        let mut session = Session::new(spec.build(&cx));
        let threshold = session.threshold();
        let f32_scores: Vec<f32> = session.score_batch(&examples).into_iter().flatten().collect();
        let report = session
            .quantise(examples[0], &cfg)
            .map_err(|e| format!("{}: quantise failed: {e}", spec.display()))?;
        let q_scores: Vec<f32> = session.score_batch(&examples).into_iter().flatten().collect();
        let decide = |scores: &[f32]| scores.iter().map(|s| *s >= threshold).collect::<Vec<bool>>();
        let f1_f32 =
            hiergat_metrics::Confusion::from_predictions(&decide(&f32_scores), &labels).pr_f1().f1;
        let f1_quantised =
            hiergat_metrics::Confusion::from_predictions(&decide(&q_scores), &labels).pr_f1().f1;
        let f1_delta = f1_quantised - f1_f32;
        // Storage gate: the arena must never grow (graphs whose live peak
        // is audit-opaque — e.g. GCN's division-normalised adjacency
        // products — bottom out at exact equality), and the session's
        // total footprint (arena + weights) must strictly shrink.
        let ok = f1_delta.abs() <= delta
            && report.arena_bytes <= report.f32_arena_bytes
            && report.arena_bytes + report.weights.bytes_quantised
                < report.f32_arena_bytes + report.weights.bytes_f32;
        models.push(ModelQuantise {
            model: spec.display().to_string(),
            f1_f32,
            f1_quantised,
            f1_delta,
            weight_bytes_f32: report.weights.bytes_f32,
            weight_bytes_quantised: report.weights.bytes_quantised,
            int8_params: report.weights.int8_params,
            f16_params: report.weights.f16_params,
            f32_params: report.weights.f32_params,
            arena_bytes_f32: report.f32_arena_bytes,
            arena_bytes_quantised: report.arena_bytes,
            int8_nodes: report.class_nodes.0,
            f16_nodes: report.class_nodes.1,
            f32_nodes: report.class_nodes.2,
            ok,
        });
    }

    let out = QuantiseOutput {
        delta,
        input_bound,
        skipped: ModelRegistry::builtin().tapeless_notes(),
        failed: models.iter().any(|m| !m.ok),
        models,
    };

    if args.has_flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| format!("serializing report: {e}"))?
        );
    } else {
        for m in &out.models {
            println!("== {} ==", m.model);
            println!(
                "F1 {:.3} -> {:.3} (delta {:+.3}, gate {:.3})  weights {} -> {} bytes  \
                 arena {} -> {} bytes{}",
                m.f1_f32,
                m.f1_quantised,
                m.f1_delta,
                out.delta,
                m.weight_bytes_f32,
                m.weight_bytes_quantised,
                m.arena_bytes_f32,
                m.arena_bytes_quantised,
                if m.ok { "" } else { "  [FAILED]" }
            );
            if args.has_flag("report") {
                println!(
                    "params int8/f16/f32: {}/{}/{}  activation nodes int8/f16/f32: {}/{}/{}",
                    m.int8_params,
                    m.f16_params,
                    m.f32_params,
                    m.int8_nodes,
                    m.f16_nodes,
                    m.f32_nodes
                );
            }
        }
        for note in &out.skipped {
            println!("note: {note}");
        }
    }
    if out.failed {
        let bad = out.models.iter().filter(|m| !m.ok).count();
        Err(format!(
            "quantise gate failed: {bad} model(s) outside the F1 delta {:.3} or without \
             storage savings",
            out.delta
        ))
    } else {
        if !args.has_flag("json") {
            println!(
                "all model sessions quantise within F1 delta {:.3} with smaller arenas",
                out.delta
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_lists_all_subcommands() {
        let cmds = [
            "train", "predict", "block", "demo", "analyze", "lint", "plan", "audit", "optimize",
            "quantise", "resolve",
        ];
        for cmd in cmds {
            assert!(USAGE.contains(cmd));
        }
    }

    #[test]
    fn plan_prints_budgets_for_all_models() {
        let argv: Vec<String> =
            ["plan", "--dataset", "fodors-zagats", "--scale", "0.2", "--tier", "dbert"]
                .iter()
                .map(ToString::to_string)
                .collect();
        run(&argv).expect("plan");
    }

    #[test]
    fn unknown_subcommand_is_rejected() {
        let err = run(&["frobnicate".to_string()]).expect_err("unknown subcommand must fail");
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn missing_subcommand_is_rejected() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn tier_parsing() {
        let args = Args::parse(&["--tier".into(), "dbert".into()]).expect("parse");
        assert_eq!(tier_of(&args).expect("tier"), LmTier::MiniDistil);
        let args = Args::parse(&["--tier".into(), "bogus".into()]).expect("parse");
        assert!(tier_of(&args).is_err());
    }

    #[test]
    fn demo_rejects_unknown_dataset() {
        let args = Args::parse(&["--dataset".into(), "nope".into()]).expect("parse");
        let err = cmd_demo(&args).expect_err("unknown dataset must fail");
        assert!(err.contains("unknown dataset"));
    }

    #[test]
    fn block_runs_on_csv_tables() {
        let dir = std::env::temp_dir().join("hiergat-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        std::fs::write(&a, "id,title\n1,canon eos camera\n").expect("write");
        std::fs::write(&b, "id,title\n9,canon eos body\n8,leather watch\n").expect("write");
        let args = Args::parse(&[
            "--left".into(),
            a.display().to_string(),
            "--right".into(),
            b.display().to_string(),
            "--top".into(),
            "1".into(),
        ])
        .expect("parse");
        cmd_block(&args).expect("block");
    }

    #[test]
    fn analyze_reports_clean_graphs_for_all_models() {
        let argv: Vec<String> =
            ["analyze", "--dataset", "fodors-zagats", "--scale", "0.2", "--tier", "dbert"]
                .iter()
                .map(ToString::to_string)
                .collect();
        run(&argv).expect("analyze");
    }

    #[test]
    fn lint_reports_clean_graphs_for_all_models_at_deny_warn() {
        let argv: Vec<String> = [
            "lint",
            "--dataset",
            "fodors-zagats",
            "--scale",
            "0.2",
            "--tier",
            "dbert",
            "--deny",
            "warn",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        run(&argv).expect("lint");
    }

    #[test]
    fn lint_rejects_unknown_deny_level() {
        let args = Args::parse(&["--deny".into(), "everything".into()]).expect("parse");
        let err = cmd_lint(&args).expect_err("bad deny level must fail");
        assert!(err.contains("unknown --deny level"));
    }

    #[test]
    fn audit_reports_clean_graphs_for_all_models_at_deny_warn() {
        let argv: Vec<String> = [
            "audit",
            "--dataset",
            "fodors-zagats",
            "--scale",
            "0.2",
            "--tier",
            "dbert",
            "--deny",
            "warn",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        run(&argv).expect("audit");
    }

    #[test]
    fn optimize_verifies_certificates_and_differentials_for_all_models() {
        let argv: Vec<String> = [
            "optimize",
            "--dataset",
            "fodors-zagats",
            "--scale",
            "0.2",
            "--tier",
            "dbert",
            "--verify",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        run(&argv).expect("optimize --verify");
    }

    #[test]
    fn audit_rejects_nonpositive_bounds() {
        let args =
            Args::parse(&["--input-bound".into(), "0".into(), "--deny".into(), "warn".into()])
                .expect("parse");
        let err = cmd_audit(&args).expect_err("zero input bound must fail");
        assert!(err.contains("must be positive"));
    }

    #[test]
    fn train_save_predict_roundtrip_via_csv() {
        let dir = std::env::temp_dir().join("hiergat-cli-roundtrip");
        std::fs::create_dir_all(&dir).expect("tmp");
        // Generate a tiny dataset and write the DeepMatcher-style files.
        let ds = MagellanDataset::FodorsZagats.load(0.2);
        let paths: Vec<_> =
            ["train", "valid", "test"].iter().map(|s| dir.join(format!("{s}.csv"))).collect();
        hiergat_data::io::write_pairs(&paths[0], &ds.train).expect("w");
        hiergat_data::io::write_pairs(&paths[1], &ds.valid).expect("w");
        hiergat_data::io::write_pairs(&paths[2], &ds.test).expect("w");
        let model_dir = dir.join("model");
        let argv: Vec<String> = [
            "train",
            "--train",
            paths[0].display().to_string().as_str(),
            "--valid",
            paths[1].display().to_string().as_str(),
            "--test",
            paths[2].display().to_string().as_str(),
            "--model",
            model_dir.display().to_string().as_str(),
            "--tier",
            "dbert",
            "--epochs",
            "1",
            "--no-pretrain",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        run(&argv).expect("train");
        let argv: Vec<String> = [
            "predict",
            "--model",
            model_dir.display().to_string().as_str(),
            "--pairs",
            paths[2].display().to_string().as_str(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        run(&argv).expect("predict");
    }
}
