//! Minimal `--key value` / `--flag` argument parsing (no external crates).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{arg}'"));
            };
            if key.is_empty() {
                return Err("empty option name".into());
            }
            // A following token that does not start with "--" is the value.
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    if out.values.insert(key.to_string(), v.clone()).is_some() {
                        return Err(format!("duplicate option --{key}"));
                    }
                    i += 2;
                }
                _ => {
                    out.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// The value of `--key`, or an error naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parses the value of `--key` into `T`, if present.
    pub fn get_parsed<T: FromStr>(&self, key: &str) -> Option<Result<T, String>> {
        self.get(key).map(|v| v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")))
    }

    /// `true` if the bare flag `--key` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(&tokens.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = parse(&["--model", "dir", "--no-pretrain", "--epochs", "4"]).expect("parse");
        assert_eq!(a.get("model"), Some("dir"));
        assert!(a.has_flag("no-pretrain"));
        assert_eq!(a.get_parsed::<usize>("epochs"), Some(Ok(4)));
    }

    #[test]
    fn rejects_positional_and_duplicates() {
        assert!(parse(&["stray"]).is_err());
        assert!(parse(&["--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn require_names_the_missing_option() {
        let a = parse(&[]).expect("parse");
        let err = a.require("train").expect_err("train flag is absent");
        assert!(err.contains("--train"));
    }

    #[test]
    fn invalid_parse_is_reported() {
        let a = parse(&["--epochs", "many"]).expect("parse");
        assert!(a.get_parsed::<usize>("epochs").expect("present").is_err());
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = parse(&["--verbose"]).expect("parse");
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get("verbose"), None);
    }
}
