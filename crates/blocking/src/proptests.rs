//! Property tests for the blocking layer's two determinism pillars:
//! shard-layout invariance of top-N retrieval, and edge-order invariance
//! of union-find clustering.

use crate::UnionFind;
use hiergat_text::{ShardedCosineIndex, SparseVec, TfIdf};
use proptest::prelude::*;

/// Random small corpus: each doc is a token list over a tiny alphabet so
/// vocabulary overlap (and score ties) are common.
fn docs_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..ALPHABET.len(), 1..6), 1..14)
        .prop_map(|docs| {
            docs.into_iter()
                .map(|d| d.into_iter().map(|i| ALPHABET[i].to_string()).collect())
                .collect()
        })
}

const ALPHABET: &[&str] =
    &["canon", "eos", "r5", "nikon", "z6", "camera", "lens", "dell", "monitor", "4k"];

proptest! {
    /// Sharded top-N must equal single-shard top-N (ids *and* bitwise
    /// scores) for any shard count, cutoff, and query — the invariant the
    /// resolve pipeline's cross-width determinism rests on.
    #[test]
    fn sharded_top_n_matches_single_shard(
        docs in docs_strategy(),
        query_idx in 0usize..14,
        n_shards in 1usize..9,
        n in 1usize..6,
    ) {
        let tfidf = TfIdf::fit(&docs);
        let vecs: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let query = &vecs[query_idx % vecs.len()];
        let single = ShardedCosineIndex::build(&vecs, 1);
        let sharded = ShardedCosineIndex::build(&vecs, n_shards);
        let want = single.top_n(query, n);
        prop_assert_eq!(&sharded.top_n(query, n), &want);
        prop_assert_eq!(&sharded.top_n_par(query, n), &want);
        let batch = sharded.top_n_batch(std::slice::from_ref(query), n);
        prop_assert_eq!(&batch[0], &want);
    }

    /// Union-find canonical labels (and component count) must not depend
    /// on the order edges are applied, nor on edge orientation.
    #[test]
    fn union_find_invariant_under_edge_order(
        n in 1usize..40,
        raw_edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
        seed in 0u64..u64::MAX,
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let mut forward = UnionFind::new(n);
        for &(a, b) in &edges {
            forward.union(a, b);
        }
        // Deterministic pseudo-shuffle driven by the seed, with random
        // orientation flips.
        let mut shuffled = edges.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut permuted = UnionFind::new(n);
        for (k, &(a, b)) in shuffled.iter().enumerate() {
            if k % 2 == 0 {
                permuted.union(b, a);
            } else {
                permuted.union(a, b);
            }
        }
        prop_assert_eq!(forward.labels(), permuted.labels());
        prop_assert_eq!(forward.n_components(), permuted.n_components());
    }
}
