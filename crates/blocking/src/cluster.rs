//! Union-find connected components for transitive match clustering.
//!
//! Accepted match edges are folded into a disjoint-set forest (path
//! halving + union by rank); the final clustering is read out with
//! *canonical* labels — each record is labelled with the smallest record
//! id in its component — so the output is a pure function of the edge
//! *set*, independent of the order edges were streamed in. That is what
//! lets `hiergat resolve` produce bitwise-identical cluster files at any
//! pool width.

/// Disjoint-set forest over records `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// A forest of `n` singleton components.
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "union-find supports at most u32::MAX records");
        Self { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Root of `x`'s component, compressing the path as it goes.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // Path halving: point x at its grandparent and step there.
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Merges the components of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Equal => {
                self.rank[ra] += 1;
                (ra, rb)
            }
        };
        self.parent[lo] = hi as u32;
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are already in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of components.
    pub fn n_components(&self) -> usize {
        self.components
    }

    /// Canonical cluster labels: record `i` gets the smallest record id in
    /// its component. Independent of union order and of the forest's
    /// internal shape.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let r = self.find(i);
            // Records are visited in ascending order, so the first record
            // to reach a root is the component's minimum.
            if label_of_root[r] == u32::MAX {
                label_of_root[r] = i as u32;
            }
            out.push(label_of_root[r]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_merges() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.n_components(), 5);
        assert!(uf.union(0, 3));
        assert!(uf.union(3, 4));
        assert!(!uf.union(0, 4), "already connected");
        assert_eq!(uf.n_components(), 3);
        assert!(uf.connected(0, 4));
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn labels_are_min_member_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(1, 3);
        assert_eq!(uf.labels(), vec![0, 1, 2, 1, 2, 2]);
    }

    #[test]
    fn labels_invariant_under_edge_order() {
        let edges = [(0, 1), (1, 2), (4, 5), (2, 0)];
        let mut a = UnionFind::new(6);
        for &(x, y) in &edges {
            a.union(x, y);
        }
        let mut b = UnionFind::new(6);
        for &(x, y) in edges.iter().rev() {
            b.union(y, x);
        }
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.n_components(), b.n_components());
    }

    #[test]
    fn empty_forest() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.labels(), Vec::<u32>::new());
    }
}
