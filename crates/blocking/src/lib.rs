//! Blocking: pruning the candidate space before matching.
//!
//! The paper's ER pipeline (Figure 5) runs a blocker before HierGAT. Two
//! blockers are provided, matching §2.1 and §6.3:
//!
//! * [`KeywordBlocker`] — word-overlap filtering (the Magellan-style
//!   key-word filter used for pairwise ER);
//! * [`TfIdfBlocker`] — TF-IDF cosine top-N candidate retrieval (used to
//!   build the collective candidate sets with N = 16).
//!
//! For corpus-scale resolution the crate additionally provides the
//! streaming layer the `hiergat resolve` pipeline is built on:
//!
//! * [`CandidateSource`] — fitted blockers that *stream* per-query
//!   candidate batches instead of materialising the pair matrix, with
//!   [`TfIdfCandidates`] (sharded inverted index, dedup-mode
//!   self-exclusion) and [`KeywordCandidates`] hosted on it;
//! * [`EntityStore`] — random access to a possibly-virtual table, so
//!   million-record corpora can re-render records on demand;
//! * [`UnionFind`] — transitive clustering of accepted matches with
//!   canonical, edge-order-invariant labels.

mod cluster;
mod keyword;
mod source;
mod tfidf_block;

#[cfg(test)]
mod proptests;

pub use cluster::UnionFind;
pub use keyword::KeywordBlocker;
pub use source::{
    Candidate, CandidateSource, EntityStore, KeywordCandidates, QueryCandidates, TfIdfCandidates,
    TfIdfSourceConfig,
};
pub use tfidf_block::{PruningReport, TfIdfBlocker};
