//! Blocking: pruning the candidate space before matching.
//!
//! The paper's ER pipeline (Figure 5) runs a blocker before HierGAT. Two
//! blockers are provided, matching §2.1 and §6.3:
//!
//! * [`KeywordBlocker`] — word-overlap filtering (the Magellan-style
//!   key-word filter used for pairwise ER);
//! * [`TfIdfBlocker`] — TF-IDF cosine top-N candidate retrieval (used to
//!   build the collective candidate sets with N = 16).

mod keyword;
mod tfidf_block;

pub use keyword::KeywordBlocker;
pub use tfidf_block::TfIdfBlocker;
