//! TF-IDF cosine top-N blocking (collective candidate generation, §6.3).

use hiergat_data::Entity;
use hiergat_text::{tokenize, ShardedCosineIndex, SparseVec, TfIdf};

/// A fitted TF-IDF blocker over one candidate table, hosted on the
/// sharded inverted index (single shard by default — the Magellan-scale
/// tables this type serves don't need fan-out; corpus-scale callers use
/// [`TfIdfCandidates`](crate::TfIdfCandidates)).
pub struct TfIdfBlocker {
    tfidf: TfIdf,
    index: ShardedCosineIndex,
    n_entities: usize,
}

/// Pruning achieved by a top-`n` query: the *nominal* rate assumes the
/// full `n` candidates come back; the *actual* rate uses the retrieved
/// count, which is smaller whenever the query shares too little
/// vocabulary with the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruningReport {
    /// `1 - min(n, N) / N` — what the cutoff alone guarantees.
    pub nominal: f64,
    /// `1 - retrieved / N` — what this query actually achieved.
    pub actual: f64,
    /// Candidates the query retrieved (`<= min(n, N)`).
    pub retrieved: usize,
}

impl TfIdfBlocker {
    /// Fits the vectorizer and inverted index over the candidate table.
    pub fn fit(table: &[Entity]) -> Self {
        Self::fit_sharded(table, 1)
    }

    /// Fit with an explicit shard count (results are identical for any
    /// count; shards only change how queries parallelise).
    pub fn fit_sharded(table: &[Entity], n_shards: usize) -> Self {
        let docs: Vec<Vec<String>> = table.iter().map(|e| tokenize(&e.full_text())).collect();
        let tfidf = TfIdf::fit(&docs);
        let vectors: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = ShardedCosineIndex::build(&vectors, n_shards);
        Self { tfidf, index, n_entities: table.len() }
    }

    /// Returns the indices (into the fitted table) of the top-`n` candidates
    /// for `query`, with cosine scores, best first.
    pub fn top_n(&self, query: &Entity, n: usize) -> Vec<(usize, f32)> {
        let qvec = self.tfidf.transform(&tokenize(&query.full_text()));
        self.index.top_n(&qvec, n)
    }

    /// Number of entities in the fitted table.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Nominal fraction of the table pruned at cutoff `n` — the paper
    /// reports that top-16 filters out ~40% of negatives. The real rate
    /// can only be higher: see [`pruning_report`](Self::pruning_report).
    pub fn pruning_rate(&self, n: usize) -> f64 {
        if self.n_entities == 0 {
            return 0.0;
        }
        1.0 - (n.min(self.n_entities) as f64 / self.n_entities as f64)
    }

    /// Nominal and actual pruning for a concrete query at cutoff `n`. A
    /// vocabulary-disjoint query retrieves nothing, so its actual rate is
    /// 1.0 while the nominal rate still charges for `n` candidates.
    pub fn pruning_report(&self, query: &Entity, n: usize) -> PruningReport {
        let retrieved = self.top_n(query, n).len();
        let actual = if self.n_entities == 0 {
            0.0
        } else {
            1.0 - retrieved as f64 / self.n_entities as f64
        };
        PruningReport { nominal: self.pruning_rate(n), actual, retrieved }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: &str, text: &str) -> Entity {
        Entity::new(id, vec![("title".into(), text.into())])
    }

    fn table() -> Vec<Entity> {
        vec![
            entity("0", "canon eos 90d dslr camera body"),
            entity("1", "canon eos r6 mirrorless camera"),
            entity("2", "nikon z6 mirrorless camera"),
            entity("3", "sony wh-1000xm4 headphones wireless"),
            entity("4", "dell ultrasharp 27 monitor"),
        ]
    }

    #[test]
    fn query_retrieves_most_similar_first() {
        let blocker = TfIdfBlocker::fit(&table());
        let hits = blocker.top_n(&entity("q", "canon eos 90d camera"), 3);
        assert_eq!(hits[0].0, 0);
        assert!(hits.len() <= 3);
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1), "scores must be sorted");
    }

    #[test]
    fn unrelated_query_misses_disjoint_docs() {
        let blocker = TfIdfBlocker::fit(&table());
        let hits = blocker.top_n(&entity("q", "leather strap watch"), 5);
        assert!(hits.iter().all(|&(i, _)| i != 0), "no shared terms with doc 0: {hits:?}");
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let flat = TfIdfBlocker::fit(&table());
        let query = entity("q", "mirrorless camera");
        for shards in [2, 3, 5] {
            let sharded = TfIdfBlocker::fit_sharded(&table(), shards);
            assert_eq!(sharded.top_n(&query, 4), flat.top_n(&query, 4));
        }
    }

    #[test]
    fn pruning_rate_math() {
        let blocker = TfIdfBlocker::fit(&table());
        assert!((blocker.pruning_rate(2) - 0.6).abs() < 1e-12);
        assert_eq!(blocker.pruning_rate(100), 0.0);
        assert_eq!(blocker.n_entities(), 5);
    }

    #[test]
    fn disjoint_query_actual_pruning_beats_nominal() {
        let blocker = TfIdfBlocker::fit(&table());
        // Shares no vocabulary with the table: retrieves nothing, so the
        // actual pruning is total while the nominal rate still assumes 2
        // candidates came back.
        let report = blocker.pruning_report(&entity("q", "leather strap watch"), 2);
        assert_eq!(report.retrieved, 0);
        assert_eq!(report.actual, 1.0);
        assert!((report.nominal - 0.6).abs() < 1e-12);
        assert!(report.actual > report.nominal);
        // An in-vocabulary query that fills its cutoff matches nominal.
        let full = blocker.pruning_report(&entity("q", "mirrorless camera"), 2);
        assert_eq!(full.retrieved, 2);
        assert!((full.actual - full.nominal).abs() < 1e-12);
    }
}
