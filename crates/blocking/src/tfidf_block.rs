//! TF-IDF cosine top-N blocking (collective candidate generation, §6.3).

use hiergat_data::Entity;
use hiergat_text::{tokenize, CosineIndex, SparseVec, TfIdf};

/// A fitted TF-IDF blocker over one candidate table.
pub struct TfIdfBlocker {
    tfidf: TfIdf,
    index: CosineIndex,
    n_entities: usize,
}

impl TfIdfBlocker {
    /// Fits the vectorizer and inverted index over the candidate table.
    pub fn fit(table: &[Entity]) -> Self {
        let docs: Vec<Vec<String>> = table.iter().map(|e| tokenize(&e.full_text())).collect();
        let tfidf = TfIdf::fit(&docs);
        let vectors: Vec<SparseVec> = docs.iter().map(|d| tfidf.transform(d)).collect();
        let index = CosineIndex::build(&vectors);
        Self { tfidf, index, n_entities: table.len() }
    }

    /// Returns the indices (into the fitted table) of the top-`n` candidates
    /// for `query`, with cosine scores, best first.
    pub fn top_n(&self, query: &Entity, n: usize) -> Vec<(usize, f32)> {
        let qvec = self.tfidf.transform(&tokenize(&query.full_text()));
        self.index.top_n(&qvec, n)
    }

    /// Number of entities in the fitted table.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Fraction of the table pruned for a query at the given `n` — the
    /// paper reports that top-16 filters out ~40% of negatives.
    pub fn pruning_rate(&self, n: usize) -> f64 {
        if self.n_entities == 0 {
            return 0.0;
        }
        1.0 - (n.min(self.n_entities) as f64 / self.n_entities as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: &str, text: &str) -> Entity {
        Entity::new(id, vec![("title".into(), text.into())])
    }

    fn table() -> Vec<Entity> {
        vec![
            entity("0", "canon eos 90d dslr camera body"),
            entity("1", "canon eos r6 mirrorless camera"),
            entity("2", "nikon z6 mirrorless camera"),
            entity("3", "sony wh-1000xm4 headphones wireless"),
            entity("4", "dell ultrasharp 27 monitor"),
        ]
    }

    #[test]
    fn query_retrieves_most_similar_first() {
        let blocker = TfIdfBlocker::fit(&table());
        let hits = blocker.top_n(&entity("q", "canon eos 90d camera"), 3);
        assert_eq!(hits[0].0, 0);
        assert!(hits.len() <= 3);
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1), "scores must be sorted");
    }

    #[test]
    fn unrelated_query_misses_disjoint_docs() {
        let blocker = TfIdfBlocker::fit(&table());
        let hits = blocker.top_n(&entity("q", "leather strap watch"), 5);
        assert!(hits.iter().all(|&(i, _)| i != 0), "no shared terms with doc 0: {hits:?}");
    }

    #[test]
    fn pruning_rate_math() {
        let blocker = TfIdfBlocker::fit(&table());
        assert!((blocker.pruning_rate(2) - 0.6).abs() < 1e-12);
        assert_eq!(blocker.pruning_rate(100), 0.0);
        assert_eq!(blocker.n_entities(), 5);
    }
}
