//! Keyword-overlap blocking.

use hiergat_data::{Entity, EntityPair};
use hiergat_text::tokenize;
use std::collections::{HashMap, HashSet};

/// Word-overlap filter: a pair survives blocking if the two entities share
/// at least `min_shared` tokens (ignoring very short tokens).
#[derive(Debug, Clone)]
pub struct KeywordBlocker {
    /// Minimum number of shared tokens for a pair to survive.
    pub min_shared: usize,
    /// Tokens shorter than this are ignored (filters "a", "of", ...).
    pub min_token_len: usize,
}

impl Default for KeywordBlocker {
    fn default() -> Self {
        Self { min_shared: 1, min_token_len: 3 }
    }
}

impl KeywordBlocker {
    /// Creates a blocker requiring `min_shared` shared tokens.
    pub fn new(min_shared: usize) -> Self {
        Self { min_shared, ..Self::default() }
    }

    pub(crate) fn token_set(&self, e: &Entity) -> HashSet<String> {
        tokenize(&e.full_text()).into_iter().filter(|t| t.len() >= self.min_token_len).collect()
    }

    /// Number of qualifying shared tokens between two entities.
    pub fn shared_tokens(&self, a: &Entity, b: &Entity) -> usize {
        let sa = self.token_set(a);
        let sb = self.token_set(b);
        sa.intersection(&sb).count()
    }

    /// `true` if the pair survives blocking.
    pub fn keep(&self, a: &Entity, b: &Entity) -> bool {
        self.shared_tokens(a, b) >= self.min_shared
    }

    /// Filters a pair list, keeping survivors. Token sets are cached per
    /// entity for the duration of the pass (keyed by rendered text), so an
    /// entity appearing in many pairs is tokenized once — the same trick
    /// `block_cross` plays for its right table.
    pub fn filter_pairs(&self, pairs: Vec<EntityPair>) -> Vec<EntityPair> {
        let mut cache = TokenCache::default();
        pairs.into_iter().filter(|p| self.keep_cached(&mut cache, &p.left, &p.right)).collect()
    }

    /// `keep` with a pass-scoped token-set cache.
    fn keep_cached(&self, cache: &mut TokenCache, a: &Entity, b: &Entity) -> bool {
        let ka = cache.ensure(self, a);
        let kb = cache.ensure(self, b);
        cache.get(&ka).intersection(cache.get(&kb)).count() >= self.min_shared
    }

    /// Blocks the full cross product of two collections, returning index
    /// pairs that survive. Quadratic; intended for the small synthetic
    /// tables.
    pub fn block_cross(&self, left: &[Entity], right: &[Entity]) -> Vec<(usize, usize)> {
        let right_sets: Vec<HashSet<String>> = right.iter().map(|e| self.token_set(e)).collect();
        let mut out = Vec::new();
        for (i, l) in left.iter().enumerate() {
            let ls = self.token_set(l);
            for (j, rs) in right_sets.iter().enumerate() {
                if ls.intersection(rs).count() >= self.min_shared {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Pass-scoped token-set cache keyed by an entity's rendered full text
/// (text-keyed so colliding entity ids with different attributes cannot
/// alias; identical texts trivially share one set).
#[derive(Debug, Default)]
struct TokenCache {
    sets: HashMap<String, HashSet<String>>,
    hits: usize,
    misses: usize,
}

impl TokenCache {
    /// Tokenizes `e` unless its text is already cached; returns the key.
    fn ensure(&mut self, blocker: &KeywordBlocker, e: &Entity) -> String {
        let key = e.full_text();
        if self.sets.contains_key(&key) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.sets.insert(key.clone(), blocker.token_set(e));
        }
        key
    }

    fn get(&self, key: &str) -> &HashSet<String> {
        &self.sets[key]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: &str, text: &str) -> Entity {
        Entity::new(id, vec![("title".into(), text.into())])
    }

    #[test]
    fn filter_pairs_tokenizes_each_entity_once() {
        let b = KeywordBlocker::new(1);
        let hub = entity("hub", "canon eos camera");
        let pairs: Vec<EntityPair> = (0..4)
            .map(|i| {
                EntityPair::new(
                    hub.clone(),
                    entity(&format!("s{i}"), &format!("canon kit lens mark{i}")),
                    true,
                )
            })
            .collect();
        let mut cache = TokenCache::default();
        for p in &pairs {
            assert!(b.keep_cached(&mut cache, &p.left, &p.right));
        }
        // 4 pairs x 2 sides = 8 lookups; 5 distinct texts tokenized once
        // each, the hub's 3 repeats served from cache.
        assert_eq!(cache.misses, 5);
        assert_eq!(cache.hits, 3);
    }

    #[test]
    fn cached_filter_matches_uncached_keep() {
        let b = KeywordBlocker::new(2);
        let pairs = vec![
            EntityPair::new(entity("a", "canon eos camera"), entity("b", "canon eos body"), true),
            EntityPair::new(entity("a", "canon eos camera"), entity("c", "nikon lens"), false),
            EntityPair::new(entity("d", "dell monitor"), entity("e", "dell monitor arm"), true),
        ];
        let want: Vec<bool> = pairs.iter().map(|p| b.keep(&p.left, &p.right)).collect();
        let kept = b.filter_pairs(pairs.clone());
        let got: Vec<bool> = pairs
            .iter()
            .map(|p| kept.iter().any(|k| k.left.id == p.left.id && k.right.id == p.right.id))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn keeps_overlapping_pairs() {
        let b = KeywordBlocker::new(1);
        assert!(b.keep(&entity("a", "canon camera"), &entity("b", "canon eos")));
        assert!(!b.keep(&entity("a", "canon camera"), &entity("b", "leather watch")));
    }

    #[test]
    fn short_tokens_are_ignored() {
        let b = KeywordBlocker::default();
        assert!(!b.keep(&entity("a", "x of y"), &entity("b", "z of w")));
    }

    #[test]
    fn min_shared_threshold() {
        let b = KeywordBlocker::new(2);
        assert!(!b.keep(&entity("a", "canon camera"), &entity("b", "canon watch")));
        assert!(b.keep(&entity("a", "canon eos camera"), &entity("b", "canon eos body")));
    }

    #[test]
    fn filter_pairs_reduces() {
        let b = KeywordBlocker::new(1);
        let pairs = vec![
            EntityPair::new(entity("a", "alpha beta"), entity("b", "beta gamma"), true),
            EntityPair::new(entity("c", "delta"), entity("d", "omega"), false),
        ];
        let kept = b.filter_pairs(pairs);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].label);
    }

    #[test]
    fn cross_blocking_finds_matching_cells() {
        let b = KeywordBlocker::new(1);
        let left = vec![entity("l0", "apple pie"), entity("l1", "banana bread")];
        let right = vec![entity("r0", "apple tart"), entity("r1", "cherry cake")];
        let blocked = b.block_cross(&left, &right);
        assert_eq!(blocked, vec![(0, 0)]);
    }
}
