//! Streaming candidate generation.
//!
//! The old blockers materialised candidate lists (or whole pair
//! matrices) up front — fine for Magellan tables, fatal at 10^6 records
//! where the candidate set alone is ~10^7 pairs. [`CandidateSource`]
//! inverts that: a fitted source *streams* `(query, candidates)` batches
//! of a fixed size, so downstream consumers (scoring, clustering) hold at
//! most one batch of candidates at a time. Query batches are fanned over
//! the vendored `parallel` pool one query per output slot, which keeps
//! every batch bitwise-identical to a serial scan at any pool width.

use crate::KeywordBlocker;
use hiergat_data::Entity;
use hiergat_text::{
    stop_terms_of, tokenize, ShardedCosineIndex, ShardedIndexBuilder, SparseVec, TfIdf,
    TfIdfBuilder,
};
use std::collections::HashMap;

/// Random access to a (possibly virtual) entity table. Implementations
/// may materialise rows on demand — the million-record synthetic corpus
/// re-renders entities from seeds instead of storing them.
pub trait EntityStore: Sync {
    fn len(&self) -> usize;
    /// Renders record `i`. May allocate; callers should not assume two
    /// calls are free.
    fn entity(&self, i: usize) -> Entity;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EntityStore for [Entity] {
    fn len(&self) -> usize {
        <[Entity]>::len(self)
    }
    fn entity(&self, i: usize) -> Entity {
        self[i].clone()
    }
}

impl EntityStore for Vec<Entity> {
    fn len(&self) -> usize {
        <[Entity]>::len(self)
    }
    fn entity(&self, i: usize) -> Entity {
        self[i].clone()
    }
}

/// The million-record synthetic corpus re-renders records from seeds.
impl EntityStore for hiergat_data::SynthCorpus {
    fn len(&self) -> usize {
        hiergat_data::SynthCorpus::len(self)
    }
    fn entity(&self, i: usize) -> Entity {
        hiergat_data::SynthCorpus::entity(self, i)
    }
}

/// One retrieved candidate: a record index in the fitted table and the
/// blocker's similarity score for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    pub id: usize,
    pub score: f32,
}

/// A query record together with its retrieved candidates, best first.
#[derive(Debug, Clone, Default)]
pub struct QueryCandidates {
    pub query: usize,
    pub candidates: Vec<Candidate>,
}

/// A fitted blocker that streams candidates per query instead of
/// materialising the pair matrix.
pub trait CandidateSource: Sync {
    /// Number of query records.
    fn n_queries(&self) -> usize;

    /// Retrieves candidates for query `i` into `out` (cleared first),
    /// best first. Dedup-mode sources exclude the query itself.
    fn fill_candidates(&self, query: usize, out: &mut Vec<Candidate>);

    /// Streams `(query, candidates)` batches of at most `batch_size`
    /// queries in ascending query order. Candidate retrieval inside a
    /// batch is fanned over the `parallel` pool (one query per output
    /// slot — deterministic at any width); `f` observes each batch on the
    /// calling thread, and no more than one batch is alive at a time.
    fn for_each_batch<F: FnMut(&[QueryCandidates])>(&self, batch_size: usize, mut f: F)
    where
        Self: Sized,
    {
        assert!(batch_size > 0, "batch size must be positive");
        let n = self.n_queries();
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            let ids: Vec<usize> = (start..end).collect();
            let batch: Vec<QueryCandidates> = parallel::par_map(&ids, |&q| {
                let mut candidates = Vec::new();
                self.fill_candidates(q, &mut candidates);
                QueryCandidates { query: q, candidates }
            });
            f(&batch);
            start = end;
        }
    }
}

/// Configuration for [`TfIdfCandidates`].
#[derive(Debug, Clone)]
pub struct TfIdfSourceConfig {
    /// Candidates retrieved per query (after self-exclusion).
    pub top_n: usize,
    /// Candidates scoring below this cosine are dropped.
    pub min_score: f32,
    /// Inverted-index shards.
    pub n_shards: usize,
    /// Prune terms whose document frequency exceeds this fraction of the
    /// corpus (`None` disables). DF is global, so pruning does not affect
    /// shard-count invariance.
    pub max_df: Option<f64>,
    /// Records tokenized/transformed per parallel chunk during fitting.
    pub fit_chunk: usize,
}

impl Default for TfIdfSourceConfig {
    fn default() -> Self {
        Self { top_n: 8, min_score: 0.15, n_shards: 8, max_df: Some(0.01), fit_chunk: 4096 }
    }
}

/// TF-IDF cosine top-N retrieval over a sharded inverted index, in
/// dedup mode (every record queries the table it lives in; self-matches
/// are excluded).
pub struct TfIdfCandidates {
    tfidf: TfIdf,
    index: ShardedCosineIndex,
    queries: Vec<SparseVec>,
    top_n: usize,
    min_score: f32,
    exclude_self: bool,
}

impl TfIdfCandidates {
    /// Two streaming passes over `store`: fit the vectorizer, then build
    /// the sharded index and query vectors. Peak transient memory is one
    /// `fit_chunk` of token lists; the retained state is the index
    /// postings plus one sparse vector per record.
    pub fn fit_dedup(store: &dyn EntityStore, cfg: &TfIdfSourceConfig) -> Self {
        let n = store.len();
        let ids: Vec<usize> = (0..n).collect();

        // Pass 1: stream document frequencies.
        let mut fit = TfIdfBuilder::new();
        for chunk in ids.chunks(cfg.fit_chunk.max(1)) {
            let toks: Vec<Vec<String>> =
                parallel::par_map(chunk, |&i| tokenize(&store.entity(i).full_text()));
            for t in &toks {
                fit.add_doc(t);
            }
        }
        let tfidf = fit.finish();

        // Pass 2: transform and index. Stop-term pruning drops postings
        // for ubiquitous terms; query vectors keep them (their dot
        // contribution vanishes against the pruned index either way).
        let stop = cfg.max_df.map(|r| stop_terms_of(&tfidf, r)).unwrap_or_default();
        let mut builder = ShardedIndexBuilder::new(cfg.n_shards).with_stop_terms(stop);
        let mut queries: Vec<SparseVec> = Vec::with_capacity(n);
        for chunk in ids.chunks(cfg.fit_chunk.max(1)) {
            let vecs: Vec<SparseVec> = parallel::par_map(chunk, |&i| {
                tfidf.transform(&tokenize(&store.entity(i).full_text()))
            });
            for v in vecs {
                builder.push(&v);
                queries.push(v);
            }
        }
        Self {
            tfidf,
            index: builder.finish(),
            queries,
            top_n: cfg.top_n,
            min_score: cfg.min_score,
            exclude_self: true,
        }
    }

    /// Cross mode: fit on `table`, query with separate records (no
    /// self-exclusion).
    pub fn fit_cross(queries: &[Entity], table: &dyn EntityStore, cfg: &TfIdfSourceConfig) -> Self {
        let mut source = Self::fit_dedup(table, cfg);
        source.queries =
            queries.iter().map(|e| source.tfidf.transform(&tokenize(&e.full_text()))).collect();
        source.exclude_self = false;
        source
    }

    pub fn tfidf(&self) -> &TfIdf {
        &self.tfidf
    }

    pub fn index(&self) -> &ShardedCosineIndex {
        &self.index
    }

    /// Bytes retained by the fitted source: index postings plus stored
    /// query vectors (the peak-RSS proxy contribution of blocking).
    pub fn memory_bytes(&self) -> u64 {
        const HDR: u64 = size_of::<SparseVec>() as u64;
        const ENTRY: u64 = size_of::<(usize, f32)>() as u64;
        let query_bytes: u64 = self.queries.iter().map(|q| HDR + q.nnz() as u64 * ENTRY).sum();
        self.index.memory_bytes() + query_bytes
    }
}

impl CandidateSource for TfIdfCandidates {
    fn n_queries(&self) -> usize {
        self.queries.len()
    }

    fn fill_candidates(&self, query: usize, out: &mut Vec<Candidate>) {
        out.clear();
        let fetch = self.top_n + usize::from(self.exclude_self);
        for (doc, score) in self.index.top_n(&self.queries[query], fetch) {
            if self.exclude_self && doc == query {
                continue;
            }
            if score < self.min_score || out.len() == self.top_n {
                break;
            }
            out.push(Candidate { id: doc, score });
        }
    }
}

/// Keyword-overlap retrieval re-hosted on token postings, in dedup mode.
/// The score of a candidate is its shared-token count; candidates are
/// ranked (count descending, id ascending) and capped at `top_n`.
pub struct KeywordCandidates {
    postings: Vec<Vec<u32>>,
    doc_tokens: Vec<Vec<u32>>,
    min_shared: usize,
    top_n: usize,
}

impl KeywordCandidates {
    pub fn fit_dedup(store: &dyn EntityStore, blocker: &KeywordBlocker, top_n: usize) -> Self {
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut postings: Vec<Vec<u32>> = Vec::new();
        let mut doc_tokens: Vec<Vec<u32>> = Vec::with_capacity(store.len());
        for i in 0..store.len() {
            let doc = u32::try_from(i).expect("keyword source holds at most u32::MAX docs");
            let mut ids: Vec<u32> = blocker
                .token_set(&store.entity(i))
                .into_iter()
                .map(|tok| {
                    let next = vocab.len() as u32;
                    let id = *vocab.entry(tok).or_insert(next);
                    if id as usize == postings.len() {
                        postings.push(Vec::new());
                    }
                    postings[id as usize].push(doc);
                    id
                })
                .collect();
            ids.sort_unstable();
            doc_tokens.push(ids);
        }
        Self { postings, doc_tokens, min_shared: blocker.min_shared, top_n }
    }
}

impl CandidateSource for KeywordCandidates {
    fn n_queries(&self) -> usize {
        self.doc_tokens.len()
    }

    fn fill_candidates(&self, query: usize, out: &mut Vec<Candidate>) {
        out.clear();
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &tok in &self.doc_tokens[query] {
            for &doc in &self.postings[tok as usize] {
                if doc as usize != query {
                    *counts.entry(doc).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(u32, u32)> =
            counts.into_iter().filter(|&(_, shared)| shared as usize >= self.min_shared).collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.top_n);
        out.extend(
            ranked
                .into_iter()
                .map(|(doc, shared)| Candidate { id: doc as usize, score: shared as f32 }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: &str, text: &str) -> Entity {
        Entity::new(id, vec![("title".into(), text.into())])
    }

    fn table() -> Vec<Entity> {
        vec![
            entity("0", "canon eos r5 mirrorless camera"),
            entity("1", "canon eos r5 mirrorless camera"),
            entity("2", "nikon z6 mirrorless camera"),
            entity("3", "dell ultrasharp monitor panel"),
            entity("4", "lg ultrawide monitor panel"),
        ]
    }

    fn cfg() -> TfIdfSourceConfig {
        TfIdfSourceConfig { top_n: 3, min_score: 0.05, n_shards: 2, max_df: None, fit_chunk: 2 }
    }

    #[test]
    fn dedup_mode_excludes_self() {
        let source = TfIdfCandidates::fit_dedup(&table(), &cfg());
        for q in 0..source.n_queries() {
            let mut out = Vec::new();
            source.fill_candidates(q, &mut out);
            assert!(out.iter().all(|c| c.id != q), "query {q} retrieved itself: {out:?}");
        }
    }

    #[test]
    fn duplicate_records_retrieve_each_other_first() {
        let source = TfIdfCandidates::fit_dedup(&table(), &cfg());
        let mut out = Vec::new();
        source.fill_candidates(0, &mut out);
        assert_eq!(out[0].id, 1);
        assert!(out[0].score > 0.99);
        source.fill_candidates(1, &mut out);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn batches_stream_every_query_once_in_order() {
        let source = TfIdfCandidates::fit_dedup(&table(), &cfg());
        let mut seen: Vec<usize> = Vec::new();
        let mut max_batch = 0;
        source.for_each_batch(2, |batch| {
            max_batch = max_batch.max(batch.len());
            seen.extend(batch.iter().map(|qc| qc.query));
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert!(max_batch <= 2);
    }

    #[test]
    fn cross_mode_keeps_self_ids() {
        let right = table();
        let queries = vec![entity("q", "canon eos r5 camera")];
        let source = TfIdfCandidates::fit_cross(&queries, &right, &cfg());
        assert_eq!(source.n_queries(), 1);
        let mut out = Vec::new();
        source.fill_candidates(0, &mut out);
        assert_eq!(out[0].id, 0, "best candidate should be the first r5 record");
    }

    #[test]
    fn keyword_source_ranks_by_shared_count() {
        let blocker = KeywordBlocker::new(1);
        let source = KeywordCandidates::fit_dedup(&table(), &blocker, 4);
        let mut out = Vec::new();
        source.fill_candidates(0, &mut out);
        // Doc 1 shares all 4 qualifying tokens ("r5" is below the length
        // floor), doc 2 shares {mirrorless, camera}.
        assert_eq!(out[0].id, 1);
        assert_eq!(out[0].score, 4.0);
        assert_eq!(out[1].id, 2);
        assert!(out.iter().all(|c| c.id != 0));
    }

    #[test]
    fn memory_bytes_grows_with_corpus() {
        let small = TfIdfCandidates::fit_dedup(&table()[..2].to_vec(), &cfg());
        let full = TfIdfCandidates::fit_dedup(&table(), &cfg());
        assert!(full.memory_bytes() > small.memory_bytes());
    }
}
