//! The Hierarchical Heterogeneous Graph (HHG, §2.2 of the paper) and
//! graph-attention operators.
//!
//! Provides the three-layer token/attribute/entity graph with token
//! deduplication, the `GraphAttn` aggregation used by HierGAT's contextual
//! embeddings (Eq. 1-3), and homogeneous GCN/GAT layers for the baseline
//! models of Table 7.

mod attn;
mod hhg;
mod layers;

pub use attn::{GraphAttn, GAT_SLOPE};
pub use hhg::{AttrNode, EntityNode, Hhg};
pub use layers::{GatLayer, GcnLayer};
