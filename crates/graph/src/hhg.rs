//! The Hierarchical Heterogeneous Graph (HHG) of §2.2.
//!
//! Three node layers — tokens, attributes, entities — with Token-Attribute,
//! Attribute-Entity, and Entity-Entity relations. Distinct words become a
//! single token node even when they occur in several attributes or entities
//! (Figure 4); attribute nodes are **not** merged across entities even when
//! they share a key.

use hiergat_data::{Entity, EntityPair};
use hiergat_text::tokenize;
use std::collections::HashMap;

/// An attribute node: one `<key, val>` of one entity.
#[derive(Debug, Clone)]
pub struct AttrNode {
    /// The attribute key (not unique across the graph).
    pub key: String,
    /// Owning entity node index.
    pub entity: usize,
    /// Token node ids of the value, **in text order** (word positions carry
    /// semantics, §2.2).
    pub token_seq: Vec<usize>,
}

/// An entity node.
#[derive(Debug, Clone)]
pub struct EntityNode {
    /// The entity's source identifier.
    pub id: String,
    /// Attribute node indices, in schema order.
    pub attr_nodes: Vec<usize>,
}

/// The hierarchical heterogeneous graph.
#[derive(Debug, Clone, Default)]
pub struct Hhg {
    /// Token node id -> token string (deduplicated).
    pub tokens: Vec<String>,
    token_index: HashMap<String, usize>,
    /// Attribute nodes.
    pub attributes: Vec<AttrNode>,
    /// Entity nodes.
    pub entities: Vec<EntityNode>,
    /// Entity-Entity relation edges (for collective ER: query -> candidate).
    pub entity_edges: Vec<(usize, usize)>,
}

impl Hhg {
    /// Builds an HHG from any number of entities. Entity 0 is the query in
    /// the collective setting; an entity-entity edge links it to every other
    /// entity (the matching relation network of Figure 2).
    pub fn from_entities(entities: &[Entity]) -> Self {
        let mut g = Hhg::default();
        for e in entities {
            g.add_entity(e);
        }
        for i in 1..g.entities.len() {
            g.entity_edges.push((0, i));
        }
        debug_assert_eq!(g.validate(), Vec::<String>::new(), "Hhg builder invariant");
        g
    }

    /// Builds the two-entity HHG of pairwise ER.
    pub fn from_pair(pair: &EntityPair) -> Self {
        Self::from_entities(&[pair.left.clone(), pair.right.clone()])
    }

    fn token_node(&mut self, tok: &str) -> usize {
        if let Some(&id) = self.token_index.get(tok) {
            return id;
        }
        let id = self.tokens.len();
        self.tokens.push(tok.to_string());
        self.token_index.insert(tok.to_string(), id);
        id
    }

    fn add_entity(&mut self, e: &Entity) -> usize {
        let entity_id = self.entities.len();
        let mut attr_nodes = Vec::with_capacity(e.arity());
        for (key, val) in &e.attrs {
            let token_seq: Vec<usize> = tokenize(val).iter().map(|t| self.token_node(t)).collect();
            let attr_id = self.attributes.len();
            self.attributes.push(AttrNode { key: key.clone(), entity: entity_id, token_seq });
            attr_nodes.push(attr_id);
        }
        self.entities.push(EntityNode { id: e.id.clone(), attr_nodes });
        entity_id
    }

    /// Number of token nodes.
    pub fn n_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Number of attribute nodes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of entity nodes.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Total node count across all three layers.
    pub fn n_nodes(&self) -> usize {
        self.n_tokens() + self.n_attributes() + self.n_entities()
    }

    /// Token node id of a string, if present.
    pub fn token_id(&self, tok: &str) -> Option<usize> {
        self.token_index.get(tok).copied()
    }

    /// The distinct attribute keys, in first-seen order (the unique
    /// attribute set `\bar{V^a}` of §4.2).
    pub fn unique_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        for a in &self.attributes {
            if !keys.contains(&a.key) {
                keys.push(a.key.clone());
            }
        }
        keys
    }

    /// Attribute node indices sharing `key`.
    pub fn attrs_with_key(&self, key: &str) -> Vec<usize> {
        self.attributes.iter().enumerate().filter(|(_, a)| a.key == key).map(|(i, _)| i).collect()
    }

    /// Attribute node indices that contain token node `tok`.
    pub fn attrs_containing_token(&self, tok: usize) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.token_seq.contains(&tok))
            .map(|(i, _)| i)
            .collect()
    }

    /// Token node ids that occur in more than one entity — the *common
    /// tokens* whose redundant contribution the entity-level context removes
    /// (§4.2, Eq. 2-3).
    pub fn common_tokens(&self) -> Vec<usize> {
        let mut seen_by: Vec<Option<usize>> = vec![None; self.n_tokens()];
        let mut common = vec![false; self.n_tokens()];
        for a in &self.attributes {
            for &t in &a.token_seq {
                match seen_by[t] {
                    None => seen_by[t] = Some(a.entity),
                    Some(e) if e != a.entity => common[t] = true,
                    _ => {}
                }
            }
        }
        common.iter().enumerate().filter(|(_, &c)| c).map(|(i, _)| i).collect()
    }

    /// Checks the structural invariants of the three-layer graph and
    /// returns one message per violation (empty = valid): every attribute's
    /// token ids and owning entity must be in range, entity→attribute links
    /// must agree with the attribute's back-pointer, the token index must
    /// mirror `tokens`, and entity-entity edges must reference distinct
    /// in-range entities.
    ///
    /// The builders uphold these invariants by construction
    /// (`debug_assert`ed); the check exists for graphs assembled or mutated
    /// by hand and for the pre-flight analysis pass.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for (ai, a) in self.attributes.iter().enumerate() {
            if a.entity >= self.n_entities() {
                errs.push(format!("attr #{ai} ({}): entity {} out of range", a.key, a.entity));
            } else if !self.entities[a.entity].attr_nodes.contains(&ai) {
                errs.push(format!("attr #{ai} ({}): not listed by its entity {}", a.key, a.entity));
            }
            for &t in &a.token_seq {
                if t >= self.n_tokens() {
                    errs.push(format!("attr #{ai} ({}): token {t} out of range", a.key));
                }
            }
        }
        for (ei, e) in self.entities.iter().enumerate() {
            for &ai in &e.attr_nodes {
                if ai >= self.n_attributes() {
                    errs.push(format!("entity #{ei} ({}): attr {ai} out of range", e.id));
                } else if self.attributes[ai].entity != ei {
                    errs.push(format!(
                        "entity #{ei} ({}): attr {ai} owned by another entity",
                        e.id
                    ));
                }
            }
        }
        if self.token_index.len() != self.tokens.len() {
            errs.push(format!(
                "token index has {} entries for {} token nodes",
                self.token_index.len(),
                self.tokens.len()
            ));
        }
        for (tok, &id) in &self.token_index {
            if self.tokens.get(id).map(String::as_str) != Some(tok.as_str()) {
                errs.push(format!("token index maps {tok:?} to mismatched node {id}"));
            }
        }
        for &(x, y) in &self.entity_edges {
            if x >= self.n_entities() || y >= self.n_entities() {
                errs.push(format!("entity edge ({x}, {y}) out of range"));
            } else if x == y {
                errs.push(format!("entity edge ({x}, {y}) is a self-loop"));
            }
        }
        errs
    }

    /// Flattens the HHG into an undirected homogeneous adjacency (neighbor
    /// lists) over all nodes, ordered tokens, then attributes, then
    /// entities. Used by the GCN/GAT/HGAT baselines that ignore node types.
    pub fn homogeneous_adjacency(&self) -> Vec<Vec<usize>> {
        let nt = self.n_tokens();
        let na = self.n_attributes();
        let mut adj = vec![Vec::new(); self.n_nodes()];
        for (ai, a) in self.attributes.iter().enumerate() {
            let a_node = nt + ai;
            for &t in &a.token_seq {
                if !adj[t].contains(&a_node) {
                    adj[t].push(a_node);
                    adj[a_node].push(t);
                }
            }
            let e_node = nt + na + a.entity;
            adj[a_node].push(e_node);
            adj[e_node].push(a_node);
        }
        for &(x, y) in &self.entity_edges {
            adj[nt + na + x].push(nt + na + y);
            adj[nt + na + y].push(nt + na + x);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: &str, attrs: &[(&str, &str)]) -> Entity {
        Entity::new(id, attrs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect())
    }

    fn sample_pair() -> EntityPair {
        EntityPair::new(
            entity("e1", &[("title", "apache spark framework"), ("desc", "big data framework")]),
            entity("e2", &[("title", "adobe spark"), ("desc", "video design")]),
            false,
        )
    }

    #[test]
    fn tokens_are_deduplicated() {
        let g = Hhg::from_pair(&sample_pair());
        // "framework" appears in two attributes but is one node (Figure 4).
        let fw = g.token_id("framework").expect("framework node");
        assert_eq!(g.tokens.iter().filter(|t| *t == "framework").count(), 1);
        assert_eq!(g.attrs_containing_token(fw).len(), 2);
        // "spark" appears in both entities: one node.
        assert_eq!(g.tokens.iter().filter(|t| *t == "spark").count(), 1);
    }

    #[test]
    fn attribute_nodes_are_not_merged() {
        let g = Hhg::from_pair(&sample_pair());
        // Two "desc" attribute nodes, one per entity (Figure 4).
        assert_eq!(g.attrs_with_key("desc").len(), 2);
        assert_eq!(g.n_attributes(), 4);
        assert_eq!(g.unique_keys(), vec!["title".to_string(), "desc".to_string()]);
    }

    #[test]
    fn token_order_is_preserved() {
        let g = Hhg::from_pair(&sample_pair());
        let title = &g.attributes[0];
        let words: Vec<&str> = title.token_seq.iter().map(|&t| g.tokens[t].as_str()).collect();
        assert_eq!(words, vec!["apache", "spark", "framework"]);
    }

    #[test]
    fn collective_graph_links_query_to_candidates() {
        let es = vec![
            entity("q", &[("t", "a b")]),
            entity("c1", &[("t", "a c")]),
            entity("c2", &[("t", "b d")]),
        ];
        let g = Hhg::from_entities(&es);
        assert_eq!(g.n_entities(), 3);
        assert_eq!(g.entity_edges, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn common_tokens_cross_entities_only() {
        let g = Hhg::from_pair(&sample_pair());
        let common = g.common_tokens();
        let spark = g.token_id("spark").expect("spark");
        let apache = g.token_id("apache").expect("apache");
        assert!(common.contains(&spark), "spark is shared by both entities");
        assert!(!common.contains(&apache), "apache is only in e1");
        // "framework" occurs twice but only within e1.
        let fw = g.token_id("framework").expect("fw");
        assert!(!common.contains(&fw));
    }

    #[test]
    fn homogeneous_adjacency_is_symmetric() {
        let g = Hhg::from_pair(&sample_pair());
        let adj = g.homogeneous_adjacency();
        assert_eq!(adj.len(), g.n_nodes());
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                assert!(adj[v].contains(&u), "edge {u}-{v} not symmetric");
            }
        }
    }

    #[test]
    fn entity_attr_links_are_consistent() {
        let g = Hhg::from_pair(&sample_pair());
        for (ei, e) in g.entities.iter().enumerate() {
            for &ai in &e.attr_nodes {
                assert_eq!(g.attributes[ai].entity, ei);
            }
        }
    }

    #[test]
    fn nan_values_become_token_nodes() {
        let g = Hhg::from_entities(&[entity("e", &[("x", "NAN")])]);
        assert!(g.token_id("nan").is_some());
    }

    #[test]
    fn built_graphs_validate_clean() {
        assert_eq!(Hhg::from_pair(&sample_pair()).validate(), Vec::<String>::new());
        assert_eq!(Hhg::default().validate(), Vec::<String>::new());
    }

    #[test]
    fn validate_catches_hand_assembled_corruption() {
        let mut g = Hhg::from_pair(&sample_pair());
        g.attributes[0].token_seq.push(9999); // dangling token id
        g.entity_edges.push((0, 0)); // self-loop
        g.entity_edges.push((5, 0)); // out of range
        let errs = g.validate();
        assert_eq!(errs.len(), 3, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("token 9999")));
        assert!(errs.iter().any(|e| e.contains("self-loop")));
        assert!(errs.iter().any(|e| e.contains("out of range")));
    }

    #[test]
    fn validate_catches_broken_ownership() {
        let mut g = Hhg::from_pair(&sample_pair());
        g.attributes[0].entity = 1; // disagrees with entity 0's attr list
        let errs = g.validate();
        assert!(!errs.is_empty());
        assert!(errs.iter().any(|e| e.contains("owned by another entity")), "{errs:?}");
    }
}
