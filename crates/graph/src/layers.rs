//! Whole-graph GNN layers over neighbor lists (used by the GCN / GAT / HGAT
//! baselines of Table 7).

use crate::attn::GAT_SLOPE;
use hiergat_nn::{Linear, ParamId, ParamStore, Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// A GCN layer: `H' = act(D^{-1/2} (A + I) D^{-1/2} H W)` with the
/// normalized adjacency built once per graph.
pub struct GcnLayer {
    w: Linear,
}

impl GcnLayer {
    /// Registers the layer's projection.
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self { w: Linear::new(ps, &format!("{prefix}.w"), d_in, d_out, true, rng) }
    }

    /// Builds the dense symmetric-normalized adjacency with self-loops.
    pub fn normalized_adjacency(adj: &[Vec<usize>]) -> Tensor {
        let n = adj.len();
        let mut a = Tensor::zeros(n, n);
        for (u, nbrs) in adj.iter().enumerate() {
            a.set(u, u, 1.0);
            for &v in nbrs {
                a.set(u, v, 1.0);
            }
        }
        let mut deg = vec![0.0f32; n];
        for (u, d) in deg.iter_mut().enumerate() {
            *d = a.row(u).iter().sum::<f32>().max(1.0);
        }
        for u in 0..n {
            for v in 0..n {
                let val = a.get(u, v);
                if val != 0.0 {
                    a.set(u, v, val / (deg[u].sqrt() * deg[v].sqrt()));
                }
            }
        }
        a
    }

    /// Applies the layer. `norm_adj` should come from
    /// [`Self::normalized_adjacency`].
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, x: Var, norm_adj: &Tensor) -> Var {
        let a = t.input(norm_adj.clone());
        let agg = t.matmul(a, x);
        let h = self.w.forward(t, ps, agg);
        t.relu(h)
    }
}

/// A (single-head) GAT layer over neighbor lists.
///
/// For each node `i`, attention logits over `j in N(i) ∪ {i}` are
/// `LeakyReLU(a^T [W h_i || W h_j])`; the output is the attention-weighted
/// sum of projected neighbors.
pub struct GatLayer {
    w: Linear,
    a_src: ParamId,
    a_dst: ParamId,
    d_out: usize,
}

impl GatLayer {
    /// Registers the layer parameters.
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = Linear::new(ps, &format!("{prefix}.w"), d_in, d_out, false, rng);
        let a_src = ps.add(format!("{prefix}.a_src"), Tensor::rand_normal(d_out, 1, 0.0, 0.3, rng));
        let a_dst = ps.add(format!("{prefix}.a_dst"), Tensor::rand_normal(d_out, 1, 0.0, 0.3, rng));
        Self { w, a_src, a_dst, d_out }
    }

    /// Applies the layer to node features `x` (`n x d_in`) over `adj`.
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, x: Var, adj: &[Vec<usize>]) -> Var {
        let n = t.value(x).rows();
        assert_eq!(n, adj.len(), "GatLayer: node count mismatch");
        let wh = self.w.forward(t, ps, x); // n x d_out
        let a_src = t.param(ps, self.a_src);
        let a_dst = t.param(ps, self.a_dst);
        // Per-node scalar scores: s_i = (W h_i) a_src, d_j = (W h_j) a_dst.
        let s = t.matmul(wh, a_src); // n x 1
        let d = t.matmul(wh, a_dst); // n x 1
        let mut out_rows = Vec::with_capacity(n);
        for (i, adj_i) in adj.iter().enumerate().take(n) {
            // Neighborhood incl. self.
            let mut nbrs = vec![i];
            nbrs.extend(adj_i.iter().copied());
            let si = t.row(s, i); // 1 x 1
            let dj = t.gather_rows(d, &nbrs); // k x 1
                                              // logits_j = LeakyReLU(s_i + d_j)
            let si_broadcast = {
                let ones = t.input(Tensor::ones(nbrs.len(), 1));
                t.matmul(ones, si)
            };
            let logits = t.add(si_broadcast, dj);
            let logits = t.leaky_relu(logits, GAT_SLOPE);
            let lt = t.transpose(logits); // 1 x k
            let att = t.softmax(lt); // 1 x k
            let nh = t.gather_rows(wh, &nbrs); // k x d_out
            out_rows.push(t.matmul(att, nh)); // 1 x d_out
        }
        let merged = t.concat_rows(&out_rows);
        t.relu(merged)
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.d_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_nn::gradcheck::assert_gradients_ok;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn gcn_normalized_adjacency_rows() {
        let a = GcnLayer::normalized_adjacency(&path_graph(3));
        assert_eq!(a.shape(), (3, 3));
        // Symmetric.
        for i in 0..3 {
            for j in 0..3 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-6);
            }
        }
        // Self-loops present.
        assert!(a.get(0, 0) > 0.0);
        // Non-edges stay zero.
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn gcn_forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let layer = GcnLayer::new(&mut ps, "gcn", 4, 6, &mut rng);
        let adj = path_graph(5);
        let na = GcnLayer::normalized_adjacency(&adj);
        let mut t = Tape::new();
        let x = t.input(Tensor::rand_normal(5, 4, 0.0, 1.0, &mut rng));
        let y = layer.forward(&mut t, &ps, x, &na);
        assert_eq!(t.value(y).shape(), (5, 6));
    }

    #[test]
    fn gat_forward_shape_and_isolated_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let layer = GatLayer::new(&mut ps, "gat", 4, 5, &mut rng);
        // Graph with an isolated node (only self-loop in attention).
        let adj = vec![vec![1], vec![0], vec![]];
        let mut t = Tape::new();
        let x = t.input(Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng));
        let y = layer.forward(&mut t, &ps, x, &adj);
        assert_eq!(t.value(y).shape(), (3, 5));
        assert_eq!(layer.d_out(), 5);
    }

    #[test]
    fn gcn_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let layer = GcnLayer::new(&mut ps, "gcn", 3, 3, &mut rng);
        let adj = path_graph(4);
        let na = GcnLayer::normalized_adjacency(&adj);
        let x = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let y = layer.forward(t, ps, xv, &na);
                t.mean_all(y)
            },
            1e-3,
            3e-2,
        );
    }

    #[test]
    fn gat_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let layer = GatLayer::new(&mut ps, "gat", 3, 3, &mut rng);
        let adj = path_graph(3);
        let x = Tensor::rand_normal(3, 3, 0.0, 1.0, &mut rng);
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let xv = t.input(x.clone());
                let y = layer.forward(t, ps, xv, &adj);
                t.mean_all(y)
            },
            1e-3,
            4e-2,
        );
    }
}
