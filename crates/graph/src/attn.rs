//! The `GraphAttn` operator of the paper (Eq. 1-3).
//!
//! `GraphAttn(c, W, V) · V` computes attention weights
//! `h = softmax(LeakyReLU((V W) c))` over the rows of `V` and returns the
//! weighted sum `h^T V` — the vanilla graph-attention aggregation the paper
//! uses for attribute-level and entity-level context.

use hiergat_nn::{Linear, ParamId, ParamStore, Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// The LeakyReLU slope used by GAT-style attention.
pub const GAT_SLOPE: f32 = 0.2;

/// One graph-attention aggregator with learnable `W` (projection) and `c`
/// (attention vector).
pub struct GraphAttn {
    w: Linear,
    c: ParamId,
    d_in: usize,
}

impl GraphAttn {
    /// Registers parameters. `d_in` is the feature width of the attended
    /// rows; attention logits are computed in the projected `d_out` space.
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = Linear::new(ps, &format!("{prefix}.w"), d_in, d_out, false, rng);
        let c = ps.add(format!("{prefix}.c"), Tensor::rand_normal(d_out, 1, 0.0, 0.3, rng));
        Self { w, c, d_in }
    }

    /// Attention weights over the rows of `features` (an `n x 1` column).
    pub fn attention(&self, t: &mut Tape, ps: &ParamStore, features: Var) -> Var {
        debug_assert_eq!(t.value(features).cols(), self.d_in, "GraphAttn: width mismatch");
        let projected = self.w.forward(t, ps, features);
        // The nonlinearity must sit between the projection and the scalar
        // collapse: `c^T tanh(W f)`. With the affine form `LeakyReLU(c^T W f)`
        // a feature component that is constant across rows (the replicated
        // entity context of Eq. 3) shifts every logit equally and cancels in
        // the softmax, silencing the context input entirely.
        let projected = t.tanh(projected);
        let cv = t.param(ps, self.c);
        let scores = t.matmul(projected, cv); // n x 1
        let scores = t.leaky_relu(scores, GAT_SLOPE);
        // Softmax over the n rows: transpose to 1 x n, row-softmax, back.
        let row = t.transpose(scores);
        let sm = t.softmax(row);
        t.transpose(sm)
    }

    /// Aggregates `values` with attention computed from the same rows:
    /// returns `h^T values` (`1 x F`). This is Eq. 1 / Eq. 2.
    pub fn forward(&self, t: &mut Tape, ps: &ParamStore, values: Var) -> Var {
        self.forward_ctx(t, ps, values, values)
    }

    /// Aggregates `values` with attention computed from separate `features`
    /// rows (Eq. 3, where attention features are `(\bar{V^a} || C_j^a)` but
    /// the aggregated values are `\bar{V^a}`). `features` and `values` must
    /// have the same number of rows.
    pub fn forward_ctx(&self, t: &mut Tape, ps: &ParamStore, features: Var, values: Var) -> Var {
        assert_eq!(
            t.value(features).rows(),
            t.value(values).rows(),
            "GraphAttn: features/values row mismatch"
        );
        let h = self.attention(t, ps, features); // n x 1
        t.matmul_tn(h, values) // h^T values, 1 x F
    }

    /// Like [`Self::forward`], but also returns a detached copy of the
    /// attention weights for visualization (Figure 9).
    pub fn forward_with_weights(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        values: Var,
    ) -> (Var, Tensor) {
        let h = self.attention(t, ps, values);
        let weights = t.value(h).clone();
        (t.matmul_tn(h, values), weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_nn::gradcheck::assert_gradients_ok;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_convex_combination_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let ga = GraphAttn::new(&mut ps, "ga", 4, 4, &mut rng);
        let mut t = Tape::new();
        let v = t.input(Tensor::rand_normal(5, 4, 0.0, 1.0, &mut rng));
        let out = ga.forward(&mut t, &ps, v);
        assert_eq!(t.value(out).shape(), (1, 4));
        // Output lies within the row-wise min/max envelope (convexity).
        let vals = t.value(v);
        for j in 0..4 {
            let col: Vec<f32> = (0..5).map(|i| vals.get(i, j)).collect();
            let (lo, hi) = col.iter().fold((f32::MAX, f32::MIN), |(l, h), &x| (l.min(x), h.max(x)));
            let o = t.value(out).get(0, j);
            assert!(o >= lo - 1e-5 && o <= hi + 1e-5, "col {j}: {o} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let ga = GraphAttn::new(&mut ps, "ga", 3, 3, &mut rng);
        let mut t = Tape::new();
        let v = t.input(Tensor::rand_normal(7, 3, 0.0, 1.0, &mut rng));
        let (_, w) = ga.forward_with_weights(&mut t, &ps, v);
        assert_eq!(w.shape(), (7, 1));
        assert!((w.sum() - 1.0).abs() < 1e-5);
        assert!(w.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn ctx_variant_uses_feature_rows_for_attention() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let ga = GraphAttn::new(&mut ps, "ga", 6, 4, &mut rng);
        let mut t = Tape::new();
        let features = t.input(Tensor::rand_normal(3, 6, 0.0, 1.0, &mut rng));
        let values = t.input(Tensor::rand_normal(3, 4, 0.0, 1.0, &mut rng));
        let out = ga.forward_ctx(&mut t, &ps, features, values);
        assert_eq!(t.value(out).shape(), (1, 4));
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn ctx_variant_checks_row_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let ga = GraphAttn::new(&mut ps, "ga", 2, 2, &mut rng);
        let mut t = Tape::new();
        let features = t.input(Tensor::zeros(3, 2));
        let values = t.input(Tensor::zeros(4, 2));
        ga.forward_ctx(&mut t, &ps, features, values);
    }

    #[test]
    fn gradients_flow_through_graph_attention() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let ga = GraphAttn::new(&mut ps, "ga", 3, 3, &mut rng);
        let v = Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng);
        assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let vv = t.input(v.clone());
                let out = ga.forward(t, ps, vv);
                t.mean_all(out)
            },
            1e-3,
            3e-2,
        );
    }

    #[test]
    fn single_row_gets_weight_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let ga = GraphAttn::new(&mut ps, "ga", 3, 3, &mut rng);
        let mut t = Tape::new();
        let v = t.input(Tensor::rand_normal(1, 3, 0.0, 1.0, &mut rng));
        let (out, w) = ga.forward_with_weights(&mut t, &ps, v);
        assert!((w.get(0, 0) - 1.0).abs() < 1e-6);
        assert!(t.value(out).allclose(t.value(v), 1e-5));
    }
}
