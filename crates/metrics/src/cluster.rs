//! Pairwise clustering metrics: precision/recall/F1 of a predicted
//! clustering against gold cluster ids, over the implied record *pairs*.
//!
//! Two records form a positive pair iff they share a cluster id. Counting
//! uses the contingency table between predicted and gold clusters, so a
//! million-record corpus with 10^11 candidate pairs is evaluated without
//! enumerating any of them:
//!
//! * matched pairs   `TP = sum over cells C(n_ij, 2)`
//! * predicted pairs `TP + FP = sum over predicted clusters C(n_i, 2)`
//! * gold pairs      `TP + FN = sum over gold clusters C(n_j, 2)`

use crate::PrF1;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Pair counts underlying pairwise cluster P/R/F1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Pairs that share a cluster in both predicted and gold.
    pub matched_pairs: u64,
    /// Pairs sharing a predicted cluster.
    pub predicted_pairs: u64,
    /// Pairs sharing a gold cluster.
    pub gold_pairs: u64,
}

impl ClusterMetrics {
    /// Pairwise precision / recall / F1. Degenerate cases (no predicted or
    /// no gold pairs) score the component as 0.
    pub fn pr_f1(&self) -> PrF1 {
        let precision = if self.predicted_pairs == 0 {
            0.0
        } else {
            self.matched_pairs as f64 / self.predicted_pairs as f64
        };
        let recall = if self.gold_pairs == 0 {
            0.0
        } else {
            self.matched_pairs as f64 / self.gold_pairs as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrF1 { precision, recall, f1 }
    }
}

fn pairs_of(n: u64) -> u64 {
    n * (n.saturating_sub(1)) / 2
}

/// Computes pairwise cluster metrics from parallel label slices: record
/// `i` has predicted cluster `predicted[i]` and gold cluster `gold[i]`.
/// Label values only matter up to equality.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pairwise_cluster_metrics(predicted: &[u32], gold: &[u32]) -> ClusterMetrics {
    assert_eq!(predicted.len(), gold.len(), "predicted/gold label length mismatch");
    let mut cell: HashMap<(u32, u32), u64> = HashMap::new();
    let mut pred_size: HashMap<u32, u64> = HashMap::new();
    let mut gold_size: HashMap<u32, u64> = HashMap::new();
    for (&p, &g) in predicted.iter().zip(gold) {
        *cell.entry((p, g)).or_insert(0) += 1;
        *pred_size.entry(p).or_insert(0) += 1;
        *gold_size.entry(g).or_insert(0) += 1;
    }
    ClusterMetrics {
        matched_pairs: cell.values().map(|&n| pairs_of(n)).sum(),
        predicted_pairs: pred_size.values().map(|&n| pairs_of(n)).sum(),
        gold_pairs: gold_size.values().map(|&n| pairs_of(n)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let labels = [0, 0, 1, 1, 2];
        let m = pairwise_cluster_metrics(&labels, &labels);
        assert_eq!(m.matched_pairs, 2);
        assert_eq!(m.predicted_pairs, 2);
        assert_eq!(m.gold_pairs, 2);
        let s = m.pr_f1();
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn relabeled_clusters_are_equivalent() {
        let a = [0, 0, 1, 1, 2];
        let b = [7, 7, 3, 3, 9];
        assert_eq!(pairwise_cluster_metrics(&a, &b).pr_f1().f1, 1.0);
    }

    #[test]
    fn over_merging_costs_precision_not_recall() {
        // Predicted lumps both gold clusters into one.
        let pred = [0, 0, 0, 0];
        let gold = [0, 0, 1, 1];
        let m = pairwise_cluster_metrics(&pred, &gold);
        assert_eq!(m.predicted_pairs, 6);
        assert_eq!(m.gold_pairs, 2);
        assert_eq!(m.matched_pairs, 2);
        let s = m.pr_f1();
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn over_splitting_costs_recall_not_precision() {
        let pred = [0, 1, 2, 3];
        let gold = [0, 0, 1, 1];
        let m = pairwise_cluster_metrics(&pred, &gold);
        assert_eq!(m.predicted_pairs, 0);
        let s = m.pr_f1();
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn all_singletons_vs_empty_are_degenerate_zero() {
        let m = pairwise_cluster_metrics(&[], &[]);
        assert_eq!(m.pr_f1().f1, 0.0);
    }
}
