//! Confusion matrix and precision/recall/F1.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Precision, recall, and F1 (all in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrF1 {
    /// Precision `tp / (tp + fp)`.
    pub precision: f64,
    /// Recall `tp / (tp + fn)`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Confusion {
    /// Builds a confusion matrix from parallel prediction/label slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction/label length mismatch");
        let mut c = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            c.record(p, a);
        }
        c
    }

    /// Records one observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Precision/recall/F1. Degenerate cases (no predicted or no actual
    /// positives) yield zeros rather than NaN.
    pub fn pr_f1(&self) -> PrF1 {
        let precision =
            if self.tp + self.fp == 0 { 0.0 } else { self.tp as f64 / (self.tp + self.fp) as f64 };
        let recall = if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrF1 { precision, recall, f1 }
    }

    /// F1 as a percentage (the paper's convention, e.g. "88.2").
    pub fn f1_percent(&self) -> f64 {
        self.pr_f1().f1 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let c = Confusion::from_predictions(&[true, false, true], &[true, false, true]);
        let m = c.pr_f1();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn known_values() {
        // tp=2 fp=1 fn=2 tn=1 => precision 2/3, recall 1/2, f1 4/7
        let c = Confusion { tp: 2, fp: 1, tn: 1, fn_: 2 };
        let m = c.pr_f1();
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 4.0 / 7.0).abs() < 1e-12);
        assert!((c.f1_percent() - 400.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases_do_not_nan() {
        let c = Confusion { tp: 0, fp: 0, tn: 5, fn_: 0 };
        let m = c.pr_f1();
        assert_eq!(m.f1, 0.0);
        assert!(!m.precision.is_nan());
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Confusion { tp: 1, fp: 2, tn: 3, fn_: 4 };
        a.merge(&Confusion { tp: 10, fp: 20, tn: 30, fn_: 40 });
        assert_eq!(a, Confusion { tp: 11, fp: 22, tn: 33, fn_: 44 });
        assert_eq!(a.total(), 110);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Confusion::from_predictions(&[true], &[]);
    }

    #[test]
    fn all_false_predictions_zero_recall() {
        let c = Confusion::from_predictions(&[false, false], &[true, true]);
        assert_eq!(c.pr_f1().recall, 0.0);
        assert_eq!(c.fn_, 2);
    }
}
