//! Precision-recall curves and average precision.

use crate::confusion::Confusion;

/// One point on a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f32,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Computes the precision-recall curve by sweeping every distinct score as
/// a threshold (descending), plus the all-positive point.
pub fn pr_curve(scores: &[f32], labels: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 {
        return Vec::new();
    }
    let mut points = Vec::new();
    let mut c = Confusion { tp: 0, fp: 0, tn: labels.len() - total_pos, fn_: total_pos };
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Include every example tied at this threshold.
        while i < order.len() && scores[order[i]] == threshold {
            let idx = order[i];
            if labels[idx] {
                c.tp += 1;
                c.fn_ -= 1;
            } else {
                c.fp += 1;
                c.tn -= 1;
            }
            i += 1;
        }
        let m = c.pr_f1();
        points.push(PrPoint { threshold, precision: m.precision, recall: m.recall });
    }
    points
}

/// Average precision (area under the PR curve, step interpolation).
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    let curve = pr_curve(scores, labels);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        ap += (p.recall - prev_recall).max(0.0) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_ap_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_ranking_gives_low_ap() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(average_precision(&scores, &labels) < 0.6);
    }

    #[test]
    fn curve_recall_is_monotone() {
        let scores = [0.9, 0.7, 0.7, 0.4, 0.2];
        let labels = [true, false, true, true, false];
        let curve = pr_curve(&scores, &labels);
        assert!(curve.windows(2).all(|w| w[1].recall >= w[0].recall));
        let last = curve.last().expect("nonempty");
        assert!((last.recall - 1.0).abs() < 1e-9, "last point covers all positives");
    }

    #[test]
    fn no_positives_gives_empty_curve() {
        assert!(pr_curve(&[0.5, 0.4], &[false, false]).is_empty());
        assert_eq!(average_precision(&[0.5], &[false]), 0.0);
    }

    #[test]
    fn ties_are_grouped_into_one_point() {
        let scores = [0.5, 0.5, 0.5];
        let labels = [true, false, true];
        let curve = pr_curve(&scores, &labels);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].recall - 1.0).abs() < 1e-9);
    }
}
