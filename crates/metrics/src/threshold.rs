//! Decision-threshold selection on validation scores.

use crate::confusion::Confusion;

/// Evaluates probability scores against labels at a fixed threshold.
pub fn evaluate_at_threshold(scores: &[f32], labels: &[bool], threshold: f32) -> Confusion {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let mut c = Confusion::default();
    for (&s, &l) in scores.iter().zip(labels) {
        c.record(s >= threshold, l);
    }
    c
}

/// Sweeps thresholds over the observed scores and returns the `(threshold,
/// f1)` pair maximizing F1 on this (validation) set.
///
/// The paper selects models by validation F1 (§6.1); sweeping the decision
/// threshold the same way keeps every model comparable regardless of its
/// output calibration. Ties prefer the lower threshold (higher recall).
pub fn best_threshold(scores: &[f32], labels: &[bool]) -> (f32, f64) {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    if scores.is_empty() {
        return (0.5, 0.0);
    }
    let mut candidates: Vec<f32> = scores.to_vec();
    candidates.push(0.5);
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    candidates.dedup();
    let mut best = (0.5f32, -1.0f64);
    for &t in &candidates {
        let f1 = evaluate_at_threshold(scores, labels, t).pr_f1().f1;
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    if best.1 < 0.0 {
        (0.5, 0.0)
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_scores_find_perfect_threshold() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        let (t, f1) = best_threshold(&scores, &labels);
        assert_eq!(f1, 1.0);
        assert!(t > 0.2 && t <= 0.8);
    }

    #[test]
    fn evaluate_counts_correctly() {
        let c = evaluate_at_threshold(&[0.9, 0.4], &[true, true], 0.5);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fn_, 1);
    }

    #[test]
    fn empty_input_defaults() {
        let (t, f1) = best_threshold(&[], &[]);
        assert_eq!(t, 0.5);
        assert_eq!(f1, 0.0);
    }

    #[test]
    fn noisy_scores_still_pick_reasonable_threshold() {
        let scores = [0.3, 0.6, 0.55, 0.7, 0.2, 0.65];
        let labels = [false, true, false, true, false, true];
        let (_, f1) = best_threshold(&scores, &labels);
        assert!(f1 >= 0.8, "f1 {f1}");
    }

    #[test]
    fn all_negative_labels_yield_zero_f1() {
        let (_, f1) = best_threshold(&[0.1, 0.9], &[false, false]);
        assert_eq!(f1, 0.0);
    }
}
