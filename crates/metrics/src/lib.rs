//! Evaluation metrics for entity resolution.
//!
//! The paper reports F1 throughout (§6.1); this crate provides the confusion
//! matrix, precision/recall/F1, and a threshold sweep used when a model
//! outputs match probabilities rather than hard decisions.

//! # Example
//!
//! ```
//! use hiergat_metrics::{best_threshold, Confusion};
//!
//! let c = Confusion::from_predictions(&[true, false, true], &[true, true, false]);
//! assert!(c.pr_f1().f1 > 0.0);
//! let (threshold, f1) = best_threshold(&[0.9, 0.2], &[true, false]);
//! assert_eq!(f1, 1.0);
//! assert!(threshold > 0.2);
//! ```

mod cluster;
mod confusion;
mod curve;
mod threshold;

pub use cluster::{pairwise_cluster_metrics, ClusterMetrics};
pub use confusion::{Confusion, PrF1};
pub use curve::{average_precision, pr_curve, PrPoint};
pub use threshold::{best_threshold, evaluate_at_threshold};
