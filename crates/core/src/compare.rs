//! Hierarchical comparison (§5.2): attribute comparison and entity
//! comparison with the three multi-view combiners of Table 10.

use crate::config::ViewCombiner;
use hiergat_graph::GraphAttn;
use hiergat_lm::MiniLm;
use hiergat_nn::{Linear, ParamStore, Tape, Var};
use hiergat_text::Special;
use rand::Rng;

/// Attribute comparison layer (§5.2.1).
///
/// Encodes `[CLS] e1.v_k [SEP] e2.v_k [SEP]` with the pre-trained
/// Transformer and combines the `[CLS]` row with explicit elementwise
/// comparison features `|a1 - a2|` and `a1 ⊙ a2` through a learned
/// projection. Full-size BERT models carry comparison circuits from massive
/// pre-training; the miniature LMs cannot learn them from hundreds of
/// labeled pairs, so the comparison primitive is supplied in the head — a
/// standard sentence-pair head design (InferSent/SBERT) documented in
/// DESIGN.md.
pub struct AttributeComparer {
    proj: Linear,
}

impl AttributeComparer {
    /// Registers the comparison projection (`3d -> d`).
    pub fn new(ps: &mut ParamStore, prefix: &str, d_model: usize, rng: &mut impl Rng) -> Self {
        Self { proj: Linear::new(ps, &format!("{prefix}.proj"), 3 * d_model, d_model, true, rng) }
    }

    /// Computes the attribute similarity embedding `S_k` (`1 x d`).
    pub fn similarity(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        lm: &MiniLm,
        a1: Var,
        a2: Var,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let cls = lm.special_embedding(t, ps, Special::Cls);
        let sep = lm.special_embedding(t, ps, Special::Sep);
        let seq = t.concat_rows(&[cls, a1, sep, a2, sep]);
        let encoded = lm.encode_embedded(t, ps, seq, train, rng);
        let cls_row = t.row(encoded, 0);
        let diff = abs_diff(t, a1, a2);
        let prod = t.mul(a1, a2);
        let feats = t.concat_cols(&[cls_row, diff, prod]);
        self.proj.forward(t, ps, feats)
    }
}

/// `|a - b|` built from ReLU primitives.
pub fn abs_diff(t: &mut Tape, a: Var, b: Var) -> Var {
    let d = t.sub(a, b);
    let pos = t.relu(d);
    let nd = t.scale(d, -1.0);
    let neg = t.relu(nd);
    t.add(pos, neg)
}

/// Free-function form of the attribute comparison used by tests and the
/// explanation module; equivalent to [`AttributeComparer::similarity`] with
/// the model's registered comparer.
pub fn attribute_similarity(
    t: &mut Tape,
    ps: &ParamStore,
    lm: &MiniLm,
    comparer: &AttributeComparer,
    a1: Var,
    a2: Var,
    train: bool,
    rng: &mut impl Rng,
) -> Var {
    comparer.similarity(t, ps, lm, a1, a2, train, rng)
}

/// Entity comparison layer (§5.2.2): combines the per-attribute similarity
/// embeddings into one entity similarity embedding.
pub struct EntityComparison {
    combiner: ViewCombiner,
    /// Structural attention of Eq. 4 (features `(v_l || v_r || S_k)`).
    attn_with_ctx: GraphAttn,
    /// Variant used when entity summarization context is ablated
    /// (Table 11 "Non-Sum"): attention over `S_k` alone.
    attn_no_ctx: GraphAttn,
    /// Shared latent projection for the SharedSpace combiner.
    shared: Linear,
    d_model: usize,
}

impl EntityComparison {
    /// Registers parameters. `arity` is the number of compared attributes
    /// (the entity embedding width is `arity x d`).
    pub fn new(
        ps: &mut ParamStore,
        prefix: &str,
        d_model: usize,
        arity: usize,
        combiner: ViewCombiner,
        rng: &mut impl Rng,
    ) -> Self {
        let ctx_dim = 2 * arity * d_model + d_model;
        Self {
            combiner,
            attn_with_ctx: GraphAttn::new(ps, &format!("{prefix}.attn_ctx"), ctx_dim, d_model, rng),
            attn_no_ctx: GraphAttn::new(ps, &format!("{prefix}.attn_plain"), d_model, d_model, rng),
            shared: Linear::new(ps, &format!("{prefix}.shared"), d_model, d_model, true, rng),
            d_model,
        }
    }

    /// Combines attribute similarity rows `sims` (each `1 x d`) into the
    /// entity similarity embedding (`1 x d`).
    ///
    /// `entity_ctx` is the concatenated pair embedding `(v_l || v_r)`
    /// (`1 x 2 arity d`); pass `None` for the Non-Sum ablation.
    pub fn combine(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        sims: &[Var],
        entity_ctx: Option<Var>,
    ) -> Var {
        assert!(!sims.is_empty(), "combine: no attribute similarities");
        let stacked = t.concat_rows(sims); // K x d
        match self.combiner {
            ViewCombiner::ViewAverage => t.mean_rows(stacked),
            ViewCombiner::SharedSpace => {
                let mapped = self.shared.forward(t, ps, stacked);
                let mapped = t.tanh(mapped);
                t.mean_rows(mapped)
            }
            ViewCombiner::WeightAverage => match entity_ctx {
                Some(ctx) => {
                    let k = sims.len();
                    let ones = t.input(hiergat_tensor::Tensor::ones(k, 1));
                    let ctx_rows = t.matmul(ones, ctx); // K x 2Ad
                    let features = t.concat_cols(&[ctx_rows, stacked]); // K x (2Ad + d)
                    self.attn_with_ctx.forward_ctx(t, ps, features, stacked)
                }
                None => self.attn_no_ctx.forward_ctx(t, ps, stacked, stacked),
            },
        }
    }

    /// The structural-attention weights over attributes (for Figure 9).
    pub fn attribute_weights(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        sims: &[Var],
        entity_ctx: Option<Var>,
    ) -> Vec<f32> {
        let stacked = t.concat_rows(sims);
        let att = match entity_ctx {
            Some(ctx) => {
                let k = sims.len();
                let ones = t.input(hiergat_tensor::Tensor::ones(k, 1));
                let ctx_rows = t.matmul(ones, ctx);
                let features = t.concat_cols(&[ctx_rows, stacked]);
                self.attn_with_ctx.attention(t, ps, features)
            }
            None => self.attn_no_ctx.attention(t, ps, stacked),
        };
        t.value(att).as_slice().to_vec()
    }

    /// Output width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ViewCombiner;
    use hiergat_lm::LmTier;
    use hiergat_nn::Tape;
    use hiergat_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(combiner: ViewCombiner) -> (ParamStore, MiniLm, EntityComparison, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let cmp = EntityComparison::new(&mut ps, "cmp", 32, 3, combiner, &mut rng);
        (ps, lm, cmp, rng)
    }

    #[test]
    fn attribute_similarity_shape() {
        let (mut ps, lm, _, mut rng) = setup(ViewCombiner::WeightAverage);
        let comparer = AttributeComparer::new(&mut ps, "ac", 32, &mut rng);
        let mut t = Tape::new();
        let a1 = t.input(Tensor::rand_normal(1, 32, 0.0, 1.0, &mut rng));
        let a2 = t.input(Tensor::rand_normal(1, 32, 0.0, 1.0, &mut rng));
        let s = attribute_similarity(&mut t, &ps, &lm, &comparer, a1, a2, false, &mut rng);
        assert_eq!(t.value(s).shape(), (1, 32));
    }

    #[test]
    fn identical_attributes_zero_the_diff_features() {
        let (mut ps, lm, _, mut rng) = setup(ViewCombiner::WeightAverage);
        let comparer = AttributeComparer::new(&mut ps, "ac", 32, &mut rng);
        let mut t = Tape::new();
        let a = t.input(Tensor::rand_normal(1, 32, 0.0, 1.0, &mut rng));
        let d = abs_diff(&mut t, a, a);
        assert!(t.value(d).allclose(&Tensor::zeros(1, 32), 1e-7));
        let s = comparer.similarity(&mut t, &ps, &lm, a, a, false, &mut rng);
        assert!(!t.value(s).has_non_finite());
    }

    #[test]
    fn all_combiners_produce_same_shape() {
        for combiner in
            [ViewCombiner::ViewAverage, ViewCombiner::SharedSpace, ViewCombiner::WeightAverage]
        {
            let (ps, _, cmp, mut rng) = setup(combiner);
            let mut t = Tape::new();
            let sims: Vec<_> =
                (0..3).map(|_| t.input(Tensor::rand_normal(1, 32, 0.0, 1.0, &mut rng))).collect();
            let ctx = t.input(Tensor::rand_normal(1, 2 * 3 * 32, 0.0, 1.0, &mut rng));
            let out = cmp.combine(&mut t, &ps, &sims, Some(ctx));
            assert_eq!(t.value(out).shape(), (1, 32), "{combiner:?}");
        }
    }

    #[test]
    fn view_average_is_exact_mean() {
        let (ps, _, cmp, _) = setup(ViewCombiner::ViewAverage);
        let mut t = Tape::new();
        let a = t.input(Tensor::full(1, 32, 1.0));
        let b = t.input(Tensor::full(1, 32, 3.0));
        let out = cmp.combine(&mut t, &ps, &[a, b], None);
        assert!(t.value(out).allclose(&Tensor::full(1, 32, 2.0), 1e-6));
    }

    #[test]
    fn weight_average_without_ctx_uses_plain_attention() {
        let (ps, _, cmp, mut rng) = setup(ViewCombiner::WeightAverage);
        let mut t = Tape::new();
        let sims: Vec<_> =
            (0..4).map(|_| t.input(Tensor::rand_normal(1, 32, 0.0, 1.0, &mut rng))).collect();
        let out = cmp.combine(&mut t, &ps, &sims, None);
        assert_eq!(t.value(out).shape(), (1, 32));
        let weights = cmp.attribute_weights(&mut t, &ps, &sims, None);
        assert_eq!(weights.len(), 4);
        assert!((weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "no attribute similarities")]
    fn empty_sims_panics() {
        let (ps, _, cmp, _) = setup(ViewCombiner::ViewAverage);
        let mut t = Tape::new();
        cmp.combine(&mut t, &ps, &[], None);
    }
}
