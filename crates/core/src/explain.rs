//! Attention explanation (Figure 9 of the paper).
//!
//! Extracts per-token and per-attribute attention weights from a trained
//! HierGAT model so benchmark harnesses can render the kind of heat map the
//! paper shows for Amazon-Google pairs: discriminative words ("math",
//! model codes) and discriminative attributes ("title") receive visibly
//! higher weight.

use crate::aggregate::{
    attribute_embedding_with_attention, attribute_similarity_inputs, entity_embeddings,
};

use crate::model::HierGat;
use hiergat_data::EntityPair;
use hiergat_graph::Hhg;
use hiergat_nn::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Token-level attention for one attribute of one entity.
#[derive(Debug, Clone)]
pub struct AttrExplanation {
    /// Attribute key.
    pub key: String,
    /// `(token, weight)` pairs; weights sum to ~1 per attribute.
    pub tokens: Vec<(String, f32)>,
}

/// Full explanation of one pair decision.
#[derive(Debug, Clone)]
pub struct PairExplanation {
    /// Token attention per attribute of the left entity.
    pub left: Vec<AttrExplanation>,
    /// Token attention per attribute of the right entity.
    pub right: Vec<AttrExplanation>,
    /// Structural-attention weight per attribute (Eq. 4's `h_k`).
    pub attribute_weights: Vec<(String, f32)>,
    /// The model's match probability.
    pub probability: f32,
}

impl PairExplanation {
    /// The most attended attribute key.
    pub fn top_attribute(&self) -> Option<&str> {
        self.attribute_weights
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k.as_str())
    }

    /// Renders a terminal-friendly heat map (darker = higher weight).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let shade = |w: f32| -> &'static str {
            if w >= 0.30 {
                "███"
            } else if w >= 0.15 {
                "▓▓▓"
            } else if w >= 0.07 {
                "▒▒▒"
            } else {
                "░░░"
            }
        };
        out.push_str("attribute weights:\n");
        for (k, w) in &self.attribute_weights {
            out.push_str(&format!("  {} {k}: {w:.3}\n", shade(*w)));
        }
        for (side, attrs) in [("left", &self.left), ("right", &self.right)] {
            out.push_str(&format!("{side} entity token attention:\n"));
            for a in attrs {
                out.push_str(&format!("  [{}] ", a.key));
                for (tok, w) in &a.tokens {
                    out.push_str(&format!("{tok}({w:.2}) "));
                }
                out.push('\n');
            }
        }
        out.push_str(&format!("match probability: {:.3}\n", self.probability));
        out
    }
}

/// Computes the explanation for one pair with a trained model.
pub fn explain_pair(model: &mut HierGat, pair: &EntityPair) -> PairExplanation {
    let probability = model.predict_pair(pair);
    let arity = model.arity();
    let g = Hhg::from_pair(pair);
    let cfg = *model.config();

    let mut t = Tape::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xe8);
    // Recompute the forward pass in inference mode, capturing attention.
    let (ctx, lm, cmp, comparer, _, ps) = model.parts();
    let wpc = ctx.wpc(&mut t, ps, &g, lm, &cfg, false, &mut rng);

    let mut sides: Vec<Vec<AttrExplanation>> = Vec::with_capacity(2);
    for e in &g.entities {
        let mut attrs = Vec::new();
        for &ai in &e.attr_nodes {
            let node = &g.attributes[ai];
            let (_, weights) =
                attribute_embedding_with_attention(&mut t, ps, lm, wpc, &node.token_seq, &mut rng);
            let tokens = node
                .token_seq
                .iter()
                .zip(&weights)
                .map(|(&tok, &w)| (g.tokens[tok].clone(), w))
                .collect();
            attrs.push(AttrExplanation { key: node.key.clone(), tokens });
        }
        sides.push(attrs);
    }
    let right = sides.pop().expect("two entities");
    let left = sides.pop().expect("two entities");

    // Attribute-level structural attention (Eq. 4 weights).
    let attr_embs = entity_embeddings(&mut t, ps, lm, &g, wpc, false, &mut rng);
    let (l_attrs, r_attrs) = attribute_similarity_inputs(&attr_embs[0], &attr_embs[1], arity);
    let sims: Vec<_> = l_attrs
        .iter()
        .zip(&r_attrs)
        .map(|(&a, &b)| comparer.similarity(&mut t, ps, lm, a, b, false, &mut rng))
        .collect();
    let entity_ctx = if cfg.use_entity_summarization {
        let concats = crate::aggregate::concat_entities(&mut t, &attr_embs);
        Some(t.concat_cols(&[concats[0], concats[1]]))
    } else {
        None
    };
    let weights = cmp.attribute_weights(&mut t, ps, &sims, entity_ctx);
    let keys: Vec<String> = pair.left.keys().map(str::to_string).collect();
    let attribute_weights =
        keys.into_iter().chain(std::iter::repeat("?".to_string())).zip(weights).collect();

    PairExplanation { left, right, attribute_weights, probability }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierGatConfig;
    use hiergat_data::Entity;

    fn pair() -> EntityPair {
        EntityPair::new(
            Entity::new(
                "l",
                vec![
                    ("title".into(), "discrete math textbook".into()),
                    ("price".into(), "30.00".into()),
                ],
            ),
            Entity::new(
                "r",
                vec![
                    ("title".into(), "applied math textbook".into()),
                    ("price".into(), "32.00".into()),
                ],
            ),
            true,
        )
    }

    #[test]
    fn explanation_covers_all_attributes_and_tokens() {
        let mut m = HierGat::new(HierGatConfig::fast_test(), 2);
        let ex = explain_pair(&mut m, &pair());
        assert_eq!(ex.left.len(), 2);
        assert_eq!(ex.right.len(), 2);
        assert_eq!(ex.left[0].tokens.len(), 3);
        assert_eq!(ex.attribute_weights.len(), 2);
        assert!((0.0..=1.0).contains(&ex.probability));
        let wsum: f32 = ex.attribute_weights.iter().map(|(_, w)| w).sum();
        assert!((wsum - 1.0).abs() < 1e-4, "attribute weights sum {wsum}");
    }

    #[test]
    fn top_attribute_and_render_work() {
        let mut m = HierGat::new(HierGatConfig::fast_test(), 2);
        let ex = explain_pair(&mut m, &pair());
        assert!(ex.top_attribute().is_some());
        let rendered = ex.render();
        assert!(rendered.contains("attribute weights"));
        assert!(rendered.contains("match probability"));
        assert!(rendered.contains("title"));
    }
}
