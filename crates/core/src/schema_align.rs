//! Unaligned-attribute entity resolution (the paper's stated future work,
//! §8: "An interesting future direction is to extend HierGAT to the setting
//! of unaligned attributes").
//!
//! When the two sources use different schemas (`name` vs `title`,
//! `manufacturer` vs `brand`), HierGAT's per-attribute comparison cannot be
//! applied directly. This module computes a soft schema alignment from two
//! signals — attribute **key-name** similarity and attribute **value
//! content** similarity measured over a sample of entities — solves the
//! assignment greedily, and rewrites the right-hand entities into the
//! left schema so the standard pipeline applies.

use hiergat_data::{Entity, EntityPair, MISSING};
use hiergat_text::{cosine_tokens, jaro_winkler, tokenize};

/// A computed alignment between two schemas.
#[derive(Debug, Clone)]
pub struct SchemaAlignment {
    /// Left-schema keys, in order.
    pub left_keys: Vec<String>,
    /// For each left key, the matched right key (if any) and its score.
    pub mapping: Vec<Option<(String, f64)>>,
}

impl SchemaAlignment {
    /// The matched right-schema key for a left key.
    pub fn right_key_for(&self, left_key: &str) -> Option<&str> {
        let idx = self.left_keys.iter().position(|k| k == left_key)?;
        self.mapping[idx].as_ref().map(|(k, _)| k.as_str())
    }

    /// Number of aligned attribute pairs.
    pub fn n_aligned(&self) -> usize {
        self.mapping.iter().flatten().count()
    }
}

/// Key-name similarity: Jaro-Winkler over the (lowercased) key strings,
/// with a boost for substring containment (`modelno` vs `model`).
fn key_similarity(a: &str, b: &str) -> f64 {
    let (a, b) = (a.to_lowercase(), b.to_lowercase());
    let base = jaro_winkler(&a, &b);
    if a.contains(&b) || b.contains(&a) {
        (base + 1.0) / 2.0
    } else {
        base
    }
}

/// Value-content similarity of two attribute columns over entity samples:
/// token-cosine between the pooled token bags, with a type-affinity floor
/// for numeric columns (prices never share tokens, but `price`/`cost`
/// columns are both overwhelmingly numeric).
fn column_similarity(left: &[Entity], lk: &str, right: &[Entity], rk: &str) -> f64 {
    fn values<'a>(entities: &'a [Entity], key: &str) -> Vec<&'a str> {
        entities.iter().filter_map(|e| e.attr(key)).filter(|v| *v != MISSING).collect()
    }
    let lv = values(left, lk);
    let rv = values(right, rk);
    if lv.is_empty() || rv.is_empty() {
        return 0.0;
    }
    let bag = |vals: &[&str]| -> Vec<String> { vals.iter().flat_map(|v| tokenize(v)).collect() };
    let cosine = cosine_tokens(&bag(&lv), &bag(&rv));
    let numeric_fraction = |vals: &[&str]| -> f64 {
        vals.iter().filter(|v| v.trim().trim_end_matches('%').parse::<f64>().is_ok()).count() as f64
            / vals.len() as f64
    };
    let type_floor =
        if numeric_fraction(&lv) > 0.7 && numeric_fraction(&rv) > 0.7 { 0.5 } else { 0.0 };
    cosine.max(type_floor)
}

/// Computes a greedy one-to-one schema alignment from samples of both
/// sources. `key_weight` balances name vs content similarity (0.4 works
/// well; content dominates because real schemas use divergent names).
pub fn align_schemas(
    left_sample: &[Entity],
    right_sample: &[Entity],
    key_weight: f64,
) -> SchemaAlignment {
    let left_keys: Vec<String> =
        left_sample.first().map(|e| e.keys().map(str::to_string).collect()).unwrap_or_default();
    let right_keys: Vec<String> =
        right_sample.first().map(|e| e.keys().map(str::to_string).collect()).unwrap_or_default();

    // Score every (left, right) key pair.
    let mut scored: Vec<(usize, usize, f64)> = Vec::new();
    for (li, lk) in left_keys.iter().enumerate() {
        for (ri, rk) in right_keys.iter().enumerate() {
            let s = key_weight * key_similarity(lk, rk)
                + (1.0 - key_weight) * column_similarity(left_sample, lk, right_sample, rk);
            scored.push((li, ri, s));
        }
    }
    // Greedy assignment, best score first, one-to-one.
    scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut mapping: Vec<Option<(String, f64)>> = vec![None; left_keys.len()];
    let mut right_used = vec![false; right_keys.len()];
    for (li, ri, s) in scored {
        if mapping[li].is_none() && !right_used[ri] && s > 0.05 {
            mapping[li] = Some((right_keys[ri].clone(), s));
            right_used[ri] = true;
        }
    }
    SchemaAlignment { left_keys, mapping }
}

/// Rewrites a right-schema entity into the left schema using the alignment;
/// unaligned left attributes become `NAN`.
pub fn project_entity(e: &Entity, alignment: &SchemaAlignment) -> Entity {
    let attrs = alignment
        .left_keys
        .iter()
        .map(|lk| {
            let value = alignment
                .right_key_for(lk)
                .and_then(|rk| e.attr(rk))
                .unwrap_or(MISSING)
                .to_string();
            (lk.clone(), value)
        })
        .collect();
    Entity::new(e.id.clone(), attrs)
}

/// Aligns a whole pair set whose right-hand entities use a foreign schema.
pub fn align_pairs(pairs: &[EntityPair], key_weight: f64) -> (SchemaAlignment, Vec<EntityPair>) {
    let left_sample: Vec<Entity> = pairs.iter().take(64).map(|p| p.left.clone()).collect();
    let right_sample: Vec<Entity> = pairs.iter().take(64).map(|p| p.right.clone()).collect();
    let alignment = align_schemas(&left_sample, &right_sample, key_weight);
    let rewritten = pairs
        .iter()
        .map(|p| EntityPair::new(p.left.clone(), project_entity(&p.right, &alignment), p.label))
        .collect();
    (alignment, rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left_entity(i: usize) -> Entity {
        Entity::new(
            format!("l{i}"),
            vec![
                ("title".into(), format!("canon eos camera x{i}")),
                ("manufacturer".into(), "canon".into()),
                ("price".into(), "499.99".into()),
            ],
        )
    }

    /// Same content, renamed + reordered keys.
    fn right_entity(i: usize) -> Entity {
        Entity::new(
            format!("r{i}"),
            vec![
                ("cost".into(), "489.00".into()),
                ("name".into(), format!("canon eos camera x{i} kit")),
                ("brand".into(), "canon".into()),
            ],
        )
    }

    #[test]
    fn content_similarity_aligns_renamed_keys() {
        let left: Vec<Entity> = (0..8).map(left_entity).collect();
        let right: Vec<Entity> = (0..8).map(right_entity).collect();
        let alignment = align_schemas(&left, &right, 0.4);
        assert_eq!(alignment.right_key_for("title"), Some("name"));
        assert_eq!(alignment.right_key_for("manufacturer"), Some("brand"));
        assert_eq!(alignment.right_key_for("price"), Some("cost"));
        assert_eq!(alignment.n_aligned(), 3);
    }

    #[test]
    fn key_name_similarity_helps_when_content_is_ambiguous() {
        // Two numeric columns: names decide.
        let left = vec![Entity::new(
            "l",
            vec![("price".into(), "10.00".into()), ("year".into(), "2010".into())],
        )];
        let right = vec![Entity::new(
            "r",
            vec![("release_year".into(), "2011".into()), ("prices".into(), "12.00".into())],
        )];
        let alignment = align_schemas(&left, &right, 0.7);
        assert_eq!(alignment.right_key_for("price"), Some("prices"));
        assert_eq!(alignment.right_key_for("year"), Some("release_year"));
    }

    #[test]
    fn projection_rewrites_into_left_schema() {
        let left: Vec<Entity> = (0..4).map(left_entity).collect();
        let right: Vec<Entity> = (0..4).map(right_entity).collect();
        let alignment = align_schemas(&left, &right, 0.4);
        let projected = project_entity(&right_entity(0), &alignment);
        assert_eq!(projected.keys().collect::<Vec<_>>(), vec!["title", "manufacturer", "price"]);
        assert_eq!(projected.attr("manufacturer"), Some("canon"));
        assert!(projected.attr("title").expect("title").contains("eos"));
    }

    #[test]
    fn unmatched_left_keys_become_nan() {
        let left = vec![Entity::new(
            "l",
            vec![("title".into(), "canon eos".into()), ("warranty".into(), "2 years".into())],
        )];
        let right = vec![Entity::new("r", vec![("name".into(), "canon eos".into())])];
        let alignment = align_schemas(&left, &right, 0.4);
        let projected = project_entity(&right[0], &alignment);
        assert_eq!(projected.attr("warranty"), Some(MISSING));
    }

    #[test]
    fn align_pairs_end_to_end_is_trainable_shape() {
        let pairs: Vec<EntityPair> =
            (0..10).map(|i| EntityPair::new(left_entity(i), right_entity(i), i % 2 == 0)).collect();
        let (alignment, rewritten) = align_pairs(&pairs, 0.4);
        assert_eq!(alignment.n_aligned(), 3);
        for p in &rewritten {
            assert_eq!(p.left.keys().collect::<Vec<_>>(), p.right.keys().collect::<Vec<_>>());
        }
        // The rewritten pairs drop into the normal HierGAT pipeline.
        let mut model = crate::HierGat::new(crate::HierGatConfig::fast_test(), 3);
        let score = model.predict_pair(&rewritten[0]);
        assert!((0.0..=1.0).contains(&score));
        let loss = model.train_pair(&rewritten[0]);
        assert!(loss.is_finite());
    }

    #[test]
    fn empty_samples_align_to_nothing() {
        let alignment = align_schemas(&[], &[], 0.4);
        assert_eq!(alignment.n_aligned(), 0);
        assert!(alignment.left_keys.is_empty());
    }
}
