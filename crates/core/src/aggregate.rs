//! Hierarchical aggregation (§5.1): attribute summarization and entity
//! summarization (Algorithm 1).

use hiergat_graph::Hhg;
use hiergat_lm::MiniLm;
use hiergat_nn::{ParamStore, Tape, Var};
use hiergat_tensor::Tensor;
use hiergat_text::Special;
use rand::Rng;

/// Attribute summarization (§5.1.1): serialize `[CLS] token_1 ... token_n`
/// (WpC embeddings) through the pre-trained Transformer and take the `[CLS]`
/// row as the attribute embedding.
pub fn attribute_embedding(
    t: &mut Tape,
    ps: &ParamStore,
    lm: &MiniLm,
    wpc: Var,
    token_seq: &[usize],
    train: bool,
    rng: &mut impl Rng,
) -> Var {
    let cls = lm.special_embedding(t, ps, Special::Cls);
    if token_seq.is_empty() {
        let encoded = lm.encode_embedded(t, ps, cls, train, rng);
        return t.row(encoded, 0);
    }
    let tokens = t.gather_rows(wpc, token_seq);
    let seq = t.concat_rows(&[cls, tokens]);
    let encoded = lm.encode_embedded(t, ps, seq, train, rng);
    let cls_row = t.row(encoded, 0);
    // Residual mean-pooled WpC shortcut (§4.2 introduces residual
    // connections for exactly this degradation problem): matching
    // attributes share tokens, so their embeddings are comparable even
    // before the summarization Transformer is trained. The LayerNormed
    // [CLS] row has norm ~sqrt(d) while the pooled tokens have norm ~1;
    // scale [CLS] down so the overlap signal is not swamped by untrained
    // encoder jitter.
    let cls_scaled = t.scale(cls_row, 0.2);
    let pooled = t.mean_rows(tokens);
    t.add(cls_scaled, pooled)
}

/// Attribute summarization that also captures the `[CLS]` attention over the
/// attribute's tokens (averaged over layers and heads) for visualization
/// (Figure 9). Returns `(attribute embedding, per-token weights)`.
pub fn attribute_embedding_with_attention(
    t: &mut Tape,
    ps: &ParamStore,
    lm: &MiniLm,
    wpc: Var,
    token_seq: &[usize],
    rng: &mut impl Rng,
) -> (Var, Vec<f32>) {
    let cls = lm.special_embedding(t, ps, Special::Cls);
    if token_seq.is_empty() {
        let encoded = lm.encode_embedded(t, ps, cls, false, rng);
        return (t.row(encoded, 0), Vec::new());
    }
    let tokens = t.gather_rows(wpc, token_seq);
    let seq = t.concat_rows(&[cls, tokens]);
    let mut maps: Vec<Tensor> = Vec::new();
    let encoded = {
        // encode_embedded clips; mirror the clip for attention capture.
        let x = seq;
        lm_encode_with_attn(lm, t, ps, x, rng, &mut maps)
    };
    // Average the CLS row (row 0) attention over all maps; drop the
    // self-attention weight on CLS itself and renormalize over tokens.
    let n = token_seq.len().min(t.value(encoded).rows().saturating_sub(1));
    let mut weights = vec![0.0f32; n];
    for m in &maps {
        for (j, w) in weights.iter_mut().enumerate() {
            *w += m.get(0, j + 1);
        }
    }
    let total: f32 = weights.iter().sum();
    if total > 0.0 {
        for w in &mut weights {
            *w /= total;
        }
    }
    (t.row(encoded, 0), weights)
}

fn lm_encode_with_attn(
    lm: &MiniLm,
    t: &mut Tape,
    ps: &ParamStore,
    x: Var,
    rng: &mut impl Rng,
    maps: &mut Vec<Tensor>,
) -> Var {
    // MiniLm exposes attention capture only for id sequences; replicate the
    // embedded path here via the public encoder-with-attention call.
    lm.encode_embedded_with_attn(t, ps, x, false, rng, maps)
}

/// Entity summarization (§5.1.2 / Algorithm 1): computes every attribute
/// embedding of every entity in the HHG.
///
/// Returns the per-entity attribute embeddings; use [`concat_entities`] for
/// the per-entity concatenation (width `arity x d`) when the configuration
/// actually consumes it — recording it unconditionally leaves dead nodes on
/// the tape in the Non-Sum / Non-Align ablations.
pub fn entity_embeddings(
    t: &mut Tape,
    ps: &ParamStore,
    lm: &MiniLm,
    g: &Hhg,
    wpc: Var,
    train: bool,
    rng: &mut impl Rng,
) -> Vec<Vec<Var>> {
    g.entities
        .iter()
        .map(|e| {
            e.attr_nodes
                .iter()
                .map(|&ai| {
                    attribute_embedding(t, ps, lm, wpc, &g.attributes[ai].token_seq, train, rng)
                })
                .collect()
        })
        .collect()
}

/// Concatenates each entity's attribute embeddings into one `1 x (arity d)`
/// row (the summarized entity embedding of Algorithm 1).
pub fn concat_entities(t: &mut Tape, per_entity_attrs: &[Vec<Var>]) -> Vec<Var> {
    per_entity_attrs.iter().map(|attrs| t.concat_cols(attrs)).collect()
}

/// Aligns two entities' attribute-embedding lists to the model's declared
/// arity, truncating extras and padding shortfalls by repeating the last
/// attribute. With schema-conformant data this is the identity; it keeps
/// the comparison layer total even on ragged inputs.
pub fn attribute_similarity_inputs(
    left: &[Var],
    right: &[Var],
    arity: usize,
) -> (Vec<Var>, Vec<Var>) {
    assert!(!left.is_empty() && !right.is_empty(), "entities must have attributes");
    let pad = |attrs: &[Var]| -> Vec<Var> {
        let mut out: Vec<Var> = attrs.iter().copied().take(arity).collect();
        while out.len() < arity {
            out.push(*out.last().expect("nonempty"));
        }
        out
    };
    (pad(left), pad(right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::Entity;
    use hiergat_lm::LmTier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, MiniLm, Hhg, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let g = Hhg::from_entities(&[
            Entity::new("a", vec![("t".into(), "x y z".into()), ("p".into(), "1".into())]),
            Entity::new("b", vec![("t".into(), "x w".into()), ("p".into(), "2".into())]),
        ]);
        (ps, lm, g, rng)
    }

    fn wpc_of(t: &mut Tape, ps: &ParamStore, lm: &MiniLm, g: &Hhg) -> Var {
        let ids: Vec<usize> = g.tokens.iter().map(|tok| lm.vocab().id(tok)).collect();
        let table = t.param(ps, lm.token_embedding());
        t.gather_rows(table, &ids)
    }

    #[test]
    fn attribute_embedding_is_one_row() {
        let (ps, lm, g, mut rng) = setup();
        let mut t = Tape::new();
        let wpc = wpc_of(&mut t, &ps, &lm, &g);
        let emb =
            attribute_embedding(&mut t, &ps, &lm, wpc, &g.attributes[0].token_seq, false, &mut rng);
        assert_eq!(t.value(emb).shape(), (1, 32));
    }

    #[test]
    fn empty_attribute_still_produces_embedding() {
        let (ps, lm, _, mut rng) = setup();
        let mut t = Tape::new();
        let wpc = t.input(Tensor::zeros(1, 32));
        let emb = attribute_embedding(&mut t, &ps, &lm, wpc, &[], false, &mut rng);
        assert_eq!(t.value(emb).shape(), (1, 32));
    }

    #[test]
    fn entity_embeddings_concatenate_attributes() {
        let (ps, lm, g, mut rng) = setup();
        let mut t = Tape::new();
        let wpc = wpc_of(&mut t, &ps, &lm, &g);
        let attrs = entity_embeddings(&mut t, &ps, &lm, &g, wpc, false, &mut rng);
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].len(), 2);
        let concats = concat_entities(&mut t, &attrs);
        assert_eq!(t.value(concats[0]).shape(), (1, 64)); // 2 attrs x 32
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let (ps, lm, g, mut rng) = setup();
        let mut t = Tape::new();
        let wpc = wpc_of(&mut t, &ps, &lm, &g);
        let (_, w) = attribute_embedding_with_attention(
            &mut t,
            &ps,
            &lm,
            wpc,
            &g.attributes[0].token_seq,
            &mut rng,
        );
        assert_eq!(w.len(), 3);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "weights sum {sum}");
        assert!(w.iter().all(|&x| x >= 0.0));
    }
}
