//! Entity alignment layer (§5.2.3, Eq. 5) for collective ER.
//!
//! Linking a query with N candidates in one HHG lets common, unimportant
//! tokens inflate similarity. The alignment layer learns attention over the
//! related entities and subtracts the attended (projected) embeddings as a
//! residual correction:
//!
//! `h_j = softmax(LeakyReLU(c^T W (v_i || v_j)))`,
//! `v̂_i = v_i - W_v Σ_j h_j v_j`.

use hiergat_graph::GAT_SLOPE;
use hiergat_nn::{Linear, ParamId, ParamStore, Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// The entity alignment layer.
pub struct AlignLayer {
    /// Projection of the pair feature `(v_i || v_j)` for attention logits.
    w_att: Linear,
    /// Attention vector `c`.
    c: ParamId,
    /// Projection applied to the attended neighbor sum before subtraction.
    w_val: Linear,
    d_entity: usize,
}

impl AlignLayer {
    /// Registers parameters. `d_entity` is the entity embedding width
    /// (`arity x d_model`).
    pub fn new(ps: &mut ParamStore, prefix: &str, d_entity: usize, rng: &mut impl Rng) -> Self {
        let hidden = d_entity.clamp(8, 64);
        Self {
            w_att: Linear::new(ps, &format!("{prefix}.w_att"), 2 * d_entity, hidden, false, rng),
            c: ps.add(format!("{prefix}.c"), Tensor::rand_normal(hidden, 1, 0.0, 0.3, rng)),
            w_val: Linear::new(ps, &format!("{prefix}.w_val"), d_entity, d_entity, false, rng),
            d_entity,
        }
    }

    /// Applies Eq. 5 to every entity given the entity-entity edges of the
    /// HHG. Entities without neighbors pass through unchanged.
    pub fn align(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        entity_embs: &[Var],
        edges: &[(usize, usize)],
    ) -> Vec<Var> {
        let n = entity_embs.len();
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
        (0..n)
            .map(|i| {
                if neighbors[i].is_empty() {
                    return entity_embs[i];
                }
                let v_i = entity_embs[i];
                // Stack neighbor embeddings and the pair features.
                let nbr_rows: Vec<Var> = neighbors[i].iter().map(|&j| entity_embs[j]).collect();
                let nbrs = t.concat_rows(&nbr_rows); // k x D
                let k = neighbors[i].len();
                let ones = t.input(Tensor::ones(k, 1));
                let vi_rows = t.matmul(ones, v_i); // k x D
                let feats = t.concat_cols(&[vi_rows, nbrs]); // k x 2D
                let proj = self.w_att.forward(t, ps, feats); // k x hidden
                let cv = t.param(ps, self.c);
                let logits = t.matmul(proj, cv); // k x 1
                let logits = t.leaky_relu(logits, GAT_SLOPE);
                let lt = t.transpose(logits); // 1 x k
                let h = t.softmax(lt); // 1 x k
                let attended = t.matmul(h, nbrs); // 1 x D
                let projected = self.w_val.forward(t, ps, attended);
                t.sub(v_i, projected)
            })
            .collect()
    }

    /// Entity embedding width.
    pub fn d_entity(&self) -> usize {
        self.d_entity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, AlignLayer, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let layer = AlignLayer::new(&mut ps, "align", 16, &mut rng);
        (ps, layer, rng)
    }

    #[test]
    fn preserves_shapes_and_count() {
        let (ps, layer, mut rng) = setup();
        let mut t = Tape::new();
        let embs: Vec<Var> =
            (0..4).map(|_| t.input(Tensor::rand_normal(1, 16, 0.0, 1.0, &mut rng))).collect();
        let edges = vec![(0, 1), (0, 2), (0, 3)];
        let aligned = layer.align(&mut t, &ps, &embs, &edges);
        assert_eq!(aligned.len(), 4);
        for a in &aligned {
            assert_eq!(t.value(*a).shape(), (1, 16));
        }
        assert_eq!(layer.d_entity(), 16);
    }

    #[test]
    fn isolated_entities_pass_through() {
        let (ps, layer, mut rng) = setup();
        let mut t = Tape::new();
        let embs: Vec<Var> =
            (0..3).map(|_| t.input(Tensor::rand_normal(1, 16, 0.0, 1.0, &mut rng))).collect();
        let aligned = layer.align(&mut t, &ps, &embs, &[(0, 1)]);
        // Entity 2 has no edges: unchanged.
        assert!(t.value(aligned[2]).allclose(t.value(embs[2]), 0.0));
        // Entities 0 and 1 are modified.
        assert!(!t.value(aligned[0]).allclose(t.value(embs[0]), 1e-6));
    }

    #[test]
    fn alignment_subtracts_shared_component() {
        // Two identical embeddings linked together: alignment must move
        // them apart from the original (removing redundant information).
        let (ps, layer, _) = setup();
        let mut t = Tape::new();
        let shared = Tensor::full(1, 16, 1.0);
        let a = t.input(shared.clone());
        let b = t.input(shared.clone());
        let aligned = layer.align(&mut t, &ps, &[a, b], &[(0, 1)]);
        let diff = t.value(aligned[0]).sub(&shared);
        assert!(diff.norm() > 0.0, "alignment must change the embedding");
        // Symmetric inputs yield symmetric outputs.
        assert!(t.value(aligned[0]).allclose(t.value(aligned[1]), 1e-5));
    }

    #[test]
    fn gradients_flow_through_alignment() {
        let (mut ps, layer, mut rng) = setup();
        let x0 = Tensor::rand_normal(1, 16, 0.0, 1.0, &mut rng);
        let x1 = Tensor::rand_normal(1, 16, 0.0, 1.0, &mut rng);
        hiergat_nn::gradcheck::assert_gradients_ok(
            &mut ps,
            |t, ps| {
                let a = t.input(x0.clone());
                let b = t.input(x1.clone());
                let aligned = layer.align(t, ps, &[a, b], &[(0, 1)]);
                let cat = t.concat_rows(&aligned);
                t.mean_all(cat)
            },
            1e-3,
            4e-2,
        );
    }
}
