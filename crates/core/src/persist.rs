//! Trained-model persistence: save/load a [`HierGat`] checkpoint
//! (binary weights + JSON config + schema arity) to a directory.

use crate::config::HierGatConfig;
use crate::model::HierGat;
use hiergat_nn::checkpoint::{self, CheckpointError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// Error saving or loading a model checkpoint.
#[derive(Debug)]
pub enum PersistError {
    /// Weight (de)serialization failure.
    Checkpoint(CheckpointError),
    /// Manifest (de)serialization failure.
    Manifest(serde_json::Error),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::Manifest(e) => write!(f, "manifest error: {e}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<CheckpointError> for PersistError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        Self::Manifest(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Manifest {
    config: HierGatConfig,
    arity: usize,
    format_version: u32,
    /// Validation-tuned decision threshold. Absent in format-version-1
    /// manifests; those load with the untuned default.
    #[serde(default = "default_decision_threshold")]
    decision_threshold: f32,
}

fn default_decision_threshold() -> f32 {
    0.5
}

/// Format version 2 adds the tuned decision threshold (manifest field +
/// weights-file metadata); version-1 checkpoints still load.
const FORMAT_VERSION: u32 = 2;

/// Saves a trained model: `<dir>/manifest.json` + `<dir>/weights.bin`.
pub fn save_model(model: &HierGat, dir: impl AsRef<Path>) -> Result<(), PersistError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let manifest = Manifest {
        config: *model.config(),
        arity: model.arity(),
        format_version: FORMAT_VERSION,
        decision_threshold: model.decision_threshold(),
    };
    fs::write(dir.join("manifest.json"), serde_json::to_string_pretty(&manifest)?)?;
    checkpoint::save_binary_with_meta(
        &model.ps,
        &[("decision_threshold", model.decision_threshold())],
        dir.join("weights.bin"),
    )?;
    Ok(())
}

/// Loads a model saved by [`save_model`]. The architecture is rebuilt from
/// the manifest, the weights are copied in by name, and the tuned decision
/// threshold is restored (0.5 for version-1 checkpoints, which predate
/// threshold persistence).
pub fn load_model(dir: impl AsRef<Path>) -> Result<HierGat, PersistError> {
    let dir = dir.as_ref();
    let manifest: Manifest = serde_json::from_str(&fs::read_to_string(dir.join("manifest.json"))?)?;
    let (weights, _meta) = checkpoint::load_binary_with_meta(dir.join("weights.bin"))?;
    let mut model = HierGat::new(manifest.config, manifest.arity);
    let copied = model.ps.load_matching(&weights);
    debug_assert!(copied > 0, "checkpoint contained no matching tensors");
    model.set_decision_threshold(manifest.decision_threshold);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::{Entity, EntityPair};

    fn pair() -> EntityPair {
        EntityPair::new(
            Entity::new("l", vec![("t".into(), "canon eos xk42".into())]),
            Entity::new("r", vec![("t".into(), "canon eos xk42 kit".into())]),
            true,
        )
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let dir = std::env::temp_dir().join("hiergat-persist-test");
        let mut model = HierGat::new(HierGatConfig::fast_test(), 1);
        // Nudge the weights away from init so the roundtrip is non-trivial.
        for _ in 0..3 {
            model.train_pair(&pair());
        }
        let before = model.predict_pair(&pair());
        save_model(&model, &dir).expect("save");
        let loaded = load_model(&dir).expect("load");
        let after = loaded.predict_pair(&pair());
        assert!(
            (before - after).abs() < 1e-6,
            "prediction must survive the roundtrip: {before} vs {after}"
        );
        assert_eq!(loaded.arity(), 1);
    }

    #[test]
    fn tuned_threshold_survives_the_roundtrip() {
        let dir = std::env::temp_dir().join("hiergat-persist-threshold-test");
        let mut model = HierGat::new(HierGatConfig::fast_test(), 1);
        model.set_decision_threshold(0.73);
        save_model(&model, &dir).expect("save");
        let loaded = load_model(&dir).expect("load");
        assert_eq!(loaded.decision_threshold().to_bits(), 0.73f32.to_bits());
    }

    #[test]
    fn version_1_checkpoint_without_threshold_still_loads() {
        // A v1 checkpoint directory: manifest without the threshold field,
        // weights in the v1 binary layout (written here as a v2 file with no
        // metadata — the binary reader accepts both; the manifest is the
        // backward-compat surface under test).
        let dir = std::env::temp_dir().join("hiergat-persist-v1-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let model = HierGat::new(HierGatConfig::fast_test(), 1);
        let config = serde_json::to_string(model.config()).expect("config json");
        let manifest = format!("{{\"config\":{config},\"arity\":1,\"format_version\":1}}");
        fs::write(dir.join("manifest.json"), manifest).expect("manifest");
        checkpoint::save_binary(&model.ps, dir.join("weights.bin")).expect("weights");
        let loaded = load_model(&dir).expect("v1 checkpoints must keep loading");
        assert_eq!(
            loaded.decision_threshold().to_bits(),
            0.5f32.to_bits(),
            "missing threshold defaults to the untuned operating point"
        );
    }

    #[test]
    fn load_missing_dir_fails_cleanly() {
        match load_model("/nonexistent/hiergat-model") {
            Err(err) => {
                assert!(matches!(err, PersistError::Io(_)));
                assert!(!err.to_string().is_empty());
            }
            Ok(_) => panic!("loading a missing directory must fail"),
        }
    }
}
