//! Trained-model persistence: save/load a [`HierGat`] checkpoint
//! (binary weights + JSON config + schema arity) to a directory.

use crate::config::HierGatConfig;
use crate::model::HierGat;
use hiergat_nn::checkpoint::{self, CheckpointError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// Error saving or loading a model checkpoint.
#[derive(Debug)]
pub enum PersistError {
    /// Weight (de)serialization failure.
    Checkpoint(CheckpointError),
    /// Manifest (de)serialization failure.
    Manifest(serde_json::Error),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The checkpoint was saved from a quantised session and must be
    /// reloaded with [`load_model_with_mode`]: scoring it through a plain
    /// f32 session would silently drop the quantisation contract instead
    /// of honouring it.
    QuantisedCheckpoint,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::Manifest(e) => write!(f, "manifest error: {e}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::QuantisedCheckpoint => write!(
                f,
                "checkpoint was saved quantised; load it with load_model_with_mode and \
                 re-quantise the session (a plain f32 session would ignore the \
                 quantisation contract)"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<CheckpointError> for PersistError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        Self::Manifest(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Manifest {
    config: HierGatConfig,
    arity: usize,
    format_version: u32,
    /// Validation-tuned decision threshold. Absent in format-version-1
    /// manifests; those load with the untuned default.
    #[serde(default = "default_decision_threshold")]
    decision_threshold: f32,
}

fn default_decision_threshold() -> f32 {
    0.5
}

/// Format version 2 adds the tuned decision threshold (manifest field +
/// weights-file metadata); version-1 checkpoints still load.
const FORMAT_VERSION: u32 = 2;

/// Weights-file metadata key recording whether the checkpoint was saved
/// from a quantised session (`1.0`) or a plain f32 one (absent / `0.0`).
const QUANT_MODE_KEY: &str = "quant_mode";

/// Saves a trained model: `<dir>/manifest.json` + `<dir>/weights.bin`.
pub fn save_model(model: &HierGat, dir: impl AsRef<Path>) -> Result<(), PersistError> {
    save_model_impl(model, dir.as_ref(), false)
}

/// Saves a model whose serving sessions are quantised. The weights are the
/// same f32 tensors [`save_model`] writes (quantisation is re-derived from
/// the absint audit at load time), but the checkpoint's v2 metadata records
/// the mode so a plain [`load_model`] fails cleanly instead of silently
/// serving the model un-quantised.
pub fn save_model_quantised(model: &HierGat, dir: impl AsRef<Path>) -> Result<(), PersistError> {
    save_model_impl(model, dir.as_ref(), true)
}

fn save_model_impl(model: &HierGat, dir: &Path, quantised: bool) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let manifest = Manifest {
        config: *model.config(),
        arity: model.arity(),
        format_version: FORMAT_VERSION,
        decision_threshold: model.decision_threshold(),
    };
    fs::write(dir.join("manifest.json"), serde_json::to_string_pretty(&manifest)?)?;
    let mut meta = vec![("decision_threshold", model.decision_threshold())];
    if quantised {
        meta.push((QUANT_MODE_KEY, 1.0));
    }
    checkpoint::save_binary_with_meta(&model.ps, &meta, dir.join("weights.bin"))?;
    Ok(())
}

/// Loads a model saved by [`save_model`]. The architecture is rebuilt from
/// the manifest, the weights are copied in by name, and the tuned decision
/// threshold is restored (0.5 for version-1 checkpoints, which predate
/// threshold persistence). Checkpoints saved by [`save_model_quantised`]
/// are refused with [`PersistError::QuantisedCheckpoint`]; use
/// [`load_model_with_mode`] to honour the recorded mode.
pub fn load_model(dir: impl AsRef<Path>) -> Result<HierGat, PersistError> {
    let (model, quantised) = load_model_with_mode(dir)?;
    if quantised {
        return Err(PersistError::QuantisedCheckpoint);
    }
    Ok(model)
}

/// Loads a model along with its recorded quantisation mode (`true` =
/// saved from a quantised session; the caller is expected to re-run
/// `Session::quantise` before serving).
pub fn load_model_with_mode(dir: impl AsRef<Path>) -> Result<(HierGat, bool), PersistError> {
    let dir = dir.as_ref();
    let manifest: Manifest = serde_json::from_str(&fs::read_to_string(dir.join("manifest.json"))?)?;
    let (weights, meta) = checkpoint::load_binary_with_meta(dir.join("weights.bin"))?;
    let quantised = meta.iter().any(|(key, value)| key == QUANT_MODE_KEY && *value != 0.0);
    let mut model = HierGat::new(manifest.config, manifest.arity);
    let copied = model.ps.load_matching(&weights);
    debug_assert!(copied > 0, "checkpoint contained no matching tensors");
    model.set_decision_threshold(manifest.decision_threshold);
    Ok((model, quantised))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::{Entity, EntityPair};

    fn pair() -> EntityPair {
        EntityPair::new(
            Entity::new("l", vec![("t".into(), "canon eos xk42".into())]),
            Entity::new("r", vec![("t".into(), "canon eos xk42 kit".into())]),
            true,
        )
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let dir = std::env::temp_dir().join("hiergat-persist-test");
        let mut model = HierGat::new(HierGatConfig::fast_test(), 1);
        // Nudge the weights away from init so the roundtrip is non-trivial.
        for _ in 0..3 {
            model.train_pair(&pair());
        }
        let before = model.predict_pair(&pair());
        save_model(&model, &dir).expect("save");
        let loaded = load_model(&dir).expect("load");
        let after = loaded.predict_pair(&pair());
        assert!(
            (before - after).abs() < 1e-6,
            "prediction must survive the roundtrip: {before} vs {after}"
        );
        assert_eq!(loaded.arity(), 1);
    }

    #[test]
    fn tuned_threshold_survives_the_roundtrip() {
        let dir = std::env::temp_dir().join("hiergat-persist-threshold-test");
        let mut model = HierGat::new(HierGatConfig::fast_test(), 1);
        model.set_decision_threshold(0.73);
        save_model(&model, &dir).expect("save");
        let loaded = load_model(&dir).expect("load");
        assert_eq!(loaded.decision_threshold().to_bits(), 0.73f32.to_bits());
    }

    #[test]
    fn version_1_checkpoint_without_threshold_still_loads() {
        // A v1 checkpoint directory: manifest without the threshold field,
        // weights in the v1 binary layout (written here as a v2 file with no
        // metadata — the binary reader accepts both; the manifest is the
        // backward-compat surface under test).
        let dir = std::env::temp_dir().join("hiergat-persist-v1-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let model = HierGat::new(HierGatConfig::fast_test(), 1);
        let config = serde_json::to_string(model.config()).expect("config json");
        let manifest = format!("{{\"config\":{config},\"arity\":1,\"format_version\":1}}");
        fs::write(dir.join("manifest.json"), manifest).expect("manifest");
        checkpoint::save_binary(&model.ps, dir.join("weights.bin")).expect("weights");
        let loaded = load_model(&dir).expect("v1 checkpoints must keep loading");
        assert_eq!(
            loaded.decision_threshold().to_bits(),
            0.5f32.to_bits(),
            "missing threshold defaults to the untuned operating point"
        );
    }

    #[test]
    fn quantised_checkpoint_is_refused_by_plain_load_and_mode_roundtrips() {
        let dir = std::env::temp_dir().join("hiergat-persist-quant-test");
        let mut model = HierGat::new(HierGatConfig::fast_test(), 1);
        model.set_decision_threshold(0.61);
        save_model_quantised(&model, &dir).expect("save quantised");
        // A plain load must error cleanly — never score a checkpoint whose
        // recorded serving mode it would silently drop.
        match load_model(&dir) {
            Err(err) => {
                assert!(matches!(err, PersistError::QuantisedCheckpoint), "{err:?}");
                assert!(err.to_string().contains("quantise"), "{err}");
            }
            Ok(_) => panic!("plain load of a quantised checkpoint must fail"),
        }
        // The mode-aware load round-trips the flag, the weights, and the
        // tuned threshold.
        let (loaded, quantised) = load_model_with_mode(&dir).expect("mode-aware load");
        assert!(quantised, "quant mode must round-trip through v2 metadata");
        assert_eq!(loaded.decision_threshold().to_bits(), 0.61f32.to_bits());
        // And a plain save still loads plain.
        save_model(&model, &dir).expect("save plain");
        let (_, quantised) = load_model_with_mode(&dir).expect("plain reload");
        assert!(!quantised);
        load_model(&dir).expect("plain load of plain checkpoint");
    }

    #[test]
    fn load_missing_dir_fails_cleanly() {
        match load_model("/nonexistent/hiergat-model") {
            Err(err) => {
                assert!(matches!(err, PersistError::Io(_)));
                assert!(!err.to_string().is_empty());
            }
            Ok(_) => panic!("loading a missing directory must fail"),
        }
    }
}
