//! Trained-model persistence: save/load a [`HierGat`] checkpoint
//! (binary weights + JSON config + schema arity) to a directory.

use crate::config::HierGatConfig;
use crate::model::HierGat;
use hiergat_nn::checkpoint::{self, CheckpointError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// Error saving or loading a model checkpoint.
#[derive(Debug)]
pub enum PersistError {
    /// Weight (de)serialization failure.
    Checkpoint(CheckpointError),
    /// Manifest (de)serialization failure.
    Manifest(serde_json::Error),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::Manifest(e) => write!(f, "manifest error: {e}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<CheckpointError> for PersistError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        Self::Manifest(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Manifest {
    config: HierGatConfig,
    arity: usize,
    format_version: u32,
}

const FORMAT_VERSION: u32 = 1;

/// Saves a trained model: `<dir>/manifest.json` + `<dir>/weights.bin`.
pub fn save_model(model: &HierGat, dir: impl AsRef<Path>) -> Result<(), PersistError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let manifest =
        Manifest { config: *model.config(), arity: model.arity(), format_version: FORMAT_VERSION };
    fs::write(dir.join("manifest.json"), serde_json::to_string_pretty(&manifest)?)?;
    checkpoint::save_binary(&model.ps, dir.join("weights.bin"))?;
    Ok(())
}

/// Loads a model saved by [`save_model`]. The architecture is rebuilt from
/// the manifest, then the weights are copied in by name.
pub fn load_model(dir: impl AsRef<Path>) -> Result<HierGat, PersistError> {
    let dir = dir.as_ref();
    let manifest: Manifest = serde_json::from_str(&fs::read_to_string(dir.join("manifest.json"))?)?;
    let weights = checkpoint::load_binary(dir.join("weights.bin"))?;
    let mut model = HierGat::new(manifest.config, manifest.arity);
    let copied = model.ps.load_matching(&weights);
    debug_assert!(copied > 0, "checkpoint contained no matching tensors");
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::{Entity, EntityPair};

    fn pair() -> EntityPair {
        EntityPair::new(
            Entity::new("l", vec![("t".into(), "canon eos xk42".into())]),
            Entity::new("r", vec![("t".into(), "canon eos xk42 kit".into())]),
            true,
        )
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let dir = std::env::temp_dir().join("hiergat-persist-test");
        let mut model = HierGat::new(HierGatConfig::fast_test(), 1);
        // Nudge the weights away from init so the roundtrip is non-trivial.
        for _ in 0..3 {
            model.train_pair(&pair());
        }
        let before = model.predict_pair(&pair());
        save_model(&model, &dir).expect("save");
        let loaded = load_model(&dir).expect("load");
        let after = loaded.predict_pair(&pair());
        assert!(
            (before - after).abs() < 1e-6,
            "prediction must survive the roundtrip: {before} vs {after}"
        );
        assert_eq!(loaded.arity(), 1);
    }

    #[test]
    fn load_missing_dir_fails_cleanly() {
        match load_model("/nonexistent/hiergat-model") {
            Err(err) => {
                assert!(matches!(err, PersistError::Io(_)));
                assert!(!err.to_string().is_empty());
            }
            Ok(_) => panic!("loading a missing directory must fail"),
        }
    }
}
