//! The HierGAT / HierGAT+ model (§3-§5 of the paper).

use crate::aggregate::{attribute_similarity_inputs, concat_entities, entity_embeddings};
use crate::align::AlignLayer;
use crate::compare::{AttributeComparer, EntityComparison};
use crate::config::{HierGatConfig, ViewCombiner};
use crate::context::ContextModule;
use hiergat_data::{CollectiveExample, EntityPair};
use hiergat_graph::Hhg;
use hiergat_lm::MiniLm;
use hiergat_nn::{Adam, ArenaExecutor, ExecutionPlan, Linear, Optimizer, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The HierGAT entity-resolution model.
///
/// One instance handles both the pairwise mode (HierGAT) and — when built
/// from [`HierGatConfig::collective`] — the collective mode (HierGAT+) with
/// entity-level context and the alignment layer.
pub struct HierGat {
    cfg: HierGatConfig,
    /// All trainable parameters (LM + HierGAT heads).
    pub ps: ParamStore,
    lm: MiniLm,
    ctx: ContextModule,
    cmp: EntityComparison,
    comparer: AttributeComparer,
    align: AlignLayer,
    cls_hidden: Linear,
    cls_out: Linear,
    opt: Adam,
    rng: StdRng,
    arity: usize,
    d: usize,
    /// Arena-backed step executor (used when `cfg.use_arena` is set); keeps
    /// the planned buffer and plan cache alive across steps so same-shape
    /// epochs allocate nothing.
    exec: ArenaExecutor,
    /// Validation-tuned decision threshold (0.5 until tuning sets it);
    /// persisted in checkpoints so a restored session can emit boolean
    /// match decisions.
    decision_threshold: f32,
}

impl HierGat {
    /// Builds a model for entities with `arity` attributes.
    pub fn new(cfg: HierGatConfig, arity: usize) -> Self {
        assert!(arity > 0, "HierGat: arity must be positive");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let lm_cfg = cfg.lm_tier.config();
        let d = lm_cfg.d_model;
        let lm = MiniLm::new(&mut ps, lm_cfg, &mut rng);
        let ctx = ContextModule::new(&mut ps, "hg.ctx", d, &mut rng);
        let cmp = EntityComparison::new(&mut ps, "hg.cmp", d, arity, cfg.combiner, &mut rng);
        let comparer = AttributeComparer::new(&mut ps, "hg.attr_cmp", d, &mut rng);
        let align = AlignLayer::new(&mut ps, "hg.align", arity * d, &mut rng);
        let cls_hidden = Linear::new(&mut ps, "hg.cls_hidden", d, d, true, &mut rng);
        let cls_out = Linear::new(&mut ps, "hg.cls_out", d, 2, true, &mut rng);
        let opt = Adam::new(cfg.lr);
        // Submodules switched off by the config never appear on a tape, so
        // their parameters can never receive gradients. Freeze them: the
        // optimizer skips them and the static analyzer counts them as
        // intentionally gradient-dead instead of flagging wiring bugs.
        if !cfg.use_token_context {
            ps.freeze_prefix("hg.ctx.gate_token");
        }
        if !cfg.use_attr_context && !cfg.use_entity_context {
            ps.freeze_prefix("hg.ctx.attr_ctx.");
            ps.freeze_prefix("hg.ctx.gate_phi");
        }
        if !cfg.use_entity_context {
            ps.freeze_prefix("hg.ctx.red_ctx.");
            ps.freeze_prefix("hg.ctx.red_rm.");
        }
        if cfg.combiner != ViewCombiner::SharedSpace {
            ps.freeze_prefix("hg.cmp.shared.");
        }
        if cfg.combiner != ViewCombiner::WeightAverage || !cfg.use_entity_summarization {
            ps.freeze_prefix("hg.cmp.attn_ctx.");
        }
        if cfg.combiner != ViewCombiner::WeightAverage || cfg.use_entity_summarization {
            ps.freeze_prefix("hg.cmp.attn_plain.");
        }
        // Alignment refines the summarized entity rows, which only the
        // weight-average combiner's entity context consumes.
        if !(cfg.use_alignment
            && cfg.use_entity_summarization
            && cfg.combiner == ViewCombiner::WeightAverage)
        {
            ps.freeze_prefix("hg.align.");
        }
        Self {
            cfg,
            ps,
            lm,
            ctx,
            cmp,
            comparer,
            align,
            cls_hidden,
            cls_out,
            opt,
            rng,
            arity,
            d,
            exec: ArenaExecutor::new(),
            decision_threshold: 0.5,
        }
    }

    /// Validation-tuned decision threshold (0.5 until tuning sets it).
    pub fn decision_threshold(&self) -> f32 {
        self.decision_threshold
    }

    /// Records the validation-tuned decision threshold.
    pub fn set_decision_threshold(&mut self, threshold: f32) {
        self.decision_threshold = threshold;
    }

    /// Loads pre-trained `lm.*` weights; returns the number of tensors
    /// copied.
    pub fn load_pretrained(&mut self, pretrained: &ParamStore) -> usize {
        self.ps.load_matching(pretrained)
    }

    /// Model configuration.
    pub fn config(&self) -> &HierGatConfig {
        &self.cfg
    }

    /// Attribute count the model was built for.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Hidden width.
    pub fn d_model(&self) -> usize {
        self.d
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.ps.num_scalars()
    }

    /// Whether the forward pass feeds the summarized-entity context into the
    /// comparison layer (only the weight-average combiner consumes it).
    fn uses_entity_ctx(&self) -> bool {
        self.cfg.use_entity_summarization && self.cfg.combiner == ViewCombiner::WeightAverage
    }

    fn classify(&self, t: &mut Tape, sim: Var) -> Var {
        let h = self.cls_hidden.forward(t, &self.ps, sim);
        let h = t.relu(h);
        self.cls_out.forward(t, &self.ps, h)
    }

    /// Forward pass over one pair; returns `1 x 2` match logits.
    pub fn forward_pair(&mut self, t: &mut Tape, pair: &EntityPair, train: bool) -> Var {
        let mut rng = self.rng.clone();
        let out = self.forward_pair_rng(t, pair, train, &mut rng);
        self.rng = rng;
        out
    }

    /// Forward pass with an explicit RNG (enables `&self` inference).
    pub fn forward_pair_rng(
        &self,
        t: &mut Tape,
        pair: &EntityPair,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        let g = Hhg::from_pair(pair);
        let wpc = self.ctx.wpc(t, &self.ps, &g, &self.lm, &self.cfg, train, rng);
        let attrs = entity_embeddings(t, &self.ps, &self.lm, &g, wpc, train, rng);
        let (left_attrs, right_attrs) =
            attribute_similarity_inputs(&attrs[0], &attrs[1], self.arity);
        let sims: Vec<Var> = left_attrs
            .iter()
            .zip(&right_attrs)
            .map(|(&a, &b)| self.comparer.similarity(t, &self.ps, &self.lm, a, b, train, rng))
            .collect();
        let entity_ctx = if self.uses_entity_ctx() {
            let concats = concat_entities(t, &attrs);
            Some(t.concat_cols(&[concats[0], concats[1]]))
        } else {
            None
        };
        let sim = self.cmp.combine(t, &self.ps, &sims, entity_ctx);
        self.classify(t, sim)
    }

    /// Match probability for one pair (inference mode; thread-safe).
    pub fn predict_pair(&self, pair: &EntityPair) -> f32 {
        let mut t = Tape::new();
        let probs = self.record_pair_scores(&mut t, pair);
        t.value(probs).get(0, 1)
    }

    /// Records the eval-mode pairwise scoring graph onto `t` — exactly the
    /// graph [`Self::predict_pair`] evaluates (same seed, eval mode, softmax
    /// over logits) — and returns the `1 x 2` probability node. Works on any
    /// tape kind; inference tapes replay it through a forward-only arena
    /// plan bitwise-identically.
    pub fn record_pair_scores(&self, t: &mut Tape, pair: &EntityPair) -> Var {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x1f);
        let logits = self.forward_pair_rng(t, pair, false, &mut rng);
        t.softmax(logits)
    }

    /// One training step on a pair; returns the loss.
    pub fn train_pair(&mut self, pair: &EntityPair) -> f32 {
        self.train_pair_weighted(pair, 1.0)
    }

    /// Weighted training step: positive pairs can be up-weighted to counter
    /// the 9-25% positive rates of the benchmarks (DeepMatcher's
    /// `pos_neg_ratio`; the trainer derives the weight from the split).
    pub fn train_pair_weighted(&mut self, pair: &EntityPair, weight: f32) -> f32 {
        // Clearing at the start (rather than after the optimizer step) leaves
        // the step's clipped gradients observable for differential testing.
        self.ps.zero_grad();
        let mut t = if self.cfg.use_arena { Tape::deferred() } else { Tape::new() };
        let logits = self.forward_pair(&mut t, pair, true);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[weight]);
        let loss_val = if self.cfg.use_arena {
            self.exec.step(&t, loss, &mut self.ps)
        } else {
            let v = t.value(loss).item();
            t.backward(loss, &mut self.ps);
            v
        };
        self.ps.clip_grad_norm(5.0);
        self.opt.step(&mut self.ps);
        loss_val
    }

    /// Forward pass over a collective example; returns `N x 2` logits, one
    /// row per candidate.
    pub fn forward_collective(&mut self, t: &mut Tape, ex: &CollectiveExample, train: bool) -> Var {
        let mut rng = self.rng.clone();
        let out = self.forward_collective_rng(t, ex, train, &mut rng);
        self.rng = rng;
        out
    }

    /// Collective forward with an explicit RNG (enables `&self` inference).
    pub fn forward_collective_rng(
        &self,
        t: &mut Tape,
        ex: &CollectiveExample,
        train: bool,
        rng: &mut StdRng,
    ) -> Var {
        assert!(!ex.candidates.is_empty(), "collective example without candidates");
        let mut entities = Vec::with_capacity(1 + ex.candidates.len());
        entities.push(ex.query.clone());
        entities.extend(ex.candidates.iter().cloned());
        let g = Hhg::from_entities(&entities);
        let wpc = self.ctx.wpc(t, &self.ps, &g, &self.lm, &self.cfg, train, rng);
        let attrs = entity_embeddings(t, &self.ps, &self.lm, &g, wpc, train, rng);
        // The summarized entity rows (and their aligned refinement, Eq. 5)
        // feed only the weight-average combiner's entity context; skip them
        // in the Non-Sum / other-combiner ablations so no dead nodes are
        // recorded.
        let aligned = if self.uses_entity_ctx() {
            let concats = concat_entities(t, &attrs);
            if self.cfg.use_alignment {
                self.align.align(t, &self.ps, &concats, &g.entity_edges)
            } else {
                concats
            }
        } else {
            Vec::new()
        };
        let mut rows = Vec::with_capacity(ex.candidates.len());
        for ci in 0..ex.candidates.len() {
            let (q_attrs, c_attrs) =
                attribute_similarity_inputs(&attrs[0], &attrs[ci + 1], self.arity);
            let sims: Vec<Var> = q_attrs
                .iter()
                .zip(&c_attrs)
                .map(|(&a, &b)| self.comparer.similarity(t, &self.ps, &self.lm, a, b, train, rng))
                .collect();
            let entity_ctx = if self.uses_entity_ctx() {
                Some(t.concat_cols(&[aligned[0], aligned[ci + 1]]))
            } else {
                None
            };
            let sim = self.cmp.combine(t, &self.ps, &sims, entity_ctx);
            rows.push(self.classify(t, sim));
        }
        t.concat_rows(&rows)
    }

    /// Match probabilities for every candidate of a collective example
    /// (thread-safe).
    pub fn predict_collective(&self, ex: &CollectiveExample) -> Vec<f32> {
        let mut t = Tape::new();
        let probs = self.record_collective_scores(&mut t, ex);
        (0..ex.candidates.len()).map(|i| t.value(probs).get(i, 1)).collect()
    }

    /// Records the eval-mode collective scoring graph onto `t` — exactly the
    /// graph [`Self::predict_collective`] evaluates — and returns the
    /// `n_candidates x 2` probability node.
    pub fn record_collective_scores(&self, t: &mut Tape, ex: &CollectiveExample) -> Var {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x2f);
        let logits = self.forward_collective_rng(t, ex, false, &mut rng);
        t.softmax(logits)
    }

    /// One training step on a collective example (the batch is the
    /// candidate set, §6.3); returns the loss.
    pub fn train_collective(&mut self, ex: &CollectiveExample) -> f32 {
        self.train_collective_weighted(ex, 1.0)
    }

    /// Weighted collective step: positive candidates weighted by `weight`.
    pub fn train_collective_weighted(&mut self, ex: &CollectiveExample, weight: f32) -> f32 {
        // Clearing at the start (rather than after the optimizer step) leaves
        // the step's clipped gradients observable for differential testing.
        self.ps.zero_grad();
        let mut t = if self.cfg.use_arena { Tape::deferred() } else { Tape::new() };
        let logits = self.forward_collective(&mut t, ex, true);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights: Vec<f32> = ex.labels.iter().map(|&l| if l { weight } else { 1.0 }).collect();
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        let loss_val = if self.cfg.use_arena {
            self.exec.step(&t, loss, &mut self.ps)
        } else {
            let v = t.value(loss).item();
            t.backward(loss, &mut self.ps);
            v
        };
        self.ps.clip_grad_norm(5.0);
        self.opt.step(&mut self.ps);
        loss_val
    }

    /// Statically analyzes the pairwise training graph: records the forward
    /// pass and loss on a shape-only tape (no kernels execute) and runs
    /// shape inference, dead-gradient, and sentinel passes over it. Also
    /// surfaces HHG builder-invariant violations as shape violations.
    pub fn analyze_pair(&self, pair: &EntityPair) -> hiergat_nn::GraphReport {
        let mut t = Tape::shape_only();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let logits = self.forward_pair_rng(&mut t, pair, true, &mut rng);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        let mut report = hiergat_nn::analyze_graph(&t, loss, &self.ps);
        graph_issues_into(&Hhg::from_pair(pair), &mut report);
        report
    }

    /// Collective-mode counterpart of [`Self::analyze_pair`].
    pub fn analyze_collective(&self, ex: &CollectiveExample) -> hiergat_nn::GraphReport {
        let mut t = Tape::shape_only();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let logits = self.forward_collective_rng(&mut t, ex, true, &mut rng);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights = vec![1.0; targets.len()];
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        let mut report = hiergat_nn::analyze_graph(&t, loss, &self.ps);
        let mut entities = Vec::with_capacity(1 + ex.candidates.len());
        entities.push(ex.query.clone());
        entities.extend(ex.candidates.iter().cloned());
        graph_issues_into(&Hhg::from_entities(&entities), &mut report);
        report
    }

    /// Arena-planner report for the pairwise training graph: liveness-packed
    /// arena size for a full forward+backward step versus the no-reuse
    /// baseline and the theoretical lower bound. Records shapes only — no
    /// kernels run.
    pub fn plan_pair(&self, pair: &EntityPair) -> hiergat_nn::PlanReport {
        let mut t = Tape::deferred();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let logits = self.forward_pair_rng(&mut t, pair, true, &mut rng);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        ExecutionPlan::build(&t, loss).report().clone()
    }

    /// Collective-mode counterpart of [`Self::plan_pair`].
    pub fn plan_collective(&self, ex: &CollectiveExample) -> hiergat_nn::PlanReport {
        let mut t = Tape::deferred();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let logits = self.forward_collective_rng(&mut t, ex, true, &mut rng);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights = vec![1.0; targets.len()];
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        ExecutionPlan::build(&t, loss).report().clone()
    }

    /// Runs the [`hiergat_nn::lint_graph`] rule engine over the pairwise
    /// training graph (shape-only tape, training mode: dropout is expected).
    pub fn lint_pair(&self, pair: &EntityPair) -> hiergat_nn::LintReport {
        let mut t = Tape::shape_only();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let logits = self.forward_pair_rng(&mut t, pair, true, &mut rng);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        hiergat_nn::lint_graph(&t, loss, &self.ps, &hiergat_nn::LintConfig::training())
    }

    /// Collective-mode counterpart of [`Self::lint_pair`].
    pub fn lint_collective(&self, ex: &CollectiveExample) -> hiergat_nn::LintReport {
        let mut t = Tape::shape_only();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let logits = self.forward_collective_rng(&mut t, ex, true, &mut rng);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights = vec![1.0; targets.len()];
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        hiergat_nn::lint_graph(&t, loss, &self.ps, &hiergat_nn::LintConfig::training())
    }

    /// The underlying language model (for explanation tooling).
    pub fn lm(&self) -> &MiniLm {
        &self.lm
    }

    /// Internal access for the explanation module.
    pub(crate) fn parts(
        &mut self,
    ) -> (&ContextModule, &MiniLm, &EntityComparison, &AttributeComparer, &HierGatConfig, &ParamStore)
    {
        (&self.ctx, &self.lm, &self.cmp, &self.comparer, &self.cfg, &self.ps)
    }
}

/// Copies HHG builder-invariant violations into a graph report.
fn graph_issues_into(g: &Hhg, report: &mut hiergat_nn::GraphReport) {
    report.graph_issues.extend(g.validate());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::Entity;

    fn pair(label: bool) -> EntityPair {
        EntityPair::new(
            Entity::new(
                "l",
                vec![
                    ("title".into(), "apache spark cluster".into()),
                    ("price".into(), "49.99".into()),
                ],
            ),
            Entity::new(
                "r",
                vec![
                    ("title".into(), "apache spark framework".into()),
                    ("price".into(), "45.00".into()),
                ],
            ),
            label,
        )
    }

    #[test]
    fn pair_forward_shapes_and_probability() {
        let m = HierGat::new(HierGatConfig::fast_test(), 2);
        let p = m.predict_pair(&pair(true));
        assert!((0.0..=1.0).contains(&p), "probability {p}");
    }

    #[test]
    fn training_step_reduces_loss_on_repeated_example() {
        let mut m = HierGat::new(HierGatConfig::fast_test(), 2);
        let ex = pair(true);
        let first = m.train_pair(&ex);
        let mut last = first;
        for _ in 0..15 {
            last = m.train_pair(&ex);
        }
        assert!(last < first, "loss must decrease: {first} -> {last}");
    }

    #[test]
    fn collective_forward_outputs_one_row_per_candidate() {
        let mut m = HierGat::new(
            HierGatConfig { epochs: 1, ..HierGatConfig::collective() }
                .with_tier(hiergat_lm::LmTier::MiniDistil),
            2,
        );
        let ex = CollectiveExample::new(
            pair(true).left,
            vec![pair(true).right, pair(false).right, pair(false).left],
            vec![true, false, false],
        );
        let probs = m.predict_collective(&ex);
        assert_eq!(probs.len(), 3);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        let loss = m.train_collective(&ex);
        assert!(loss.is_finite());
    }

    #[test]
    fn pretrained_weights_change_predictions() {
        let cfg = HierGatConfig::fast_test();
        let mut a = HierGat::new(cfg, 2);
        let baseline = a.predict_pair(&pair(true));
        // A differently-seeded store stands in for a pre-trained checkpoint.
        let donor = HierGat::new(cfg.with_seed(999), 2);
        let copied = a.load_pretrained(&donor.ps);
        assert!(copied > 0);
        let after = a.predict_pair(&pair(true));
        assert_ne!(baseline, after);
    }

    #[test]
    fn parameter_count_grows_with_tier() {
        let small = HierGat::new(HierGatConfig::fast_test(), 2);
        let large =
            HierGat::new(HierGatConfig::fast_test().with_tier(hiergat_lm::LmTier::MiniLarge), 2);
        assert!(large.num_parameters() > small.num_parameters());
        assert_eq!(small.arity(), 2);
        assert_eq!(small.d_model(), 32);
    }

    #[test]
    #[should_panic(expected = "arity must be positive")]
    fn zero_arity_rejected() {
        HierGat::new(HierGatConfig::fast_test(), 0);
    }

    #[test]
    fn analyzer_accepts_pairwise_forward_graph() {
        let m = HierGat::new(HierGatConfig::fast_test(), 2);
        let report = m.analyze_pair(&pair(true));
        assert!(report.is_clean(), "pairwise graph must analyze clean:\n{report}");
        assert!(report.node_count > 0);
    }

    #[test]
    fn analyzer_accepts_collective_forward_graph() {
        let m = HierGat::new(
            HierGatConfig { epochs: 1, ..HierGatConfig::collective() }
                .with_tier(hiergat_lm::LmTier::MiniDistil),
            2,
        );
        let ex = CollectiveExample::new(
            pair(true).left,
            vec![pair(true).right, pair(false).right],
            vec![true, false],
        );
        let report = m.analyze_collective(&ex);
        assert!(report.is_clean(), "collective graph must analyze clean:\n{report}");
    }

    #[test]
    fn lint_passes_on_pairwise_and_collective_graphs() {
        use hiergat_nn::Severity;
        let m = HierGat::new(HierGatConfig::fast_test(), 2);
        let report = m.lint_pair(&pair(true));
        assert!(
            report.is_clean_at(Severity::Warn),
            "pairwise graph must lint clean at --deny warn:\n{report}"
        );
        let mc = HierGat::new(
            HierGatConfig { epochs: 1, ..HierGatConfig::collective() }
                .with_tier(hiergat_lm::LmTier::MiniDistil),
            2,
        );
        let ex = CollectiveExample::new(
            pair(true).left,
            vec![pair(true).right, pair(false).right],
            vec![true, false],
        );
        let report = mc.lint_collective(&ex);
        assert!(
            report.is_clean_at(Severity::Warn),
            "collective graph must lint clean at --deny warn:\n{report}"
        );
    }

    #[test]
    fn analyzer_flags_orphaned_parameter() {
        let mut m = HierGat::new(HierGatConfig::fast_test(), 2);
        m.ps.add("stray.w", hiergat_tensor::Tensor::ones(1, 1));
        let report = m.analyze_pair(&pair(false));
        assert!(!report.is_clean());
        assert!(
            report.dead_params.iter().any(|d| d.name == "stray.w" && !d.frozen && !d.on_tape),
            "{report}"
        );
    }

    #[test]
    fn ablation_configs_analyze_clean_via_freezing() {
        // Every Table 9-11 switch leaves some submodule off the tape; the
        // constructor must freeze exactly those so the analyzer stays clean.
        let base = HierGatConfig::fast_test();
        let configs = [
            HierGatConfig { use_token_context: false, ..base },
            HierGatConfig { use_attr_context: false, use_entity_context: false, ..base },
            HierGatConfig { use_entity_summarization: false, ..base },
            HierGatConfig { combiner: ViewCombiner::ViewAverage, ..base },
            HierGatConfig { combiner: ViewCombiner::SharedSpace, ..base },
        ];
        for cfg in configs {
            let m = HierGat::new(cfg, 2);
            let report = m.analyze_pair(&pair(true));
            assert!(report.is_clean(), "config {cfg:?} not clean:\n{report}");
        }
    }
}
