//! HierGAT and HierGAT+ — the primary contribution of "Entity Resolution
//! with Hierarchical Graph Attention Networks" (SIGMOD 2022), reproduced in
//! Rust.
//!
//! The model combines Transformer self-attention with graph attention over
//! a Hierarchical Heterogeneous Graph (HHG) of token / attribute / entity
//! nodes:
//!
//! * [`context`]: word+context (WpC) embeddings with token-, attribute-, and
//!   entity-level context (§4);
//! * [`aggregate`]: attribute & entity summarization (§5.1, Algorithm 1);
//! * [`compare`]: attribute comparison and structural-attention entity
//!   comparison with three multi-view combiners (§5.2, Table 10);
//! * [`align`]: the entity alignment layer of the collective model (Eq. 5);
//! * [`model`]: the assembled [`HierGat`] handling both pairwise and
//!   collective ER;
//! * [`train`]: §6.1-style training with validation-based selection;
//! * [`explain`]: attention heat maps (Figure 9).
//!
//! # Example
//!
//! ```no_run
//! use hiergat::{train_pairwise, HierGat, HierGatConfig};
//! use hiergat_data::MagellanDataset;
//!
//! let dataset = MagellanDataset::AmazonGoogle.load(1.0);
//! let mut model = HierGat::new(HierGatConfig::pairwise(), dataset.arity());
//! let report = train_pairwise(&mut model, &dataset);
//! println!("test F1 = {:.1}", report.test_f1 * 100.0);
//! let p = model.predict_pair(&dataset.test[0]);
//! assert!((0.0..=1.0).contains(&p));
//! ```

pub mod aggregate;
pub mod align;
pub mod compare;
pub mod config;
pub mod context;
pub mod explain;
pub mod model;
pub mod persist;
pub mod schema_align;
pub mod train;

pub use config::{HierGatConfig, ViewCombiner};
pub use explain::{explain_pair, AttrExplanation, PairExplanation};
pub use model::HierGat;
pub use persist::{
    load_model, load_model_with_mode, save_model, save_model_quantised, PersistError,
};
pub use schema_align::{align_pairs, align_schemas, project_entity, SchemaAlignment};
pub use train::{
    preflight_collective, preflight_pairwise, score_collective, score_pairs, train_collective,
    train_pairwise, TrainReport,
};
