//! HierGAT model configuration and ablation switches.

use hiergat_lm::LmTier;
use serde::{Deserialize, Serialize};

/// Multi-view combiners for the entity comparison layer (§5.2.2, Table 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewCombiner {
    /// Mean of the attribute similarity embeddings.
    ViewAverage,
    /// Map each view into a shared latent space, then average.
    SharedSpace,
    /// Structural-attention weighted average (Eq. 4) — the paper's default.
    WeightAverage,
}

/// Full configuration of a HierGAT / HierGAT+ model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierGatConfig {
    /// Language-model tier (Tables 3 and 8 sweep this).
    pub lm_tier: LmTier,
    /// Use token-level context embeddings (§4.2).
    pub use_token_context: bool,
    /// Use attribute-level context embeddings (§4.2). Ablated in Table 9
    /// ("Non-Attribute").
    pub use_attr_context: bool,
    /// Use entity-level (redundant) context embeddings (§4.2). Ablated in
    /// Table 9 ("Non-Entity"). Pairwise HierGAT leaves this off (§6.1).
    pub use_entity_context: bool,
    /// The multi-view combiner for entity comparison (Table 10).
    pub combiner: ViewCombiner,
    /// Include entity summarization context in the comparison layer.
    /// Ablated in Table 11 ("Non-Sum").
    pub use_entity_summarization: bool,
    /// Apply the entity alignment layer (Eq. 5) in collective mode.
    /// Ablated in Table 11 ("Non-Align").
    pub use_alignment: bool,
    /// Training epochs (the paper uses 10, §6.1).
    pub epochs: usize,
    /// Adam learning rate (the paper uses 1e-5 for full-size LMs; the
    /// miniature models need a larger rate).
    pub lr: f32,
    /// Dropout probability during fine-tuning.
    pub dropout: f32,
    /// RNG seed for initialization, shuffling, and dropout.
    pub seed: u64,
    /// Execute training steps through the ahead-of-time arena planner
    /// (`hiergat_nn::plan`): the step graph is recorded shape-first, every
    /// buffer is assigned an offset in one contiguous arena, and
    /// steady-state steps run with zero tensor allocations. Numerically
    /// bitwise-identical to the default heap executor.
    #[serde(default)]
    pub use_arena: bool,
}

impl Default for HierGatConfig {
    fn default() -> Self {
        Self {
            lm_tier: LmTier::MiniBase,
            use_token_context: true,
            use_attr_context: true,
            use_entity_context: false, // pairwise default, §6.1
            combiner: ViewCombiner::WeightAverage,
            use_entity_summarization: true,
            use_alignment: false, // pairwise default
            epochs: 10,
            lr: 8e-4,
            dropout: 0.05,
            seed: 0x48_47,
            use_arena: false,
        }
    }
}

impl HierGatConfig {
    /// The pairwise HierGAT configuration of §6.1 (no entity context, no
    /// alignment).
    pub fn pairwise() -> Self {
        Self::default()
    }

    /// The collective HierGAT+ configuration: entity-level context and the
    /// alignment layer switched on.
    pub fn collective() -> Self {
        Self { use_entity_context: true, use_alignment: true, ..Self::default() }
    }

    /// A reduced configuration for unit tests (small LM, few epochs).
    pub fn fast_test() -> Self {
        Self { lm_tier: LmTier::MiniDistil, epochs: 3, ..Self::default() }
    }

    /// Applies a tier override, returning the updated config.
    pub fn with_tier(mut self, tier: LmTier) -> Self {
        self.lm_tier = tier;
        self
    }

    /// Applies a seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies an epoch override.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Switches the arena training executor on or off.
    pub fn with_arena(mut self, on: bool) -> Self {
        self.use_arena = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_default_matches_paper_setup() {
        let c = HierGatConfig::pairwise();
        assert!(c.use_token_context && c.use_attr_context);
        assert!(!c.use_entity_context, "pairwise HierGAT omits entity-level context (§6.1)");
        assert!(!c.use_alignment);
        assert_eq!(c.combiner, ViewCombiner::WeightAverage);
        assert_eq!(c.epochs, 10);
    }

    #[test]
    fn collective_enables_alignment_and_entity_context() {
        let c = HierGatConfig::collective();
        assert!(c.use_entity_context);
        assert!(c.use_alignment);
    }

    #[test]
    fn builders_compose() {
        let c = HierGatConfig::pairwise().with_tier(LmTier::MiniLarge).with_seed(7).with_epochs(2);
        assert_eq!(c.lm_tier, LmTier::MiniLarge);
        assert_eq!(c.seed, 7);
        assert_eq!(c.epochs, 2);
    }
}
