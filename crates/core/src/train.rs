//! Training loops and evaluation (§5.3 / §6.1 protocol).
//!
//! Per-epoch validation selects the best parameters (the paper verifies
//! every epoch on the validation set, §6.1); the decision threshold is tuned
//! on validation scores and applied unchanged to the test split.

use crate::model::HierGat;
use hiergat_data::{CollectiveDataset, CollectiveExample, EntityPair, PairDataset};
use hiergat_metrics::{best_threshold, evaluate_at_threshold, Confusion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Best validation F1 observed (model-selection criterion).
    pub best_valid_f1: f64,
    /// Test F1 of the selected model at the validation-tuned threshold.
    pub test_f1: f64,
    /// Test precision/recall at the same operating point.
    pub test_confusion: Confusion,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Wall-clock seconds per epoch (Figure 11 reports training time).
    pub per_epoch_seconds: Vec<f64>,
    /// Mean training loss per epoch.
    pub per_epoch_loss: Vec<f32>,
}

impl TrainReport {
    /// Total training seconds.
    pub fn total_seconds(&self) -> f64 {
        self.per_epoch_seconds.iter().sum()
    }
}

/// Scores every pair with the model, fanning out over worker threads
/// (inference is `&self` and the parameter store is read-only here).
pub fn score_pairs(model: &HierGat, pairs: &[EntityPair]) -> (Vec<f32>, Vec<bool>) {
    let scores = parallel::par_map(pairs, |p| model.predict_pair(p));
    let labels: Vec<bool> = pairs.iter().map(|p| p.label).collect();
    (scores, labels)
}

/// Pre-flight static analysis: records one training example's graph in
/// shape-only mode and reports wiring problems (shape violations, dead
/// parameters, unused nodes) to stderr before any kernel runs. Also prints
/// the analyzer's per-example cost budget (forward FLOPs, share eligible
/// for the thread pool, peak live bytes) so epoch-time surprises surface
/// before the first kernel. Returns the report so callers (CLI `--analyze`,
/// tests) can inspect it.
pub fn preflight_pairwise(model: &HierGat, ds: &PairDataset) -> Option<hiergat_nn::GraphReport> {
    let pair = ds.train.first()?;
    let report = model.analyze_pair(pair);
    report_preflight(&ds.name, ds.train.len(), &report);
    if model.config().use_arena {
        eprintln!("[preflight] {}: arena plan {}", ds.name, model.plan_pair(pair));
    }
    Some(report)
}

/// Collective-mode counterpart of [`preflight_pairwise`].
pub fn preflight_collective(
    model: &HierGat,
    ds: &CollectiveDataset,
) -> Option<hiergat_nn::GraphReport> {
    let ex = ds.train.first()?;
    let report = model.analyze_collective(ex);
    report_preflight(&ds.name, ds.train.len(), &report);
    if model.config().use_arena {
        eprintln!("[preflight] {}: arena plan {}", ds.name, model.plan_collective(ex));
    }
    Some(report)
}

fn report_preflight(name: &str, train_len: usize, report: &hiergat_nn::GraphReport) {
    let cost = &report.cost;
    eprintln!(
        "[preflight] {name}: {}/example forward ({} pool-eligible at {} thread(s)), \
         peak live {}, ~{} per epoch over {train_len} examples",
        hiergat_nn::analyze::fmt_flops(cost.total_flops),
        hiergat_nn::analyze::fmt_flops(cost.parallel_flops),
        cost.split,
        hiergat_nn::analyze::fmt_bytes(cost.peak_bytes),
        hiergat_nn::analyze::fmt_flops(cost.total_flops.saturating_mul(train_len as u64)),
    );
    if !report.is_clean() {
        eprintln!("[preflight] {name}: static analysis found issues\n{report}");
    }
}

/// Positive-class weight derived from a split's label balance
/// (`n_neg / n_pos`, clamped to `[1, 8]`).
pub fn pos_weight_of(labels: impl Iterator<Item = bool>) -> f32 {
    let mut pos = 0usize;
    let mut neg = 0usize;
    for l in labels {
        if l {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    if pos == 0 {
        1.0
    } else {
        (neg as f32 / pos as f32).clamp(1.0, 8.0)
    }
}

/// Trains HierGAT on a pairwise dataset with validation-based selection.
pub fn train_pairwise(model: &mut HierGat, ds: &PairDataset) -> TrainReport {
    let epochs = model.config().epochs;
    preflight_pairwise(model, ds);
    let pos_weight = pos_weight_of(ds.train.iter().map(|p| p.label));
    let mut shuffle_rng = StdRng::seed_from_u64(model.config().seed ^ 0x7261);
    let mut order: Vec<usize> = (0..ds.train.len()).collect();
    let mut best_valid = -1.0f64;
    let mut best_snapshot = model.ps.snapshot();
    let mut per_epoch_seconds = Vec::with_capacity(epochs);
    let mut per_epoch_loss = Vec::with_capacity(epochs);

    for _ in 0..epochs {
        let start = Instant::now();
        order.shuffle(&mut shuffle_rng);
        let mut loss_sum = 0.0f32;
        for &i in &order {
            let p = &ds.train[i];
            let w = if p.label { pos_weight } else { 1.0 };
            loss_sum += model.train_pair_weighted(p, w);
        }
        per_epoch_seconds.push(start.elapsed().as_secs_f64());
        per_epoch_loss.push(if order.is_empty() { 0.0 } else { loss_sum / order.len() as f32 });

        let (scores, labels) = score_pairs(model, &ds.valid);
        let (_, valid_f1) = best_threshold(&scores, &labels);
        if valid_f1 > best_valid {
            best_valid = valid_f1;
            best_snapshot = model.ps.snapshot();
        }
    }
    model.ps.restore(&best_snapshot);

    // Tune the threshold on validation, evaluate once on test. The tuned
    // operating point is kept on the model so checkpoints persist it and a
    // restored session can emit boolean decisions.
    let (v_scores, v_labels) = score_pairs(model, &ds.valid);
    let (threshold, _) = best_threshold(&v_scores, &v_labels);
    model.set_decision_threshold(threshold);
    let (t_scores, t_labels) = score_pairs(model, &ds.test);
    let confusion = evaluate_at_threshold(&t_scores, &t_labels, threshold);
    TrainReport {
        best_valid_f1: best_valid.max(0.0),
        test_f1: confusion.pr_f1().f1,
        test_confusion: confusion,
        epochs_run: epochs,
        per_epoch_seconds,
        per_epoch_loss,
    }
}

/// Scores every candidate pair of a collective split (parallel).
pub fn score_collective(model: &HierGat, examples: &[CollectiveExample]) -> (Vec<f32>, Vec<bool>) {
    let per_example = parallel::par_map(examples, |ex| model.predict_collective(ex));
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for (ex, s) in examples.iter().zip(per_example) {
        scores.extend(s);
        labels.extend(ex.labels.iter().copied());
    }
    (scores, labels)
}

/// Trains HierGAT+ on a collective dataset (batch = candidate set, §6.3).
pub fn train_collective(model: &mut HierGat, ds: &CollectiveDataset) -> TrainReport {
    let epochs = model.config().epochs;
    preflight_collective(model, ds);
    let pos_weight = pos_weight_of(ds.train.iter().flat_map(|ex| ex.labels.iter().copied()));
    let mut shuffle_rng = StdRng::seed_from_u64(model.config().seed ^ 0x7262);
    let mut order: Vec<usize> = (0..ds.train.len()).collect();
    let mut best_valid = -1.0f64;
    let mut best_snapshot = model.ps.snapshot();
    let mut per_epoch_seconds = Vec::with_capacity(epochs);
    let mut per_epoch_loss = Vec::with_capacity(epochs);

    for _ in 0..epochs {
        let start = Instant::now();
        order.shuffle(&mut shuffle_rng);
        let mut loss_sum = 0.0f32;
        for &i in &order {
            loss_sum += model.train_collective_weighted(&ds.train[i], pos_weight);
        }
        per_epoch_seconds.push(start.elapsed().as_secs_f64());
        per_epoch_loss.push(if order.is_empty() { 0.0 } else { loss_sum / order.len() as f32 });

        let (scores, labels) = score_collective(model, &ds.valid);
        let (_, valid_f1) = best_threshold(&scores, &labels);
        if valid_f1 > best_valid {
            best_valid = valid_f1;
            best_snapshot = model.ps.snapshot();
        }
    }
    model.ps.restore(&best_snapshot);

    let (v_scores, v_labels) = score_collective(model, &ds.valid);
    let (threshold, _) = best_threshold(&v_scores, &v_labels);
    model.set_decision_threshold(threshold);
    let (t_scores, t_labels) = score_collective(model, &ds.test);
    let confusion = evaluate_at_threshold(&t_scores, &t_labels, threshold);
    TrainReport {
        best_valid_f1: best_valid.max(0.0),
        test_f1: confusion.pr_f1().f1,
        test_confusion: confusion,
        epochs_run: epochs,
        per_epoch_seconds,
        per_epoch_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierGatConfig;
    use hiergat_data::{MagellanDataset, PairGenConfig};

    #[test]
    fn pairwise_training_learns_an_easy_dataset() {
        // A clean, tiny dataset must be learnable well above chance.
        let world =
            hiergat_data::synth::World::generate(&hiergat_data::lexicon::SOFTWARE, 40, 2, 3);
        let schema = MagellanDataset::AmazonGoogle.schema();
        let cfg = PairGenConfig {
            n_pairs: 60,
            pos_rate: 0.4,
            hard_negative_frac: 0.2,
            noise_a: hiergat_data::synth::NoiseConfig::clean(),
            noise_b: hiergat_data::synth::NoiseConfig::clean(),
            seed: 5,
        };
        let ds = hiergat_data::generate_pair_dataset("easy", &world, schema, &cfg);
        let mut model = HierGat::new(HierGatConfig::fast_test().with_epochs(4), 3);
        let report = train_pairwise(&mut model, &ds);
        assert!(report.test_f1 > 0.6, "clean data must be learnable, got F1 {}", report.test_f1);
        assert_eq!(report.epochs_run, 4);
        assert_eq!(report.per_epoch_seconds.len(), 4);
        assert!(report.total_seconds() > 0.0);
    }

    #[test]
    fn loss_generally_decreases() {
        let ds = MagellanDataset::FodorsZagats.load(0.15);
        let mut model = HierGat::new(HierGatConfig::fast_test().with_epochs(3), 6);
        let report = train_pairwise(&mut model, &ds);
        let first = report.per_epoch_loss[0];
        let last = *report.per_epoch_loss.last().expect("epochs");
        assert!(last <= first * 1.2, "loss exploded: {first} -> {last}");
    }
}
