//! Contextual embedding computation (§4 of the paper).
//!
//! Produces word+context (WpC) embeddings
//! `V̂ = V + C`, `C = C^t + Φ(C^a + C^r)` where:
//!
//! * `C^t` — token-level context from the pre-trained Transformer, computed
//!   per attribute sequence and averaged back onto (deduplicated) token
//!   nodes;
//! * `C^a` — attribute-level context from [`GraphAttn`] aggregation over
//!   each attribute's token set (Eq. 1), summed over attribute nodes sharing
//!   a key;
//! * `C^r` — entity-level *redundant* context computed from tokens shared by
//!   several entities (Eq. 2) and subtracted via a second attention pass
//!   (Eq. 3);
//! * `Φ` — maps per-unique-key context back onto the tokens that belong to
//!   attributes with that key (mean over containing attributes).

use crate::config::HierGatConfig;
use hiergat_graph::{GraphAttn, Hhg};
use hiergat_lm::MiniLm;
use hiergat_nn::{ParamStore, Tape, Var};
use hiergat_tensor::Tensor;
use rand::Rng;

/// The learnable pieces of the contextual-embedding component.
pub struct ContextModule {
    /// Eq. 1: attribute-level aggregation (`c^t`, `W^t`).
    attr_ctx: GraphAttn,
    /// Eq. 2: redundant-context aggregation over common tokens (`c^a`, `W^a`).
    red_ctx: GraphAttn,
    /// Eq. 3: redundant-context removal over `(V̄^a || C_j^a)` features.
    red_rm: GraphAttn,
    /// Learnable LayerScale-style gate on the token-level context.
    ///
    /// The residual composition `V̂ = V + C` needs the contexts to start
    /// small: the per-key context Φ mixes information from *both* entities
    /// into every token, and at miniature scale an ungated mix erases the
    /// cross-entity differences the comparison layer feeds on. Gates are
    /// initialized to 0.1 and trained jointly (cf. LayerScale / ReZero).
    gate_token: hiergat_nn::ParamId,
    /// Gate on the attribute/entity-level context Φ(C^a + C^r).
    gate_phi: hiergat_nn::ParamId,
    d_model: usize,
}

impl ContextModule {
    /// Registers parameters under `prefix`.
    pub fn new(ps: &mut ParamStore, prefix: &str, d_model: usize, rng: &mut impl Rng) -> Self {
        Self {
            attr_ctx: GraphAttn::new(ps, &format!("{prefix}.attr_ctx"), d_model, d_model, rng),
            red_ctx: GraphAttn::new(ps, &format!("{prefix}.red_ctx"), d_model, d_model, rng),
            red_rm: GraphAttn::new(ps, &format!("{prefix}.red_rm"), 2 * d_model, d_model, rng),
            gate_token: ps.add(format!("{prefix}.gate_token"), Tensor::scalar(0.1)),
            gate_phi: ps.add(format!("{prefix}.gate_phi"), Tensor::scalar(0.1)),
            d_model,
        }
    }

    /// Computes the WpC embedding matrix (`n_tokens x d`) for all token
    /// nodes of `g`, honouring the config's three context switches.
    pub fn wpc(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        g: &Hhg,
        lm: &MiniLm,
        cfg: &HierGatConfig,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        let n_tokens = g.n_tokens();
        assert!(n_tokens > 0, "wpc: graph has no tokens");
        // Initial word embeddings V (hash-vocabulary lookup).
        let ids: Vec<usize> = g.tokens.iter().map(|tok| lm.vocab().id(tok)).collect();
        let table = t.param(ps, lm.token_embedding());
        let v_init = t.gather_rows(table, &ids);

        let mut total = v_init;

        // ---- Token-level context C^t -----------------------------------
        if cfg.use_token_context {
            let c_t = self.token_level_context(t, ps, g, lm, v_init_of(t, total), train, rng);
            let gated = self.gate(t, ps, self.gate_token, c_t);
            total = t.add(total, gated);
        }

        // ---- Attribute / entity-level context, mapped by Φ --------------
        if cfg.use_attr_context || cfg.use_entity_context {
            let per_key = self.per_key_context(t, ps, g, total, cfg);
            if let Some(per_key) = per_key {
                let phi = self.map_to_tokens(t, g, &per_key);
                let gated = self.gate(t, ps, self.gate_phi, phi);
                total = t.add(total, gated);
            }
        }
        total
    }

    /// Scales every row of `x` by the scalar gate parameter.
    fn gate(&self, t: &mut Tape, ps: &ParamStore, gate: hiergat_nn::ParamId, x: Var) -> Var {
        let n = t.value(x).rows();
        let g = t.param(ps, gate);
        let ones = t.input(Tensor::ones(n, 1));
        let col = t.matmul(ones, g);
        t.mul_col(x, col)
    }

    /// `C^t`: encode every attribute's token sequence with the pre-trained
    /// Transformer and average the contextual rows back onto token nodes.
    fn token_level_context(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        g: &Hhg,
        lm: &MiniLm,
        v_init: Var,
        train: bool,
        rng: &mut impl Rng,
    ) -> Var {
        // occurrences[token_node] = rows of encoded attribute sequences.
        let mut occurrences: Vec<Vec<Var>> = vec![Vec::new(); g.n_tokens()];
        for attr in &g.attributes {
            if attr.token_seq.is_empty() {
                continue;
            }
            let seq = t.gather_rows(v_init, &attr.token_seq);
            let encoded = lm.encode_embedded(t, ps, seq, train, rng);
            let max_rows = t.value(encoded).rows();
            for (pos, &tok) in attr.token_seq.iter().enumerate().take(max_rows) {
                occurrences[tok].push(t.row(encoded, pos));
            }
        }
        let rows: Vec<Var> = occurrences
            .into_iter()
            .map(|occ| match occ.len() {
                0 => t.input(Tensor::zeros(1, self.d_model)),
                1 => occ[0],
                n => {
                    let stacked = t.concat_rows(&occ);
                    let sum = t.sum_rows(stacked);
                    t.scale(sum, 1.0 / n as f32)
                }
            })
            .collect();
        t.concat_rows(&rows)
    }

    /// Per-unique-key context `C^a + C^r` (each row `1 x d`), or `None` when
    /// both switches are off.
    fn per_key_context(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        g: &Hhg,
        token_emb: Var,
        cfg: &HierGatConfig,
    ) -> Option<Vec<(String, Var)>> {
        if !cfg.use_attr_context && !cfg.use_entity_context {
            return None;
        }
        let keys = g.unique_keys();
        // Attribute-level: v̄_k = Σ_a GraphAttn over a's tokens (Eq. 1).
        let mut key_embs: Vec<Var> = Vec::with_capacity(keys.len());
        for key in &keys {
            let attrs = g.attrs_with_key(key);
            let mut parts = Vec::new();
            for ai in attrs {
                let seq = &g.attributes[ai].token_seq;
                if seq.is_empty() {
                    continue;
                }
                let v = t.gather_rows(token_emb, seq);
                parts.push(self.attr_ctx.forward(t, ps, v));
            }
            let emb = match parts.len() {
                0 => t.input(Tensor::zeros(1, self.d_model)),
                1 => parts[0],
                _ => {
                    let stacked = t.concat_rows(&parts);
                    t.sum_rows(stacked)
                }
            };
            key_embs.push(emb);
        }
        // Eq. 3 contrasts each key's redundant context against the other
        // unique attributes; with a single key the softmax would assign
        // weight 1 and subtract v̄ exactly, cancelling the attribute context
        // (and its gradients) to zero. Skip removal when K = 1 — and only
        // stack V̄ (K x d) when removal actually runs, so no dead node is
        // recorded when entity context is off.
        let v_bar = (cfg.use_entity_context && keys.len() >= 2).then(|| t.concat_rows(&key_embs));

        let mut out = Vec::with_capacity(keys.len());
        let common = g.common_tokens();
        for (ki, key) in keys.iter().enumerate() {
            let mut ctx = if cfg.use_attr_context { Some(key_embs[ki]) } else { None };
            if let Some(v_bar) = v_bar {
                // Common tokens appearing under this key (Ṽ of Eq. 2).
                let mut shared: Vec<usize> = Vec::new();
                for &ai in &g.attrs_with_key(key) {
                    for &tok in &g.attributes[ai].token_seq {
                        if common.contains(&tok) && !shared.contains(&tok) {
                            shared.push(tok);
                        }
                    }
                }
                if !shared.is_empty() {
                    let v_shared = t.gather_rows(token_emb, &shared);
                    let c_a = self.red_ctx.forward(t, ps, v_shared); // Eq. 2, 1 x d
                                                                     // Eq. 3: attention features (V̄^a || C_j^a), values V̄^a.
                    let k = keys.len();
                    let ones = t.input(Tensor::ones(k, 1));
                    let c_a_rows = t.matmul(ones, c_a); // K x d broadcast
                    let features = t.concat_cols(&[v_bar, c_a_rows]); // K x 2d
                    let removed = self.red_rm.forward_ctx(t, ps, features, v_bar);
                    let neg = t.scale(removed, -1.0); // minus sign of Eq. 3
                    ctx = Some(match ctx {
                        Some(c) => t.add(c, neg),
                        None => neg,
                    });
                }
            }
            let ctx = ctx.unwrap_or_else(|| t.input(Tensor::zeros(1, self.d_model)));
            out.push((key.clone(), ctx));
        }
        Some(out)
    }

    /// `Φ`: every token receives the mean context of the unique keys of the
    /// attributes containing it.
    fn map_to_tokens(&self, t: &mut Tape, g: &Hhg, per_key: &[(String, Var)]) -> Var {
        let key_of = |name: &str| per_key.iter().position(|(k, _)| k == name);
        let mut token_keys: Vec<Vec<usize>> = vec![Vec::new(); g.n_tokens()];
        for attr in &g.attributes {
            let Some(ki) = key_of(&attr.key) else { continue };
            for &tok in &attr.token_seq {
                if !token_keys[tok].contains(&ki) {
                    token_keys[tok].push(ki);
                }
            }
        }
        let rows: Vec<Var> = token_keys
            .into_iter()
            .map(|keys| match keys.len() {
                0 => t.input(Tensor::zeros(1, self.d_model)),
                1 => per_key[keys[0]].1,
                n => {
                    let parts: Vec<Var> = keys.iter().map(|&k| per_key[k].1).collect();
                    let stacked = t.concat_rows(&parts);
                    let sum = t.sum_rows(stacked);
                    t.scale(sum, 1.0 / n as f32)
                }
            })
            .collect();
        t.concat_rows(&rows)
    }
}

/// Identity helper making the data flow explicit at the call site: the
/// token-level context is computed from the *current* accumulated embedding.
fn v_init_of(_t: &Tape, v: Var) -> Var {
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::{Entity, EntityPair};
    use hiergat_lm::LmTier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> EntityPair {
        EntityPair::new(
            Entity::new(
                "l",
                vec![
                    ("title".into(), "apache spark cluster".into()),
                    ("desc".into(), "big data framework".into()),
                ],
            ),
            Entity::new(
                "r",
                vec![
                    ("title".into(), "adobe spark editor".into()),
                    ("desc".into(), "video design app".into()),
                ],
            ),
            false,
        )
    }

    fn setup() -> (ParamStore, MiniLm, ContextModule, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lm = MiniLm::new(&mut ps, LmTier::MiniDistil.config(), &mut rng);
        let ctx = ContextModule::new(&mut ps, "ctx", 32, &mut rng);
        (ps, lm, ctx, rng)
    }

    #[test]
    fn wpc_shape_covers_all_tokens() {
        let (ps, lm, ctx, mut rng) = setup();
        let g = Hhg::from_pair(&pair());
        let cfg = HierGatConfig::fast_test();
        let mut t = Tape::new();
        let wpc = ctx.wpc(&mut t, &ps, &g, &lm, &cfg, false, &mut rng);
        assert_eq!(t.value(wpc).shape(), (g.n_tokens(), 32));
        assert!(!t.value(wpc).has_non_finite());
    }

    #[test]
    fn context_switches_change_embeddings() {
        let (ps, lm, ctx, _) = setup();
        let g = Hhg::from_pair(&pair());
        let run = |cfg: &HierGatConfig| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut t = Tape::new();
            let wpc = ctx.wpc(&mut t, &ps, &g, &lm, cfg, false, &mut rng);
            t.value(wpc).clone()
        };
        let full = run(&HierGatConfig { use_entity_context: true, ..HierGatConfig::fast_test() });
        let no_ctx = run(&HierGatConfig {
            use_token_context: false,
            use_attr_context: false,
            use_entity_context: false,
            ..HierGatConfig::fast_test()
        });
        let no_attr = run(&HierGatConfig {
            use_attr_context: false,
            use_entity_context: true,
            ..HierGatConfig::fast_test()
        });
        assert!(!full.allclose(&no_ctx, 1e-5));
        assert!(!full.allclose(&no_attr, 1e-5));
    }

    #[test]
    fn non_context_reduces_to_word_embeddings() {
        let (ps, lm, ctx, mut rng) = setup();
        let g = Hhg::from_pair(&pair());
        let cfg = HierGatConfig {
            use_token_context: false,
            use_attr_context: false,
            use_entity_context: false,
            ..HierGatConfig::fast_test()
        };
        let mut t = Tape::new();
        let wpc = ctx.wpc(&mut t, &ps, &g, &lm, &cfg, false, &mut rng);
        // Must equal the raw hash-embedding lookup.
        let ids: Vec<usize> = g.tokens.iter().map(|tok| lm.vocab().id(tok)).collect();
        let expected = ps.value(lm.token_embedding()).gather_rows(&ids);
        assert!(t.value(wpc).allclose(&expected, 1e-6));
    }

    #[test]
    fn gradients_flow_through_full_context() {
        let (mut ps, lm, ctx, _) = setup();
        let g = Hhg::from_entities(&[
            Entity::new("a", vec![("t".into(), "x y".into()), ("d".into(), "u v".into())]),
            Entity::new("b", vec![("t".into(), "x z".into()), ("d".into(), "u w".into())]),
        ]);
        let cfg = HierGatConfig { use_entity_context: true, ..HierGatConfig::fast_test() };
        // Full gradcheck over the LM is too slow; check a forward+backward
        // runs and produces nonzero grads on the context parameters.
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Tape::new();
        let wpc = ctx.wpc(&mut t, &ps, &g, &lm, &cfg, false, &mut rng);
        let loss = t.mean_all(wpc);
        t.backward(loss, &mut ps);
        let ctx_grad_norm: f32 = ps
            .ids()
            .filter(|&id| ps.name(id).starts_with("ctx."))
            .map(|id| ps.grad(id).norm())
            .sum();
        assert!(ctx_grad_norm > 0.0, "context parameters received no gradient");
    }
}
