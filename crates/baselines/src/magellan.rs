//! The Magellan baseline (§6.1): classic feature engineering over attribute
//! pairs plus a sweep of five from-scratch classifiers, selecting the best
//! on the validation split.

use crate::classic::{
    Classifier, DecisionTree, LinearRegression, LinearSvm, LogisticRegression, RandomForest,
    TreeConfig,
};
use hiergat_data::{EntityPair, PairDataset, MISSING};
use hiergat_metrics::{best_threshold, evaluate_at_threshold, Confusion};
use hiergat_text::{
    cosine_tokens, exact, jaccard, levenshtein_sim, monge_elkan, numeric_sim, overlap_coefficient,
    tokenize,
};

/// Number of features extracted per attribute.
pub const FEATURES_PER_ATTR: usize = 7;

/// Extracts the similarity feature vector for one pair.
pub fn pair_features(pair: &EntityPair) -> Vec<f64> {
    let mut out = Vec::with_capacity(pair.left.arity() * FEATURES_PER_ATTR);
    for (key, lv) in &pair.left.attrs {
        let rv = pair.right.attr(key).unwrap_or(MISSING);
        let missing = lv == MISSING || rv == MISSING;
        if missing {
            // Missing-value sentinel block.
            out.extend_from_slice(&[0.0; FEATURES_PER_ATTR]);
            continue;
        }
        let lt = tokenize(lv);
        let rt = tokenize(rv);
        out.push(levenshtein_sim(lv, rv));
        out.push(jaccard(&lt, &rt));
        out.push(cosine_tokens(&lt, &rt));
        out.push(monge_elkan(&lt, &rt));
        out.push(overlap_coefficient(&lt, &rt));
        out.push(exact(lv, rv));
        out.push(numeric_sim(lv, rv).unwrap_or(0.0));
    }
    out
}

/// Which classifier the sweep selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectedClassifier {
    /// CART decision tree.
    DecisionTree,
    /// Bagged random forest.
    RandomForest,
    /// Linear SVM (hinge loss).
    Svm,
    /// Linear regression, thresholded.
    LinearRegression,
    /// Logistic regression.
    LogisticRegression,
}

/// A trained Magellan matcher.
pub struct Magellan {
    model: Box<dyn Classifier>,
    /// Which classifier won the validation sweep.
    pub selected: SelectedClassifier,
    /// Validation-tuned decision threshold.
    pub threshold: f32,
}

/// Result of training and evaluating Magellan on a dataset.
#[derive(Debug, Clone)]
pub struct MagellanReport {
    /// Best validation F1.
    pub best_valid_f1: f64,
    /// Test F1 at the tuned threshold.
    pub test_f1: f64,
    /// Test confusion.
    pub test_confusion: Confusion,
    /// Winning classifier.
    pub selected: SelectedClassifier,
}

impl Magellan {
    /// Trains all five classifiers and keeps the best by validation F1.
    pub fn train(ds: &PairDataset, seed: u64) -> (Self, MagellanReport) {
        let fx = |pairs: &[EntityPair]| -> (Vec<Vec<f64>>, Vec<bool>) {
            (pairs.iter().map(pair_features).collect(), pairs.iter().map(|p| p.label).collect())
        };
        let (train_x, train_y) = fx(&ds.train);
        let (valid_x, valid_y) = fx(&ds.valid);
        let (test_x, test_y) = fx(&ds.test);

        let candidates: Vec<(SelectedClassifier, Box<dyn Classifier>)> = vec![
            (
                SelectedClassifier::DecisionTree,
                Box::new(DecisionTree::fit(&train_x, &train_y, &TreeConfig::default())),
            ),
            (
                SelectedClassifier::RandomForest,
                Box::new(RandomForest::fit(&train_x, &train_y, 15, seed)),
            ),
            (SelectedClassifier::Svm, Box::new(LinearSvm::fit(&train_x, &train_y, seed))),
            (
                SelectedClassifier::LinearRegression,
                Box::new(LinearRegression::fit(&train_x, &train_y, seed)),
            ),
            (
                SelectedClassifier::LogisticRegression,
                Box::new(LogisticRegression::fit(&train_x, &train_y, seed)),
            ),
        ];

        let mut best: Option<(f64, f32, SelectedClassifier, Box<dyn Classifier>)> = None;
        for (kind, model) in candidates {
            let scores: Vec<f32> = valid_x.iter().map(|x| model.score(x) as f32).collect();
            let (threshold, f1) = best_threshold(&scores, &valid_y);
            if best.as_ref().is_none_or(|(bf, ..)| f1 > *bf) {
                best = Some((f1, threshold, kind, model));
            }
        }
        let (best_valid_f1, threshold, selected, model) = best.expect("five candidates");

        let test_scores: Vec<f32> = test_x.iter().map(|x| model.score(x) as f32).collect();
        let confusion = evaluate_at_threshold(&test_scores, &test_y, threshold);
        let report = MagellanReport {
            best_valid_f1,
            test_f1: confusion.pr_f1().f1,
            test_confusion: confusion,
            selected,
        };
        (Self { model, selected, threshold }, report)
    }

    /// Match score for a new pair.
    pub fn score(&self, pair: &EntityPair) -> f32 {
        self.model.score(&pair_features(pair)) as f32
    }

    /// Hard decision at the tuned threshold.
    pub fn predict(&self, pair: &EntityPair) -> bool {
        self.score(pair) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::MagellanDataset;

    #[test]
    fn features_have_fixed_width() {
        let ds = MagellanDataset::AmazonGoogle.load(0.1);
        let f = pair_features(&ds.train[0]);
        assert_eq!(f.len(), 3 * FEATURES_PER_ATTR);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identical_entities_have_max_features() {
        let ds = MagellanDataset::FodorsZagats.load(0.1);
        let e = ds.train[0].left.clone();
        let pair = EntityPair::new(e.clone(), e, true);
        let f = pair_features(&pair);
        // Exact-match feature (index 5 in each block) must be 1 for all
        // non-missing attributes.
        for block in f.chunks(FEATURES_PER_ATTR) {
            if block.iter().any(|&v| v != 0.0) {
                assert_eq!(block[5], 1.0);
            }
        }
    }

    #[test]
    fn magellan_learns_clean_structured_data() {
        // Fodors-Zagats has phone numbers and near-exact strings; classic
        // feature engineering should do very well (paper: F1 = 100).
        let ds = MagellanDataset::FodorsZagats.load(0.6);
        let (_, report) = Magellan::train(&ds, 7);
        assert!(report.test_f1 > 0.8, "F-Z should be easy for Magellan: {}", report.test_f1);
    }

    #[test]
    fn trained_model_scores_pairs() {
        let ds = MagellanDataset::Beer.load(0.5);
        let (model, report) = Magellan::train(&ds, 1);
        let s = model.score(&ds.test[0]);
        assert!((0.0..=1.0).contains(&s));
        assert!(report.best_valid_f1 >= 0.0);
        let _ = model.predict(&ds.test[0]);
    }
}
