//! Baseline ER models the paper compares against (§6.1, §6.3):
//!
//! * [`Magellan`] — classic similarity features + a five-classifier sweep;
//! * [`DeepMatcher`] — GRU attribute summarization over frozen FastText-style
//!   embeddings;
//! * [`Ditto`] — serialized-pair fine-tuning of a pre-trained LM;
//! * [`GnnCollective`] — GCN / GAT / HGAT over the HHG (collective, Table 7);
//! * [`DmPlus`] — HierMatcher-style token-alignment matcher ("DM+").
//!
//! All neural baselines share the training protocol in [`traits`] (the same
//! validation-selection loop HierGAT uses) so comparisons are fair.

pub mod classic;
mod deepmatcher;
mod ditto;
mod dmplus;
mod gnn;
mod magellan;
pub mod traits;

pub use deepmatcher::{DeepMatcher, DeepMatcherConfig};
pub use ditto::{Ditto, DittoConfig};
pub use dmplus::{DmPlus, DmPlusConfig};
pub use gnn::{GnnCollective, GnnConfig, GnnKind};
pub use magellan::{
    pair_features, Magellan, MagellanReport, SelectedClassifier, FEATURES_PER_ATTR,
};
pub use traits::{
    flatten_collective, train_collective_model, train_pair_model, BaselineReport,
    CollectiveErModel, PairModel,
};
