//! The DeepMatcher baseline (Mudgal et al., SIGMOD 2018; §6.1 of the paper).
//!
//! RNN-based attribute summarization: each attribute value is encoded by a
//! GRU over frozen FastText-style hash embeddings; the per-attribute
//! comparison vector is the classic `[h_l, h_r, |h_l - h_r|, h_l ⊙ h_r]`
//! and a two-layer MLP classifies the concatenation. Word embeddings are
//! fixed, matching DeepMatcher's use of pre-trained FastText vectors.

use crate::traits::PairModel;
use hiergat_data::EntityPair;
use hiergat_nn::{
    Adam, ArenaExecutor, ExecutionPlan, GruCell, Linear, Optimizer, ParamStore, Tape, Var,
};
use hiergat_tensor::Tensor;
use hiergat_text::{tokenize, StaticHashEmbedding};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DeepMatcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct DeepMatcherConfig {
    /// Word-embedding dimension (DeepMatcher uses 300-d FastText; scaled).
    pub d_emb: usize,
    /// GRU hidden width.
    pub d_hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Maximum tokens per attribute (RNN cost is linear in this).
    pub max_tokens: usize,
    /// Run training steps through the arena planner (zero steady-state
    /// allocations, bitwise-identical arithmetic).
    pub use_arena: bool,
}

impl Default for DeepMatcherConfig {
    fn default() -> Self {
        Self {
            d_emb: 32,
            d_hidden: 32,
            epochs: 10,
            lr: 1e-3,
            seed: 0xd33b,
            max_tokens: 24,
            use_arena: false,
        }
    }
}

/// The DeepMatcher model.
pub struct DeepMatcher {
    cfg: DeepMatcherConfig,
    ps: ParamStore,
    emb: StaticHashEmbedding,
    gru: GruCell,
    cls_hidden: Linear,
    cls_out: Linear,
    opt: Adam,
    arity: usize,
    exec: ArenaExecutor,
}

impl DeepMatcher {
    /// Builds a model for entities with `arity` attributes.
    pub fn new(cfg: DeepMatcherConfig, arity: usize) -> Self {
        assert!(arity > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "dm.gru", cfg.d_emb, cfg.d_hidden, &mut rng);
        let cls_hidden = Linear::new(
            &mut ps,
            "dm.cls_hidden",
            4 * cfg.d_hidden * arity,
            cfg.d_hidden,
            true,
            &mut rng,
        );
        let cls_out = Linear::new(&mut ps, "dm.cls_out", cfg.d_hidden, 2, true, &mut rng);
        let emb = StaticHashEmbedding::new(cfg.d_emb, 4096, 2048, cfg.seed ^ 0xfa57);
        let opt = Adam::new(cfg.lr);
        Self { cfg, ps, emb, gru, cls_hidden, cls_out, opt, arity, exec: ArenaExecutor::new() }
    }

    fn encode_value(&self, t: &mut Tape, value: &str) -> Var {
        let mut tokens = tokenize(value);
        tokens.truncate(self.cfg.max_tokens);
        if tokens.is_empty() {
            return t.input(Tensor::zeros(1, self.cfg.d_hidden));
        }
        let seq = t.input(self.emb.embed_sequence(&tokens));
        let states = self.gru.run(t, &self.ps, seq);
        let n = t.value(states).rows();
        t.slice_rows(states, n - 1, 1) // final hidden state
    }

    fn forward(&self, t: &mut Tape, pair: &EntityPair) -> Var {
        let mut comparisons = Vec::with_capacity(self.arity);
        for k in 0..self.arity {
            let lv = pair.left.attrs.get(k).map_or("", |(_, v)| v.as_str());
            let key = pair.left.attrs.get(k).map_or("", |(k, _)| k.as_str());
            let rv = pair.right.attr(key).unwrap_or("");
            let hl = self.encode_value(t, lv);
            let hr = self.encode_value(t, rv);
            let diff = {
                let d = t.sub(hl, hr);
                let pos = t.relu(d);
                let neg = {
                    let nd = t.scale(d, -1.0);
                    t.relu(nd)
                };
                t.add(pos, neg) // |hl - hr|
            };
            let prod = t.mul(hl, hr);
            comparisons.push(t.concat_cols(&[hl, hr, diff, prod]));
        }
        let features = t.concat_cols(&comparisons);
        let h = self.cls_hidden.forward(t, &self.ps, features);
        let h = t.relu(h);
        self.cls_out.forward(t, &self.ps, h)
    }

    /// Statically analyzes the training graph for `pair` on a shape-only
    /// tape (no kernels run): shape inference, parameter reachability, and
    /// node liveness.
    pub fn analyze(&self, pair: &EntityPair) -> hiergat_nn::GraphReport {
        let mut t = Tape::shape_only();
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        hiergat_nn::analyze_graph(&t, loss, &self.ps)
    }

    /// Arena-planner report for the training graph of `pair` (shape-only
    /// recording; no kernels run).
    pub fn plan(&self, pair: &EntityPair) -> hiergat_nn::PlanReport {
        let mut t = Tape::deferred();
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        ExecutionPlan::build(&t, loss).report().clone()
    }

    /// Runs the [`hiergat_nn::lint_graph`] rule engine over the training
    /// graph (shape-only tape, training mode).
    pub fn lint(&self, pair: &EntityPair) -> hiergat_nn::LintReport {
        let mut t = Tape::shape_only();
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        hiergat_nn::lint_graph(&t, loss, &self.ps, &hiergat_nn::LintConfig::training())
    }

    /// Records the eval-mode scoring graph onto `t` — exactly the graph
    /// [`PairModel::predict_pair`] evaluates (DeepMatcher has no dropout, so
    /// eval and train graphs coincide) — and returns the `1 x 2` probability
    /// node.
    pub fn record_pair_scores(&self, t: &mut Tape, pair: &EntityPair) -> Var {
        let logits = self.forward(t, pair);
        t.softmax(logits)
    }
}

impl PairModel for DeepMatcher {
    fn train_pair(&mut self, pair: &EntityPair) -> f32 {
        self.train_pair_weighted(pair, 1.0)
    }

    fn train_pair_weighted(&mut self, pair: &EntityPair, weight: f32) -> f32 {
        // Clearing at the start (rather than after the optimizer step) leaves
        // the step's clipped gradients observable for differential testing.
        self.ps.zero_grad();
        let mut t = if self.cfg.use_arena { Tape::deferred() } else { Tape::new() };
        let logits = self.forward(&mut t, pair);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[weight]);
        let val = if self.cfg.use_arena {
            self.exec.step(&t, loss, &mut self.ps)
        } else {
            let v = t.value(loss).item();
            t.backward(loss, &mut self.ps);
            v
        };
        self.ps.clip_grad_norm(5.0);
        self.opt.step(&mut self.ps);
        val
    }

    fn predict_pair(&self, pair: &EntityPair) -> f32 {
        let mut t = Tape::new();
        let probs = self.record_pair_scores(&mut t, pair);
        t.value(probs).get(0, 1)
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn epochs(&self) -> usize {
        self.cfg.epochs
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::train_pair_model;
    use hiergat_data::{Entity, MagellanDataset};

    fn pair(label: bool) -> EntityPair {
        EntityPair::new(
            Entity::new("l", vec![("title".into(), "canon eos camera".into())]),
            Entity::new("r", vec![("title".into(), "canon eos camera kit".into())]),
            label,
        )
    }

    #[test]
    fn lint_passes_at_deny_warn() {
        let dm = DeepMatcher::new(DeepMatcherConfig::default(), 1);
        let report = dm.lint(&pair(true));
        assert!(
            report.is_clean_at(hiergat_nn::Severity::Warn),
            "DeepMatcher graph must lint clean:\n{report}"
        );
    }

    #[test]
    fn predicts_probabilities() {
        let dm = DeepMatcher::new(DeepMatcherConfig::default(), 1);
        let p = dm.predict_pair(&pair(true));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn loss_decreases_on_repeated_example() {
        let mut dm = DeepMatcher::new(DeepMatcherConfig::default(), 1);
        let ex = pair(true);
        let first = dm.train_pair(&ex);
        let mut last = first;
        for _ in 0..20 {
            last = dm.train_pair(&ex);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn learns_a_small_clean_dataset() {
        let ds = MagellanDataset::FodorsZagats.load(0.3);
        let mut dm =
            DeepMatcher::new(DeepMatcherConfig { epochs: 4, ..Default::default() }, ds.arity());
        let report = train_pair_model(&mut dm, &ds);
        assert!(report.test_f1 > 0.3, "F1 {}", report.test_f1);
    }

    #[test]
    fn analyzer_reports_clean_graph() {
        let dm = DeepMatcher::new(DeepMatcherConfig::default(), 1);
        let report = dm.analyze(&pair(true));
        assert!(report.is_clean(), "{report}");
        assert!(report.node_count > 0);
    }

    #[test]
    fn missing_attributes_are_handled() {
        let l = Entity::new("l", vec![("title".into(), "".into())]);
        let r = Entity::new("r", vec![("title".into(), "x".into())]);
        let dm = DeepMatcher::new(DeepMatcherConfig::default(), 1);
        let p = dm.predict_pair(&EntityPair::new(l, r, false));
        assert!(p.is_finite());
    }
}
