//! GNN baselines for collective ER (Table 7): GCN, GAT, and HGAT.
//!
//! GCN and GAT treat the HHG as a homogeneous graph (tokens, attributes,
//! and entities all alike) and propagate two layers. HGAT respects the
//! hierarchy: one graph-attention hop tokens -> attribute, a second
//! attributes -> entity — the ablation the paper uses to show the value of
//! hierarchical modeling (§6.4).

use crate::traits::CollectiveErModel;
use hiergat_data::CollectiveExample;
use hiergat_graph::{GatLayer, GcnLayer, GraphAttn, Hhg};
use hiergat_nn::{Adam, ArenaExecutor, ExecutionPlan, Linear, Optimizer, ParamStore, Tape, Var};
use hiergat_tensor::Tensor;
use hiergat_text::HashVocab;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which GNN architecture to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnKind {
    /// Spectral graph convolution over the homogeneous HHG.
    Gcn,
    /// Neighbor attention over the homogeneous HHG.
    Gat,
    /// Hierarchical GAT: tokens -> attributes -> entities.
    Hgat,
}

impl GnnKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Gcn => "GCN",
            Self::Gat => "GAT",
            Self::Hgat => "HGAT",
        }
    }
}

/// GNN baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct GnnConfig {
    /// Embedding / hidden width.
    pub d: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Run training steps through the arena planner (zero steady-state
    /// allocations, bitwise-identical arithmetic).
    pub use_arena: bool,
}

impl Default for GnnConfig {
    fn default() -> Self {
        Self { d: 32, epochs: 10, lr: 1e-3, seed: 0x6e47, use_arena: false }
    }
}

enum Layers {
    Gcn(GcnLayer, GcnLayer),
    Gat(GatLayer, GatLayer),
    Hgat(GraphAttn, GraphAttn),
}

/// A collective GNN baseline model.
pub struct GnnCollective {
    cfg: GnnConfig,
    kind: GnnKind,
    ps: ParamStore,
    vocab: HashVocab,
    emb: hiergat_nn::ParamId,
    layers: Layers,
    cls_hidden: Linear,
    cls_out: Linear,
    opt: Adam,
    exec: ArenaExecutor,
}

impl GnnCollective {
    /// Builds a GCN / GAT / HGAT collective model.
    pub fn new(kind: GnnKind, cfg: GnnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let vocab = HashVocab::new(2048);
        let emb = ps.add("gnn.emb", Tensor::rand_normal(2048, cfg.d, 0.0, 0.1, &mut rng));
        let layers = match kind {
            GnnKind::Gcn => Layers::Gcn(
                GcnLayer::new(&mut ps, "gnn.l1", cfg.d, cfg.d, &mut rng),
                GcnLayer::new(&mut ps, "gnn.l2", cfg.d, cfg.d, &mut rng),
            ),
            GnnKind::Gat => Layers::Gat(
                GatLayer::new(&mut ps, "gnn.l1", cfg.d, cfg.d, &mut rng),
                GatLayer::new(&mut ps, "gnn.l2", cfg.d, cfg.d, &mut rng),
            ),
            GnnKind::Hgat => Layers::Hgat(
                GraphAttn::new(&mut ps, "gnn.tok2attr", cfg.d, cfg.d, &mut rng),
                GraphAttn::new(&mut ps, "gnn.attr2ent", cfg.d, cfg.d, &mut rng),
            ),
        };
        let cls_hidden = Linear::new(&mut ps, "gnn.cls_hidden", 3 * cfg.d, cfg.d, true, &mut rng);
        let cls_out = Linear::new(&mut ps, "gnn.cls_out", cfg.d, 2, true, &mut rng);
        let opt = Adam::new(cfg.lr);
        Self {
            cfg,
            kind,
            ps,
            vocab,
            emb,
            layers,
            cls_hidden,
            cls_out,
            opt,
            exec: ArenaExecutor::new(),
        }
    }

    /// Architecture kind.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Mean of gathered rows (helper for node-feature initialization).
    fn mean_rows_of(&self, t: &mut Tape, src: Var, idx: &[usize]) -> Var {
        if idx.is_empty() {
            return t.input(Tensor::zeros(1, self.cfg.d));
        }
        let rows = t.gather_rows(src, idx);
        let sum = t.sum_rows(rows);
        t.scale(sum, 1.0 / idx.len() as f32)
    }

    /// Computes entity representations (one `1 x d` row per entity).
    fn entity_reprs(&self, t: &mut Tape, g: &Hhg) -> Vec<Var> {
        let ids: Vec<usize> = g.tokens.iter().map(|tok| self.vocab.id(tok)).collect();
        let table = t.param(&self.ps, self.emb);
        let tok_feats = t.gather_rows(table, &ids);

        match &self.layers {
            Layers::Hgat(tok2attr, attr2ent) => {
                // Hierarchical: attribute embeddings, then entity embeddings.
                let attr_embs: Vec<Var> = g
                    .attributes
                    .iter()
                    .map(|a| {
                        if a.token_seq.is_empty() {
                            t.input(Tensor::zeros(1, self.cfg.d))
                        } else {
                            let v = t.gather_rows(tok_feats, &a.token_seq);
                            tok2attr.forward(t, &self.ps, v)
                        }
                    })
                    .collect();
                g.entities
                    .iter()
                    .map(|e| {
                        let rows: Vec<Var> = e.attr_nodes.iter().map(|&ai| attr_embs[ai]).collect();
                        let stacked = t.concat_rows(&rows);
                        attr2ent.forward(t, &self.ps, stacked)
                    })
                    .collect()
            }
            _ => {
                // Homogeneous: initialize attr/entity node features as means
                // of their children, then run two layers.
                let adj = g.homogeneous_adjacency();
                let attr_rows: Vec<Var> = g
                    .attributes
                    .iter()
                    .map(|a| self.mean_rows_of(t, tok_feats, &a.token_seq))
                    .collect();
                let nt = g.n_tokens();
                let entity_rows: Vec<Var> = g
                    .entities
                    .iter()
                    .map(|e| {
                        let idx: Vec<usize> = (0..e.attr_nodes.len()).collect();
                        let rows: Vec<Var> =
                            idx.iter().map(|&i| attr_rows[e.attr_nodes[i]]).collect();
                        let stacked = t.concat_rows(&rows);
                        let sum = t.sum_rows(stacked);
                        t.scale(sum, 1.0 / rows.len().max(1) as f32)
                    })
                    .collect();
                let mut parts: Vec<Var> = vec![tok_feats];
                parts.extend(attr_rows);
                parts.extend(entity_rows);
                let x = t.concat_rows(&parts);
                let h = match &self.layers {
                    Layers::Gcn(l1, l2) => {
                        let na = GcnLayer::normalized_adjacency(&adj);
                        let h = l1.forward(t, &self.ps, x, &na);
                        l2.forward(t, &self.ps, h, &na)
                    }
                    Layers::Gat(l1, l2) => {
                        let h = l1.forward(t, &self.ps, x, &adj);
                        l2.forward(t, &self.ps, h, &adj)
                    }
                    Layers::Hgat(..) => unreachable!("handled above"),
                };
                let base = nt + g.n_attributes();
                (0..g.n_entities()).map(|i| t.row(h, base + i)).collect()
            }
        }
    }

    fn forward(&self, t: &mut Tape, ex: &CollectiveExample) -> Var {
        let mut entities = Vec::with_capacity(1 + ex.candidates.len());
        entities.push(ex.query.clone());
        entities.extend(ex.candidates.iter().cloned());
        let g = Hhg::from_entities(&entities);
        let reprs = self.entity_reprs(t, &g);
        let q = reprs[0];
        let mut rows = Vec::with_capacity(ex.candidates.len());
        for ci in 0..ex.candidates.len() {
            let c = reprs[ci + 1];
            let diff = {
                let d = t.sub(q, c);
                let pos = t.relu(d);
                let nd = t.scale(d, -1.0);
                let neg = t.relu(nd);
                t.add(pos, neg)
            };
            let feats = t.concat_cols(&[q, c, diff]);
            let h = self.cls_hidden.forward(t, &self.ps, feats);
            let h = t.relu(h);
            rows.push(self.cls_out.forward(t, &self.ps, h));
        }
        t.concat_rows(&rows)
    }

    /// Statically analyzes the training graph for `ex` on a shape-only tape
    /// (no kernels run): shape inference, parameter reachability, node
    /// liveness, plus HHG builder validation.
    pub fn analyze(&self, ex: &CollectiveExample) -> hiergat_nn::GraphReport {
        let mut t = Tape::shape_only();
        let logits = self.forward(&mut t, ex);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights = vec![1.0; targets.len()];
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        let mut report = hiergat_nn::analyze_graph(&t, loss, &self.ps);
        let mut entities = Vec::with_capacity(1 + ex.candidates.len());
        entities.push(ex.query.clone());
        entities.extend(ex.candidates.iter().cloned());
        report.graph_issues.extend(Hhg::from_entities(&entities).validate());
        report
    }

    /// Arena-planner report for the training graph of `ex` (shape-only
    /// recording; no kernels run).
    pub fn plan(&self, ex: &CollectiveExample) -> hiergat_nn::PlanReport {
        let mut t = Tape::deferred();
        let logits = self.forward(&mut t, ex);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights = vec![1.0; targets.len()];
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        ExecutionPlan::build(&t, loss).report().clone()
    }

    /// Runs the [`hiergat_nn::lint_graph`] rule engine over the training
    /// graph (shape-only tape, training mode).
    pub fn lint(&self, ex: &CollectiveExample) -> hiergat_nn::LintReport {
        let mut t = Tape::shape_only();
        let logits = self.forward(&mut t, ex);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights = vec![1.0; targets.len()];
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        hiergat_nn::lint_graph(&t, loss, &self.ps, &hiergat_nn::LintConfig::training())
    }

    /// Records the eval-mode scoring graph onto `t` — exactly the graph
    /// [`CollectiveErModel::predict_example`] evaluates (the GNN baselines
    /// have no dropout, so eval and train graphs coincide) — and returns the
    /// `n_candidates x 2` probability node.
    pub fn record_example_scores(&self, t: &mut Tape, ex: &CollectiveExample) -> Var {
        let logits = self.forward(t, ex);
        t.softmax(logits)
    }
}

impl CollectiveErModel for GnnCollective {
    fn train_example(&mut self, ex: &CollectiveExample) -> f32 {
        self.train_example_weighted(ex, 1.0)
    }

    fn train_example_weighted(&mut self, ex: &CollectiveExample, weight: f32) -> f32 {
        // Clearing at the start (rather than after the optimizer step) leaves
        // the step's clipped gradients observable for differential testing.
        self.ps.zero_grad();
        let mut t = if self.cfg.use_arena { Tape::deferred() } else { Tape::new() };
        let logits = self.forward(&mut t, ex);
        let targets: Vec<usize> = ex.labels.iter().map(|&l| usize::from(l)).collect();
        let weights: Vec<f32> = ex.labels.iter().map(|&l| if l { weight } else { 1.0 }).collect();
        let loss = t.weighted_cross_entropy_logits(logits, &targets, &weights);
        let val = if self.cfg.use_arena {
            self.exec.step(&t, loss, &mut self.ps)
        } else {
            let v = t.value(loss).item();
            t.backward(loss, &mut self.ps);
            v
        };
        self.ps.clip_grad_norm(5.0);
        self.opt.step(&mut self.ps);
        val
    }

    fn predict_example(&self, ex: &CollectiveExample) -> Vec<f32> {
        let mut t = Tape::new();
        let probs = self.record_example_scores(&mut t, ex);
        (0..ex.candidates.len()).map(|i| t.value(probs).get(i, 1)).collect()
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn epochs(&self) -> usize {
        self.cfg.epochs
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::Entity;

    fn example() -> CollectiveExample {
        let q = Entity::new("q", vec![("t".into(), "canon eos camera".into())]);
        let c1 = Entity::new("c1", vec![("t".into(), "canon eos camera body".into())]);
        let c2 = Entity::new("c2", vec![("t".into(), "leather watch band".into())]);
        CollectiveExample::new(q, vec![c1, c2], vec![true, false])
    }

    #[test]
    fn lint_passes_at_deny_warn_for_all_kinds() {
        for kind in [GnnKind::Gcn, GnnKind::Gat, GnnKind::Hgat] {
            let m = GnnCollective::new(kind, GnnConfig::default());
            let report = m.lint(&example());
            assert!(
                report.is_clean_at(hiergat_nn::Severity::Warn),
                "{} graph must lint clean:\n{report}",
                kind.name()
            );
        }
    }

    #[test]
    fn all_kinds_predict_probabilities() {
        for kind in [GnnKind::Gcn, GnnKind::Gat, GnnKind::Hgat] {
            let m = GnnCollective::new(kind, GnnConfig::default());
            let probs = m.predict_example(&example());
            assert_eq!(probs.len(), 2, "{}", kind.name());
            assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
            assert_eq!(m.kind(), kind);
        }
    }

    #[test]
    fn training_reduces_loss() {
        for kind in [GnnKind::Gcn, GnnKind::Gat, GnnKind::Hgat] {
            let mut m = GnnCollective::new(kind, GnnConfig::default());
            let ex = example();
            let first = m.train_example(&ex);
            let mut last = first;
            for _ in 0..20 {
                last = m.train_example(&ex);
            }
            assert!(last < first, "{}: {first} -> {last}", kind.name());
        }
    }

    #[test]
    fn analyzer_reports_clean_graph_for_all_kinds() {
        for kind in [GnnKind::Gcn, GnnKind::Gat, GnnKind::Hgat] {
            let m = GnnCollective::new(kind, GnnConfig::default());
            let report = m.analyze(&example());
            assert!(report.is_clean(), "{}: {report}", kind.name());
            assert!(report.node_count > 0);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(GnnKind::Gcn.name(), "GCN");
        assert_eq!(GnnKind::Gat.name(), "GAT");
        assert_eq!(GnnKind::Hgat.name(), "HGAT");
    }
}
