//! Shared training/evaluation loops for the neural baselines.

use hiergat_data::{CollectiveDataset, CollectiveExample, EntityPair, PairDataset};
use hiergat_metrics::{best_threshold, evaluate_at_threshold, Confusion};
use hiergat_nn::ParamStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Parallel pair scoring on the shared `parallel` pool (`HIERGAT_THREADS`
/// governs the fan-out).
fn score_pairs_parallel<M: PairModel + Sync>(model: &M, pairs: &[EntityPair]) -> Vec<f32> {
    parallel::par_map(pairs, |p| model.predict_pair(p))
}

/// A trainable pairwise ER model.
pub trait PairModel {
    /// One optimizer step on a labeled pair; returns the loss.
    fn train_pair(&mut self, pair: &EntityPair) -> f32;
    /// Weighted step (positive up-weighting); defaults to the plain step.
    fn train_pair_weighted(&mut self, pair: &EntityPair, _weight: f32) -> f32 {
        self.train_pair(pair)
    }
    /// Match probability in inference mode (must be thread-safe).
    fn predict_pair(&self, pair: &EntityPair) -> f32;
    /// The parameter store (for snapshotting).
    fn params(&self) -> &ParamStore;
    /// Mutable parameter store.
    fn params_mut(&mut self) -> &mut ParamStore;
    /// Configured number of epochs.
    fn epochs(&self) -> usize;
    /// RNG seed (for the shuffle stream).
    fn seed(&self) -> u64;
}

/// A trainable collective ER model (one query + N candidates per step).
pub trait CollectiveErModel {
    /// One optimizer step on a collective example; returns the loss.
    fn train_example(&mut self, ex: &CollectiveExample) -> f32;
    /// Weighted step (positive up-weighting); defaults to the plain step.
    fn train_example_weighted(&mut self, ex: &CollectiveExample, _weight: f32) -> f32 {
        self.train_example(ex)
    }
    /// Per-candidate match probabilities in inference mode (thread-safe).
    fn predict_example(&self, ex: &CollectiveExample) -> Vec<f32>;
    /// The parameter store.
    fn params(&self) -> &ParamStore;
    /// Mutable parameter store.
    fn params_mut(&mut self) -> &mut ParamStore;
    /// Configured number of epochs.
    fn epochs(&self) -> usize;
    /// RNG seed.
    fn seed(&self) -> u64;
}

/// Outcome of a baseline training run.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Best validation F1 (selection criterion).
    pub best_valid_f1: f64,
    /// Test F1 at the validation-tuned threshold.
    pub test_f1: f64,
    /// Test confusion matrix.
    pub test_confusion: Confusion,
    /// Wall-clock seconds per epoch.
    pub per_epoch_seconds: Vec<f64>,
}

impl BaselineReport {
    /// Total training time.
    pub fn total_seconds(&self) -> f64 {
        self.per_epoch_seconds.iter().sum()
    }
}

/// Trains a pairwise model with validation selection and threshold tuning —
/// the same protocol `hiergat::train_pairwise` uses, for fair comparison.
/// Positive-class weight (`n_neg / n_pos` clamped to `[1, 8]`).
pub fn pos_weight_of(labels: impl Iterator<Item = bool>) -> f32 {
    let mut pos = 0usize;
    let mut neg = 0usize;
    for l in labels {
        if l {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    if pos == 0 {
        1.0
    } else {
        (neg as f32 / pos as f32).clamp(1.0, 8.0)
    }
}

pub fn train_pair_model<M: PairModel + Sync>(model: &mut M, ds: &PairDataset) -> BaselineReport {
    let epochs = model.epochs();
    let pos_weight = pos_weight_of(ds.train.iter().map(|p| p.label));
    let mut rng = StdRng::seed_from_u64(model.seed() ^ 0x7261);
    let mut order: Vec<usize> = (0..ds.train.len()).collect();
    let mut best_valid = -1.0f64;
    let mut best_snapshot = model.params().snapshot();
    let mut per_epoch_seconds = Vec::with_capacity(epochs);

    for _ in 0..epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        for &i in &order {
            let p = &ds.train[i];
            let w = if p.label { pos_weight } else { 1.0 };
            model.train_pair_weighted(p, w);
        }
        per_epoch_seconds.push(start.elapsed().as_secs_f64());
        let scores = score_pairs_parallel(model, &ds.valid);
        let labels: Vec<bool> = ds.valid.iter().map(|p| p.label).collect();
        let (_, f1) = best_threshold(&scores, &labels);
        if f1 > best_valid {
            best_valid = f1;
            best_snapshot = model.params().snapshot();
        }
    }
    model.params_mut().restore(&best_snapshot);

    let v_scores = score_pairs_parallel(model, &ds.valid);
    let v_labels: Vec<bool> = ds.valid.iter().map(|p| p.label).collect();
    let (threshold, _) = best_threshold(&v_scores, &v_labels);
    let t_scores = score_pairs_parallel(model, &ds.test);
    let t_labels: Vec<bool> = ds.test.iter().map(|p| p.label).collect();
    let confusion = evaluate_at_threshold(&t_scores, &t_labels, threshold);
    BaselineReport {
        best_valid_f1: best_valid.max(0.0),
        test_f1: confusion.pr_f1().f1,
        test_confusion: confusion,
        per_epoch_seconds,
    }
}

/// Trains a collective model under the §6.3 protocol.
pub fn train_collective_model<M: CollectiveErModel + Sync>(
    model: &mut M,
    ds: &CollectiveDataset,
) -> BaselineReport {
    let epochs = model.epochs();
    let pos_weight = pos_weight_of(ds.train.iter().flat_map(|ex| ex.labels.iter().copied()));
    let mut rng = StdRng::seed_from_u64(model.seed() ^ 0x7262);
    let mut order: Vec<usize> = (0..ds.train.len()).collect();
    let mut best_valid = -1.0f64;
    let mut best_snapshot = model.params().snapshot();
    let mut per_epoch_seconds = Vec::with_capacity(epochs);

    let score_split = |model: &M, split: &[CollectiveExample]| {
        let per_example = parallel::par_map(split, |ex| model.predict_example(ex));
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for (ex, s) in split.iter().zip(per_example) {
            scores.extend(s);
            labels.extend(ex.labels.iter().copied());
        }
        (scores, labels)
    };

    for _ in 0..epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        for &i in &order {
            model.train_example_weighted(&ds.train[i], pos_weight);
        }
        per_epoch_seconds.push(start.elapsed().as_secs_f64());
        let (scores, labels) = score_split(model, &ds.valid);
        let (_, f1) = best_threshold(&scores, &labels);
        if f1 > best_valid {
            best_valid = f1;
            best_snapshot = model.params().snapshot();
        }
    }
    model.params_mut().restore(&best_snapshot);

    let (v_scores, v_labels) = score_split(model, &ds.valid);
    let (threshold, _) = best_threshold(&v_scores, &v_labels);
    let (t_scores, t_labels) = score_split(model, &ds.test);
    let confusion = evaluate_at_threshold(&t_scores, &t_labels, threshold);
    BaselineReport {
        best_valid_f1: best_valid.max(0.0),
        test_f1: confusion.pr_f1().f1,
        test_confusion: confusion,
        per_epoch_seconds,
    }
}

/// Flattens a collective dataset into a pairwise one (how the pairwise
/// baselines MG / DM / Ditto / HierGAT are evaluated in Table 7).
pub fn flatten_collective(ds: &CollectiveDataset) -> PairDataset {
    let flat = |examples: &[CollectiveExample]| -> Vec<EntityPair> {
        examples.iter().flat_map(CollectiveExample::to_pairs).collect()
    };
    PairDataset {
        name: format!("{}-flat", ds.name),
        train: flat(&ds.train),
        valid: flat(&ds.valid),
        test: flat(&ds.test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiergat_data::{Entity, MagellanDataset};

    #[test]
    fn flatten_preserves_counts_and_labels() {
        let ds = MagellanDataset::AmazonGoogle.load_collective(0.2);
        let flat = flatten_collective(&ds);
        assert_eq!(flat.len(), ds.total_candidates());
        let pos_collective: usize = ds
            .train
            .iter()
            .chain(&ds.valid)
            .chain(&ds.test)
            .map(CollectiveExample::n_positive)
            .sum();
        assert_eq!(flat.n_positive(), pos_collective);
    }

    /// A trivial learnable model: score = parameterized bias, used to check
    /// the training-loop plumbing (snapshots, thresholds).
    struct Dummy {
        ps: ParamStore,
        id: hiergat_nn::ParamId,
    }

    impl Dummy {
        fn new() -> Self {
            let mut ps = ParamStore::new();
            let id = ps.add("b", hiergat_tensor::Tensor::scalar(0.0));
            Self { ps, id }
        }
    }

    impl PairModel for Dummy {
        fn train_pair(&mut self, pair: &EntityPair) -> f32 {
            // Move the bias toward the label mean.
            let target = f32::from(pair.label as u8 as f32 > 0.5);
            let cur = self.ps.value(self.id).item();
            *self.ps.value_mut(self.id) =
                hiergat_tensor::Tensor::scalar(cur + 0.1 * (target - cur));
            (target - cur).abs()
        }
        fn predict_pair(&self, _pair: &EntityPair) -> f32 {
            self.ps.value(self.id).item().clamp(0.0, 1.0)
        }
        fn params(&self) -> &ParamStore {
            &self.ps
        }
        fn params_mut(&mut self) -> &mut ParamStore {
            &mut self.ps
        }
        fn epochs(&self) -> usize {
            2
        }
        fn seed(&self) -> u64 {
            0
        }
    }

    #[test]
    fn train_loop_runs_and_reports() {
        let e = Entity::new("e", vec![("t".into(), "x".into())]);
        let pairs: Vec<EntityPair> =
            (0..20).map(|i| EntityPair::new(e.clone(), e.clone(), i % 2 == 0)).collect();
        let ds = PairDataset::split_3_1_1("d", pairs, 1);
        let mut m = Dummy::new();
        let report = train_pair_model(&mut m, &ds);
        assert_eq!(report.per_epoch_seconds.len(), 2);
        assert!(report.test_f1 >= 0.0 && report.test_f1 <= 1.0);
        assert!(report.total_seconds() >= 0.0);
    }
}
