//! Classic ML classifiers built from scratch for the Magellan baseline
//! (§6.1: decision tree, random forest, SVM, linear regression, and
//! logistic regression; the best is selected on the validation set).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A trained binary classifier over dense `f64` feature vectors.
pub trait Classifier {
    /// Probability-like score in `[0, 1]` that the example is positive.
    fn score(&self, features: &[f64]) -> f64;

    /// Hard decision at the 0.5 operating point.
    fn predict(&self, features: &[f64]) -> bool {
        self.score(features) >= 0.5
    }
}

// ---------------------------------------------------------------- trees --

/// A CART-style decision tree with Gini impurity.
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
}

enum TreeNode {
    Leaf { pos_rate: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples: usize,
    /// Features considered per split (`0` = all). Used by random forests.
    pub feature_subsample: usize,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 6, min_samples: 4, feature_subsample: 0, seed: 0 }
    }
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits a tree on `(features, label)` rows.
    pub fn fit(x: &[Vec<f64>], y: &[bool], cfg: &TreeConfig) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label count mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        let mut tree = Self { nodes: Vec::new() };
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        tree.grow(x, y, &idx, cfg, 0, &mut rng);
        tree
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[bool],
        idx: &[usize],
        cfg: &TreeConfig,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| y[i]).count();
        let node_id = self.nodes.len();
        let pos_rate = pos as f64 / idx.len() as f64;
        // Stop conditions.
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples || pos == 0 || pos == idx.len() {
            self.nodes.push(TreeNode::Leaf { pos_rate });
            return node_id;
        }
        let n_features = x[0].len();
        let candidates: Vec<usize> = if cfg.feature_subsample == 0 {
            (0..n_features).collect()
        } else {
            let mut all: Vec<usize> = (0..n_features).collect();
            all.shuffle(rng);
            all.truncate(cfg.feature_subsample.min(n_features));
            all
        };
        // Best split by Gini gain.
        let parent_gini = gini(pos, idx.len());
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &f in &candidates {
            let mut values: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            values.dedup();
            for w in values.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (mut lp, mut ln, mut rp, mut rn) = (0usize, 0usize, 0usize, 0usize);
                for &i in idx {
                    if x[i][f] <= threshold {
                        if y[i] {
                            lp += 1;
                        } else {
                            ln += 1;
                        }
                    } else if y[i] {
                        rp += 1;
                    } else {
                        rn += 1;
                    }
                }
                let (lt, rt) = (lp + ln, rp + rn);
                if lt == 0 || rt == 0 {
                    continue;
                }
                let weighted =
                    (lt as f64 * gini(lp, lt) + rt as f64 * gini(rp, rt)) / idx.len() as f64;
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-9 {
                    best = Some((f, threshold, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            self.nodes.push(TreeNode::Leaf { pos_rate });
            return node_id;
        };
        let left_idx: Vec<usize> =
            idx.iter().copied().filter(|&i| x[i][feature] <= threshold).collect();
        let right_idx: Vec<usize> =
            idx.iter().copied().filter(|&i| x[i][feature] > threshold).collect();
        // Reserve the split node, then grow children.
        self.nodes.push(TreeNode::Leaf { pos_rate });
        let left = self.grow(x, y, &left_idx, cfg, depth + 1, rng);
        let right = self.grow(x, y, &right_idx, cfg, depth + 1, rng);
        self.nodes[node_id] = TreeNode::Split { feature, threshold, left, right };
        node_id
    }
}

impl Classifier for DecisionTree {
    fn score(&self, features: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf { pos_rate } => return *pos_rate,
                TreeNode::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// A bagged ensemble of subsampled decision trees.
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits `n_trees` trees on bootstrap samples with sqrt-feature subsampling.
    pub fn fit(x: &[Vec<f64>], y: &[bool], n_trees: usize, seed: u64) -> Self {
        assert!(!x.is_empty(), "cannot fit on empty data");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_features = x[0].len();
        let subsample = (n_features as f64).sqrt().ceil() as usize;
        let trees = (0..n_trees)
            .map(|k| {
                let idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                let bx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
                let by: Vec<bool> = idx.iter().map(|&i| y[i]).collect();
                DecisionTree::fit(
                    &bx,
                    &by,
                    &TreeConfig {
                        max_depth: 8,
                        min_samples: 2,
                        feature_subsample: subsample,
                        seed: seed ^ (k as u64 + 1),
                    },
                )
            })
            .collect();
        Self { trees }
    }
}

impl Classifier for RandomForest {
    fn score(&self, features: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.score(features)).sum();
        sum / self.trees.len() as f64
    }
}

// --------------------------------------------------------------- linear --

/// Shared SGD loop over linear models.
fn sgd_fit(
    x: &[Vec<f64>],
    y: &[bool],
    epochs: usize,
    lr: f64,
    seed: u64,
    grad: impl Fn(f64, f64) -> f64, // (margin/score, label +-1 or 0/1) -> dloss/dz
) -> (Vec<f64>, f64) {
    let n_features = x[0].len();
    let mut w = vec![0.0f64; n_features];
    let mut b = 0.0f64;
    let mut order: Vec<usize> = (0..x.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            let z: f64 = x[i].iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + b;
            let g = grad(z, if y[i] { 1.0 } else { 0.0 });
            for (wj, xj) in w.iter_mut().zip(&x[i]) {
                *wj -= lr * (g * xj + 1e-4 * *wj);
            }
            b -= lr * g;
        }
    }
    (w, b)
}

/// Logistic regression trained by SGD.
pub struct LogisticRegression {
    w: Vec<f64>,
    b: f64,
}

impl LogisticRegression {
    /// Fits with log-loss SGD.
    pub fn fit(x: &[Vec<f64>], y: &[bool], seed: u64) -> Self {
        let (w, b) = sgd_fit(x, y, 60, 0.1, seed, |z, label| {
            let p = 1.0 / (1.0 + (-z).exp());
            p - label
        });
        Self { w, b }
    }
}

impl Classifier for LogisticRegression {
    fn score(&self, features: &[f64]) -> f64 {
        let z: f64 = features.iter().zip(&self.w).map(|(a, b)| a * b).sum::<f64>() + self.b;
        1.0 / (1.0 + (-z).exp())
    }
}

/// Linear regression on 0/1 targets (thresholded at 0.5), per Magellan's
/// classifier sweep.
pub struct LinearRegression {
    w: Vec<f64>,
    b: f64,
}

impl LinearRegression {
    /// Fits with squared-loss SGD.
    pub fn fit(x: &[Vec<f64>], y: &[bool], seed: u64) -> Self {
        let (w, b) = sgd_fit(x, y, 60, 0.05, seed, |z, label| 2.0 * (z - label));
        Self { w, b }
    }
}

impl Classifier for LinearRegression {
    fn score(&self, features: &[f64]) -> f64 {
        let z: f64 = features.iter().zip(&self.w).map(|(a, b)| a * b).sum::<f64>() + self.b;
        z.clamp(0.0, 1.0)
    }
}

/// Linear SVM with hinge loss, scores squashed through a sigmoid.
pub struct LinearSvm {
    w: Vec<f64>,
    b: f64,
}

impl LinearSvm {
    /// Fits with hinge-loss SGD on +-1 labels.
    pub fn fit(x: &[Vec<f64>], y: &[bool], seed: u64) -> Self {
        let (w, b) = sgd_fit(x, y, 60, 0.05, seed, |z, label| {
            let t = 2.0 * label - 1.0; // +-1
            if t * z < 1.0 {
                -t
            } else {
                0.0
            }
        });
        Self { w, b }
    }
}

impl Classifier for LinearSvm {
    fn score(&self, features: &[f64]) -> f64 {
        let z: f64 = features.iter().zip(&self.w).map(|(a, b)| a * b).sum::<f64>() + self.b;
        1.0 / (1.0 + (-z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable data: positive iff x0 > 0.5.
    fn separable(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] > 0.5).collect();
        (x, y)
    }

    fn accuracy(c: &dyn Classifier, x: &[Vec<f64>], y: &[bool]) -> f64 {
        let correct = x.iter().zip(y).filter(|(xi, &yi)| c.predict(xi) == yi).count();
        correct as f64 / x.len() as f64
    }

    #[test]
    fn decision_tree_learns_separable_data() {
        let (x, y) = separable(200, 1);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert!(accuracy(&tree, &x, &y) > 0.95);
    }

    #[test]
    fn tree_respects_max_depth() {
        let (x, y) = separable(100, 2);
        let stump = DecisionTree::fit(&x, &y, &TreeConfig { max_depth: 1, ..Default::default() });
        // A depth-1 tree has at most 3 nodes.
        assert!(stump.nodes.len() <= 3);
    }

    #[test]
    fn forest_beats_chance_and_is_deterministic() {
        let (x, y) = separable(150, 3);
        let f1 = RandomForest::fit(&x, &y, 11, 9);
        let f2 = RandomForest::fit(&x, &y, 11, 9);
        assert!(accuracy(&f1, &x, &y) > 0.9);
        for xi in &x {
            assert_eq!(f1.score(xi), f2.score(xi));
        }
    }

    #[test]
    fn logistic_regression_learns() {
        let (x, y) = separable(200, 4);
        let lr = LogisticRegression::fit(&x, &y, 0);
        assert!(accuracy(&lr, &x, &y) > 0.9);
        // Scores are probabilities.
        assert!(x.iter().all(|xi| (0.0..=1.0).contains(&lr.score(xi))));
    }

    #[test]
    fn linear_regression_learns() {
        let (x, y) = separable(200, 5);
        let lr = LinearRegression::fit(&x, &y, 0);
        assert!(accuracy(&lr, &x, &y) > 0.85);
    }

    #[test]
    fn svm_learns() {
        let (x, y) = separable(200, 6);
        let svm = LinearSvm::fit(&x, &y, 0);
        assert!(accuracy(&svm, &x, &y) > 0.9);
    }

    #[test]
    fn constant_labels_yield_constant_tree() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![true, true];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(tree.score(&[0.5]), 1.0);
    }
}
