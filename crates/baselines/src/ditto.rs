//! The Ditto baseline (Li et al., VLDB 2021; §6.1 of the paper).
//!
//! Ditto serializes both entities into a single
//! `[CLS] [COL] k [VAL] v ... [SEP] [COL] k [VAL] v ... [SEP]` sequence and
//! fine-tunes a pre-trained LM with a binary head on the `[CLS]` embedding.
//! The paper compares against the *basic* version (no domain-knowledge
//! optimizations), which is what this reproduces.

use crate::traits::PairModel;
use hiergat_data::EntityPair;
use hiergat_lm::{LmTier, MiniLm};
use hiergat_nn::{Adam, ArenaExecutor, ExecutionPlan, Linear, Optimizer, ParamStore, Tape, Var};
use hiergat_text::tokenize;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ditto configuration.
#[derive(Debug, Clone, Copy)]
pub struct DittoConfig {
    /// Language-model tier.
    pub lm_tier: LmTier,
    /// Training epochs (paper: 10).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Run training steps through the arena planner (zero steady-state
    /// allocations, bitwise-identical arithmetic).
    pub use_arena: bool,
}

impl Default for DittoConfig {
    fn default() -> Self {
        Self { lm_tier: LmTier::MiniBase, epochs: 10, lr: 6e-4, seed: 0xd177, use_arena: false }
    }
}

/// The Ditto model.
pub struct Ditto {
    cfg: DittoConfig,
    /// Parameter store (LM + classification head).
    pub ps: ParamStore,
    lm: MiniLm,
    head_hidden: Linear,
    head_out: Linear,
    opt: Adam,
    rng: StdRng,
    exec: ArenaExecutor,
}

impl Ditto {
    /// Builds the model.
    pub fn new(cfg: DittoConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let lm_cfg = cfg.lm_tier.config();
        let lm = MiniLm::new(&mut ps, lm_cfg, &mut rng);
        // Sentence-pair head over [CLS; u; v; |u-v|; u*v] (u, v = mean-pooled
        // segments). Full-size BERT carries comparison circuits from its
        // pre-training; the miniature LM gets the comparison primitive in
        // the head instead (see DESIGN.md).
        let head_hidden = Linear::new(
            &mut ps,
            "ditto.head_hidden",
            5 * lm_cfg.d_model,
            lm_cfg.d_model,
            true,
            &mut rng,
        );
        let head_out = Linear::new(&mut ps, "ditto.head_out", lm_cfg.d_model, 2, true, &mut rng);
        let opt = Adam::new(cfg.lr);
        Self { cfg, ps, lm, head_hidden, head_out, opt, rng, exec: ArenaExecutor::new() }
    }

    /// Loads pre-trained `lm.*` weights.
    pub fn load_pretrained(&mut self, pretrained: &ParamStore) -> usize {
        self.ps.load_matching(pretrained)
    }

    /// Serializes a pair Ditto-style into the LM's id space.
    fn serialize(&self, pair: &EntityPair) -> Vec<usize> {
        let left = tokenize(&pair.left.serialize_ditto());
        let right = tokenize(&pair.right.serialize_ditto());
        self.lm.pair_sequence(&left, &right)
    }

    fn forward(&mut self, t: &mut Tape, pair: &EntityPair, train: bool) -> Var {
        let mut rng = self.rng.clone();
        let out = self.forward_rng(t, pair, train, &mut rng);
        self.rng = rng;
        out
    }

    fn forward_rng(&self, t: &mut Tape, pair: &EntityPair, train: bool, rng: &mut StdRng) -> Var {
        let ids = self.serialize(pair);
        let h = self.lm.encode_ids(t, &self.ps, &ids, train, rng);
        let n = t.value(h).rows();
        let cls = t.row(h, 0);
        // Segment pooling over the *input* token embeddings (not the encoder
        // output): the same token then contributes the same vector to both
        // segments, so |u - v| directly measures token overlap — the
        // comparison primitive full-size BERT brings from pre-training.
        // Segment boundary: first [SEP] in [CLS] left [SEP] right [SEP].
        let sep_id = self.lm.vocab().special(hiergat_text::Special::Sep);
        let first_sep =
            ids.iter().take(n).position(|&i| i == sep_id).unwrap_or(n.saturating_sub(1)).max(1);
        let raw = self.lm.embed_ids(t, &self.ps, &ids);
        let d_model = self.lm.config().d_model;
        let pool = |t: &mut Tape, start: usize, len: usize| -> Var {
            if len == 0 || start >= n {
                t.input(hiergat_tensor::Tensor::zeros(1, d_model))
            } else {
                let len = len.min(n - start);
                let seg = t.slice_rows(raw, start, len);
                t.mean_rows(seg)
            }
        };
        let u = pool(t, 1, first_sep.saturating_sub(1));
        let v = pool(t, first_sep + 1, n.saturating_sub(first_sep + 2).max(1));
        // Mean-pooled raw embeddings are O(1/sqrt(d)) while the LayerNormed
        // [CLS] row is O(1); normalize the segment vectors so the comparison
        // features carry weight in the head from step one instead of being
        // drowned out.
        let ones = t.input(hiergat_tensor::Tensor::full(1, d_model, 1.0));
        let zeros = t.input(hiergat_tensor::Tensor::zeros(1, d_model));
        let u = t.layer_norm(u, ones, zeros, 1e-5);
        let v = t.layer_norm(v, ones, zeros, 1e-5);
        let diff = {
            let d = t.sub(u, v);
            let pos = t.relu(d);
            let nd = t.scale(d, -1.0);
            let neg = t.relu(nd);
            t.add(pos, neg)
        };
        let prod = t.mul(u, v);
        let feats = t.concat_cols(&[cls, u, v, diff, prod]);
        let hh = self.head_hidden.forward(t, &self.ps, feats);
        let hh = t.relu(hh);
        self.head_out.forward(t, &self.ps, hh)
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.ps.num_scalars()
    }

    /// Statically analyzes the training graph for `pair` on a shape-only
    /// tape (no kernels run): shape inference, parameter reachability, and
    /// node liveness.
    pub fn analyze(&self, pair: &EntityPair) -> hiergat_nn::GraphReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x51);
        let mut t = Tape::shape_only();
        let logits = self.forward_rng(&mut t, pair, true, &mut rng);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        hiergat_nn::analyze_graph(&t, loss, &self.ps)
    }

    /// Arena-planner report for the training graph of `pair` (shape-only
    /// recording; no kernels run).
    pub fn plan(&self, pair: &EntityPair) -> hiergat_nn::PlanReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x51);
        let mut t = Tape::deferred();
        let logits = self.forward_rng(&mut t, pair, true, &mut rng);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        ExecutionPlan::build(&t, loss).report().clone()
    }

    /// Runs the [`hiergat_nn::lint_graph`] rule engine over the training
    /// graph (shape-only tape, training mode).
    pub fn lint(&self, pair: &EntityPair) -> hiergat_nn::LintReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x51);
        let mut t = Tape::shape_only();
        let logits = self.forward_rng(&mut t, pair, true, &mut rng);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[1.0]);
        hiergat_nn::lint_graph(&t, loss, &self.ps, &hiergat_nn::LintConfig::training())
    }

    /// Records the eval-mode scoring graph onto `t` — exactly the graph
    /// [`PairModel::predict_pair`] evaluates (same seed, eval mode, softmax
    /// over logits) — and returns the `1 x 2` probability node.
    pub fn record_pair_scores(&self, t: &mut Tape, pair: &EntityPair) -> Var {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x3f);
        let logits = self.forward_rng(t, pair, false, &mut rng);
        t.softmax(logits)
    }
}

impl PairModel for Ditto {
    fn train_pair(&mut self, pair: &EntityPair) -> f32 {
        self.train_pair_weighted(pair, 1.0)
    }

    fn train_pair_weighted(&mut self, pair: &EntityPair, weight: f32) -> f32 {
        // Clearing at the start (rather than after the optimizer step) leaves
        // the step's clipped gradients observable for differential testing.
        self.ps.zero_grad();
        let mut t = if self.cfg.use_arena { Tape::deferred() } else { Tape::new() };
        let logits = self.forward(&mut t, pair, true);
        let loss = t.weighted_cross_entropy_logits(logits, &[usize::from(pair.label)], &[weight]);
        let val = if self.cfg.use_arena {
            self.exec.step(&t, loss, &mut self.ps)
        } else {
            let v = t.value(loss).item();
            t.backward(loss, &mut self.ps);
            v
        };
        self.ps.clip_grad_norm(5.0);
        self.opt.step(&mut self.ps);
        val
    }

    fn predict_pair(&self, pair: &EntityPair) -> f32 {
        let mut t = Tape::new();
        let probs = self.record_pair_scores(&mut t, pair);
        t.value(probs).get(0, 1)
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn epochs(&self) -> usize {
        self.cfg.epochs
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::train_pair_model;
    use hiergat_data::{Entity, MagellanDataset};

    fn pair(label: bool) -> EntityPair {
        EntityPair::new(
            Entity::new(
                "l",
                vec![("title".into(), "apache spark".into()), ("price".into(), "10".into())],
            ),
            Entity::new(
                "r",
                vec![
                    ("title".into(), "apache spark cluster".into()),
                    ("price".into(), "12".into()),
                ],
            ),
            label,
        )
    }

    #[test]
    fn lint_passes_at_deny_warn() {
        let m = Ditto::new(DittoConfig::default());
        let report = m.lint(&pair(true));
        assert!(
            report.is_clean_at(hiergat_nn::Severity::Warn),
            "Ditto graph must lint clean:\n{report}"
        );
    }

    #[test]
    fn serialization_reaches_the_lm() {
        let ditto = Ditto::new(DittoConfig { lm_tier: LmTier::MiniDistil, ..Default::default() });
        let p = ditto.predict_pair(&pair(true));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn loss_decreases_on_repeated_example() {
        let mut ditto =
            Ditto::new(DittoConfig { lm_tier: LmTier::MiniDistil, ..Default::default() });
        let ex = pair(true);
        let first = ditto.train_pair(&ex);
        let mut last = first;
        for _ in 0..15 {
            last = ditto.train_pair(&ex);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn learns_a_small_clean_dataset() {
        let ds = MagellanDataset::FodorsZagats.load(0.6);
        let mut ditto = Ditto::new(DittoConfig {
            lm_tier: LmTier::MiniDistil,
            epochs: 6,
            ..Default::default()
        });
        let report = train_pair_model(&mut ditto, &ds);
        assert!(report.test_f1 > 0.3, "F1 {}", report.test_f1);
    }

    #[test]
    fn analyzer_reports_clean_graph() {
        let ditto = Ditto::new(DittoConfig { lm_tier: LmTier::MiniDistil, ..Default::default() });
        let report = ditto.analyze(&pair(true));
        assert!(report.is_clean(), "{report}");
        assert!(report.node_count > 0);
    }

    #[test]
    fn tier_changes_parameter_count() {
        let small = Ditto::new(DittoConfig { lm_tier: LmTier::MiniDistil, ..Default::default() });
        let large = Ditto::new(DittoConfig { lm_tier: LmTier::MiniLarge, ..Default::default() });
        assert!(large.num_parameters() > small.num_parameters());
    }
}
